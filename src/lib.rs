//! Umbrella crate for the performance-portability reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can
//! use a single dependency. See the individual crates for details:
//! [`gpp_graph`], [`gpp_sim`], [`gpp_apps`], [`gpp_irgl`], [`gpp_core`],
//! [`gpp_obs`], [`gpp_par`].

pub use gpp_apps as apps;
pub use gpp_core as core;
pub use gpp_graph as graph;
pub use gpp_irgl as irgl;
pub use gpp_obs as obs;
pub use gpp_par as par;
pub use gpp_sim as sim;

//! The persistent executor's contract, end to end: pooled fan-outs
//! must propagate panics, compose when nested, reuse one process-wide
//! pool across many calls, match the inline map bit for bit for any
//! shape, and leave the study and sweep datasets byte-identical at any
//! thread count. Run in release mode in CI — optimisation must not
//! perturb a single bit.

use std::sync::Arc;

use gpp::apps::study::{run_study, Dataset, StudyConfig};
use gpp::apps::sweep::{run_sweep, ChipSweep, SweepConfig};
use gpp::par::{par_map, par_map_pooled, pool_workers_spawned};
use gpp::sim::chip::{latin_hypercube_chips, study_chips};
use proptest::prelude::*;

fn item_fn(i: usize, x: u64) -> u64 {
    x.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ (i as u64).rotate_left(17)
}

#[test]
fn pooled_panic_reaches_the_submitter_with_its_payload() {
    let items: Arc<Vec<usize>> = Arc::new((0..128).collect());
    let caught = std::panic::catch_unwind(|| {
        par_map_pooled(&items, 4, |_, &x| {
            if x == 77 {
                panic!("pooled failure on item {x}");
            }
            x
        })
    })
    .expect_err("the worker panic must propagate");
    let message = caught
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| caught.downcast_ref::<&str>().map(|s| (*s).to_owned()))
        .expect("panic payload is a message");
    assert_eq!(message, "pooled failure on item 77");
}

#[test]
fn nested_pooled_fanouts_compose_to_depth_two_and_three() {
    // Outer fan-out over 8 items; each worker submits an inner pooled
    // fan-out to the same shared queue, and each inner item submits a
    // third level. All levels stay in input order and match the serial
    // expectation exactly.
    let outer: Arc<Vec<u64>> = Arc::new((0..8).collect());
    let expect: Vec<u64> = outer
        .iter()
        .map(|&x| {
            (0..16)
                .map(|y: u64| (0..4).map(|z: u64| x * 100 + y * 10 + z).sum::<u64>())
                .sum::<u64>()
        })
        .collect();
    let got = par_map_pooled(&outer, 4, |_, &x| {
        let inner: Arc<Vec<u64>> = Arc::new((0..16).collect());
        par_map_pooled(&inner, 4, move |_, &y| {
            let deepest: Arc<Vec<u64>> = Arc::new((0..4).collect());
            par_map_pooled(&deepest, 2, move |_, &z| x * 100 + y * 10 + z)
                .iter()
                .sum::<u64>()
        })
        .iter()
        .sum::<u64>()
    });
    assert_eq!(got, expect);
}

#[test]
fn pool_is_reused_across_a_hundred_sequential_calls() {
    let items: Arc<Vec<u64>> = Arc::new((0..512).collect());
    let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| item_fn(i, x)).collect();
    for _ in 0..120 {
        assert_eq!(par_map_pooled(&items, 4, |i, &x| item_fn(i, x)), expect);
    }
    // 120 calls at width 4 would have spawned hundreds of threads under
    // a per-call executor; the persistent pool spawns each worker once
    // per process, no matter how many calls (or tests) it serves.
    assert!(
        pool_workers_spawned() < 100,
        "pool spawned {} workers — per-call spawning has crept back in",
        pool_workers_spawned()
    );
}

proptest! {
    /// Pooled output equals the inline map for arbitrary item counts and
    /// thread counts — including zero items, more threads than items,
    /// and thread counts above the pool's width.
    #[test]
    fn pooled_matches_inline_for_any_shape(
        len in 0usize..300,
        threads in 0usize..24,
        seed in any::<u64>()
    ) {
        let items: Arc<Vec<u64>> = Arc::new(
            (0..len as u64).map(|v| v.wrapping_mul(seed | 1)).collect()
        );
        let inline: Vec<u64> = items.iter().enumerate().map(|(i, &x)| item_fn(i, x)).collect();
        let pooled = par_map_pooled(&items, threads, |i, &x| item_fn(i, x));
        prop_assert_eq!(&pooled, &inline);
        // And the scoped engine agrees with both.
        let scoped = par_map(&items, threads, |i, &x| item_fn(i, x));
        prop_assert_eq!(&scoped, &inline);
    }
}

/// Bit-exact dataset comparison: every timing compared via `to_bits`,
/// so `-0.0 == 0.0` or NaN quirks can never mask a divergence.
fn assert_datasets_bit_identical(a: &Dataset, b: &Dataset, what: &str) {
    assert_eq!(a.apps, b.apps, "{what}: apps");
    assert_eq!(a.inputs, b.inputs, "{what}: inputs");
    assert_eq!(a.chips, b.chips, "{what}: chips");
    assert_eq!(a.runs, b.runs, "{what}: runs");
    assert_eq!(a.cells.len(), b.cells.len(), "{what}: cell count");
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        assert_eq!(ca.app, cb.app, "{what}: cell app");
        assert_eq!(ca.input, cb.input, "{what}: cell input");
        assert_eq!(ca.chip, cb.chip, "{what}: cell chip");
        assert_eq!(ca.times.len(), cb.times.len(), "{what}: config count");
        for (ta, tb) in ca.times.iter().zip(&cb.times) {
            assert_eq!(ta.len(), tb.len(), "{what}: run count");
            for (va, vb) in ta.iter().zip(tb) {
                assert_eq!(
                    va.to_bits(),
                    vb.to_bits(),
                    "{what}: {}/{}/{} diverges",
                    ca.app,
                    ca.input,
                    ca.chip
                );
            }
        }
    }
}

fn assert_sweeps_bit_identical(a: &ChipSweep, b: &ChipSweep, what: &str) {
    assert_eq!(a.chips, b.chips, "{what}: chips");
    assert_eq!(a.opts, b.opts, "{what}: opts");
    assert_eq!(a.pairs, b.pairs, "{what}: pairs");
    assert_eq!(a.log_ratios.len(), b.log_ratios.len(), "{what}: rows");
    for (ra, rb) in a.log_ratios.iter().zip(&b.log_ratios) {
        for (va, vb) in ra.iter().zip(rb) {
            assert_eq!(va.to_bits(), vb.to_bits(), "{what}: log ratio diverges");
        }
    }
    for (va, vb) in a.win_fraction.iter().zip(&b.win_fraction) {
        assert_eq!(va.to_bits(), vb.to_bits(), "{what}: win fraction diverges");
    }
}

#[test]
fn study_is_bit_identical_from_inline_to_pooled_at_any_width() {
    // threads = 1 is the inline engine (the pool is never touched);
    // 2, 4, and 8 exercise the pooled engine at increasing widths.
    let reference = run_study(&StudyConfig {
        threads: 1,
        ..StudyConfig::tiny()
    });
    for threads in [2, 4, 8] {
        let pooled = run_study(&StudyConfig {
            threads,
            ..StudyConfig::tiny()
        });
        assert_datasets_bit_identical(&reference, &pooled, &format!("study @ {threads} threads"));
    }
}

#[test]
fn sweep_is_bit_identical_from_inline_to_pooled_at_any_width() {
    let mut chips = study_chips();
    chips.extend(latin_hypercube_chips(10, 7));
    let reference = run_sweep(
        &SweepConfig {
            threads: 1,
            ..SweepConfig::tiny()
        },
        &chips,
    );
    for threads in [2, 4, 8] {
        let pooled = run_sweep(
            &SweepConfig {
                threads,
                ..SweepConfig::tiny()
            },
            &chips,
        );
        assert_sweeps_bit_identical(&reference, &pooled, &format!("sweep @ {threads} threads"));
    }
}

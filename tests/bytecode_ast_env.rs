//! `GPP_IRGL_AST=1` must flip the DSL executor back to the tree-walking
//! oracle *without changing a single byte of the study dataset*. This
//! test mutates the process environment, so it lives in its own
//! integration-test binary (its own process) and must not share a file
//! with any other test that reads `GPP_IRGL_AST`.

use gpp::apps::{run_study, StudyConfig};

#[test]
fn ast_fallback_produces_a_byte_identical_dsl_study() {
    let config = StudyConfig {
        dsl_programs: true,
        threads: 2,
        ..StudyConfig::tiny()
    };

    std::env::set_var("GPP_IRGL_AST", "1");
    let ast = serde_json::to_string(&run_study(&config)).unwrap();

    // The default executor is now the native closure tier
    // (tests/tier_env.rs covers all of `GPP_IRGL_TIER`); the legacy
    // switch must still reproduce it byte for byte.
    std::env::remove_var("GPP_IRGL_AST");
    let default_tier = serde_json::to_string(&run_study(&config)).unwrap();

    assert_eq!(ast, default_tier, "AST oracle and default tier diverged");

    // An explicit "0" (and the empty string) mean "stay off the walker".
    std::env::set_var("GPP_IRGL_AST", "0");
    assert!(!gpp::irgl::interp::ast_requested());
    std::env::set_var("GPP_IRGL_AST", "");
    assert!(!gpp::irgl::interp::ast_requested());
    std::env::set_var("GPP_IRGL_AST", "1");
    assert!(gpp::irgl::interp::ast_requested());
    std::env::remove_var("GPP_IRGL_AST");
}

//! Pipeline tracing end to end: a traced parallel study emits a
//! well-formed event stream (unique sequence numbers, balanced spans,
//! full counter coverage), the JSONL file sink round-trips losslessly,
//! and — the invariant that matters — tracing never changes the dataset.

use std::collections::HashMap;
use std::sync::Arc;

use gpp::apps::study::{run_study_on, run_study_traced, StudyConfig};
use gpp::obs::{EventKind, FileSink, MemorySink, TeeSink, TraceEvent, TraceSummary, Tracer};
use gpp::sim::chip::study_chips;

#[test]
fn traced_parallel_study_is_byte_identical_and_events_are_ordered() {
    let cfg = StudyConfig {
        threads: 4,
        ..StudyConfig::tiny()
    };
    let plain = run_study_on(&cfg, &study_chips());
    let sink = Arc::new(MemorySink::new());
    let tracer = Tracer::new(sink.clone());
    let traced = run_study_traced(&cfg, &study_chips(), &tracer);
    assert_eq!(
        serde_json::to_string(&plain).unwrap(),
        serde_json::to_string(&traced).unwrap(),
        "tracing must not perturb the dataset"
    );

    let events = sink.take();
    // Sequence numbers are unique: a total order of emission exists even
    // with four workers interleaving.
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    seqs.dedup();
    assert_eq!(seqs.len(), events.len(), "duplicate sequence numbers");

    // Spans balance: every (name, detail) start has a matching end.
    let mut open: HashMap<(String, Option<String>), i64> = HashMap::new();
    for e in &events {
        match e.kind {
            EventKind::SpanStart => {
                *open.entry((e.name.clone(), e.detail.clone())).or_default() += 1;
            }
            EventKind::SpanEnd => {
                *open.entry((e.name.clone(), e.detail.clone())).or_default() -= 1;
            }
            EventKind::Counter => {}
        }
    }
    assert!(
        open.values().all(|&v| v == 0),
        "unbalanced spans: {open:?}"
    );

    // The summary sees the whole grid.
    let summary = TraceSummary::from_events(&events);
    assert_eq!(summary.traces_compiled, (17 * 3) as f64);
    assert_eq!(summary.cells_priced, (17 * 3 * 6) as f64);
    assert_eq!(summary.phases.len(), 2);
    assert!(summary.phases.iter().any(|p| p.name == "collect-traces"));
    assert!(summary.phases.iter().any(|p| p.name == "price-cells"));
    assert!(summary.total_wall_ns > 0.0);
    assert_eq!(summary.slowest_cells.len(), 5);
    assert!(summary
        .phases
        .iter()
        .all(|p| p.workers >= 1 && p.busy_frac > 0.0));
}

#[test]
fn file_sink_round_trips_jsonl_under_parallel_study() {
    let dir = std::env::temp_dir().join(format!("gpp-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");
    let memory = Arc::new(MemorySink::new());
    {
        let file = FileSink::create(&path).unwrap();
        let tracer = Tracer::new(Arc::new(TeeSink::new(vec![memory.clone(), Arc::new(file)])));
        let cfg = StudyConfig {
            threads: 4,
            ..StudyConfig::tiny()
        };
        let _ = run_study_traced(&cfg, &study_chips(), &tracer);
        tracer.flush();
    }
    let content = std::fs::read_to_string(&path).unwrap();
    let mut from_file: Vec<TraceEvent> = content
        .lines()
        .map(|l| serde_json::from_str(l).expect("each line is one TraceEvent"))
        .collect();
    let mut from_memory = memory.take();
    assert!(!from_file.is_empty());
    assert_eq!(from_file.len(), from_memory.len());
    // Both sinks saw the same events; their arrival orders may differ
    // under concurrency, so compare seq-sorted.
    from_file.sort_by_key(|e| e.seq);
    from_memory.sort_by_key(|e| e.seq);
    assert_eq!(from_file, from_memory);
    std::fs::remove_dir_all(&dir).ok();
}

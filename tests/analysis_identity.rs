//! Byte-identity of the parallel analysis pipeline: every `*_par`
//! entry point, at several thread counts, must reproduce the serial
//! output exactly — same configurations, same p-values, same f64 bits —
//! and the memoized significance table must agree with fresh,
//! unmemoized computation. These are the invariants that let the study
//! regenerators fan out without changing a single reported number.

use gpp::apps::study::{run_study, StudyConfig};
use gpp::core::analysis::DatasetStats;
use gpp::core::predict::{leave_one_out, leave_one_out_par};
use gpp::core::sensitivity::{subsample_sensitivity, subsample_sensitivity_par};
use gpp::core::strategy::{
    build_assignment, build_assignment_par, chip_function, chip_function_par, Strategy,
};
use gpp::obs::Tracer;

fn tiny() -> gpp::apps::study::Dataset {
    run_study(&StudyConfig::tiny())
}

#[test]
fn strategy_spectrum_is_identical_at_any_thread_count() {
    let ds = tiny();
    let stats = DatasetStats::new(&ds);
    for strategy in Strategy::ALL {
        let serial = build_assignment(&stats, strategy);
        for threads in [2, 4, 16] {
            let par = build_assignment_par(&stats, strategy, threads, &Tracer::disabled());
            assert_eq!(
                serial.configs(),
                par.configs(),
                "{strategy} configs @ {threads} threads"
            );
            // PartitionAnalysis is PartialEq over raw f64 p-values and
            // effect sizes: equality here means bit-identical stats.
            assert_eq!(
                serial.partitions(),
                par.partitions(),
                "{strategy} partitions @ {threads} threads"
            );
        }
    }
}

#[test]
fn chip_function_is_identical_at_any_thread_count() {
    let ds = tiny();
    let stats = DatasetStats::new(&ds);
    let serial = chip_function(&stats);
    for threads in [2, 4, 16] {
        assert_eq!(
            serial,
            chip_function_par(&stats, threads, &Tracer::disabled()),
            "@ {threads} threads"
        );
    }
}

#[test]
fn leave_one_out_is_identical_at_any_thread_count() {
    let ds = tiny();
    let stats = DatasetStats::new(&ds);
    for k in [2, 8] {
        let serial = leave_one_out(&stats, k);
        for threads in [2, 4] {
            assert_eq!(
                serial,
                leave_one_out_par(&stats, k, threads, &Tracer::disabled()),
                "k={k} @ {threads} threads"
            );
        }
    }
}

#[test]
fn sensitivity_sweep_is_identical_at_any_thread_count() {
    let ds = tiny();
    let fractions = [1.0, 0.4, 0.15];
    let serial = subsample_sensitivity(&ds, &fractions, 3, 42);
    for threads in [2, 4] {
        let par = subsample_sensitivity_par(&ds, &fractions, 3, 42, threads, &Tracer::disabled());
        assert_eq!(serial, par, "@ {threads} threads");
    }
}

#[test]
fn memoized_significance_agrees_with_fresh_computation() {
    let ds = tiny();
    let stats = DatasetStats::new(&ds);
    let pairs = stats.num_comparison_pairs();
    assert_eq!(pairs, 5 * 48 + 2 * 32);
    // Sample (cell, pair) triples across the table; the memo must
    // reproduce the unmemoized significant() + median ratio exactly.
    for cell in (0..stats.num_cells()).step_by(11) {
        for pair in (0..pairs).step_by(7) {
            let (setting, mirror) = stats.comparison_pair(pair);
            let fresh = stats
                .significant(cell, setting, mirror)
                .then(|| stats.median_of(cell, setting) / stats.median_of(cell, mirror));
            assert_eq!(
                stats.evidence(cell, pair),
                fresh,
                "cell {cell}, pair {pair} ({setting:?} vs {mirror:?})"
            );
        }
    }
}

#[test]
fn traced_parallel_analysis_still_matches_serial() {
    // Tracing must observe, never perturb: a traced parallel spectrum
    // equals the untraced serial one.
    let ds = tiny();
    let stats = DatasetStats::new(&ds);
    let sink = std::sync::Arc::new(gpp::obs::MemorySink::new());
    let tracer = Tracer::new(sink.clone());
    let serial = build_assignment(&stats, Strategy::Chip);
    let traced = build_assignment_par(&stats, Strategy::Chip, 4, &tracer);
    assert_eq!(serial.configs(), traced.configs());
    assert_eq!(serial.partitions(), traced.partitions());
    let events = sink.take();
    assert!(
        events
            .iter()
            .any(|e| e.detail.as_deref() == Some("analyze:chip")),
        "phase span and busy counters should carry the strategy label"
    );
}

//! End-to-end reproduction checks: run the full-scale study once and
//! assert that the paper's qualitative findings (DESIGN.md Section 4)
//! emerge from the analysis. These are the calibration guarantees of the
//! whole repository.

use std::sync::OnceLock;

use gpp::apps::study::{run_study, Dataset, StudyConfig};
use gpp::core::analysis::{DatasetStats, Decision};
use gpp::core::strategy::{build_assignment, chip_function, Strategy};
use gpp::core::{
    evaluate_assignment, extremes, heatmap, max_geomean_config, per_chip_outcomes, ranking,
};
use gpp::sim::opts::Optimization;

fn dataset() -> &'static Dataset {
    static DATASET: OnceLock<Dataset> = OnceLock::new();
    DATASET.get_or_init(|| run_study(&StudyConfig::default()))
}

fn stats() -> DatasetStats<'static> {
    DatasetStats::new(dataset())
}

#[test]
fn study_covers_the_full_grid() {
    let ds = dataset();
    assert_eq!(ds.apps.len(), 17);
    assert_eq!(ds.inputs.len(), 3);
    assert_eq!(ds.chips.len(), 6);
    assert_eq!(ds.cells.len(), 306);
    assert!(ds
        .cells
        .iter()
        .all(|c| c.times.len() == 96 && c.times.iter().all(|r| r.len() == 3)));
}

/// Paper Table IX: the per-chip optimisation function.
#[test]
fn chip_function_matches_paper_table9() {
    let stats = stats();
    let table = chip_function(&stats);
    let decision = |chip: &str, opt: Optimization| {
        table
            .iter()
            .find(|(c, _)| c == chip)
            .unwrap_or_else(|| panic!("chip {chip}"))
            .1
            .decision(opt)
            .decision
    };

    // coop-cv: only IRIS and R9 (Nvidia/HD5500 JITs already combine;
    // MALI has no subgroups).
    for chip in ["IRIS", "R9"] {
        assert_eq!(
            decision(chip, Optimization::CoopCv),
            Decision::Enable,
            "coop-cv on {chip}"
        );
    }
    for chip in ["M4000", "GTX1080", "HD5500", "MALI"] {
        assert_ne!(
            decision(chip, Optimization::CoopCv),
            Decision::Enable,
            "coop-cv on {chip}"
        );
    }

    // sg: enabled on every chip — including MALI, where it works through
    // divergence relief rather than load balancing (Section VIII-c).
    for chip in ["M4000", "GTX1080", "HD5500", "IRIS", "R9", "MALI"] {
        assert_eq!(
            decision(chip, Optimization::Sg),
            Decision::Enable,
            "sg on {chip}"
        );
    }

    // oitergb: enabled everywhere except Nvidia (launch overhead).
    for chip in ["HD5500", "IRIS", "R9", "MALI"] {
        assert_eq!(
            decision(chip, Optimization::Oitergb),
            Decision::Enable,
            "oitergb on {chip}"
        );
    }
    for chip in ["M4000", "GTX1080"] {
        assert_ne!(
            decision(chip, Optimization::Oitergb),
            Decision::Enable,
            "oitergb on {chip}"
        );
    }

    // fg8: a near-certain win on Nvidia and AMD, weaker on Intel, and
    // not recommended on MALI.
    for chip in ["M4000", "GTX1080", "R9"] {
        let d = table
            .iter()
            .find(|(c, _)| c == chip)
            .expect("chip")
            .1
            .decision(Optimization::Fg8);
        assert_eq!(d.decision, Decision::Enable, "fg8 on {chip}");
        assert!(
            d.effect_size > 0.85,
            "fg8 effect on {chip}: {}",
            d.effect_size
        );
    }
    for chip in ["HD5500", "IRIS"] {
        let d = table
            .iter()
            .find(|(c, _)| c == chip)
            .expect("chip")
            .1
            .decision(Optimization::Fg8);
        assert!(
            d.effect_size < 0.85,
            "fg8 effect on {chip}: {}",
            d.effect_size
        );
    }
    let mali_fg8 = table
        .iter()
        .find(|(c, _)| c == "MALI")
        .expect("chip")
        .1
        .decision(Optimization::Fg8);
    assert_ne!(mali_fg8.decision, Decision::Enable);
    assert!(
        (mali_fg8.effect_size - 0.47).abs() < 0.15,
        "MALI fg8 effect should hover near the paper's 0.47, got {}",
        mali_fg8.effect_size
    );

    // wg: low effect size on every chip, never recommended alone.
    for (chip, analysis) in &table {
        let d = analysis.decision(Optimization::Wg);
        assert_ne!(d.decision, Decision::Enable, "wg on {chip}");
        assert!(
            d.effect_size < 0.5,
            "wg effect on {chip}: {}",
            d.effect_size
        );
    }

    // M4000's oitergb is a near-tie (paper effect size 0.47).
    let m4000_oitergb = table
        .iter()
        .find(|(c, _)| c == "M4000")
        .expect("chip")
        .1
        .decision(Optimization::Oitergb);
    assert!(
        (0.3..0.5).contains(&m4000_oitergb.effect_size),
        "M4000 oitergb effect {}",
        m4000_oitergb.effect_size
    );
}

/// Paper Fig. 1: chip-specialised optima do not travel.
#[test]
fn heatmap_shows_chips_are_an_independent_dimension() {
    let stats = stats();
    let hm = heatmap(&stats);
    for i in 0..hm.chips.len() {
        assert!((hm.matrix[i][i] - 1.0).abs() < 1e-9, "diagonal {i}");
        // Every chip's optima cause real slowdowns somewhere else.
        assert!(
            hm.column_geomeans[i] > 1.05,
            "{} optima port too well: {}",
            hm.chips[i],
            hm.column_geomeans[i]
        );
    }
}

/// Paper Section II-C: "do no harm" degenerates to the baseline, and
/// the fewest-slowdowns pick buys little.
#[test]
fn do_no_harm_is_trivial_and_fewest_slowdowns_is_weak() {
    let stats = stats();
    let rows = ranking(&stats);
    assert_eq!(rows.len(), 95);
    // The best-ranked configuration barely moves the global geomean
    // compared to the oracle's headroom (paper: 1.01x vs 1.5x).
    let oracle = build_assignment(&stats, Strategy::Oracle);
    let headroom = evaluate_assignment(&stats, &oracle).geomean_speedup_vs_baseline;
    assert!(
        rows[0].geomean_speedup < 0.75 * headroom,
        "rank-0 geomean {} too close to oracle {headroom}",
        rows[0].geomean_speedup
    );
    // The bottom of the ranking is dominated by wg+sz256 combinations,
    // as in the paper's Table III.
    let bottom = &rows[rows.len() - 5..];
    assert!(
        bottom
            .iter()
            .filter(|r| r.config.wg || r.config.sz256)
            .count()
            >= 4,
        "bottom-5: {:?}",
        bottom
            .iter()
            .map(|r| r.config.to_string())
            .collect::<Vec<_>>()
    );
}

/// Paper Table IV: the max-geomean pick is biased against the chips that
/// are least sensitive to optimisation (Nvidia); the rank-based pick
/// avoids starving them.
#[test]
fn max_geomean_pick_is_biased_against_nvidia() {
    let stats = stats();
    let biased = max_geomean_config(&stats).config;
    let outcomes = per_chip_outcomes(&stats, biased);
    let gtx = outcomes.iter().find(|o| o.chip == "GTX1080").expect("chip");
    assert!(
        gtx.slowdowns > gtx.speedups,
        "GTX1080 under max-geomean pick: {} speedups, {} slowdowns",
        gtx.speedups,
        gtx.slowdowns
    );
    let others_min = outcomes
        .iter()
        .filter(|o| o.chip != "GTX1080" && o.chip != "M4000")
        .map(|o| o.speedups)
        .min()
        .expect("non-empty");
    assert!(
        others_min > gtx.speedups,
        "bias should spare sensitive chips"
    );
}

/// Paper Figs. 3 and 4: specialisation monotonically buys performance.
#[test]
fn specialisation_reduces_slowdowns_and_closes_on_the_oracle() {
    let stats = stats();
    let eval = |s: Strategy| {
        let a = build_assignment(&stats, s);
        evaluate_assignment(&stats, &a)
    };
    let baseline = eval(Strategy::Baseline);
    let global = eval(Strategy::Global);
    let oracle = eval(Strategy::Oracle);

    // The fully portable strategy already speeds up a solid majority of
    // improvable tests (paper: 62%).
    assert!(
        global.speedups * 2 > global.improvable,
        "global speedups {}",
        global.speedups
    );
    assert!(
        global.slowdowns * 4 < global.improvable,
        "global slowdowns {}",
        global.slowdowns
    );

    // Geomean distance to the oracle shrinks with specialisation.
    assert!(baseline.geomean_slowdown_vs_oracle > global.geomean_slowdown_vs_oracle);
    for two_dim in [Strategy::ChipApp, Strategy::ChipInput, Strategy::AppInput] {
        let e = eval(two_dim);
        assert!(
            e.geomean_slowdown_vs_oracle < baseline.geomean_slowdown_vs_oracle,
            "{two_dim}"
        );
    }
    // Oracle is the fixed point.
    assert!((oracle.geomean_slowdown_vs_oracle - 1.0).abs() < 1e-9);
    assert_eq!(oracle.slowdowns, 0);

    // Three-dimension analysis beats the portable strategy on slowdowns.
    let full = eval(Strategy::ChipAppInput);
    assert!(full.slowdowns < global.slowdowns.max(1));
}

/// Paper Table II / Section II-B: large speedups and slowdowns exist at
/// the extremes, and the cross-vendor envelope exceeds the Nvidia-only
/// one.
#[test]
fn extremes_exceed_the_nvidia_only_envelope() {
    let stats = stats();
    let ex = extremes(&stats);
    assert_eq!(ex.len(), 6);
    for e in &ex {
        assert!(e.max_speedup > 2.0, "{}: {}", e.chip, e.max_speedup);
        assert!(e.max_slowdown > 1.2, "{}: {}", e.chip, e.max_slowdown);
    }
    let nvidia_max = ex
        .iter()
        .filter(|e| e.chip.starts_with("M4") || e.chip.starts_with("GTX"))
        .map(|e| e.max_speedup)
        .fold(0.0, f64::max);
    let all_max = ex.iter().map(|e| e.max_speedup).fold(0.0, f64::max);
    assert!(
        all_max > nvidia_max,
        "cross-vendor envelope {all_max} should exceed Nvidia-only {nvidia_max}"
    );
}

/// Paper Section VII: chip is the strongest single dimension by geomean.
#[test]
fn chip_is_the_best_single_dimension() {
    let stats = stats();
    let gm = |s: Strategy| {
        let a = build_assignment(&stats, s);
        evaluate_assignment(&stats, &a).geomean_slowdown_vs_oracle
    };
    let chip = gm(Strategy::Chip);
    assert!(chip <= gm(Strategy::App) + 1e-9, "chip {chip} vs app");
}

/// The analysis is a statement about the environment, not about one
/// noise draw: rerunning the study with a different measurement-noise
/// seed leaves the chip function essentially unchanged.
#[test]
fn chip_function_is_stable_across_noise_seeds() {
    use gpp::core::strategy::chip_function as cf;
    let a = run_study(&StudyConfig {
        seed: 0x1111,
        ..StudyConfig::small()
    });
    let b = run_study(&StudyConfig {
        seed: 0x2222,
        ..StudyConfig::small()
    });
    let (sa, sb) = (DatasetStats::new(&a), DatasetStats::new(&b));
    let (fa, fb) = (cf(&sa), cf(&sb));
    let (mut agree, mut total) = (0usize, 0usize);
    for ((_, x), (_, y)) in fa.iter().zip(&fb) {
        for opt in Optimization::ALL {
            total += 1;
            if x.decision(opt).decision == y.decision(opt).decision {
                agree += 1;
            }
        }
    }
    assert!(
        agree * 10 >= total * 9,
        "chip function flipped under a new noise seed: {agree}/{total}"
    );
}

//! `GPP_IRGL_TIER` must select the DSL executor *without changing a
//! single byte of the study dataset*: the whole `--dsl` study run on the
//! AST walker, the bytecode VM, and the native closure tier must
//! serialize to identical JSON. This test mutates the process
//! environment, so it lives in its own integration-test binary (its own
//! process), as a single `#[test]` (no intra-process races), and must
//! not share a file with any other test that reads `GPP_IRGL_TIER` or
//! `GPP_IRGL_AST`.

use gpp::apps::{run_study, StudyConfig};
use gpp::irgl::Tier;

#[test]
fn every_tier_produces_a_byte_identical_dsl_study() {
    // --- Selection precedence -------------------------------------
    // GPP_IRGL_TIER wins over the legacy GPP_IRGL_AST switch.
    std::env::set_var("GPP_IRGL_AST", "1");
    std::env::set_var("GPP_IRGL_TIER", "bytecode");
    assert_eq!(Tier::from_env(), Tier::Bytecode);

    // Without GPP_IRGL_TIER, the legacy switch still forces the walker.
    std::env::remove_var("GPP_IRGL_TIER");
    assert_eq!(Tier::from_env(), Tier::Ast);

    // With neither set, the native tier is the default.
    std::env::remove_var("GPP_IRGL_AST");
    assert_eq!(Tier::from_env(), Tier::Native);

    // Unrecognized tiers fall back to the default rather than panicking
    // mid-study; parsing is case- and whitespace-insensitive.
    std::env::set_var("GPP_IRGL_TIER", "jit");
    assert_eq!(Tier::from_env(), Tier::Native);
    std::env::set_var("GPP_IRGL_TIER", " Bytecode ");
    assert_eq!(Tier::from_env(), Tier::Bytecode);
    std::env::set_var("GPP_IRGL_TIER", "AST");
    assert_eq!(Tier::from_env(), Tier::Ast);
    std::env::remove_var("GPP_IRGL_TIER");
    assert_eq!(Tier::parse("native"), Some(Tier::Native));
    assert_eq!(Tier::parse("threaded"), None);

    // --- Whole-study identity -------------------------------------
    let config = StudyConfig {
        dsl_programs: true,
        threads: 2,
        ..StudyConfig::tiny()
    };

    std::env::set_var("GPP_IRGL_TIER", "native");
    let native = run_study(&config);

    std::env::set_var("GPP_IRGL_TIER", "bytecode");
    let bytecode = run_study(&config);

    std::env::set_var("GPP_IRGL_TIER", "ast");
    let ast = run_study(&config);

    std::env::remove_var("GPP_IRGL_TIER");
    let default = run_study(&config);

    assert_eq!(native, bytecode, "native tier diverged from bytecode VM");
    assert_eq!(native, ast, "native tier diverged from AST oracle");
    assert_eq!(native, default, "default tier is not native");

    // Bit-level on every timing (to_bits is stricter than the f64
    // PartialEq above: it rejects -0.0 vs 0.0 and NaN payload drift).
    let bits = |ds: &gpp::apps::Dataset| -> Vec<u64> {
        ds.cells
            .iter()
            .flat_map(|c| c.times.iter().flatten().map(|v| v.to_bits()))
            .collect()
    };
    assert_eq!(bits(&native), bits(&bytecode));
    assert_eq!(bits(&native), bits(&ast));
    assert_eq!(bits(&native), bits(&default));

    // Byte-level too, not just structurally: the dataset on disk must
    // not depend on the executor.
    let native = serde_json::to_string(&native).unwrap();
    assert_eq!(native, serde_json::to_string(&bytecode).unwrap());
    assert_eq!(native, serde_json::to_string(&ast).unwrap());
    assert_eq!(native, serde_json::to_string(&default).unwrap());
}

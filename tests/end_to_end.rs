//! Cross-crate integration: every application computes correct results on
//! every study input, timing sessions agree with trace replay, and the
//! dataset pipeline is deterministic and serialisable.

use gpp::apps::app::validate;
use gpp::apps::apps::all_applications;
use gpp::apps::inputs::{study_inputs, StudyScale};
use gpp::apps::study::{run_study, Dataset, StudyConfig};
use gpp::sim::chip::study_chips;
use gpp::sim::exec::Machine;
use gpp::sim::opts::{all_configs, OptConfig};
use gpp::sim::trace::{CompiledTrace, Recorder};

#[test]
fn every_application_is_correct_on_every_study_input() {
    for input in study_inputs(StudyScale::Small, 99) {
        for app in all_applications() {
            let mut rec = Recorder::new();
            let out = app.run(&input.graph, &mut rec);
            validate(&input.graph, &out)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", app.name(), input.name));
            assert!(
                rec.into_trace().num_kernels() > 0,
                "{} recorded no kernels",
                app.name()
            );
        }
    }
}

#[test]
fn timed_sessions_agree_with_trace_replay() {
    let inputs = study_inputs(StudyScale::Tiny, 5);
    let graph = &inputs[1].graph; // social
    for app in all_applications().into_iter().take(6) {
        let mut rec = Recorder::new();
        app.run(graph, &mut rec);
        let compiled = CompiledTrace::new(rec.into_trace());
        for chip in study_chips() {
            let machine = Machine::new(chip);
            for idx in [0usize, 33, 95] {
                let cfg = OptConfig::from_index(idx);
                let mut session = machine.session(cfg);
                app.run(graph, &mut session);
                let live = session.finish();
                let replayed = compiled.replay(&machine, cfg);
                assert_eq!(
                    live,
                    replayed,
                    "{} on {} cfg {cfg}",
                    app.name(),
                    machine.chip().name
                );
            }
        }
    }
}

#[test]
fn application_results_do_not_depend_on_the_executor() {
    let inputs = study_inputs(StudyScale::Tiny, 5);
    let machine = Machine::new(study_chips().remove(4)); // R9
    for input in &inputs {
        for app in all_applications() {
            let mut rec = Recorder::new();
            let out_recorded = app.run(&input.graph, &mut rec);
            let mut session = machine.session(OptConfig::baseline());
            let out_timed = app.run(&input.graph, &mut session);
            assert_eq!(out_recorded, out_timed, "{} on {}", app.name(), input.name);
        }
    }
}

#[test]
fn study_dataset_round_trips_and_is_deterministic() {
    let cfg = StudyConfig::tiny();
    let a = run_study(&cfg);
    let b = run_study(&cfg);
    assert_eq!(a, b, "study must be a pure function of its configuration");

    let dir = std::env::temp_dir().join(format!("gpp-e2e-{}", std::process::id()));
    let path = dir.join("ds.json");
    a.save_json(&path).expect("save");
    let back = Dataset::load_json(&path).expect("load");
    assert_eq!(a, back);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_study_is_byte_identical_to_serial_at_small_scale() {
    let serial = run_study(&StudyConfig {
        threads: 1,
        ..StudyConfig::small()
    });
    let parallel = run_study(&StudyConfig {
        threads: 0, // auto: all available cores
        ..StudyConfig::small()
    });
    assert_eq!(
        serde_json::to_string(&serial).expect("serialise"),
        serde_json::to_string(&parallel).expect("serialise"),
        "parallel study must be byte-identical to the serial one"
    );
}

#[test]
fn batched_replay_matches_individual_replays_on_an_application_trace() {
    let inputs = study_inputs(StudyScale::Tiny, 5);
    let graph = &inputs[0].graph; // road
    let apps = all_applications();
    let app = &apps[0];
    let mut rec = Recorder::new();
    app.run(graph, &mut rec);
    let compiled = CompiledTrace::new(rec.into_trace());
    for chip in study_chips() {
        let machine = Machine::new(chip);
        let batched = compiled.replay_all_configs(&machine);
        for cfg in all_configs() {
            assert_eq!(
                batched[cfg.index()],
                compiled.replay(&machine, cfg),
                "{} cfg {cfg}",
                machine.chip().name
            );
        }
    }
}

#[test]
fn every_configuration_prices_every_cell_positively() {
    let ds = run_study(&StudyConfig::tiny());
    assert_eq!(all_configs().len(), 96);
    for cell in &ds.cells {
        for (idx, runs) in cell.times.iter().enumerate() {
            for &t in runs {
                assert!(
                    t.is_finite() && t > 0.0,
                    "{}/{}/{} config {idx}: {t}",
                    cell.app,
                    cell.input,
                    cell.chip
                );
            }
        }
    }
}

//! Byte-identity and structural invariants of the metrics &
//! self-profiling substrate: a fully instrumented study run — global
//! metrics registry recording, phase profiler buffering every span —
//! must produce a dataset identical to an uninstrumented run, the
//! per-thread histogram shards must merge exactly into the
//! single-stream reference, and the reconstructed phase tree must tile
//! the run: the root's wall time within 5% of the sum of its top-level
//! phases. CI runs this file in release mode, where any
//! instrumentation feedback would actually show.

use std::sync::Mutex;

use gpp::apps::study::{run_study, run_study_cached, StudyConfig};
use gpp::obs::metrics;
use gpp::obs::{Histogram, PhaseProfiler};
use gpp::sim::chip::study_chips;
use proptest::prelude::*;

/// Serialises the tests that flip the process-wide registry, so one
/// test's reset/disable can't race another's assertions. Poison is
/// ignored: a failed test should not cascade into the others.
static GLOBAL_METRICS: Mutex<()> = Mutex::new(());

fn tiny_at(threads: usize) -> StudyConfig {
    StudyConfig {
        threads,
        ..StudyConfig::tiny()
    }
}

#[test]
fn fully_instrumented_study_is_byte_identical_to_plain() {
    let _guard = GLOBAL_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let plain = serde_json::to_string(&run_study(&tiny_at(4))).unwrap();

    // Everything on at once: global metrics registry plus a phase
    // profiler buffering every span and counter, at four workers.
    metrics::global().reset();
    metrics::set_enabled(true);
    let profiler = PhaseProfiler::new();
    let tracer = profiler.tracer();
    let instrumented = run_study_cached(&tiny_at(4), &study_chips(), &tracer, None);
    let snapshot = metrics::global().snapshot();
    metrics::set_enabled(false);
    let report = profiler.finish();

    assert_eq!(
        plain,
        serde_json::to_string(&instrumented).unwrap(),
        "instrumentation must not perturb the dataset"
    );
    // The registry saw the whole run: one count per priced cell, one
    // histogram observation per pricing, every trace compiled.
    let cells = instrumented.cells.len() as u64;
    assert_eq!(
        snapshot.counters.get("study.cells_priced").copied(),
        Some(cells)
    );
    assert_eq!(
        snapshot.counters.get("study.traces_compiled").copied(),
        Some(17 * 3)
    );
    let hist = snapshot
        .histograms
        .get("study.cell_price_ns")
        .expect("cell pricing histogram");
    assert_eq!(hist.count, cells);
    assert!(hist.min <= hist.p50 && hist.p50 <= hist.p99 && hist.p99 <= hist.max);
    // And the profiler saw the same run from the span side.
    assert_eq!(report.summary.cells_priced, cells as f64);
    assert!(report.peak_rss_bytes.is_some());
}

#[test]
fn phase_tree_root_wall_is_within_5_percent_of_top_level_phases() {
    let _guard = GLOBAL_METRICS
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let profiler = PhaseProfiler::new();
    let tracer = profiler.tracer();
    run_study_cached(&tiny_at(4), &study_chips(), &tracer, None);
    let report = profiler.finish();
    let root = report
        .roots
        .iter()
        .find(|r| r.name == "study")
        .expect("study root span");
    for phase in ["generate-inputs", "collect-traces", "price-cells", "finalize"] {
        assert!(
            root.children.iter().any(|c| c.name == phase),
            "missing top-level phase {phase}"
        );
    }
    let covered = root.children_wall_ns() / root.wall_ns;
    assert!(
        (0.95..=1.05).contains(&covered),
        "top-level phases cover {covered:.3} of the study span \
         ({:.1} of {:.1} ms) — a stage is running uninstrumented",
        root.children_wall_ns() / 1e6,
        root.wall_ns / 1e6
    );
}

proptest! {
    /// Merging per-thread shards is exact: any partition of an
    /// observation stream over eight shards merges into precisely the
    /// histogram of the whole stream. Integer-valued observations keep
    /// the `sum` fold order-independent, so the full snapshot —
    /// buckets, count, sum, extrema, quantiles — compares equal.
    #[test]
    fn histogram_shard_merge_matches_single_stream(
        observed in prop::collection::vec((0u8..8, 0u32..u32::MAX), 0..500)
    ) {
        let mut reference = Histogram::new();
        let mut shards = vec![Histogram::new(); 8];
        for &(shard, value) in &observed {
            reference.observe(f64::from(value));
            shards[usize::from(shard)].observe(f64::from(value));
        }
        let mut merged = Histogram::new();
        for shard in &shards {
            merged.merge(shard);
        }
        prop_assert_eq!(merged.snapshot(), reference.snapshot());
    }

    /// Merge order doesn't matter either: folding the shards in
    /// reverse produces the same snapshot.
    #[test]
    fn histogram_merge_is_order_independent(
        observed in prop::collection::vec((0u8..8, 0u32..u32::MAX), 0..500)
    ) {
        let mut shards = vec![Histogram::new(); 8];
        for &(shard, value) in &observed {
            shards[usize::from(shard)].observe(f64::from(value));
        }
        let mut forward = Histogram::new();
        for shard in &shards {
            forward.merge(shard);
        }
        let mut reverse = Histogram::new();
        for shard in shards.iter().rev() {
            reverse.merge(shard);
        }
        prop_assert_eq!(forward.snapshot(), reverse.snapshot());
    }
}

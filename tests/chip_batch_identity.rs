//! Bit-identity of chip-major batched pricing: for any batch of valid
//! chips — latin-hypercube samples, study chips, interpolated blends,
//! duplicates, singletons — `replay_all_configs_many_chips` must
//! reproduce the chip-at-a-time `replay_all_configs` exactly, down to
//! the last bit of every `f64` and every overhead counter. This is the
//! invariant that lets `gpp sweep` price thousands of chips in one
//! traversal per geometry while keeping the original path as its
//! oracle. CI runs this binary in release mode as well: the identity
//! must hold at every optimisation level.

use proptest::prelude::*;

use gpp::sim::chip::{latin_hypercube_chips, study_chips, ChipBatch, ChipProfile};
use gpp::sim::exec::{Executor, KernelProfile, Machine, WorkItem};
use gpp::sim::opts::NUM_CONFIGS;
use gpp::sim::trace::{CompiledTrace, Recorder, Trace};

/// A synthetic trace exercising every pricing path: skewed and uniform
/// frontiers, worklist pushes, an irregular and a regular kernel, and
/// an empty frontier.
fn mixed_trace(calls: u32, items_per_call: usize) -> Trace {
    let mut rec = Recorder::new();
    let frontier = KernelProfile::frontier("bfs");
    let mut filter = KernelProfile::frontier("filter");
    filter.irregular = false;
    for iter in 0..calls {
        let items: Vec<WorkItem> = (0..items_per_call)
            .map(|i| {
                let degree = match i % 7 {
                    0 => 1 + (i as u32 * (iter + 1)) % 2_000, // occasional hub
                    _ => 1 + (i as u32 + iter) % 37,
                };
                WorkItem::new(degree, (i % 3 == 0) as u32)
            })
            .collect();
        rec.kernel(&frontier, &items);
        if iter % 2 == 0 {
            rec.kernel(&filter, &items);
        }
        if iter % 4 == 1 {
            rec.kernel(&frontier, &[]); // empty frontier
        }
    }
    rec.into_trace()
}

/// Asserts batched replay of `chips` is bit-identical to the per-chip
/// oracle on `trace`.
fn assert_batch_matches_oracle(trace: &Trace, chips: &[ChipProfile]) {
    let compiled = CompiledTrace::new(trace.clone());
    for batch in ChipBatch::partition(chips) {
        let many = compiled.replay_all_configs_many_chips(&batch);
        assert_eq!(many.len(), batch.len());
        for (chip, stats) in batch.chips().iter().zip(&many) {
            let oracle = compiled.replay_all_configs(&Machine::new(chip.clone()));
            assert_eq!(stats.len(), NUM_CONFIGS);
            for (idx, (m, s)) in stats.iter().zip(&oracle).enumerate() {
                assert_eq!(
                    m.time_ns.to_bits(),
                    s.time_ns.to_bits(),
                    "{} config {idx}: batched {} vs oracle {}",
                    chip.name,
                    m.time_ns,
                    s.time_ns
                );
                assert_eq!(m.kernels, s.kernels, "{} config {idx}", chip.name);
                assert_eq!(m.launches, s.launches, "{} config {idx}", chip.name);
                assert_eq!(
                    m.global_barriers, s.global_barriers,
                    "{} config {idx}",
                    chip.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random latin-hypercube clouds (random size and seed), with a
    /// duplicated chip appended, against random trace shapes.
    #[test]
    fn batched_pricing_matches_oracle_on_random_clouds(
        n in 2usize..24,
        seed in 0u64..1_000,
        calls in 1u32..6,
        items in 1usize..400,
    ) {
        let mut chips = latin_hypercube_chips(n, seed);
        chips.push(chips[n / 2].clone()); // duplicate chip in some batch
        assert_batch_matches_oracle(&mixed_trace(calls, items), &chips);
    }

    /// Single-chip batches are the degenerate case: every chip alone.
    #[test]
    fn single_chip_batches_match_oracle(seed in 0u64..1_000) {
        let chips = latin_hypercube_chips(3, seed);
        let trace = mixed_trace(2, 120);
        for chip in &chips {
            assert_batch_matches_oracle(&trace, std::slice::from_ref(chip));
        }
    }
}

#[test]
fn batched_pricing_matches_oracle_on_study_chips_and_blends() {
    // The six paper chips, a duplicate, and interpolated blends —
    // including endpoints t=0 and t=1 — across geometry families.
    let mut chips = study_chips();
    chips.push(ChipProfile::m4000());
    for (t, name) in [(0.0, "A"), (0.35, "B"), (1.0, "C")] {
        let mut blend = ChipProfile::interpolate(&chips[2], &chips[3], t);
        blend.name = format!("BLEND-{name}");
        chips.push(blend);
    }
    assert_batch_matches_oracle(&mixed_trace(5, 300), &chips);
}

//! Byte-identity of the compact trace substrate: the single-pass
//! multi-geometry aggregation builder, the arena-backed batch replay,
//! and the persistent trace cache must each reproduce the simple
//! reference paths exactly — same integer aggregates, same f64 bits in
//! every priced number. These are the invariants that let the study
//! share one arena pass across six chips and skip warm-run collection
//! without changing a single reported time.

use gpp::apps::inputs::{study_inputs, StudyScale};
use gpp::apps::study::{run_study, run_study_cached, StudyConfig};
use gpp::apps::{all_applications, TraceCache};
use gpp::graph::generators;
use gpp::obs::{MemorySink, TraceEvent, Tracer};
use gpp::sim::chip::study_chips;
use gpp::sim::exec::{CallAggregates, Machine, WorkItem};
use gpp::sim::opts::{all_configs, NUM_CONFIGS};
use gpp::sim::trace::{geometry_groups, CompiledTrace, Recorder};
use proptest::prelude::*;

/// The (workgroup, subgroup) geometries the six study chips actually
/// price, plus degenerate shapes (scalar chips, tiny workgroups).
fn study_geometries() -> Vec<(u32, u32)> {
    let mut geometries: Vec<(u32, u32)> = study_chips()
        .iter()
        .flat_map(|chip| {
            geometry_groups(chip)
                .iter()
                .map(|(wg, _)| (*wg, chip.subgroup_size))
                .collect::<Vec<_>>()
        })
        .collect();
    geometries.extend([(1, 1), (2, 1), (7, 3), (256, 256)]);
    geometries
}

proptest! {
    /// The single-pass builder is item-for-item identical to running
    /// the per-geometry reference builder once per geometry.
    #[test]
    fn single_pass_aggregation_matches_reference(
        raw in prop::collection::vec((0u32..2048, 0u32..16), 0..600)
    ) {
        let items: Vec<WorkItem> =
            raw.iter().map(|&(d, p)| WorkItem::new(d, p)).collect();
        let geometries = study_geometries();
        let multi = CallAggregates::from_items_multi(&items, &geometries);
        prop_assert_eq!(multi.len(), geometries.len());
        for (agg, &(wg, sg)) in multi.iter().zip(&geometries) {
            prop_assert_eq!(agg, &CallAggregates::from_items(&items, wg, sg));
        }
    }
}

#[test]
fn batch_replay_matches_individual_replays_and_live_sessions() {
    // One real recorded trace, replayed on every study chip: the batch
    // path (one arena pass per geometry group) must equal both the
    // individual replay path and a live session run of the app.
    let graph = generators::rmat(8, 6, 7).unwrap();
    let app = gpp::apps::application("bfs-wl").unwrap();
    let mut rec = Recorder::new();
    app.run(&graph, &mut rec);
    let compiled = CompiledTrace::new(rec.into_trace());

    for chip in study_chips() {
        let machine = Machine::new(chip.clone());
        let batch = compiled.replay_all_configs(&machine);
        assert_eq!(batch.len(), NUM_CONFIGS, "{}", chip.name);
        for (config, stats) in all_configs().into_iter().zip(&batch) {
            let single = compiled.replay(&machine, config);
            assert_eq!(
                &single, stats,
                "batch vs single replay: {} {config:?}",
                chip.name
            );
            assert_eq!(
                single.time_ns.to_bits(),
                stats.time_ns.to_bits(),
                "batch vs single replay bits: {} {config:?}",
                chip.name
            );
            let mut session = machine.session(config);
            app.run(&graph, &mut session);
            assert_eq!(
                &session.finish(),
                stats,
                "batch replay vs live session: {} {config:?}",
                chip.name
            );
        }
    }
}

#[test]
fn cache_round_trip_is_byte_identical_for_every_app() {
    let dir = std::env::temp_dir().join(format!(
        "gpp-trace-identity-cache-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cache = TraceCache::new(&dir).unwrap();
    let scale = StudyScale::Tiny;
    let seed = 42;
    let inputs = study_inputs(scale, seed);
    for app in all_applications() {
        for input in &inputs {
            let mut rec = Recorder::new();
            app.run(&input.graph, &mut rec);
            let trace = rec.into_trace();
            assert!(cache.store(app.name(), app.content_version(), input, scale, seed, &trace));
            let loaded = cache
                .load(app.name(), app.content_version(), input, scale, seed)
                .unwrap_or_else(|| panic!("{} on {} missing", app.name(), input.name));
            assert_eq!(trace, loaded, "{} on {}", app.name(), input.name);
            assert_eq!(
                serde_json::to_string(&trace).unwrap(),
                serde_json::to_string(&loaded).unwrap(),
                "{} on {}",
                app.name(),
                input.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn counter_total(events: &[TraceEvent], name: &str) -> f64 {
    events
        .iter()
        .filter(|e| e.name == name)
        .filter_map(|e| e.value)
        .sum()
}

#[test]
fn warm_cached_study_is_byte_identical_at_one_and_four_threads() {
    let dir = std::env::temp_dir().join(format!(
        "gpp-trace-identity-study-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    let cache = TraceCache::new(&dir).unwrap();
    let chips = study_chips();
    let baseline = serde_json::to_string(&run_study(&StudyConfig::tiny())).unwrap();

    // Cold run fills the cache; it must not perturb the dataset.
    let cold = run_study_cached(
        &StudyConfig::tiny(),
        &chips,
        &Tracer::disabled(),
        Some(&cache),
    );
    assert_eq!(baseline, serde_json::to_string(&cold).unwrap());

    // Warm runs skip collection entirely at any thread count and still
    // reproduce the dataset byte for byte.
    for threads in [1, 4] {
        let sink = std::sync::Arc::new(MemorySink::new());
        let warm = run_study_cached(
            &StudyConfig {
                threads,
                ..StudyConfig::tiny()
            },
            &chips,
            &Tracer::new(sink.clone()),
            Some(&cache),
        );
        let events = sink.take();
        assert_eq!(
            counter_total(&events, "trace-cache-hits"),
            (17 * 3) as f64,
            "@ {threads} threads"
        );
        assert_eq!(counter_total(&events, "traces-compiled"), 0.0, "@ {threads} threads");
        assert_eq!(
            baseline,
            serde_json::to_string(&warm).unwrap(),
            "@ {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

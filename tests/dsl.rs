//! Integration of the DSL compiler with the rest of the stack: programs
//! written in the IR must compute correct results on the study inputs and
//! respond to the optimisations the same way the handwritten suite does.

use gpp::apps::app::Application;
use gpp::apps::apps::bfs::BfsWl;
use gpp::apps::inputs::{study_inputs, StudyScale};
use gpp::graph::properties;
use gpp::irgl::{codegen, interp, programs, transform};
use gpp::sim::chip::ChipProfile;
use gpp::sim::exec::Machine;
use gpp::sim::opts::{all_configs, OptConfig, Optimization};
use gpp::sim::trace::Recorder;

#[test]
fn dsl_programs_are_correct_on_study_inputs() {
    for input in study_inputs(StudyScale::Tiny, 21) {
        let g = &input.graph;
        for program in programs::all() {
            let mut rec = Recorder::new();
            let result = interp::execute(&program, g, &mut rec)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", program.name, input.name));
            match program.name.as_str() {
                "bfs_tp" | "bfs_wl" => {
                    let expect = properties::bfs_levels(g, 0);
                    for (got, want) in result.output(&program).iter().zip(&expect) {
                        let want = if *want == u32::MAX {
                            f64::INFINITY
                        } else {
                            *want as f64
                        };
                        assert_eq!(*got, want, "{} on {}", program.name, input.name);
                    }
                }
                "sssp_bf" | "sssp_wl" => {
                    let expect = properties::dijkstra(g, 0);
                    for (got, want) in result.output(&program).iter().zip(&expect) {
                        let want = if *want == u64::MAX {
                            f64::INFINITY
                        } else {
                            *want as f64
                        };
                        assert_eq!(*got, want, "{} on {}", program.name, input.name);
                    }
                }
                "cc_lp" => {
                    let expect = properties::connected_components(g).labels;
                    for (got, want) in result.output(&program).iter().zip(&expect) {
                        assert_eq!(*got, *want as f64, "{} on {}", program.name, input.name);
                    }
                }
                _ => {} // pr_pull / mis_luby checked in the crate's own tests
            }
        }
    }
}

#[test]
fn dsl_bfs_matches_handwritten_bfs_kernel_structure() {
    let input = &study_inputs(StudyScale::Tiny, 4)[1]; // social
    let mut rec_dsl = Recorder::new();
    interp::execute(&programs::bfs_worklist(), &input.graph, &mut rec_dsl).expect("runs");
    let mut rec_hand = Recorder::new();
    BfsWl.run(&input.graph, &mut rec_hand);
    let dsl = rec_dsl.into_trace();
    let hand = rec_hand.into_trace();
    // Same frontier loop: identical launch counts and item totals.
    assert_eq!(dsl.num_kernels(), hand.num_kernels());
    assert_eq!(dsl.num_items(), hand.num_items());
}

#[test]
fn dsl_programs_respond_to_optimisations_like_the_handwritten_suite() {
    let road = &study_inputs(StudyScale::Small, 9)[0];
    let mali = Machine::new(ChipProfile::mali());
    let time = |cfg: OptConfig| {
        let mut session = mali.session(cfg);
        interp::execute(&programs::bfs_worklist(), &road.graph, &mut session).expect("runs");
        session.finish().time_ns
    };
    // oitergb must pay off for a launch-bound road BFS on MALI.
    let base = time(OptConfig::baseline());
    let outlined = time(OptConfig::baseline().with(Optimization::Oitergb));
    assert!(outlined < base, "oitergb {outlined} vs baseline {base}");

    // coop-cv must pay off on R9's social worklists.
    let social = &study_inputs(StudyScale::Small, 9)[1];
    let r9 = Machine::new(ChipProfile::r9());
    let time_r9 = |cfg: OptConfig| {
        let mut session = r9.session(cfg);
        interp::execute(&programs::bfs_worklist(), &social.graph, &mut session).expect("runs");
        session.finish().time_ns
    };
    let base = time_r9(OptConfig::baseline());
    let combined = time_r9(OptConfig::baseline().with(Optimization::CoopCv));
    assert!(combined < base, "coop-cv {combined} vs baseline {base}");
}

#[test]
fn codegen_round_trips_every_program_and_config_class() {
    for program in programs::all() {
        for cfg in all_configs().into_iter().step_by(11) {
            let plan = transform::plan(&program, cfg).expect("valid program");
            let text = codegen::opencl(&program, &plan).expect("codegen");
            assert!(text.contains(&format!("// program: {}", program.name)));
            for kernel in &program.kernels {
                assert!(
                    text.contains(&format!("__kernel void {}(", kernel.name)),
                    "{} missing kernel {} under {cfg}",
                    program.name,
                    kernel.name
                );
            }
        }
    }
}

#[test]
fn dsl_execution_is_deterministic_across_executors() {
    let input = &study_inputs(StudyScale::Tiny, 13)[2];
    let machine = Machine::new(ChipProfile::hd5500());
    for program in programs::all() {
        let mut rec = Recorder::new();
        let a = interp::execute(&program, &input.graph, &mut rec).expect("runs");
        let mut session = machine.session(OptConfig::from_index(42));
        let b = interp::execute(&program, &input.graph, &mut session).expect("runs");
        assert_eq!(a.fields, b.fields, "{}", program.name);
        assert_eq!(a.iterations, b.iterations, "{}", program.name);
    }
}

//! Property-based tests spanning the workspace: graph invariants,
//! application correctness on arbitrary graphs, cost-model sanity, and
//! statistical invariances.

use gpp::apps::app::validate;
use gpp::apps::apps::all_applications;
use gpp::core::stats::{geomean, mann_whitney_u, median};
use gpp::graph::{properties, GraphBuilder, NodeId};
use gpp::sim::chip::study_chips;
use gpp::sim::exec::{CallAggregates, KernelProfile, Machine, Session, WorkItem};
use gpp::sim::opts::OptConfig;
use proptest::prelude::*;

/// An arbitrary undirected weighted graph as (node count, edge list).
fn arb_graph() -> impl Strategy<Value = (usize, Vec<(NodeId, NodeId, u32)>)> {
    (2usize..60).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0..n as NodeId, 0..n as NodeId, 1u32..50), 0..(n * 3));
        (Just(n), edges)
    })
}

fn build(n: usize, edges: &[(NodeId, NodeId, u32)]) -> gpp::graph::Graph {
    let mut b = GraphBuilder::new(n);
    b.undirected();
    for &(u, v, w) in edges {
        b.weighted_edge(u, v, w);
    }
    b.build().expect("in-bounds edges")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// CSR invariants hold for any edge list.
    #[test]
    fn csr_invariants((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        prop_assert_eq!(g.num_nodes(), n);
        let mut total = 0;
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            total += nbrs.len();
            // Sorted, deduplicated, in-bounds, no self loops.
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(nbrs.iter().all(|&v| (v as usize) < n && v != u));
            // Undirected symmetry with equal weights.
            for (v, w) in g.out_edges(u) {
                prop_assert_eq!(g.edge_weight(v, u), Some(w));
            }
        }
        prop_assert_eq!(total, g.num_edges());
    }

    /// BFS levels form a valid distance labelling.
    #[test]
    fn bfs_levels_are_consistent((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let levels = properties::bfs_levels(&g, 0);
        prop_assert_eq!(levels[0], 0);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                let (lu, lv) = (levels[u as usize], levels[v as usize]);
                // Neighbours differ by at most one level, and
                // reachability is symmetric along edges.
                prop_assert_eq!(lu == u32::MAX, lv == u32::MAX);
                if lu != u32::MAX {
                    prop_assert!(lu.abs_diff(lv) <= 1, "levels {lu} and {lv} adjacent");
                }
            }
        }
    }

    /// Dijkstra distances satisfy the triangle inequality along edges and
    /// lower-bound BFS levels (hop counts) times the min weight.
    #[test]
    fn dijkstra_relaxed_everywhere((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        let dist = properties::dijkstra(&g, 0);
        prop_assert_eq!(dist[0], 0);
        for u in g.nodes() {
            if dist[u as usize] == u64::MAX {
                continue;
            }
            for (v, w) in g.out_edges(u) {
                prop_assert!(dist[v as usize] <= dist[u as usize] + w as u64);
            }
        }
    }

    /// Every application validates against its reference on arbitrary
    /// undirected graphs.
    #[test]
    fn applications_are_correct_on_arbitrary_graphs((n, edges) in arb_graph()) {
        let g = build(n, &edges);
        for app in all_applications() {
            let mut rec = gpp::sim::trace::Recorder::new();
            let out = app.run(&g, &mut rec);
            if let Err(e) = validate(&g, &out) {
                return Err(TestCaseError::fail(format!("{}: {e}", app.name())));
            }
        }
    }

    /// The cost model never produces non-positive or non-finite times,
    /// for any chip, any configuration, and any frontier.
    #[test]
    fn cost_model_is_total(
        items in proptest::collection::vec((0u32..5_000, 0u32..8), 0..600),
        cfg_idx in 0usize..96,
        chip_idx in 0usize..6,
    ) {
        let items: Vec<WorkItem> =
            items.into_iter().map(|(d, p)| WorkItem::new(d, p)).collect();
        let chip = study_chips().remove(chip_idx);
        let machine = Machine::new(chip);
        let mut session = machine.session(OptConfig::from_index(cfg_idx));
        let t = Session::kernel(&mut session, &KernelProfile::frontier("prop"), &items);
        prop_assert!(t.is_finite() && t > 0.0);
    }

    /// Aggregation partitions items exactly: class counts and edges sum
    /// to the input totals for any geometry.
    #[test]
    fn aggregation_is_a_partition(
        items in proptest::collection::vec((0u32..10_000, 0u32..4), 1..800),
        ws in prop_oneof![Just(128u32), Just(256u32)],
        sg in prop_oneof![Just(1u32), Just(16u32), Just(32u32), Just(64u32)],
    ) {
        let items: Vec<WorkItem> =
            items.into_iter().map(|(d, p)| WorkItem::new(d, p)).collect();
        let aggs = CallAggregates::from_items(&items, ws, sg);
        let count: u32 = aggs
            .workgroups
            .iter()
            .map(|w| w.big.count + w.mid.count + w.small.count)
            .sum();
        let edges: u64 =
            aggs.workgroups.iter().map(|w| w.big.edges + w.mid.edges + w.small.edges).sum();
        prop_assert_eq!(count as usize, items.len());
        prop_assert_eq!(edges, items.iter().map(|i| i.degree as u64).sum::<u64>());
        prop_assert_eq!(aggs.pushes, items.iter().map(|i| i.pushes as u64).sum::<u64>());
        // Class boundaries are respected.
        for w in &aggs.workgroups {
            prop_assert!(w.big.count == 0 || w.big.max_degree >= ws);
            prop_assert!(w.mid.max_degree < ws);
            prop_assert!(sg == 1 || w.small.max_degree < sg);
        }
    }

    /// MWU invariances: scale-free in magnitudes, antisymmetric effect
    /// size, and p-values in [0, 1].
    #[test]
    fn mwu_invariances(
        a in proptest::collection::vec(0.01f64..10.0, 3..40),
        b in proptest::collection::vec(0.01f64..10.0, 3..40),
        scale in 1.0f64..1000.0,
    ) {
        let r1 = mann_whitney_u(&a, &b).expect("non-empty");
        prop_assert!((0.0..=1.0).contains(&r1.p_value));
        prop_assert!((0.0..=1.0).contains(&r1.effect_size));
        // Order-preserving transformations leave the ranks unchanged.
        let a2: Vec<f64> = a.iter().map(|x| x * scale).collect();
        let b2: Vec<f64> = b.iter().map(|x| x * scale).collect();
        let r2 = mann_whitney_u(&a2, &b2).expect("non-empty");
        prop_assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        prop_assert!((r1.effect_size - r2.effect_size).abs() < 1e-9);
        // Swapping the samples mirrors the effect size.
        let r3 = mann_whitney_u(&b, &a).expect("non-empty");
        prop_assert!((r1.effect_size + r3.effect_size - 1.0).abs() < 1e-9);
    }

    /// Median and geomean bounds.
    #[test]
    fn summary_statistics_bounds(values in proptest::collection::vec(0.001f64..100.0, 1..50)) {
        let m = median(&values);
        prop_assert!(values.contains(&m));
        let g = geomean(&values);
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(g >= min * 0.999 && g <= max * 1.001);
    }
}

//! The portfolio engine's three load-bearing invariants, end to end:
//! the dense [`SlowdownMatrix`] is bit-identical to per-cell
//! `DatasetStats` lookups, the branch-and-bound exact search matches
//! brute-force enumeration for every small k, and the full
//! portability-cost curve — values, configurations, and search
//! counters — serialises byte-identically at any thread count.
//!
//! [`SlowdownMatrix`]: gpp::core::portfolio::SlowdownMatrix

use std::sync::{Arc, OnceLock};

use gpp::apps::study::{run_study, StudyConfig};
use gpp::core::analysis::DatasetStats;
use gpp::core::portfolio::{
    exact_search, score_portfolio_naive, search_curve, search_curve_over, Objective, SearchParams,
    SlowdownMatrix,
};
use gpp::sim::opts::{OptConfig, NUM_CONFIGS};
use proptest::prelude::*;

fn tiny() -> &'static gpp::apps::study::Dataset {
    static DS: OnceLock<gpp::apps::study::Dataset> = OnceLock::new();
    DS.get_or_init(|| run_study(&StudyConfig::tiny()))
}

fn tiny_matrix() -> Arc<SlowdownMatrix> {
    static MX: OnceLock<Arc<SlowdownMatrix>> = OnceLock::new();
    Arc::clone(MX.get_or_init(|| {
        let stats = DatasetStats::new(tiny());
        Arc::new(SlowdownMatrix::from_stats(&stats))
    }))
}

#[test]
fn matrix_is_bit_identical_to_dataset_stats_lookups() {
    let ds = tiny();
    let stats = DatasetStats::new(ds);
    let matrix = tiny_matrix();
    assert_eq!(matrix.num_cells(), stats.num_cells());
    for cell in 0..stats.num_cells() {
        for cfg in 0..NUM_CONFIGS {
            let direct = stats.slowdown_vs_oracle(cell, OptConfig::from_index(cfg));
            assert_eq!(
                matrix.ratio(cfg, cell).to_bits(),
                direct.to_bits(),
                "cell {cell} cfg {cfg}"
            );
        }
    }
}

#[test]
fn matrix_scorer_matches_the_naive_oracle_on_every_singleton() {
    let ds = tiny();
    let stats = DatasetStats::new(ds);
    let matrix = tiny_matrix();
    let mut scorer = gpp::core::portfolio::PortfolioScorer::new(&matrix);
    for objective in [Objective::Geomean, Objective::Worst] {
        for cfg in 0..NUM_CONFIGS {
            let fast = scorer.score(&[cfg], objective);
            let slow = score_portfolio_naive(&stats, &[cfg], objective);
            assert_eq!(fast.to_bits(), slow.to_bits(), "cfg {cfg}");
        }
    }
}

#[test]
fn full_curve_serialises_byte_identically_at_any_thread_count() {
    let matrix = tiny_matrix();
    let params = SearchParams {
        objective: Objective::Geomean,
        k_max: 6,
        exact_k_max: 2,
        beam_width: 16,
        threads: 1,
    };
    let serial = search_curve(&matrix, &params);
    let json = serde_json::to_string(&serial).expect("serialise curve");
    for threads in [2, 4, 8] {
        let par = search_curve(
            &matrix,
            &SearchParams {
                threads,
                ..params
            },
        );
        assert_eq!(serial, par, "threads={threads}");
        assert_eq!(
            json,
            serde_json::to_string(&par).unwrap(),
            "curve bytes @ {threads} threads"
        );
    }
}

/// Every k-subset of `allowed` (by position), lexicographic order.
fn k_subsets(m: usize, k: usize) -> Vec<Vec<usize>> {
    if k == 0 {
        return vec![Vec::new()];
    }
    let mut out = Vec::new();
    for first in 0..m {
        for mut tail in k_subsets(m, k - 1) {
            if tail.iter().all(|&p| p > first) {
                let mut set = vec![first];
                set.append(&mut tail);
                out.push(set);
            }
        }
    }
    out
}

/// Deterministic counterpart of the brute-force property below: fixed
/// subsampled grids, every k <= 3, both objectives, several thread
/// counts. Runs even where proptest is unavailable.
#[test]
fn exact_search_matches_brute_force_on_fixed_grids() {
    let matrix = tiny_matrix();
    let grids: [Vec<usize>; 3] = [
        (0..NUM_CONFIGS).step_by(11).collect(),
        vec![0, 1, 2, 3, 92, 93, 94, 95],
        (5..NUM_CONFIGS).step_by(17).collect(),
    ];
    let mut scorer = gpp::core::portfolio::PortfolioScorer::new(&matrix);
    for allowed in &grids {
        for objective in [Objective::Geomean, Objective::Worst] {
            for k in 1..=3usize.min(allowed.len()) {
                let brute = k_subsets(allowed.len(), k)
                    .into_iter()
                    .map(|set| {
                        let configs: Vec<usize> = set.iter().map(|&p| allowed[p]).collect();
                        scorer.score(&configs, objective)
                    })
                    .fold(f64::INFINITY, f64::min);
                for threads in [1, 2, 4] {
                    let outcome = exact_search(&matrix, allowed, k, objective, threads);
                    assert_eq!(
                        outcome.slowdown.to_bits(),
                        brute.to_bits(),
                        "k={k} objective={objective:?} threads={threads} allowed={allowed:?}"
                    );
                }
            }
        }
    }
}

/// Deterministic counterpart of the thread-invariance property below.
#[test]
fn subsampled_curve_is_thread_invariant_on_a_fixed_grid() {
    let matrix = tiny_matrix();
    let allowed: Vec<usize> = (0..NUM_CONFIGS).step_by(7).collect();
    let params = SearchParams {
        objective: Objective::Worst,
        k_max: 5,
        exact_k_max: 2,
        beam_width: 8,
        threads: 1,
    };
    let serial = search_curve_over(&matrix, &allowed, &params);
    for threads in [2, 3, 8] {
        let par = search_curve_over(&matrix, &allowed, &SearchParams { threads, ..params });
        assert_eq!(serial, par, "threads={threads}");
    }
}

/// A strictly ascending random subset of the 96 configuration indices
/// (sorted and deduplicated, so it is never empty).
fn arb_allowed() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(0..NUM_CONFIGS, 3..10).prop_map(|mut v| {
        v.sort_unstable();
        v.dedup();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Branch-and-bound exact search equals brute-force enumeration for
    /// k <= 3 over arbitrary subsampled configuration grids, for both
    /// objectives and any thread count.
    #[test]
    fn exact_search_matches_brute_force(
        allowed in arb_allowed(),
        worst in proptest::bool::ANY,
        threads in 1usize..5,
    ) {
        let objective = if worst { Objective::Worst } else { Objective::Geomean };
        let matrix = tiny_matrix();
        let mut scorer = gpp::core::portfolio::PortfolioScorer::new(&matrix);
        for k in 1..=3usize.min(allowed.len()) {
            let outcome = exact_search(&matrix, &allowed, k, objective, threads);
            let brute = k_subsets(allowed.len(), k)
                .into_iter()
                .map(|set| {
                    let configs: Vec<usize> = set.iter().map(|&p| allowed[p]).collect();
                    scorer.score(&configs, objective)
                })
                .fold(f64::INFINITY, f64::min);
            prop_assert_eq!(
                outcome.slowdown.to_bits(),
                brute.to_bits(),
                "k={} objective={:?} allowed={:?}",
                k,
                objective,
                allowed
            );
            let mut rescore = gpp::core::portfolio::PortfolioScorer::new(&matrix);
            prop_assert_eq!(
                rescore.score(&outcome.configs, objective).to_bits(),
                outcome.slowdown.to_bits()
            );
        }
    }

    /// The curve over a subsampled grid is invariant in the thread
    /// count — struct equality covers values, configurations, and the
    /// pruning counters.
    #[test]
    fn subsampled_curve_is_thread_invariant(
        allowed in arb_allowed(),
        threads in 2usize..6,
    ) {
        let matrix = tiny_matrix();
        let params = SearchParams {
            objective: Objective::Geomean,
            k_max: allowed.len().min(5),
            exact_k_max: 2,
            beam_width: 8,
            threads: 1,
        };
        let serial = search_curve_over(&matrix, &allowed, &params);
        let par = search_curve_over(
            &matrix,
            &allowed,
            &SearchParams { threads, ..params },
        );
        prop_assert_eq!(serial, par);
    }
}

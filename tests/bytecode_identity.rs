//! Three-way differential testing of the execution tiers: for every DSL
//! program — the seven built-ins on the study inputs, corner graphs
//! (empty graph included), plus randomly generated valid programs over
//! random small graphs in all three driver forms — the AST tree-walker,
//! the bytecode register VM, and the native closure tier must produce
//! bit-identical [`Execution`] state and bit-identical recorded traces
//! (same kernel launches, same per-node `WorkItem` streams). The walker
//! and the VM form a two-level oracle below the native tier; this is
//! the invariant that keeps cached traces and the study dataset
//! unchanged by the compilation layer.

use gpp::graph::{generators, Graph, GraphBuilder};
use gpp::irgl::ast::{
    BinOp, Domain, Driver, Expr, FieldDecl, FieldInit, GlobalDecl, Kernel, Program, Ref, Stmt,
    UnaryOp, WorklistInit,
};
use gpp::irgl::bytecode::{CompiledProgram, KernelVm};
use gpp::irgl::interp::{execute_ast, Execution};
use gpp::irgl::native::NativeVm;
use gpp::irgl::validate::IrglError;
use gpp::irgl::programs;
use gpp::sim::trace::{Recorder, Trace};
use proptest::prelude::*;
use proptest::strategy::Union;

type RunResult = (Result<Execution, IrglError>, Trace);

fn run_ast(program: &Program, graph: &Graph) -> RunResult {
    let mut rec = Recorder::new();
    let result = execute_ast(program, graph, &mut rec);
    (result, rec.into_trace())
}

fn run_vm(program: &Program, graph: &Graph) -> RunResult {
    let mut rec = Recorder::new();
    let result = CompiledProgram::compile(program)
        .and_then(|compiled| KernelVm::new().run(&compiled, graph, &mut rec));
    (result, rec.into_trace())
}

fn run_native(program: &Program, graph: &Graph) -> RunResult {
    let mut rec = Recorder::new();
    let result = CompiledProgram::compile(program)
        .and_then(|compiled| NativeVm::new().run(&compiled, graph, &mut rec));
    (result, rec.into_trace())
}

/// All three tiers against the AST oracle in one comparison.
fn assert_all_tiers_identical(name: &str, program: &Program, graph: &Graph) {
    let ast = run_ast(program, graph);
    assert_identical(&format!("{name} [bytecode]"), &ast, &run_vm(program, graph));
    assert_identical(&format!("{name} [native]"), &ast, &run_native(program, graph));
}

/// Bit-level equality: `f64::to_bits` so NaN == NaN and -0.0 != 0.0 —
/// stricter than `PartialEq` on [`Execution`].
fn assert_identical(name: &str, ast: &RunResult, vm: &RunResult) {
    match (&ast.0, &vm.0) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.iterations, b.iterations, "{name}: iterations");
            assert_eq!(a.kernels, b.kernels, "{name}: kernel launches");
            assert_eq!(bits(&a.globals), bits(&b.globals), "{name}: globals");
            assert_eq!(a.fields.len(), b.fields.len(), "{name}: field count");
            for (i, (fa, fb)) in a.fields.iter().zip(&b.fields).enumerate() {
                assert_eq!(bits(fa), bits(fb), "{name}: field {i}");
            }
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "{name}: errors"),
        (a, b) => panic!("{name}: one executor failed: ast={a:?} vm={b:?}"),
    }
    assert_eq!(ast.1, vm.1, "{name}: recorded traces");
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn corner_graphs() -> Vec<Graph> {
    vec![
        Graph::from_csr(vec![0], vec![], vec![], true).unwrap(),
        generators::path(1).unwrap(),
        generators::path(13).unwrap(),
        generators::star(21).unwrap(),
        generators::cycle(9).unwrap(),
        generators::road_grid(6, 7, 4).unwrap(),
        generators::rmat(7, 6, 11).unwrap(),
    ]
}

#[test]
fn builtin_programs_are_bit_identical_on_study_and_corner_graphs() {
    let mut graphs = corner_graphs();
    for input in gpp::apps::study_inputs(gpp::apps::StudyScale::Tiny, 0x9a7e_2019) {
        graphs.push(input.graph.clone());
    }
    for program in programs::all() {
        for graph in &graphs {
            assert_all_tiers_identical(&program.name, &program, graph);
        }
    }
}

#[test]
fn iteration_bound_errors_are_identical_including_partial_traces() {
    // Truncate every built-in's iteration budget: whatever each
    // executor does — error after two rounds, or converge early (the
    // atomic_min programs can cascade along ascending node ids within
    // a single sequential launch) — it must do identically, down to
    // the partially recorded trace.
    let graph = generators::road_grid(9, 9, 2).unwrap();
    let mut errors = 0;
    for mut program in programs::all() {
        match &mut program.driver {
            Driver::UntilFixpoint { max_iters, .. } | Driver::WorklistLoop { max_iters, .. } => {
                *max_iters = 2;
            }
            Driver::Fixed { .. } => continue,
        }
        let ast = run_ast(&program, &graph);
        errors += usize::from(ast.0.is_err());
        assert_identical(&program.name, &ast, &run_vm(&program, &graph));
        assert_identical(&program.name, &ast, &run_native(&program, &graph));
    }
    // The level-by-level programs (BFS both ways, worklist SSSP, Luby
    // MIS) cannot finish a 16-diameter grid in two rounds.
    assert!(errors >= 4, "expected several bound errors, got {errors}");
}

#[test]
fn reused_vms_match_fresh_vms_on_the_builtins() {
    // Deterministic sibling of the proptest reuse property below: one
    // KernelVm and one NativeVm each driven across different graphs
    // (scratch reused, and for the native tier the shared closure
    // artifact reused) must match freshly constructed VMs.
    let graphs = [
        generators::star(17).unwrap(),
        generators::road_grid(5, 5, 3).unwrap(),
        generators::star(17).unwrap(),
    ];
    for program in programs::all() {
        let compiled = CompiledProgram::compile(&program).unwrap();
        let mut vm = KernelVm::new();
        let mut native = NativeVm::new();
        for g in &graphs {
            let mut rec = Recorder::new();
            let reused = (vm.run(&compiled, g, &mut rec), rec.into_trace());
            assert_identical("vm reuse", &run_vm(&program, g), &reused);
            let mut rec = Recorder::new();
            let reused = (native.run(&compiled, g, &mut rec), rec.into_trace());
            assert_identical("native reuse", &run_native(&program, g), &reused);
        }
    }
}

// -------------------------------------------------------------------
// Random-program differential suite
// -------------------------------------------------------------------

/// What ids the generated statements may reference.
#[derive(Debug, Clone, Copy)]
struct Shape {
    fields: usize,
    globals: usize,
    locals: usize,
    in_edge: bool,
    worklist: bool,
}

fn arb_ref(in_edge: bool) -> BoxedStrategy<Ref> {
    if in_edge {
        prop_oneof![Just(Ref::Node), Just(Ref::Nbr)].boxed()
    } else {
        Just(Ref::Node).boxed()
    }
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Neg), Just(UnaryOp::Floor)]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_expr(s: Shape) -> BoxedStrategy<Expr> {
    let mut leaves: Vec<BoxedStrategy<Expr>> = vec![
        // Include 0/1 often (branch conditions) and a NaN source (0/0 is
        // reachable via Div anyway; keep constants finite here).
        prop_oneof![Just(0.0), Just(1.0), Just(2.0), -4.0f64..4.0]
            .prop_map(Expr::Const)
            .boxed(),
        arb_ref(s.in_edge).prop_map(Expr::NodeId).boxed(),
        arb_ref(s.in_edge).prop_map(Expr::Degree).boxed(),
        (0..s.fields, arb_ref(s.in_edge))
            .prop_map(|(f, r)| Expr::Field(f, r))
            .boxed(),
        Just(Expr::Iter).boxed(),
        Just(Expr::NumNodes).boxed(),
    ];
    if s.in_edge {
        leaves.push(Just(Expr::EdgeWeight).boxed());
    }
    if s.locals > 0 {
        leaves.push((0..s.locals).prop_map(Expr::Local).boxed());
    }
    if s.globals > 0 {
        leaves.push((0..s.globals).prop_map(Expr::Global).boxed());
    }
    Union::new(leaves)
        .prop_recursive(3, 24, 2, |inner| {
            prop_oneof![
                (arb_unop(), inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
                (arb_binop(), inner.clone(), inner.clone())
                    .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b))),
                (inner.clone(), inner).prop_map(|(a, b)| Expr::Hash(Box::new(a), Box::new(b))),
            ]
        })
        .boxed()
}

fn arb_block(s: Shape, depth: u32, max_len: usize) -> BoxedStrategy<Vec<Stmt>> {
    prop::collection::vec(arb_stmt(s, depth), 0..=max_len).boxed()
}

fn arb_stmt(s: Shape, depth: u32) -> BoxedStrategy<Stmt> {
    let mut opts: Vec<BoxedStrategy<Stmt>> = vec![
        (0..s.fields, arb_ref(s.in_edge), arb_expr(s))
            .prop_map(|(field, target, value)| Stmt::Store {
                field,
                target,
                value,
            })
            .boxed(),
        (0..s.fields, arb_ref(s.in_edge), arb_expr(s))
            .prop_map(|(field, target, value)| Stmt::AtomicMin {
                field,
                target,
                value,
            })
            .boxed(),
        (0..s.fields, arb_ref(s.in_edge), arb_expr(s))
            .prop_map(|(field, target, value)| Stmt::AtomicAdd {
                field,
                target,
                value,
            })
            .boxed(),
        Just(Stmt::MarkChanged).boxed(),
    ];
    if s.locals > 0 {
        opts.push(
            (0..s.locals, arb_expr(s))
                .prop_map(|(l, e)| Stmt::Let(l, e))
                .boxed(),
        );
    }
    if s.globals > 0 {
        opts.push(
            (0..s.globals, arb_expr(s))
                .prop_map(|(g, e)| Stmt::GlobalAdd(g, e))
                .boxed(),
        );
    }
    if s.worklist {
        opts.push(arb_ref(s.in_edge).prop_map(Stmt::Push).boxed());
    }
    if depth > 0 {
        opts.push(
            (arb_expr(s), arb_block(s, depth - 1, 2), arb_block(s, depth - 1, 2))
                .prop_map(|(cond, then, els)| Stmt::If { cond, then, els })
                .boxed(),
        );
        if !s.in_edge {
            let edge_shape = Shape { in_edge: true, ..s };
            opts.push(
                arb_block(edge_shape, depth - 1, 3)
                    .prop_map(Stmt::ForEachEdge)
                    .boxed(),
            );
        }
    }
    Union::new(opts).boxed()
}

fn arb_field_init() -> impl Strategy<Value = FieldInit> {
    prop_oneof![
        (-2.0f64..3.0).prop_map(FieldInit::Const),
        Just(FieldInit::NodeId),
        Just(FieldInit::Infinity),
        Just(FieldInit::OneOverN),
        (-1.0f64..4.0).prop_map(FieldInit::SourceElse),
    ]
}

/// A random *valid* program: every id in range, `Nbr`/`EdgeWeight` only
/// inside edge loops, `Push` only under a worklist driver, domains
/// matching the driver, non-zero iteration bounds. Non-convergent
/// programs are fine — both executors must then fail identically.
fn arb_program() -> impl Strategy<Value = Program> {
    (1usize..=3, 0usize..=2, 0usize..=2, 0u8..3).prop_flat_map(|(nf, ng, nl, drv)| {
        let worklist = drv == 2;
        let shape = Shape {
            fields: nf,
            globals: ng,
            locals: nl,
            in_edge: false,
            worklist,
        };
        let num_kernels = if worklist { 1usize..=1 } else { 1usize..=2 };
        let max_iters = match drv {
            0 => 2u32..=6,   // UntilFixpoint
            1 => 1u32..=3,   // Fixed
            _ => 3u32..=8,   // WorklistLoop
        };
        (
            prop::collection::vec(arb_field_init(), nf),
            prop::collection::vec(-2.0f64..2.0, ng),
            prop::collection::vec(arb_block(shape, 2, 3), num_kernels),
            max_iters,
            prop_oneof![Just(WorklistInit::Source), Just(WorklistInit::AllNodes)],
            0..nf,
        )
            .prop_map(
                move |(field_inits, global_inits, bodies, max_iters, init, output)| {
                    let fields = field_inits
                        .into_iter()
                        .enumerate()
                        .map(|(i, init)| FieldDecl {
                            name: format!("f{i}"),
                            init,
                        })
                        .collect();
                    let globals = global_inits
                        .into_iter()
                        .enumerate()
                        .map(|(i, init)| GlobalDecl {
                            name: format!("g{i}"),
                            init,
                        })
                        .collect();
                    let domain = if worklist {
                        Domain::Worklist
                    } else {
                        Domain::AllNodes
                    };
                    let kernels: Vec<Kernel> = bodies
                        .into_iter()
                        .enumerate()
                        .map(|(i, body)| Kernel {
                            name: format!("k{i}"),
                            domain,
                            locals: nl,
                            body,
                        })
                        .collect();
                    let ids: Vec<usize> = (0..kernels.len()).collect();
                    let driver = match drv {
                        0 => Driver::UntilFixpoint {
                            kernels: ids,
                            max_iters,
                        },
                        1 => Driver::Fixed {
                            kernels: ids,
                            iters: max_iters,
                        },
                        _ => Driver::WorklistLoop {
                            init,
                            kernel: 0,
                            max_iters,
                        },
                    };
                    Program {
                        name: "prop".into(),
                        fields,
                        globals,
                        kernels,
                        driver,
                        output,
                    }
                },
            )
    })
}

/// Small random graphs, empty graph included; self-loops are dropped by
/// the builder, node ids always in range.
fn arb_graph() -> impl Strategy<Value = Graph> {
    prop_oneof![
        1 => Just(Graph::from_csr(vec![0], vec![], vec![], true).unwrap()),
        7 => (1usize..=10).prop_flat_map(|n| {
            (
                prop::collection::vec((0..n as u32, 0..n as u32, 1u32..=4), 0..=2 * n),
                any::<bool>(),
            )
                .prop_map(move |(edges, directed)| {
                    let mut b = GraphBuilder::new(n);
                    if !directed {
                        b.undirected();
                    }
                    for (u, v, w) in edges {
                        b.weighted_edge(u, v, w);
                    }
                    b.build().expect("ids are in range and n > 0")
                })
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn random_programs_are_bit_identical_across_all_tiers(
        program in arb_program(),
        graph in arb_graph(),
    ) {
        prop_assert!(gpp::irgl::validate_program(&program).is_ok());
        assert_all_tiers_identical("random", &program, &graph);
    }

    #[test]
    fn vm_reuse_matches_fresh_vm(program in arb_program(), g1 in arb_graph(), g2 in arb_graph()) {
        // One VM across two different graphs (scratch buffers reused,
        // possibly after an iteration-bound error) must match fresh VMs
        // — for the bytecode tier and the native tier alike (the native
        // VM additionally reuses the program's shared closure artifact).
        let compiled = CompiledProgram::compile(&program).unwrap();
        let mut vm = KernelVm::new();
        let mut native = NativeVm::new();
        for g in [&g1, &g2, &g1] {
            let mut rec = Recorder::new();
            let reused = (vm.run(&compiled, g, &mut rec), rec.into_trace());
            assert_identical("vm reuse", &run_vm(&program, g), &reused);
            let mut rec = Recorder::new();
            let reused = (native.run(&compiled, g, &mut rec), rec.into_trace());
            assert_identical("native reuse", &run_native(&program, g), &reused);
        }
    }
}

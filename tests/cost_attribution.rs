//! The attribution invariant end to end: for real application traces,
//! every (chip, configuration) cell's cost breakdown sums to the scalar
//! the simulator prices, and the per-chip shares reproduce the paper's
//! Table VI narrative (launch overhead crushes MALI on frontier-bound
//! inputs, atomics weigh heavier on R9 than on GTX1080, divergence
//! surfaces on the skewed social input).

use gpp::apps::apps::{all_applications, application};
use gpp::apps::inputs::{study_inputs, StudyScale};
use gpp::obs::CostBreakdown;
use gpp::sim::chip::{study_chip, study_chips};
use gpp::sim::exec::Machine;
use gpp::sim::opts::{OptConfig, NUM_CONFIGS};
use gpp::sim::trace::{CompiledTrace, Recorder};

/// Records one application on one study input and compiles the trace.
fn trace_on(app_name: &str, input_name: &str) -> CompiledTrace {
    let inputs = study_inputs(StudyScale::Tiny, 42);
    let input = inputs
        .iter()
        .find(|i| i.name == input_name)
        .expect("study input");
    let app = application(app_name).expect("study application");
    let mut rec = Recorder::new();
    app.run(&input.graph, &mut rec);
    CompiledTrace::new(rec.into_trace())
}

fn breakdown_for(compiled: &CompiledTrace, chip_name: &str, cfg: OptConfig) -> CostBreakdown {
    let chip = study_chip(chip_name).expect("study chip");
    compiled.replay_explained(&Machine::new(chip), cfg).1
}

#[test]
fn breakdown_sums_to_priced_total_for_every_chip_and_config() {
    // All 96 configurations x 6 chips on a real bfs-wl road trace —
    // the acceptance criterion of the attribution layer.
    let compiled = trace_on("bfs-wl", "road");
    for chip in study_chips() {
        let machine = Machine::new(chip);
        let priced = compiled.replay_all_configs_explained(&machine);
        assert_eq!(priced.len(), NUM_CONFIGS);
        for (idx, (stats, breakdown)) in priced.iter().enumerate() {
            assert!(stats.time_ns > 0.0);
            let total = breakdown.total();
            assert!(
                (total - stats.time_ns).abs() <= 1e-9 * stats.time_ns,
                "{} cfg `{}`: breakdown sums to {total}, simulator priced {}",
                machine.chip().name,
                OptConfig::from_index(idx),
                stats.time_ns
            );
        }
    }
}

#[test]
fn breakdown_sums_to_priced_total_across_applications() {
    // Breadth over the app registry: a sample of configurations on every
    // study input for several applications.
    let inputs = study_inputs(StudyScale::Tiny, 7);
    for app in all_applications().into_iter().take(5) {
        for input in &inputs {
            let mut rec = Recorder::new();
            app.run(&input.graph, &mut rec);
            let compiled = CompiledTrace::new(rec.into_trace());
            for chip in study_chips() {
                let machine = Machine::new(chip);
                for idx in [0usize, 17, 48, 95] {
                    let cfg = OptConfig::from_index(idx);
                    let (stats, breakdown) = compiled.replay_explained(&machine, cfg);
                    assert!(
                        (breakdown.total() - stats.time_ns).abs() <= 1e-9 * stats.time_ns,
                        "{} on {} / {} cfg `{cfg}`",
                        app.name(),
                        input.name,
                        machine.chip().name
                    );
                }
            }
        }
    }
}

#[test]
fn launch_overhead_dominates_mali_on_the_road_input() {
    // Frontier-bound BFS on the high-diameter road graph launches many
    // tiny kernels; MALI's per-kernel constants are the study's largest,
    // so host overhead is a first-order cost there (the mechanism behind
    // oitergb's headline speedup).
    let road = trace_on("bfs-wl", "road");
    let cfg = OptConfig::baseline();
    let mali_road = breakdown_for(&road, "MALI", cfg);
    let road_share = mali_road.share("launch") + mali_road.share("copy");
    assert!(
        road_share > 0.3,
        "MALI road launch+copy share: {road_share}"
    );
    // The same per-kernel overhead recedes on the bulk-parallel social
    // input, where kernels are few and large.
    let social = trace_on("bfs-wl", "social");
    let mali_social = breakdown_for(&social, "MALI", cfg);
    let social_share = mali_social.share("launch") + mali_social.share("copy");
    assert!(
        road_share > social_share,
        "MALI launch+copy share: road {road_share} vs social {social_share}"
    );
    // Absolute launch+copy on the identical trace: MALI books more than
    // the discrete GTX1080 (20 us vs 3.2 us per kernel).
    let gtx = breakdown_for(&road, "GTX1080", cfg);
    assert!(
        mali_road.launch + mali_road.copy > gtx.launch + gtx.copy,
        "MALI {} vs GTX1080 {}",
        mali_road.launch + mali_road.copy,
        gtx.launch + gtx.copy
    );
}

#[test]
fn atomic_costs_weigh_heavier_on_r9_than_on_gtx1080() {
    // R9 has no JIT subgroup RMW combining and pricier per-edge atomics
    // (13 vs 6) plus costlier worklist RMWs (50 vs 24), so on the same
    // worklist-heavy trace it books strictly more atomic time.
    let social = trace_on("bfs-wl", "social");
    let cfg = OptConfig::baseline();
    let r9 = breakdown_for(&social, "R9", cfg);
    let gtx = breakdown_for(&social, "GTX1080", cfg);
    assert!(r9.atomics > 0.0, "bfs-wl prices per-edge atomics");
    assert!(r9.worklist > 0.0, "bfs-wl pushes through a worklist");
    assert!(
        r9.atomics + r9.worklist > gtx.atomics + gtx.worklist,
        "R9 {} vs GTX1080 {}",
        r9.atomics + r9.worklist,
        gtx.atomics + gtx.worklist
    );
}

#[test]
fn divergence_surfaces_on_the_skewed_social_input() {
    // Heavy-tailed degrees leave lockstep lanes idling behind the
    // longest edge list; uniform road degrees stay near-converged.
    let road = trace_on("bfs-wl", "road");
    let social = trace_on("bfs-wl", "social");
    let cfg = OptConfig::baseline();
    let social_b = breakdown_for(&social, "GTX1080", cfg);
    let road_b = breakdown_for(&road, "GTX1080", cfg);
    assert!(social_b.divergence > 0.0);
    assert!(
        social_b.share("divergence") > road_b.share("divergence"),
        "divergence share: social {} vs road {}",
        social_b.share("divergence"),
        road_b.share("divergence")
    );
}

#[test]
fn every_component_is_finite_and_non_negative_within_tolerance() {
    let compiled = trace_on("bfs-wl", "social");
    for chip in study_chips() {
        let machine = Machine::new(chip);
        for idx in (0..NUM_CONFIGS).step_by(7) {
            let cfg = OptConfig::from_index(idx);
            let (stats, breakdown) = compiled.replay_explained(&machine, cfg);
            for (label, value) in breakdown.components() {
                assert!(value.is_finite(), "{label} on {}", machine.chip().name);
                // Orchestration remainders may be a few ulps negative.
                assert!(
                    value >= -1e-9 * stats.time_ns,
                    "{label} = {value} on {} cfg `{cfg}`",
                    machine.chip().name
                );
            }
        }
    }
}

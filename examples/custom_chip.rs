//! Extending the study to a new device: define a custom chip profile
//! with the builder, run applications on it, and use the analysis to
//! derive an optimisation configuration specialised to it.
//!
//! The hypothetical chip below is an integrated GPU with slow atomics,
//! no JIT RMW combining, and very high launch overhead — the analysis
//! should recommend both `coop-cv` and `oitergb` for it.
//!
//! ```sh
//! cargo run --release --example custom_chip
//! ```

use gpp::apps::app::validate;
use gpp::apps::apps::all_applications;
use gpp::apps::inputs::{study_inputs, StudyScale};
use gpp::core::report::Table;
use gpp::core::stats::{mann_whitney_u, median};
use gpp::sim::chip::{ChipProfile, Vendor};
use gpp::sim::exec::Machine;
use gpp::sim::opts::{settings_enabling, OptConfig, Optimization};
use gpp::sim::trace::{CompiledTrace, Recorder};

fn main() {
    let chip = ChipProfile::builder("NEWCHIP", Vendor::Intel)
        .num_cus(16)
        .subgroup_size(16)
        .lockstep_subgroups(false)
        .atomic_rmw_cost(150.0)
        .jit_subgroup_combining(false)
        .sg_collective_cost(4.0)
        .kernel_launch_cost(25_000.0)
        .host_copy_cost(12_000.0)
        .build();
    println!(
        "custom chip: {} ({} CUs, subgroup {})\n",
        chip.name, chip.num_cus, chip.subgroup_size
    );
    let machine = Machine::new(chip);

    // Collect one trace per (application, input) and price every
    // configuration on the new chip.
    let inputs = study_inputs(StudyScale::Small, 11);
    let apps = all_applications();
    let mut timings: Vec<Vec<f64>> = Vec::new(); // [test][config]
    for input in &inputs {
        for app in &apps {
            let mut rec = Recorder::new();
            let out = app.run(&input.graph, &mut rec);
            validate(&input.graph, &out)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", app.name(), input.name));
            let compiled = CompiledTrace::new(rec.into_trace());
            // One batched traversal prices all 96 configurations.
            let times: Vec<f64> = compiled
                .replay_all_configs(&machine)
                .iter()
                .map(|s| s.time_ns)
                .collect();
            timings.push(times);
        }
    }

    // A single-chip variant of Algorithm 1: for each optimisation,
    // compare each enabling configuration with its mirror across all
    // tests (no repetition noise here, so every non-trivial difference
    // counts as a sample).
    println!("per-optimisation analysis on {}:\n", machine.chip().name);
    let mut table = Table::new(["Optimisation", "Verdict", "p-value", "Effect size"]);
    let mut recommended = OptConfig::baseline();
    for opt in Optimization::ALL {
        let mut a = Vec::new();
        for os in settings_enabling(opt) {
            let mirror = os.without(opt);
            for times in &timings {
                let (t_on, t_off) = (times[os.index()], times[mirror.index()]);
                if (t_on / t_off - 1.0).abs() > 0.02 {
                    a.push(t_on / t_off);
                }
            }
        }
        let b = vec![1.0; a.len()];
        let verdict = match mann_whitney_u(&a, &b) {
            Some(r) if r.p_value < 0.05 && median(&a) < 1.0 => {
                recommended = recommended.with(opt);
                table.row([
                    opt.name().to_string(),
                    "enable".to_string(),
                    format!("{:.3}", r.p_value),
                    format!("{:.2}", r.effect_size),
                ]);
                continue;
            }
            Some(r) => format!("skip (p={:.3}, effect {:.2})", r.p_value, r.effect_size),
            None => "skip (no evidence)".to_string(),
        };
        table.row([
            opt.name().to_string(),
            verdict,
            String::new(),
            String::new(),
        ]);
    }
    println!("{table}");
    println!(
        "recommended configuration for {}: {recommended}",
        machine.chip().name
    );
}

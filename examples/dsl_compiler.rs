//! The DSL-compiler view of the study: write BFS once in the IR, then
//! "compile" it under different optimisation configurations — inspecting
//! the generated OpenCL-style code — and execute each variant on a
//! simulated GPU.
//!
//! ```sh
//! cargo run --release --example dsl_compiler
//! ```

use gpp::graph::generators;
use gpp::irgl::{codegen, interp, programs, transform};
use gpp::sim::chip::ChipProfile;
use gpp::sim::exec::Machine;
use gpp::sim::opts::{OptConfig, Optimization};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = programs::bfs_worklist();
    let graph = generators::rmat(11, 8, 3)?;
    println!(
        "program `{}` on a {}-node social graph\n",
        program.name,
        graph.num_nodes()
    );

    let configs = [
        ("baseline", OptConfig::baseline()),
        ("coop-cv", OptConfig::baseline().with(Optimization::CoopCv)),
        ("fg8", OptConfig::baseline().with(Optimization::Fg8)),
        (
            "coop-cv, fg8, oitergb",
            OptConfig::from_opts([
                Optimization::CoopCv,
                Optimization::Fg8,
                Optimization::Oitergb,
            ]),
        ),
    ];

    let machine = Machine::new(ChipProfile::r9());
    let mut baseline_ns = None;
    for (name, cfg) in configs {
        transform::plan(&program, cfg)?; // legality check, as the compiler would
        let mut session = machine.session(cfg);
        let result = interp::execute(&program, &graph, &mut session)?;
        let t = session.elapsed_ns();
        let base = *baseline_ns.get_or_insert(t);
        println!(
            "{name:<22} {:>9.1} us on {} (speedup {:.2}x, {} kernels)",
            t / 1_000.0,
            machine.chip().name,
            base / t,
            result.kernels
        );
    }

    // Show what the compiler actually emits for the most aggressive
    // configuration.
    let cfg = configs[3].1;
    let plan = transform::plan(&program, cfg)?;
    let source = codegen::opencl(&program, &plan)?;
    println!("\n--- generated OpenCL ({}) ---\n{source}", cfg);
    Ok(())
}

//! Quickstart: run one graph application on two simulated GPUs under
//! different optimisation configurations and compare the modelled times.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gpp::apps::app::Application;
use gpp::apps::apps::bfs::BfsWl;
use gpp::graph::generators;
use gpp::sim::chip::ChipProfile;
use gpp::sim::exec::Machine;
use gpp::sim::opts::{OptConfig, Optimization};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A social-network-like input: small diameter, power-law degrees.
    let graph = generators::rmat(11, 8, 7)?;
    println!(
        "input: {} nodes, {} arcs, max degree {}",
        graph.num_nodes(),
        graph.num_edges(),
        graph.max_degree()
    );

    let app = BfsWl;
    let configs = [
        ("baseline", OptConfig::baseline()),
        ("fg8", OptConfig::baseline().with(Optimization::Fg8)),
        (
            "sg, fg8",
            OptConfig::from_opts([Optimization::Sg, Optimization::Fg8]),
        ),
        (
            "sg, fg8, oitergb",
            OptConfig::from_opts([Optimization::Sg, Optimization::Fg8, Optimization::Oitergb]),
        ),
    ];

    for chip in [ChipProfile::gtx1080(), ChipProfile::mali()] {
        let machine = Machine::new(chip);
        println!("\n=== {} ===", machine.chip().name);
        let mut baseline_ns = None;
        for (name, cfg) in configs {
            let mut session = machine.session(cfg);
            app.run(&graph, &mut session);
            let stats = session.finish();
            let base = *baseline_ns.get_or_insert(stats.time_ns);
            println!(
                "  {name:<18} {:>10.1} us  (speedup {:.2}x, {} kernels, {} launches)",
                stats.time_ns / 1_000.0,
                base / stats.time_ns,
                stats.kernels,
                stats.launches
            );
        }
    }
    println!("\nNote how the same configurations rank differently per chip —");
    println!("the paper's core observation that one size doesn't fit all.");
    Ok(())
}

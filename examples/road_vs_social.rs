//! The input dimension: the same application on a road network and a
//! social network wants different optimisations (paper Section VI-C).
//!
//! Road networks have huge diameters and tiny frontiers, so runtime is
//! dominated by kernel-launch overhead and `oitergb` wins; social
//! networks have skewed degrees, so load balancing (`fg8`) wins.
//!
//! ```sh
//! cargo run --release --example road_vs_social
//! ```

use gpp::apps::app::Application;
use gpp::apps::apps::bfs::BfsWl;
use gpp::core::report::Table;
use gpp::graph::properties;
use gpp::graph::{generators, Graph};
use gpp::sim::chip::ChipProfile;
use gpp::sim::exec::Machine;
use gpp::sim::opts::{OptConfig, Optimization};

fn run_ns(machine: &Machine, graph: &Graph, cfg: OptConfig) -> f64 {
    let mut session = machine.session(cfg);
    BfsWl.run(graph, &mut session);
    session.finish().time_ns
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let road = generators::road_grid(64, 64, 5)?;
    let social = generators::rmat(12, 8, 5)?;
    for (name, g) in [("road", &road), ("social", &social)] {
        let stats = properties::degree_stats(g);
        println!(
            "{name}: {} nodes, diameter ~{}, degree cv {:.2}, classified as {}",
            g.num_nodes(),
            properties::estimate_diameter(g),
            stats.cv,
            properties::classify(g)
        );
    }

    let machine = Machine::new(ChipProfile::r9());
    println!(
        "\nBFS (worklist) on {}: speedup over baseline\n",
        machine.chip().name
    );
    let mut t = Table::new(["Configuration", "road", "social"]);
    for (name, cfg) in [
        ("oitergb", OptConfig::baseline().with(Optimization::Oitergb)),
        ("fg8", OptConfig::baseline().with(Optimization::Fg8)),
        ("coop-cv", OptConfig::baseline().with(Optimization::CoopCv)),
        (
            "oitergb, fg8, coop-cv",
            OptConfig::from_opts([
                Optimization::Oitergb,
                Optimization::Fg8,
                Optimization::CoopCv,
            ]),
        ),
    ] {
        let mut row = vec![name.to_string()];
        for g in [&road, &social] {
            let base = run_ns(&machine, g, OptConfig::baseline());
            let with = run_ns(&machine, g, cfg);
            row.push(format!("{:.2}x", base / with));
        }
        t.row(row);
    }
    println!("{t}");
    println!("oitergb carries the road input (launch-bound, ~hundreds of tiny");
    println!("kernels); fg8 carries the social input (one skewed kernel per level).");
    Ok(())
}

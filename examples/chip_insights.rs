//! Dissecting chip-specific optimisations (paper Section VIII): run the
//! three diagnostic microbenchmarks, then a reduced study, and show how
//! the per-chip analysis recommendations line up with the
//! microbenchmark evidence.
//!
//! ```sh
//! cargo run --release --example chip_insights
//! ```

use gpp::apps::study::{run_study, StudyConfig};
use gpp::core::analysis::{DatasetStats, Decision};
use gpp::core::report::{ratio, Table};
use gpp::core::strategy::chip_function;
use gpp::sim::chip::study_chips;
use gpp::sim::microbench::{m_divg, sg_cmb, utilisation, M_DIVG_ROUNDS, SG_CMB_N};
use gpp::sim::opts::Optimization;

fn main() {
    let chips = study_chips();

    println!("== Microbenchmark evidence (paper Table X / Fig. 5) ==\n");
    let mut headers = vec!["Probe".to_string()];
    headers.extend(chips.iter().map(|c| c.name.clone()));
    let mut t = Table::new(headers);
    let mut row = vec!["launch util @10us".to_string()];
    for chip in &chips {
        row.push(format!("{:.2}", utilisation(chip, 10_000.0, 10_000)));
    }
    t.row(row);
    let mut row = vec!["sg-cmb speedup".to_string()];
    for chip in &chips {
        row.push(ratio(sg_cmb(chip, SG_CMB_N).speedup()));
    }
    t.row(row);
    let mut row = vec!["m-divg speedup".to_string()];
    for chip in &chips {
        row.push(ratio(m_divg(chip, M_DIVG_ROUNDS).speedup()));
    }
    t.row(row);
    println!("{t}");

    println!("== Per-chip recommendations from a reduced study ==\n");
    let ds = run_study(&StudyConfig::small());
    let stats = DatasetStats::new(&ds);
    let table = chip_function(&stats);
    for (chip, analysis) in &table {
        println!("  {chip:>8}: {}", analysis.config);
    }

    println!("\n== How the two line up ==\n");
    for (chip, analysis) in &table {
        let profile = chips.iter().find(|c| &c.name == chip).expect("study chip");
        let oitergb = analysis.decision(Optimization::Oitergb).decision == Decision::Enable;
        let coopcv = analysis.decision(Optimization::CoopCv).decision == Decision::Enable;
        let util = utilisation(profile, 10_000.0, 10_000);
        let cmb = sg_cmb(profile, SG_CMB_N).speedup();
        println!(
            "  {chip:>8}: oitergb {} (launch utilisation {util:.2}); coop-cv {} (sg-cmb {})",
            if oitergb { "ON " } else { "off" },
            if coopcv { "ON " } else { "off" },
            ratio(cmb),
        );
    }
    println!("\nLow launch utilisation predicts oitergb; a large sg-cmb speedup");
    println!("predicts coop-cv — the analysis rediscovers both from timings alone.");
}

//! Exposition: render a [`MetricsSnapshot`] in Prometheus text format.
//!
//! JSON exposition is [`MetricsSnapshot::to_json`]; this module adds
//! the text format a future `gpp serve /metrics` endpoint (ROADMAP
//! item 1) scrapes. Dotted metric names are sanitised to the
//! Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) and prefixed with
//! `gpp_`: `study.cells_priced` → `gpp_study_cells_priced`.
//! Counters render as `counter`, gauges as `gauge`, and histograms as
//! a Prometheus `summary` (`_count`, `_sum`, and `quantile`-labelled
//! sample lines from the precomputed p50/p90/p99).

use crate::snapshot::MetricsSnapshot;

/// Sanitises a dotted metric name into a Prometheus identifier with
/// the `gpp_` prefix.
#[must_use]
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    out.push_str("gpp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else {
            out.push('_');
        }
    }
    out
}

/// Formats a sample value the way Prometheus expects (no exponent for
/// integral values, `Rust` default float formatting otherwise).
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Renders the snapshot in Prometheus text exposition format
/// (version 0.0.4), with `# TYPE` comments and a trailing newline.
#[must_use]
pub fn to_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} counter\n"));
        out.push_str(&format!("{pname} {value}\n"));
    }
    for (name, value) in &snapshot.gauges {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} gauge\n"));
        out.push_str(&format!("{pname} {}\n", fmt_value(*value)));
    }
    for (name, h) in &snapshot.histograms {
        let pname = prometheus_name(name);
        out.push_str(&format!("# TYPE {pname} summary\n"));
        for (q, v) in [(0.5, h.p50), (0.9, h.p90), (0.99, h.p99)] {
            out.push_str(&format!(
                "{pname}{{quantile=\"{q}\"}} {}\n",
                fmt_value(v)
            ));
        }
        out.push_str(&format!("{pname}_sum {}\n", fmt_value(h.sum)));
        out.push_str(&format!("{pname}_count {}\n", h.count));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::HistogramSnapshot;

    #[test]
    fn names_are_sanitised_and_prefixed() {
        assert_eq!(prometheus_name("study.cells_priced"), "gpp_study_cells_priced");
        assert_eq!(prometheus_name("trace-cache.hits"), "gpp_trace_cache_hits");
        assert_eq!(prometheus_name("Irgl.VM runs"), "gpp_irgl_vm_runs");
    }

    #[test]
    fn renders_all_three_kinds() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("study.cells_priced".into(), 306);
        snap.gauges.insert("study.wall_seconds".into(), 1.5);
        snap.histograms.insert(
            "study.cell_price_ns".into(),
            HistogramSnapshot {
                count: 4,
                sum: 100.0,
                min: 10.0,
                max: 40.0,
                p50: 20.0,
                p90: 38.0,
                p99: 40.0,
                buckets: vec![(4, 4)],
            },
        );
        let text = to_prometheus(&snap);
        assert!(text.contains("# TYPE gpp_study_cells_priced counter\n"));
        assert!(text.contains("gpp_study_cells_priced 306\n"));
        assert!(text.contains("# TYPE gpp_study_wall_seconds gauge\n"));
        assert!(text.contains("gpp_study_wall_seconds 1.5\n"));
        assert!(text.contains("# TYPE gpp_study_cell_price_ns summary\n"));
        assert!(text.contains("gpp_study_cell_price_ns{quantile=\"0.5\"} 20\n"));
        assert!(text.contains("gpp_study_cell_price_ns_sum 100\n"));
        assert!(text.contains("gpp_study_cell_price_ns_count 4\n"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(to_prometheus(&MetricsSnapshot::default()), "");
    }
}

//! Self-profiling: reconstruct a nested phase tree from trace events.
//!
//! The study pipeline already emits span events ([`crate::tracing`]) —
//! `"study"` / `"sweep"` around a whole run, `"phase"` spans per
//! pipeline stage, `"trace"` / `"cell"` spans per work item on worker
//! threads, and `"busy-ns"` counters per worker per phase. A
//! [`PhaseProfiler`] buffers those events in memory and, on
//! [`PhaseProfiler::finish`], folds them into a [`PhaseNode`] tree:
//! span nesting is recovered per thread (a worker's item span grafts
//! under whichever phase was open when it started), sibling spans with
//! the same label aggregate into one node (306 `"cell"` spans become a
//! single `cell ×306` child), and each node carries total wall time,
//! self time (wall minus children, floored at zero because parallel
//! children legitimately oversubscribe their parent), and worker
//! utilisation from the busy counters.
//!
//! Profiling is pure observation: the profiler hands out an ordinary
//! [`Tracer`], so a profiled run is byte-identical to an unprofiled
//! one by the same argument as every other sink.

use std::sync::Arc;

use crate::tracing::{EventKind, MemorySink, TraceEvent, TraceSummary, Tracer};

/// One node of the aggregated phase tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Node label: a `"phase"` span's detail (e.g. `collect-traces`),
    /// or the span name itself for run roots and item spans.
    pub name: String,
    /// How many spans aggregated into this node.
    pub count: u64,
    /// Total wall-clock nanoseconds across all aggregated spans.
    pub wall_ns: f64,
    /// Wall time not covered by children: `max(0, wall − Σ child
    /// wall)`. Zero when parallel children oversubscribe the parent.
    pub self_ns: f64,
    /// Worker threads that reported `"busy-ns"` for this phase label.
    pub workers: usize,
    /// Mean worker utilisation in `[0, 1]` (0 when unreported).
    pub busy_frac: f64,
    /// Child nodes, in order of first appearance.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    /// Sum of the immediate children's wall time.
    #[must_use]
    pub fn children_wall_ns(&self) -> f64 {
        self.children.iter().map(|c| c.wall_ns).sum()
    }

    /// Depth-first `(depth, node)` flattening for table rendering.
    #[must_use]
    pub fn flattened(&self) -> Vec<(usize, &PhaseNode)> {
        let mut out = Vec::new();
        fn walk<'a>(node: &'a PhaseNode, depth: usize, out: &mut Vec<(usize, &'a PhaseNode)>) {
            out.push((depth, node));
            for child in &node.children {
                walk(child, depth + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }
}

/// A span being (re)constructed while walking the event stream.
struct OpenSpan {
    label: String,
    thread: u64,
    parent: Option<usize>,
}

/// What a span aggregates under: `"phase"` spans group by their detail
/// label; everything else (run roots, per-item `"trace"`/`"cell"`
/// spans) groups by span name so thousands of items fold into one node.
fn span_label(name: &str, detail: Option<&str>) -> String {
    match (name, detail) {
        ("phase", Some(d)) => d.to_owned(),
        _ => name.to_owned(),
    }
}

/// Reconstructs the aggregated phase tree(s) from a recorded event
/// stream. Returns one root per top-level span label (a study run has
/// exactly one: `"study"`). Spans left open at the end of the stream
/// are dropped.
#[must_use]
pub fn phase_tree(events: &[TraceEvent]) -> Vec<PhaseNode> {
    // Pass 1: pair starts and ends, resolving each span's parent at
    // start time — the enclosing span on the same thread if any,
    // otherwise the innermost open span of the thread that opened the
    // *outermost* still-open span (that is how a worker item lands
    // under the main thread's current phase span rather than under a
    // sibling worker's concurrent item span).
    let mut spans: Vec<OpenSpan> = Vec::new();
    let mut done: Vec<(usize, f64)> = Vec::new(); // (span idx, wall ns)
    let mut stacks: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    let mut open: Vec<usize> = Vec::new(); // global, in start order

    for e in events {
        match e.kind {
            EventKind::SpanStart => {
                let same_thread = stacks.get(&e.thread).and_then(|s| s.last().copied());
                let parent = same_thread.or_else(|| {
                    let root_thread = open.first().map(|&i| spans[i].thread)?;
                    stacks.get(&root_thread).and_then(|s| s.last().copied())
                });
                let stack = stacks.entry(e.thread).or_default();
                let idx = spans.len();
                spans.push(OpenSpan {
                    label: span_label(&e.name, e.detail.as_deref()),
                    thread: e.thread,
                    parent,
                });
                stack.push(idx);
                open.push(idx);
            }
            EventKind::SpanEnd => {
                let label = span_label(&e.name, e.detail.as_deref());
                let stack = stacks.entry(e.thread).or_default();
                // Normally the top of this thread's stack; scan down to
                // tolerate interleaved manual spans.
                if let Some(pos) = stack.iter().rposition(|&i| spans[i].label == label) {
                    let idx = stack.remove(pos);
                    open.retain(|&i| i != idx);
                    done.push((idx, e.value.unwrap_or(0.0)));
                }
            }
            EventKind::Counter => {}
        }
    }

    // Pass 2: aggregate completed spans into a label tree. Spans are
    // inserted in completion order; children keep first-appearance
    // order via the ordered Vec in each node.
    let mut roots: Vec<PhaseNode> = Vec::new();
    // Resolve a span's ancestor label path (root first).
    let path_of = |idx: usize, spans: &[OpenSpan]| -> Vec<String> {
        let mut path = Vec::new();
        let mut cur = Some(idx);
        while let Some(i) = cur {
            path.push(spans[i].label.clone());
            cur = spans[i].parent;
        }
        path.reverse();
        path
    };
    for &(idx, wall) in &done {
        let path = path_of(idx, &spans);
        let mut level = &mut roots;
        for (depth, label) in path.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == *label) {
                Some(p) => p,
                None => {
                    level.push(PhaseNode {
                        name: label.clone(),
                        count: 0,
                        wall_ns: 0.0,
                        self_ns: 0.0,
                        workers: 0,
                        busy_frac: 0.0,
                        children: Vec::new(),
                    });
                    level.len() - 1
                }
            };
            if depth + 1 == path.len() {
                level[pos].count += 1;
                level[pos].wall_ns += wall;
            }
            level = &mut level[pos].children;
        }
    }

    // Pass 3: self time, plus worker utilisation from busy counters.
    let mut busy: std::collections::HashMap<String, (f64, Vec<u64>)> =
        std::collections::HashMap::new();
    for e in events {
        if e.kind == EventKind::Counter && e.name == "busy-ns" {
            let label = e.detail.clone().unwrap_or_default();
            let entry = busy.entry(label).or_insert((0.0, Vec::new()));
            entry.0 += e.value.unwrap_or(0.0);
            if !entry.1.contains(&e.thread) {
                entry.1.push(e.thread);
            }
        }
    }
    fn finalize(
        node: &mut PhaseNode,
        busy: &std::collections::HashMap<String, (f64, Vec<u64>)>,
    ) {
        node.self_ns = (node.wall_ns - node.children_wall_ns()).max(0.0);
        if let Some((total, threads)) = busy.get(&node.name) {
            node.workers = threads.len();
            if node.wall_ns > 0.0 && !threads.is_empty() {
                node.busy_frac = total / (node.wall_ns * threads.len() as f64);
            }
        }
        for child in &mut node.children {
            finalize(child, busy);
        }
    }
    for root in &mut roots {
        finalize(root, &busy);
    }
    roots
}

/// Everything [`PhaseProfiler::finish`] learned about a run.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Aggregated phase tree roots (one per top-level span).
    pub roots: Vec<PhaseNode>,
    /// The flat [`TraceSummary`] over the same events (phase listing,
    /// item counters, cache hits, slowest cells).
    pub summary: TraceSummary,
    /// Peak resident set size of this process in bytes, if the
    /// platform exposes it (`/proc/self/status` `VmHWM`).
    pub peak_rss_bytes: Option<u64>,
    /// The raw events, for callers that want to re-analyse.
    pub events: Vec<TraceEvent>,
}

/// Buffers a run's trace events and folds them into a
/// [`ProfileReport`].
///
/// ```
/// use gpp_obs::profile::PhaseProfiler;
///
/// let profiler = PhaseProfiler::new();
/// let tracer = profiler.tracer();
/// {
///     let _run = tracer.span("study");
///     let _phase = tracer.span_detail("phase", Some("collect-traces".into()));
/// }
/// let report = profiler.finish();
/// assert_eq!(report.roots[0].name, "study");
/// assert_eq!(report.roots[0].children[0].name, "collect-traces");
/// ```
pub struct PhaseProfiler {
    sink: Arc<MemorySink>,
    tracer: Tracer,
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseProfiler {
    /// A fresh profiler with an empty in-memory buffer.
    #[must_use]
    pub fn new() -> Self {
        let sink = Arc::new(MemorySink::new());
        let tracer = Tracer::new(sink.clone());
        PhaseProfiler { sink, tracer }
    }

    /// The tracer to thread through the instrumented run. Clones are
    /// cheap and all feed the same buffer.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        self.tracer.clone()
    }

    /// Consumes the profiler and folds everything recorded so far.
    #[must_use]
    pub fn finish(self) -> ProfileReport {
        let events = self.sink.take();
        ProfileReport {
            roots: phase_tree(&events),
            summary: TraceSummary::from_events(&events),
            peak_rss_bytes: peak_rss_bytes(),
            events,
        }
    }
}

/// Peak resident set size (high-water mark) of the current process in
/// bytes. Linux-only (`/proc/self/status` `VmHWM`); `None` elsewhere
/// or on parse failure.
#[must_use]
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())?;
    Some(kb * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(
        seq: u64,
        thread: u64,
        kind: EventKind,
        name: &str,
        detail: Option<&str>,
        value: Option<f64>,
    ) -> TraceEvent {
        TraceEvent {
            seq,
            ts_ns: seq * 10,
            thread,
            kind,
            name: name.to_owned(),
            detail: detail.map(str::to_owned),
            value,
        }
    }

    #[test]
    fn worker_item_spans_graft_under_the_open_phase() {
        let events = vec![
            mk(0, 0, EventKind::SpanStart, "study", None, None),
            mk(1, 0, EventKind::SpanStart, "phase", Some("collect-traces"), None),
            // Two worker threads, no local parents of their own.
            mk(2, 1, EventKind::SpanStart, "trace", Some("bfs/road"), None),
            mk(3, 2, EventKind::SpanStart, "trace", Some("sssp/road"), None),
            mk(4, 1, EventKind::SpanEnd, "trace", Some("bfs/road"), Some(40.0)),
            mk(5, 2, EventKind::SpanEnd, "trace", Some("sssp/road"), Some(60.0)),
            mk(6, 1, EventKind::Counter, "busy-ns", Some("collect-traces"), Some(40.0)),
            mk(7, 2, EventKind::Counter, "busy-ns", Some("collect-traces"), Some(60.0)),
            mk(8, 0, EventKind::SpanEnd, "phase", Some("collect-traces"), Some(100.0)),
            mk(9, 0, EventKind::SpanEnd, "study", None, Some(120.0)),
        ];
        let roots = phase_tree(&events);
        assert_eq!(roots.len(), 1);
        let study = &roots[0];
        assert_eq!(study.name, "study");
        assert_eq!(study.wall_ns, 120.0);
        assert_eq!(study.self_ns, 20.0);
        assert_eq!(study.children.len(), 1);
        let phase = &study.children[0];
        assert_eq!(phase.name, "collect-traces");
        assert_eq!(phase.workers, 2);
        assert!((phase.busy_frac - 0.5).abs() < 1e-12);
        // Both item spans aggregate into one "trace" child.
        assert_eq!(phase.children.len(), 1);
        assert_eq!(phase.children[0].name, "trace");
        assert_eq!(phase.children[0].count, 2);
        assert_eq!(phase.children[0].wall_ns, 100.0);
        // Parallel children covered the whole phase: no self time.
        assert_eq!(phase.self_ns, 0.0);
    }

    #[test]
    fn unclosed_spans_are_dropped() {
        let events = vec![
            mk(0, 0, EventKind::SpanStart, "study", None, None),
            mk(1, 0, EventKind::SpanStart, "phase", Some("price-cells"), None),
            mk(2, 0, EventKind::SpanEnd, "phase", Some("price-cells"), Some(5.0)),
            // "study" never ends.
        ];
        let roots = phase_tree(&events);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "study");
        assert_eq!(roots[0].wall_ns, 0.0);
        assert_eq!(roots[0].count, 0);
        assert_eq!(roots[0].children[0].wall_ns, 5.0);
    }

    #[test]
    fn profiler_round_trip_produces_tree_and_summary() {
        let profiler = PhaseProfiler::new();
        let tracer = profiler.tracer();
        {
            let _study = tracer.span("study");
            {
                let _p = tracer.span_detail("phase", Some("collect-traces".into()));
                tracer.counter("traces-compiled", None, 3.0);
            }
            {
                let _p = tracer.span_detail("phase", Some("price-cells".into()));
                tracer.counter("cells-priced", None, 7.0);
            }
        }
        let report = profiler.finish();
        assert_eq!(report.roots.len(), 1);
        let root = &report.roots[0];
        assert_eq!(root.name, "study");
        let labels: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(labels, ["collect-traces", "price-cells"]);
        assert!(root.wall_ns >= root.children_wall_ns());
        assert_eq!(report.summary.traces_compiled, 3.0);
        assert_eq!(report.summary.cells_priced, 7.0);
        let flat = root.flattened();
        assert_eq!(flat.len(), 3);
        assert_eq!(flat[0].1.name, "study");
        assert_eq!(flat[1], (1, &root.children[0]));
    }

    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(bytes) = peak_rss_bytes() {
            // A running test binary surely holds between 64 KiB and 1 TiB.
            assert!(bytes > 64 * 1024, "peak rss {bytes}");
            assert!(bytes < 1 << 40, "peak rss {bytes}");
        }
    }
}

//! `gpp-obs`: the observability layer for the portability simulator.
//!
//! Two halves, both zero-cost when disabled:
//!
//! * [`cost`] — [`CostBreakdown`], a per-mechanism attribution of every
//!   nanosecond the simulator prices (launch, copy, compute, divergence,
//!   atomics, barriers, occupancy tail, worklist overhead). The invariant
//!   the rest of the workspace upholds is that the components sum to the
//!   scalar `time_ns` the pricing path already returns, within floating
//!   point round-off (1e-9 relative).
//! * [`tracing`] — span/counter instrumentation over the study pipeline:
//!   a pluggable [`TraceSink`] (JSONL file, in-memory for tests), a
//!   cheaply cloneable [`Tracer`] handle that compiles to no-ops when no
//!   sink is attached, and a [`TraceSummary`] that renders the
//!   end-of-run report (phase wall-clock, thread busy %, slowest cells).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod tracing;

pub use cost::CostBreakdown;
pub use tracing::{
    EventKind, FileSink, MemorySink, NullSink, Span, TeeSink, TraceEvent, TraceSink, TraceSummary,
    Tracer,
};

//! `gpp-obs`: the observability layer for the portability simulator.
//!
//! All of it zero-cost (one branch or one relaxed atomic load) when
//! disabled, and none of it feeds back into results — an instrumented
//! run is byte-identical to a bare one, enforced by release-mode CI
//! tests:
//!
//! * [`cost`] — [`CostBreakdown`], a per-mechanism attribution of every
//!   nanosecond the simulator prices (launch, copy, compute, divergence,
//!   atomics, barriers, occupancy tail, worklist overhead). The invariant
//!   the rest of the workspace upholds is that the components sum to the
//!   scalar `time_ns` the pricing path already returns, within floating
//!   point round-off (1e-9 relative).
//! * [`tracing`] — span/counter instrumentation over the study pipeline:
//!   a pluggable [`TraceSink`] (JSONL file, in-memory for tests), a
//!   cheaply cloneable [`Tracer`] handle that compiles to no-ops when no
//!   sink is attached, and a [`TraceSummary`] that renders the
//!   end-of-run report (phase wall-clock, thread busy %, slowest cells).
//! * [`metrics`] — the process-wide [`MetricsRegistry`]: monotonic
//!   counters, gauges, and log-bucketed histograms recorded into
//!   per-thread shards and merged into a deterministic
//!   [`MetricsSnapshot`] on demand.
//! * [`profile`] — [`PhaseProfiler`], which folds a run's trace events
//!   into a nested [`PhaseNode`] tree (total/self time, worker
//!   utilisation, peak RSS) behind `gpp profile`.
//! * [`expose`] — Prometheus text rendering of a snapshot (the future
//!   `gpp serve /metrics` endpoint); JSON exposition lives on
//!   [`MetricsSnapshot`] itself (`--metrics-out`).
//! * [`regress`] — the `gpp bench-check` gate: flatten two JSON
//!   documents of performance numbers and flag fields that moved the
//!   wrong way beyond a tolerance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod expose;
pub mod metrics;
pub mod profile;
pub mod regress;
pub mod snapshot;
pub mod tracing;

pub use cost::CostBreakdown;
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{PhaseNode, PhaseProfiler, ProfileReport};
pub use snapshot::{HistogramSnapshot, MetricsSnapshot};
pub use tracing::{
    EventKind, FileSink, MemorySink, NullSink, Span, TeeSink, TraceEvent, TraceSink, TraceSummary,
    Tracer,
};

//! Frozen, serialisable views of a [`crate::metrics::MetricsRegistry`].
//!
//! A snapshot is the exchange format of the whole metrics subsystem:
//! `--metrics-out` writes one as JSON, `gpp bench-check` flattens one
//! to compare against `BENCH_study.json`, and the Prometheus renderer
//! in [`crate::expose`] walks one to emit text format. Keys are sorted
//! (`BTreeMap`), so a snapshot of a deterministic run serialises
//! deterministically too.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A frozen histogram: exact aggregates plus the sparse non-empty
/// log₂ buckets it was computed from.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (0 when empty).
    pub min: f64,
    /// Largest observed value (0 when empty).
    pub max: f64,
    /// Interpolated median.
    pub p50: f64,
    /// Interpolated 90th percentile.
    pub p90: f64,
    /// Interpolated 99th percentile.
    pub p99: f64,
    /// `(bucket index, count)` for every non-empty bucket; bucket `i`
    /// covers `[2^i, 2^(i+1))` and bucket 0 also absorbs values below 1.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Mean observed value, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Everything a registry knew at one instant, merged across threads
/// and sorted by name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic counters, summed across threads.
    pub counters: BTreeMap<String, u64>,
    /// Gauges, merged across threads by maximum.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms, merged exactly across threads.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Serialises the snapshot as pretty-printed JSON (trailing
    /// newline included, ready to write to `--metrics-out`).
    ///
    /// # Panics
    ///
    /// Never panics in practice: the snapshot contains only maps,
    /// numbers, and strings.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("snapshot serialises");
        s.push('\n');
        s
    }

    /// Parses a snapshot previously written by
    /// [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_round_trips() {
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("study.cells_priced".into(), 306);
        snap.gauges.insert("study.wall_seconds".into(), 1.25);
        snap.histograms.insert(
            "study.cell_price_ns".into(),
            HistogramSnapshot {
                count: 306,
                sum: 1e9,
                min: 1000.0,
                max: 9e6,
                p50: 2.5e6,
                p90: 6e6,
                p99: 8.5e6,
                buckets: vec![(10, 4), (21, 302)],
            },
        );
        let text = snap.to_json();
        assert!(text.ends_with('\n'));
        let back = MetricsSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        assert!((back.histograms["study.cell_price_ns"].mean() - 1e9 / 306.0).abs() < 1e-6);
    }

    #[test]
    fn empty_snapshot_reports_empty() {
        assert!(MetricsSnapshot::default().is_empty());
    }
}

//! The `gpp bench-check` regression gate: compare two JSON documents
//! of performance numbers — a fresh [`crate::snapshot::MetricsSnapshot`]
//! or a `BENCH_study.json` baseline — and flag fields that got worse
//! than a tolerance allows.
//!
//! Both documents are [`flatten`]ed to dotted numeric keys (booleans
//! become 0/1, strings/arrays/nulls are dropped), keys are
//! [`normalize_key`]-ed so a snapshot gauge like `study.wall_seconds`
//! lines up with the bench baseline's `parallel_seconds`, and each key
//! in the intersection is judged by a direction inferred from its
//! name: times and overheads must not grow, speedups and throughputs
//! must not shrink, `*identical*` booleans must not flip to false, and
//! anything unrecognised is reported but never fails the gate.

use std::collections::BTreeMap;

use serde_json::Value;

/// Which way "better" points for a metric, inferred from its name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Times, overheads, sizes: regression when the value grows.
    LowerIsBetter,
    /// Speedups, throughputs, hit counts: regression when it shrinks.
    HigherIsBetter,
    /// Identity booleans: regression when a true flips to false
    /// (tolerance does not apply).
    MustHold,
    /// Unrecognised: compared informationally, never a regression.
    Informational,
}

/// Flattens a JSON document into dotted numeric keys. Numbers map to
/// themselves, `true`/`false` to 1/0; strings, arrays, and nulls are
/// dropped (a null bench field means "not measured on this machine").
#[must_use]
pub fn flatten(value: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    fn walk(prefix: &str, value: &Value, out: &mut BTreeMap<String, f64>) {
        match value {
            Value::Object(map) => {
                for (k, v) in map {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, v, out);
                }
            }
            Value::Number(n) => {
                if let Some(f) = n.as_f64() {
                    out.insert(prefix.to_owned(), f);
                }
            }
            Value::Bool(b) => {
                out.insert(prefix.to_owned(), f64::from(u8::from(*b)));
            }
            Value::Null | Value::String(_) | Value::Array(_) => {}
        }
    }
    walk("", value, &mut out);
    out
}

/// Canonicalises a flattened key so metrics snapshots and bench
/// baselines describe the same quantity under the same name: the
/// `counters.` / `gauges.` / `histograms.` section prefixes are
/// stripped, and snapshot gauge names with a bench-field equivalent
/// are aliased (`study.wall_seconds` → `parallel_seconds`).
#[must_use]
pub fn normalize_key(key: &str) -> String {
    let k = key
        .strip_prefix("counters.")
        .or_else(|| key.strip_prefix("gauges."))
        .or_else(|| key.strip_prefix("histograms."))
        .unwrap_or(key);
    match k {
        "study.wall_seconds" => "parallel_seconds".to_owned(),
        "study.metrics_overhead_fraction" => "metrics_overhead_fraction".to_owned(),
        _ => k.to_owned(),
    }
}

/// Infers the comparison direction from a (normalised) key name.
#[must_use]
pub fn direction_of(key: &str) -> Direction {
    if key.contains("identical") {
        Direction::MustHold
    } else if key.contains("speedup") || key.contains("per_second") || key.ends_with("hits") {
        Direction::HigherIsBetter
    } else if key.ends_with("_seconds")
        || key.contains("_seconds.")
        || key.contains("_ns")
        || key.contains("overhead")
        || key.contains("bytes")
    {
        Direction::LowerIsBetter
    } else {
        Direction::Informational
    }
}

/// One compared key.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// Normalised key.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Inferred comparison direction.
    pub direction: Direction,
    /// Relative change `current / baseline − 1` (0 when the baseline
    /// is 0).
    pub change: f64,
    /// Whether this key regressed beyond the tolerance.
    pub regressed: bool,
}

/// The outcome of comparing `current` against `baseline`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Comparison {
    /// Every key present (and numeric) in both documents, sorted.
    pub checks: Vec<Check>,
}

impl Comparison {
    /// The checks that regressed.
    #[must_use]
    pub fn regressions(&self) -> Vec<&Check> {
        self.checks.iter().filter(|c| c.regressed).collect()
    }

    /// True when no key regressed.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| !c.regressed)
    }
}

/// Compares two flattened-and-normalised JSON documents. `tolerance`
/// is the allowed relative slack in the bad direction (0.25 = a time
/// may grow 25% before failing); identity booleans ignore it.
#[must_use]
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Comparison {
    let normalise = |v: &Value| -> BTreeMap<String, f64> {
        flatten(v)
            .into_iter()
            .map(|(k, val)| (normalize_key(&k), val))
            .collect()
    };
    let base = normalise(baseline);
    let cur = normalise(current);
    let mut checks = Vec::new();
    for (key, &b) in &base {
        let Some(&c) = cur.get(key) else { continue };
        let direction = direction_of(key);
        let change = if b != 0.0 { c / b - 1.0 } else { 0.0 };
        let regressed = match direction {
            Direction::MustHold => b >= 1.0 && c < 1.0,
            Direction::LowerIsBetter => {
                b >= 0.0 && c > b * (1.0 + tolerance) && (c - b).abs() > f64::EPSILON
            }
            Direction::HigherIsBetter => b > 0.0 && c < b * (1.0 - tolerance),
            Direction::Informational => false,
        };
        checks.push(Check {
            key: key.clone(),
            baseline: b,
            current: c,
            direction,
            change,
            regressed,
        });
    }
    Comparison { checks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn flatten_handles_nesting_bools_and_nulls() {
        let v = json!({
            "a": 1.5,
            "grid": {"apps": 17, "deep": {"x": true}},
            "skip": null,
            "name": "study_grid",
            "arr": [1, 2]
        });
        let flat = flatten(&v);
        assert_eq!(flat["a"], 1.5);
        assert_eq!(flat["grid.apps"], 17.0);
        assert_eq!(flat["grid.deep.x"], 1.0);
        assert!(!flat.contains_key("skip"));
        assert!(!flat.contains_key("name"));
        assert!(!flat.contains_key("arr"));
    }

    #[test]
    fn snapshot_gauges_alias_to_bench_fields() {
        assert_eq!(normalize_key("gauges.study.wall_seconds"), "parallel_seconds");
        assert_eq!(normalize_key("counters.study.cells_priced"), "study.cells_priced");
        assert_eq!(normalize_key("parallel_seconds"), "parallel_seconds");
    }

    #[test]
    fn directions_follow_key_names() {
        assert_eq!(direction_of("parallel_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction_of("metrics_overhead_fraction"), Direction::LowerIsBetter);
        assert_eq!(direction_of("trace_arena_bytes_per_item"), Direction::LowerIsBetter);
        assert_eq!(direction_of("speedup"), Direction::HigherIsBetter);
        assert_eq!(direction_of("trace_cache.hits"), Direction::HigherIsBetter);
        // The ISSUE-9 native-tier fields must be guarded, not merely
        // informational: the committed speedup floor may never sink
        // below baseline tolerance, and tier identity must hold.
        assert_eq!(direction_of("native_kernel_speedup"), Direction::HigherIsBetter);
        assert_eq!(direction_of("dsl_study_native_seconds"), Direction::LowerIsBetter);
        assert_eq!(direction_of("dsl_tiers_identical"), Direction::MustHold);
        assert_eq!(
            direction_of("parallel_identical_to_serial"),
            Direction::MustHold
        );
        // The portfolio-engine fields: the committed matrix-vs-naive
        // speedup floor is guarded upward, the exact-search budget
        // downward, and curve thread-invariance must hold.
        assert_eq!(
            direction_of("portfolio_matrix_speedup"),
            Direction::HigherIsBetter
        );
        assert_eq!(
            direction_of("portfolio_exact_k3_seconds"),
            Direction::LowerIsBetter
        );
        assert_eq!(
            direction_of("portfolio_curve_identical"),
            Direction::MustHold
        );
        assert_eq!(
            direction_of("portfolio_scorers_identical"),
            Direction::MustHold
        );
        assert_eq!(direction_of("grid.apps"), Direction::Informational);
    }

    #[test]
    fn slower_time_beyond_tolerance_regresses() {
        let base = json!({"parallel_seconds": 1.0, "speedup": 4.0});
        let ok = json!({"parallel_seconds": 1.2, "speedup": 3.5});
        let bad = json!({"parallel_seconds": 1.5, "speedup": 2.0});
        assert!(compare(&base, &ok, 0.25).passed());
        let cmp = compare(&base, &bad, 0.25);
        assert!(!cmp.passed());
        let keys: Vec<&str> = cmp.regressions().iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, ["parallel_seconds", "speedup"]);
    }

    #[test]
    fn identity_flip_regresses_regardless_of_tolerance() {
        let base = json!({"traced_identical_to_untraced": true});
        let bad = json!({"traced_identical_to_untraced": false});
        assert!(!compare(&base, &bad, 1e9).passed());
        assert!(compare(&base, &base, 0.0).passed());
        // A baseline of false can't be regressed from.
        assert!(compare(&bad, &bad, 0.0).passed());
    }

    #[test]
    fn null_and_missing_fields_are_skipped() {
        let base = json!({"parallel_seconds": null, "serial_seconds": 2.0});
        let cur = json!({"parallel_seconds": 99.0, "other": 1.0});
        let cmp = compare(&base, &cur, 0.1);
        assert!(cmp.checks.is_empty());
        assert!(cmp.passed());
    }

    #[test]
    fn injected_tiny_baseline_fails_the_gate() {
        // The CI injected-regression step: a baseline claiming the study
        // ran in a picosecond must flag any real wall time.
        let base = json!({"parallel_seconds": 1e-12});
        let snapshot = json!({"gauges": {"study.wall_seconds": 0.5}});
        let cmp = compare(&base, &snapshot, 0.25);
        assert_eq!(cmp.regressions().len(), 1);
        assert_eq!(cmp.regressions()[0].key, "parallel_seconds");
    }

    #[test]
    fn informational_keys_never_fail() {
        let base = json!({"grid": {"apps": 17}});
        let cur = json!({"grid": {"apps": 99}});
        assert!(compare(&base, &cur, 0.0).passed());
    }
}

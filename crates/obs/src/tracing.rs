//! Pipeline tracing: spans, counters, pluggable sinks, and the
//! end-of-run summary.
//!
//! A [`Tracer`] is a cheaply cloneable handle. When constructed with
//! [`Tracer::disabled`] (or [`Tracer::default`]) every operation is a
//! no-op — no timestamps are taken, no allocations happen — so
//! instrumented code pays nothing in the common untraced case. When a
//! [`TraceSink`] is attached, spans and counters become
//! [`TraceEvent`]s with monotonic nanosecond timestamps (relative to
//! the tracer's construction), a process-global sequence number, and a
//! small per-thread id.
//!
//! Sinks: [`MemorySink`] buffers events for tests and summaries,
//! [`FileSink`] streams JSONL (one serialised [`TraceEvent`] per
//! line), [`TeeSink`] fans out to several sinks, [`NullSink`] discards.
//!
//! Event conventions used by the study pipeline (and consumed by
//! [`TraceSummary`]):
//!
//! * span `"study"` — the whole run;
//! * span `"phase"` with detail = phase label — one per pipeline phase;
//! * span `"trace"` / `"cell"` with detail = work-item label — one per
//!   application trace collected / per grid cell priced;
//! * counter `"busy-ns"` with detail = phase label — per-worker busy
//!   time inside a parallel phase;
//! * counters `"traces-compiled"` / `"cells-priced"` — one increment
//!   per completed work item;
//! * counters `"trace-cache-hits"` / `"trace-cache-misses"` — one
//!   increment per persistent-trace-cache lookup (a hit skips the
//!   recording that would otherwise increment `"traces-compiled"`).

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use serde::{Deserialize, Serialize};

/// What kind of occurrence a [`TraceEvent`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum EventKind {
    /// A span opened (`value` is absent).
    SpanStart,
    /// A span closed (`value` is the elapsed nanoseconds).
    SpanEnd,
    /// A counter increment (`value` is the amount).
    Counter,
}

/// One trace record: a span boundary or a counter increment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Process-global sequence number (total order of emission).
    pub seq: u64,
    /// Monotonic timestamp in nanoseconds since the tracer was created.
    pub ts_ns: u64,
    /// Small dense id of the emitting thread.
    pub thread: u64,
    /// Span boundary or counter.
    pub kind: EventKind,
    /// Event name (e.g. `"phase"`, `"cell"`, `"busy-ns"`).
    pub name: String,
    /// Optional qualifier (phase label, cell label, …).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub detail: Option<String>,
    /// Elapsed nanoseconds for [`EventKind::SpanEnd`], amount for
    /// [`EventKind::Counter`].
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub value: Option<f64>,
}

/// Where trace events go. Implementations must tolerate concurrent
/// [`TraceSink::record`] calls from many threads.
pub trait TraceSink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: TraceEvent);
    /// Flushes any buffered output; the default does nothing.
    fn flush(&self) {}
}

/// A sink that discards every event (useful for overhead benches).
#[derive(Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: TraceEvent) {}
}

/// An in-memory sink for tests and end-of-run summaries.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<TraceEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a copy of all events recorded so far.
    #[must_use]
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").clone()
    }

    /// Drains and returns all events recorded so far.
    #[must_use]
    pub fn take(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace buffer poisoned"))
    }
}

impl TraceSink for MemorySink {
    fn record(&self, event: TraceEvent) {
        self.events.lock().expect("trace buffer poisoned").push(event);
    }
}

/// A sink that appends one JSON object per line (JSONL) to a file.
pub struct FileSink {
    out: Mutex<BufWriter<File>>,
}

impl FileSink {
    /// Creates (truncating) `path` and returns a sink writing to it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl TraceSink for FileSink {
    fn record(&self, event: TraceEvent) {
        let line = serde_json::to_string(&event).expect("trace events always serialise");
        let mut out = self.out.lock().expect("trace file poisoned");
        // A failed write surfaces on flush; dropping events silently
        // here would be worse than a delayed error.
        let _ = writeln!(out, "{line}");
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("trace file poisoned").flush();
    }
}

/// Fans every event out to several sinks in order.
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// Creates a tee over `sinks`.
    #[must_use]
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, event: TraceEvent) {
        for sink in &self.sinks {
            sink.record(event.clone());
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn current_thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

struct TracerInner {
    sink: Arc<dyn TraceSink>,
    epoch: Instant,
    seq: AtomicU64,
}

/// A cheaply cloneable tracing handle.
///
/// The default (disabled) tracer carries no sink and every call is a
/// no-op; instrument unconditionally and let callers decide whether to
/// attach a sink. Guard only *expensive label construction* (e.g.
/// `format!`) behind [`Tracer::is_enabled`].
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// A tracer that records into `sink`.
    #[must_use]
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            inner: Some(Arc::new(TracerInner {
                sink,
                epoch: Instant::now(),
                seq: AtomicU64::new(0),
            })),
        }
    }

    /// A tracer where every operation is a no-op.
    #[must_use]
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether a sink is attached. Use to skip building expensive
    /// labels when tracing is off.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn emit(&self, kind: EventKind, name: &str, detail: Option<&str>, value: Option<f64>) {
        if let Some(inner) = &self.inner {
            let event = TraceEvent {
                seq: inner.seq.fetch_add(1, Ordering::Relaxed),
                ts_ns: inner.epoch.elapsed().as_nanos() as u64,
                thread: current_thread_id(),
                kind,
                name: name.to_owned(),
                detail: detail.map(str::to_owned),
                value,
            };
            inner.sink.record(event);
        }
    }

    /// Records a counter increment of `value` under `name`/`detail`.
    pub fn counter(&self, name: &str, detail: Option<&str>, value: f64) {
        self.emit(EventKind::Counter, name, detail, Some(value));
    }

    /// Opens a span named `name`; it closes (emitting the elapsed
    /// time) when the returned guard drops.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        self.span_detail(name, None)
    }

    /// Opens a span with a detail label (phase name, cell label, …).
    #[must_use]
    pub fn span_detail(&self, name: &str, detail: Option<String>) -> Span {
        if self.inner.is_none() {
            return Span {
                tracer: Tracer::disabled(),
                name: String::new(),
                detail: None,
                start: None,
            };
        }
        self.emit(EventKind::SpanStart, name, detail.as_deref(), None);
        Span {
            tracer: self.clone(),
            name: name.to_owned(),
            detail,
            start: Some(Instant::now()),
        }
    }

    /// Flushes the attached sink, if any.
    pub fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.sink.flush();
        }
    }
}

/// RAII guard for an open span; emits [`EventKind::SpanEnd`] with the
/// elapsed nanoseconds when dropped.
pub struct Span {
    tracer: Tracer,
    name: String,
    detail: Option<String>,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            self.tracer.emit(
                EventKind::SpanEnd,
                &self.name,
                self.detail.as_deref(),
                Some(start.elapsed().as_nanos() as f64),
            );
        }
    }
}

/// Wall-clock and utilisation for one pipeline phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSummary {
    /// The phase label (the `detail` of its `"phase"` span).
    pub name: String,
    /// Wall-clock nanoseconds the phase took.
    pub wall_ns: f64,
    /// Worker threads that reported busy time in this phase.
    pub workers: usize,
    /// Mean worker utilisation in `[0, 1]`: total busy time divided by
    /// `wall_ns × workers`. Zero when no busy counters were reported.
    pub busy_frac: f64,
}

/// Aggregated view of one traced run, built from recorded events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Wall-clock nanoseconds of the `"study"` span (0 if absent).
    pub total_wall_ns: f64,
    /// Per-phase wall clock and utilisation, in completion order.
    pub phases: Vec<PhaseSummary>,
    /// Total `"traces-compiled"` counter increments.
    pub traces_compiled: f64,
    /// Total `"cells-priced"` counter increments.
    pub cells_priced: f64,
    /// Total `"trace-cache-hits"` counter increments.
    pub trace_cache_hits: f64,
    /// Total `"trace-cache-misses"` counter increments.
    pub trace_cache_misses: f64,
    /// The slowest `"cell"` spans as `(label, elapsed_ns)`, slowest
    /// first, at most five.
    pub slowest_cells: Vec<(String, f64)>,
}

impl TraceSummary {
    /// Builds a summary from recorded events (order-insensitive apart
    /// from phase listing, which follows span-end order).
    #[must_use]
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut summary = TraceSummary::default();
        let mut cells: Vec<(String, f64)> = Vec::new();
        // (phase label, total busy ns, distinct reporting threads)
        let mut busy: Vec<(String, f64, Vec<u64>)> = Vec::new();
        for e in events {
            match e.kind {
                EventKind::SpanEnd => {
                    let elapsed = e.value.unwrap_or(0.0);
                    match e.name.as_str() {
                        "study" => summary.total_wall_ns = elapsed,
                        "phase" => summary.phases.push(PhaseSummary {
                            name: e.detail.clone().unwrap_or_default(),
                            wall_ns: elapsed,
                            workers: 0,
                            busy_frac: 0.0,
                        }),
                        "cell" => {
                            cells.push((e.detail.clone().unwrap_or_default(), elapsed));
                        }
                        _ => {}
                    }
                }
                EventKind::Counter => {
                    let v = e.value.unwrap_or(0.0);
                    match e.name.as_str() {
                        "traces-compiled" => summary.traces_compiled += v,
                        "cells-priced" => summary.cells_priced += v,
                        "trace-cache-hits" => summary.trace_cache_hits += v,
                        "trace-cache-misses" => summary.trace_cache_misses += v,
                        "busy-ns" => {
                            let label = e.detail.clone().unwrap_or_default();
                            let entry = busy.iter_mut().find(|(l, _, _)| *l == label);
                            match entry {
                                Some((_, total, threads)) => {
                                    *total += v;
                                    if !threads.contains(&e.thread) {
                                        threads.push(e.thread);
                                    }
                                }
                                None => busy.push((label, v, vec![e.thread])),
                            }
                        }
                        _ => {}
                    }
                }
                EventKind::SpanStart => {}
            }
        }
        for phase in &mut summary.phases {
            if let Some((_, total, threads)) =
                busy.iter().find(|(l, _, _)| *l == phase.name)
            {
                phase.workers = threads.len();
                if phase.wall_ns > 0.0 && !threads.is_empty() {
                    phase.busy_frac = total / (phase.wall_ns * threads.len() as f64);
                }
            }
        }
        cells.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        cells.truncate(5);
        summary.slowest_cells = cells;
        summary
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_is_inert() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        t.counter("cells-priced", None, 1.0);
        let _span = t.span("study");
        t.flush();
    }

    #[test]
    fn events_carry_monotonic_seq_and_values() {
        let sink = Arc::new(MemorySink::new());
        let t = Tracer::new(sink.clone());
        {
            let _s = t.span_detail("phase", Some("price-cells".to_owned()));
            t.counter("cells-priced", None, 1.0);
        }
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, EventKind::SpanStart);
        assert_eq!(events[1].kind, EventKind::Counter);
        assert_eq!(events[2].kind, EventKind::SpanEnd);
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(events[2].detail.as_deref(), Some("price-cells"));
        assert!(events[2].value.unwrap() >= 0.0);
    }

    #[test]
    fn trace_event_json_round_trips() {
        let e = TraceEvent {
            seq: 7,
            ts_ns: 123,
            thread: 2,
            kind: EventKind::SpanEnd,
            name: "phase".to_owned(),
            detail: Some("collect-traces".to_owned()),
            value: Some(42.0),
        };
        let json = serde_json::to_string(&e).unwrap();
        assert!(json.contains("\"span_end\""));
        let back: TraceEvent = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
        // Absent options are omitted from the JSON entirely.
        let bare = TraceEvent {
            detail: None,
            value: None,
            kind: EventKind::SpanStart,
            ..e
        };
        let json = serde_json::to_string(&bare).unwrap();
        assert!(!json.contains("detail"));
        assert!(!json.contains("value"));
    }

    #[test]
    fn tee_sink_duplicates_events() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let t = Tracer::new(Arc::new(TeeSink::new(vec![a.clone(), b.clone()])));
        t.counter("cells-priced", None, 2.0);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.events().len(), 1);
    }

    #[test]
    fn summary_aggregates_phases_cells_and_counters() {
        let mk = |seq, thread, kind, name: &str, detail: Option<&str>, value| TraceEvent {
            seq,
            ts_ns: seq,
            thread,
            kind,
            name: name.to_owned(),
            detail: detail.map(str::to_owned),
            value,
        };
        let events = vec![
            mk(0, 0, EventKind::SpanStart, "study", None, None),
            mk(1, 0, EventKind::SpanStart, "phase", Some("price-cells"), None),
            mk(2, 1, EventKind::SpanEnd, "cell", Some("bfs/road/MALI"), Some(90.0)),
            mk(3, 1, EventKind::Counter, "cells-priced", None, Some(1.0)),
            mk(4, 2, EventKind::SpanEnd, "cell", Some("bfs/road/R9"), Some(10.0)),
            mk(5, 2, EventKind::Counter, "cells-priced", None, Some(1.0)),
            mk(6, 1, EventKind::Counter, "busy-ns", Some("price-cells"), Some(90.0)),
            mk(7, 2, EventKind::Counter, "busy-ns", Some("price-cells"), Some(10.0)),
            mk(8, 0, EventKind::SpanEnd, "phase", Some("price-cells"), Some(100.0)),
            mk(9, 0, EventKind::SpanEnd, "study", None, Some(100.0)),
            mk(10, 1, EventKind::Counter, "trace-cache-hits", None, Some(3.0)),
            mk(11, 2, EventKind::Counter, "trace-cache-misses", None, Some(1.0)),
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.total_wall_ns, 100.0);
        assert_eq!(s.cells_priced, 2.0);
        assert_eq!(s.trace_cache_hits, 3.0);
        assert_eq!(s.trace_cache_misses, 1.0);
        assert_eq!(s.phases.len(), 1);
        assert_eq!(s.phases[0].workers, 2);
        assert!((s.phases[0].busy_frac - 0.5).abs() < 1e-12);
        assert_eq!(s.slowest_cells[0].0, "bfs/road/MALI");
        assert_eq!(s.slowest_cells[0].1, 90.0);
    }
}

//! Process-wide metrics: monotonic counters, gauges, and log-bucketed
//! histograms, aggregated per thread and merged on snapshot.
//!
//! The registry is built for a pipeline whose results must stay
//! byte-identical whether or not it is being observed:
//!
//! * **Disabled is (nearly) free.** Every recording call starts with one
//!   relaxed atomic load; when the registry is disabled — the default —
//!   nothing else happens: no locks, no allocation, no timestamps.
//!   Instrument unconditionally and let the entry point decide.
//! * **Recording never feeds back.** Metrics only observe; no pipeline
//!   value is derived from them, so an instrumented run produces the
//!   same dataset bit for bit (enforced by release-mode CI tests).
//! * **Lock-light.** Each thread owns a private shard (a mutex that is
//!   only ever contended by a snapshot), so workers never serialise on
//!   a global lock while recording. [`MetricsRegistry::snapshot`] merges
//!   all shards — including those of threads that have exited — into a
//!   deterministic, sorted [`MetricsSnapshot`].
//!
//! Naming convention: dotted lower-case paths, `<subsystem>.<what>`
//! (`study.cells_priced`, `trace_cache.bytes_read`,
//! `replay.configs_priced`). Histogram values are nanoseconds unless the
//! name says otherwise.
//!
//! The `par.*` family attributes executor behaviour: `par.tasks` (items
//! fanned out), `par.workers` (widest fan-out, gauge), `par.worker_busy_ns`
//! (per-worker busy time, histogram), `par.chunks_claimed` (index-range
//! claims — scheduling granularity), `par.pool_spawns` (persistent-pool
//! threads created, once per thread per process), `par.wakeups`
//! (condvar wakes of parked pool workers), and `par.nested_calls`
//! (fan-outs issued from inside another parallel worker, served
//! cooperatively instead of oversubscribing).
//!
//! The `irgl.*` family attributes DSL execution by tier: `irgl.ast_runs`
//! / `irgl.bytecode_runs` / `irgl.native_runs` (one per program
//! execution through the tree-walker, the register VM, or the
//! closure-fused native tier — `gpp profile study --dsl` shows which
//! tier actually ran), `irgl.programs_compiled` (bytecode lowerings),
//! and `irgl.native_kernels_compiled` (kernels fused to closures; both
//! stay flat across runs under compile-once-run-many).
//!
//! The `portfolio.*` family attributes the k-version strategy search:
//! `portfolio.matrix_build_ns` (histogram — one observation per dense
//! slowdown-matrix build from memoized dataset statistics),
//! `portfolio.candidates_evaluated` (complete portfolios scored by the
//! exact branch-and-bound), `portfolio.prefixes_pruned` (search-tree
//! branch points eliminated by the suffix-minima completion bound —
//! pruned plus evaluated accounts for the whole enumeration), and
//! `portfolio.beam_rounds` (beam expansion levels above the exact
//! threshold). All are byte-identical at any thread count, like the
//! curve itself.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::{HistogramSnapshot, MetricsSnapshot};

/// Number of log₂ buckets a [`Histogram`] keeps. Bucket `i` covers
/// values in `[2^i, 2^(i+1))` (bucket 0 also absorbs everything below
/// 1), which spans from sub-nanosecond to ~584 years of nanoseconds.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-bucketed histogram: exact count/sum/min/max plus 64 power-of-
/// two buckets from which p50/p90/p99 are interpolated.
///
/// Bucketing is deterministic, so merging per-thread shards is exact:
/// the merge of any partition of an observation stream equals the
/// histogram of the whole stream (property-tested in `tests/`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value lands in.
    fn bucket_of(value: f64) -> usize {
        if value < 2.0 {
            return 0;
        }
        (value.log2().floor() as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Records one observation. Non-finite and negative values are
    /// clamped to zero rather than dropped, so `count` always equals the
    /// number of calls.
    pub fn observe(&mut self, value: f64) {
        let v = if value.is_finite() && value > 0.0 { value } else { 0.0 };
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Adds every observation of `other` into `self`. Exact: bucket
    /// counts, count, and extrema combine losslessly (`sum` is a float
    /// fold in shard order).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Interpolated quantile `q` in `[0, 1]`: the geometric midpoint of
    /// the bucket where the cumulative count crosses `q * count`,
    /// clamped to the observed `[min, max]`. Returns 0 for an empty
    /// histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)); bucket 0 starts at 0.
                let mid = if i == 0 {
                    1.0
                } else {
                    2f64.powf(i as f64 + 0.5)
                };
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freezes the histogram into its serialisable snapshot form.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| (i as u32, n))
                .collect(),
        }
    }
}

/// One thread's private slice of the registry. Recording locks only
/// this shard's mutex, which no other recording thread ever touches —
/// contention happens solely against a concurrent snapshot.
#[derive(Debug, Default)]
struct Shard {
    inner: Mutex<ShardData>,
}

#[derive(Debug, Default)]
struct ShardData {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    histograms: HashMap<String, Histogram>,
}

/// A process- or scope-wide metrics registry.
///
/// Obtain the process-wide instance with [`global()`]; independent
/// instances (for tests) behave identically. All recording methods are
/// no-ops while the registry is disabled.
#[derive(Debug)]
pub struct MetricsRegistry {
    id: u64,
    enabled: AtomicBool,
    /// Every shard ever handed to a thread; kept alive here so data
    /// from exited threads still merges into snapshots.
    shards: Mutex<Vec<Arc<Shard>>>,
    /// Bumped by [`MetricsRegistry::reset`] so stale thread-local shard
    /// handles are discarded instead of resurrecting old data.
    epoch: AtomicU64,
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // (registry id, epoch) -> this thread's shard of that registry.
    static LOCAL_SHARDS: RefCell<HashMap<(u64, u64), Arc<Shard>>> =
        RefCell::new(HashMap::new());
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh, disabled registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            shards: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
        }
    }

    /// Turns recording on or off. Disabled recording costs one relaxed
    /// atomic load per call.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether recording is on.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Discards all recorded data (across every thread). The enabled
    /// flag is left as-is.
    pub fn reset(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        self.shards.lock().expect("metrics shards poisoned").clear();
    }

    /// This thread's shard, creating and registering it on first use
    /// (or after a [`MetricsRegistry::reset`]).
    fn shard(&self) -> Arc<Shard> {
        let key = (self.id, self.epoch.load(Ordering::Relaxed));
        LOCAL_SHARDS.with(|cell| {
            let mut map = cell.borrow_mut();
            if let Some(shard) = map.get(&key) {
                return Arc::clone(shard);
            }
            // Drop handles from earlier epochs of this registry.
            map.retain(|&(id, _), _| id != self.id);
            let shard = Arc::new(Shard::default());
            self.shards
                .lock()
                .expect("metrics shards poisoned")
                .push(Arc::clone(&shard));
            map.insert(key, Arc::clone(&shard));
            shard
        })
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn counter(&self, name: &str, delta: u64) {
        if !self.is_enabled() {
            return;
        }
        let shard = self.shard();
        let mut data = shard.inner.lock().expect("metrics shard poisoned");
        match data.counters.get_mut(name) {
            Some(v) => *v += delta,
            None => {
                data.counters.insert(name.to_owned(), delta);
            }
        }
    }

    /// Sets the gauge `name` on this thread. Snapshots merge gauges
    /// across threads by **maximum** — the natural reading for
    /// watermarks (peak RSS, worker counts); per-run scalars are simply
    /// set once from one thread.
    pub fn gauge(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let shard = self.shard();
        let mut data = shard.inner.lock().expect("metrics shard poisoned");
        data.gauges.insert(name.to_owned(), value);
    }

    /// Raises the gauge `name` to `value` if larger (watermark update).
    pub fn gauge_max(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let shard = self.shard();
        let mut data = shard.inner.lock().expect("metrics shard poisoned");
        match data.gauges.get_mut(name) {
            Some(v) => *v = v.max(value),
            None => {
                data.gauges.insert(name.to_owned(), value);
            }
        }
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let shard = self.shard();
        let mut data = shard.inner.lock().expect("metrics shard poisoned");
        data.histograms
            .entry(name.to_owned())
            .or_default()
            .observe(value);
    }

    /// `Some(now)` when enabled, `None` when disabled — the idiom for
    /// timing a section without paying for a timestamp when nobody is
    /// listening:
    ///
    /// ```
    /// let m = gpp_obs::metrics::global();
    /// let t = m.start();
    /// // ... work ...
    /// m.observe_since("work.duration_ns", t);
    /// ```
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.is_enabled().then(Instant::now)
    }

    /// Completes a [`MetricsRegistry::start`] timing into histogram
    /// `name` (nanoseconds). A `None` start is a no-op.
    pub fn observe_since(&self, name: &str, start: Option<Instant>) {
        if let Some(t) = start {
            self.observe(name, t.elapsed().as_nanos() as f64);
        }
    }

    /// Merges every thread's shard into one deterministic snapshot
    /// (keys sorted; counters and bucket counts summed, gauges maxed,
    /// histograms merged exactly).
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards: Vec<Arc<Shard>> = self
            .shards
            .lock()
            .expect("metrics shards poisoned")
            .clone();
        let mut snap = MetricsSnapshot::default();
        let mut histograms: HashMap<String, Histogram> = HashMap::new();
        for shard in shards {
            let data = shard.inner.lock().expect("metrics shard poisoned");
            for (k, v) in &data.counters {
                *snap.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &data.gauges {
                let slot = snap.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
                *slot = slot.max(*v);
            }
            for (k, h) in &data.histograms {
                histograms
                    .entry(k.clone())
                    .or_default()
                    .merge(h);
            }
        }
        for (k, h) in histograms {
            snap.histograms.insert(k, h.snapshot());
        }
        snap
    }
}

/// The process-wide registry the pipeline crates record into.
pub fn global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Whether the process-wide registry is recording.
#[must_use]
pub fn enabled() -> bool {
    global().is_enabled()
}

/// Enables or disables the process-wide registry.
pub fn set_enabled(on: bool) {
    global().set_enabled(on);
}

/// Adds `delta` to a process-wide counter (no-op when disabled).
pub fn counter(name: &str, delta: u64) {
    global().counter(name, delta);
}

/// Sets a process-wide gauge (no-op when disabled).
pub fn gauge(name: &str, value: f64) {
    global().gauge(name, value);
}

/// Raises a process-wide gauge watermark (no-op when disabled).
pub fn gauge_max(name: &str, value: f64) {
    global().gauge_max(name, value);
}

/// Records into a process-wide histogram (no-op when disabled).
pub fn observe(name: &str, value: f64) {
    global().observe(name, value);
}

/// [`MetricsRegistry::start`] on the process-wide registry.
#[must_use]
pub fn start() -> Option<Instant> {
    global().start()
}

/// [`MetricsRegistry::observe_since`] on the process-wide registry.
pub fn observe_since(name: &str, started: Option<Instant>) {
    global().observe_since(name, started);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::new();
        r.counter("a", 3);
        r.gauge("g", 1.0);
        r.observe("h", 5.0);
        assert!(r.start().is_none());
        let s = r.snapshot();
        assert!(s.counters.is_empty() && s.gauges.is_empty() && s.histograms.is_empty());
    }

    #[test]
    fn counters_accumulate_and_merge_across_threads() {
        let r = Arc::new(MetricsRegistry::new());
        r.set_enabled(true);
        r.counter("cells", 2);
        r.counter("cells", 3);
        let r2 = Arc::clone(&r);
        std::thread::spawn(move || {
            r2.counter("cells", 10);
            r2.counter("traces", 1);
        })
        .join()
        .unwrap();
        let s = r.snapshot();
        assert_eq!(s.counters["cells"], 15);
        assert_eq!(s.counters["traces"], 1);
    }

    #[test]
    fn gauges_merge_by_max() {
        let r = Arc::new(MetricsRegistry::new());
        r.set_enabled(true);
        r.gauge("rss", 100.0);
        let r2 = Arc::clone(&r);
        std::thread::spawn(move || r2.gauge("rss", 250.0)).join().unwrap();
        assert_eq!(r.snapshot().gauges["rss"], 250.0);
        r.gauge_max("rss", 50.0); // lower watermark is ignored on merge
        assert_eq!(r.snapshot().gauges["rss"], 250.0);
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.observe(v as f64);
        }
        assert_eq!(h.count(), 1000);
        let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
        assert!((1.0..=1000.0).contains(&p50));
        assert!(p99 >= p50 && p99 <= 1000.0);
        // Log-bucket interpolation: the medians land in the right octave.
        assert!((256.0..=1024.0).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn histogram_merge_equals_single_stream() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [0.5, 3.0, 17.0, 1e6, 42.0] {
            a.observe(v);
            whole.observe(v);
        }
        for v in [9.0, 0.0, 1e12] {
            b.observe(v);
            whole.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot(), whole.snapshot());
    }

    #[test]
    fn histogram_tolerates_non_finite_values() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        h.observe(-3.0);
        assert_eq!(h.count(), 3);
        let s = h.snapshot();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
    }

    #[test]
    fn reset_discards_data_from_all_threads() {
        let r = Arc::new(MetricsRegistry::new());
        r.set_enabled(true);
        r.counter("x", 1);
        let r2 = Arc::clone(&r);
        std::thread::spawn(move || r2.counter("x", 1)).join().unwrap();
        assert_eq!(r.snapshot().counters["x"], 2);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
        // The resetting thread records into a fresh shard afterwards.
        r.counter("x", 5);
        assert_eq!(r.snapshot().counters["x"], 5);
    }

    #[test]
    fn registries_are_independent() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.set_enabled(true);
        b.set_enabled(true);
        a.counter("only-a", 1);
        assert!(b.snapshot().counters.is_empty());
        assert_eq!(a.snapshot().counters["only-a"], 1);
    }

    #[test]
    fn observe_since_times_only_when_enabled() {
        let r = MetricsRegistry::new();
        r.observe_since("t", r.start()); // disabled: no-op
        r.set_enabled(true);
        let t = r.start();
        assert!(t.is_some());
        r.observe_since("t", t);
        let s = r.snapshot();
        assert_eq!(s.histograms["t"].count, 1);
    }
}

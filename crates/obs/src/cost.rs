//! Per-mechanism cost attribution.
//!
//! The simulator prices a kernel (and ultimately a whole run) as one
//! `f64` of nanoseconds. [`CostBreakdown`] splits that scalar into the
//! mechanisms the paper's Table VI reasons about, under the invariant
//! that [`CostBreakdown::total`] equals the scalar within floating
//! point round-off. Producers in `gpp-sim` are responsible for keeping
//! the invariant; consumers (the `explain` CLI command, tests) may rely
//! on it to 1e-9 relative error.

use serde::{Deserialize, Serialize};

/// A per-mechanism split of a priced timing, in nanoseconds.
///
/// Each field attributes part of the total to one cost mechanism of
/// the abstract GPU model. The components are additive:
/// [`CostBreakdown::total`] reconstructs the scalar timing the
/// simulator reports alongside this breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostBreakdown {
    /// Kernel-launch overhead paid on every host-driven launch.
    pub launch: f64,
    /// Host⇄device copy overhead paid alongside each launch.
    pub copy: f64,
    /// Balanced compute: ALU plus memory traffic at full convergence,
    /// including the per-kernel fixed cost.
    pub compute: f64,
    /// Divergence penalty: serial-scheme time in excess of the
    /// converged (balanced) cost of the same edges.
    pub divergence: f64,
    /// Atomic read-modify-write traffic inside kernels (per-edge
    /// atomics) and in global-barrier setup.
    pub atomics: f64,
    /// Barrier costs: workgroup/subgroup barriers, ballot and
    /// orchestration overhead, and global-barrier waits.
    pub barrier: f64,
    /// Occupancy tail: the gap between the critical-path workgroup and
    /// throughput-limited execution (straggler time the device spends
    /// underutilised).
    pub occupancy_tail: f64,
    /// Worklist push overhead (atomic queue appends, subgroup
    /// combining collectives).
    pub worklist: f64,
}

impl CostBreakdown {
    /// Sum of all components — reconstructs the scalar timing.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.launch
            + self.copy
            + self.compute
            + self.divergence
            + self.atomics
            + self.barrier
            + self.occupancy_tail
            + self.worklist
    }

    /// The components as `(label, value)` pairs in render order.
    #[must_use]
    pub fn components(&self) -> [(&'static str, f64); 8] {
        [
            ("launch", self.launch),
            ("copy", self.copy),
            ("compute", self.compute),
            ("divergence", self.divergence),
            ("atomics", self.atomics),
            ("barrier", self.barrier),
            ("occupancy tail", self.occupancy_tail),
            ("worklist", self.worklist),
        ]
    }

    /// Adds every component of `other` into `self`.
    pub fn absorb(&mut self, other: &CostBreakdown) {
        self.launch += other.launch;
        self.copy += other.copy;
        self.compute += other.compute;
        self.divergence += other.divergence;
        self.atomics += other.atomics;
        self.barrier += other.barrier;
        self.occupancy_tail += other.occupancy_tail;
        self.worklist += other.worklist;
    }

    /// Fraction of the total attributed to `component` (a label from
    /// [`CostBreakdown::components`]). Returns 0 when the total is
    /// zero or the label is unknown.
    #[must_use]
    pub fn share(&self, component: &str) -> f64 {
        let total = self.total();
        if total <= 0.0 {
            return 0.0;
        }
        self.components()
            .iter()
            .find(|(label, _)| *label == component)
            .map_or(0.0, |(_, v)| v / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_all_components() {
        let b = CostBreakdown {
            launch: 1.0,
            copy: 2.0,
            compute: 3.0,
            divergence: 4.0,
            atomics: 5.0,
            barrier: 6.0,
            occupancy_tail: 7.0,
            worklist: 8.0,
        };
        assert_eq!(b.total(), 36.0);
        assert_eq!(b.components().iter().map(|(_, v)| v).sum::<f64>(), 36.0);
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = CostBreakdown {
            launch: 1.0,
            ..CostBreakdown::default()
        };
        let b = CostBreakdown {
            launch: 2.0,
            worklist: 3.0,
            ..CostBreakdown::default()
        };
        a.absorb(&b);
        assert_eq!(a.launch, 3.0);
        assert_eq!(a.worklist, 3.0);
        assert_eq!(a.total(), 6.0);
    }

    #[test]
    fn share_is_component_over_total() {
        let b = CostBreakdown {
            launch: 3.0,
            compute: 1.0,
            ..CostBreakdown::default()
        };
        assert!((b.share("launch") - 0.75).abs() < 1e-12);
        assert_eq!(b.share("nonsense"), 0.0);
        assert_eq!(CostBreakdown::default().share("launch"), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let b = CostBreakdown {
            launch: 1.5,
            atomics: 2.5,
            ..CostBreakdown::default()
        };
        let json = serde_json::to_string(&b).unwrap();
        let back: CostBreakdown = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}

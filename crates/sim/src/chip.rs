//! Chip profiles: the per-GPU performance parameters of the cost model.
//!
//! The paper's analysis consumes only program timings, so a chip is fully
//! characterised here by the parameters that govern how the optimisations
//! of Section V interact with hardware (paper Table VI): launch and copy
//! overhead (`oitergb`), atomic RMW throughput and JIT combining
//! (`coop-cv`), barrier throughputs and local memory (`wg`/`sg`/`fg`),
//! occupancy limits (`sz256`), and memory-divergence sensitivity (the MALI
//! effect of Section VIII-c).
//!
//! The six study chips (paper Table I) are exposed via [`study_chips`];
//! their parameters are calibrated so that the paper's per-chip findings
//! (Table IX, Table X, Figures 1–5) re-emerge from the same mechanisms.
//! All times are in abstract nanoseconds.

use serde::{Deserialize, Serialize};

/// GPU vendor (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// Nvidia (discrete: Quadro M4000, GTX 1080).
    Nvidia,
    /// Intel (integrated: HD 5500, Iris 6100).
    Intel,
    /// AMD (discrete: Radeon R9).
    Amd,
    /// ARM (mobile: Mali-T628).
    Arm,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Vendor::Nvidia => "Nvidia",
            Vendor::Intel => "Intel",
            Vendor::Amd => "AMD",
            Vendor::Arm => "ARM",
        })
    }
}

/// A complete performance description of one chip (GPU + runtime).
///
/// Construct custom profiles with [`ChipProfile::builder`]; the six study
/// chips come from [`study_chips`] or the named constructors
/// ([`ChipProfile::m4000`] etc.).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Short name used throughout tables and figures (e.g. `"M4000"`).
    pub name: String,
    /// Hardware vendor.
    pub vendor: Vendor,
    /// Number of compute units.
    pub num_cus: u32,
    /// Subgroup size (1 on chips without subgroup support, like MALI).
    pub subgroup_size: u32,
    /// Whether subgroups execute in lockstep (subgroup barriers are free).
    pub lockstep_subgroups: bool,
    /// Maximum threads resident per CU (occupancy limit).
    pub max_threads_per_cu: u32,
    /// Maximum workgroups resident per CU (occupancy limit).
    pub max_wgs_per_cu: u32,
    /// Chip-wide execution throughput ceiling, in concurrently retiring
    /// threads. Resident threads beyond this hide latency but add no
    /// throughput.
    pub throughput_threads: u32,
    /// Cost of one scalar ALU operation per thread (ns).
    pub alu_cost: f64,
    /// Cost of one coalesced global-memory transaction (ns).
    pub global_mem_cost: f64,
    /// Multiplier on global-memory cost for divergent (scattered/strided)
    /// access within a workgroup. 1.0 = insensitive; MALI is very large.
    pub divergence_penalty: f64,
    /// Fraction of the divergence penalty removed by keeping threads of a
    /// workgroup in lockstep with (gratuitous) barriers (Section VIII-c).
    pub barrier_divergence_relief: f64,
    /// Cost of one local-memory access (ns).
    pub local_mem_cost: f64,
    /// Cost of one global atomic RMW on a contended location (ns,
    /// serialised throughput).
    pub atomic_rmw_cost: f64,
    /// Cost of one global atomic RMW on an uncontended location (ns).
    pub atomic_uncontended_cost: f64,
    /// Whether the OpenCL JIT already performs subgroup RMW combining
    /// (paper Section VIII-b: Nvidia chips and HD5500).
    pub jit_subgroup_combining: bool,
    /// Per-element cost of a subgroup collective (reduce/scan) used by
    /// manual cooperative conversion (ns).
    pub sg_collective_cost: f64,
    /// Cost of a workgroup barrier for a 128-thread workgroup (ns); scales
    /// linearly with workgroup size.
    pub wg_barrier_cost: f64,
    /// Cost of a subgroup barrier (ns); 0 on lockstep hardware.
    pub sg_barrier_cost: f64,
    /// Per-resident-workgroup cost of the portable global barrier (ns).
    pub global_barrier_cost_per_wg: f64,
    /// Host-side kernel launch overhead (ns).
    pub kernel_launch_cost: f64,
    /// Host<->device copy overhead for a small control transfer (ns).
    pub host_copy_cost: f64,
    /// Device-side fixed cost per kernel invocation (ns).
    pub kernel_fixed_cost: f64,
}

impl ChipProfile {
    /// Starts building a custom chip from neutral defaults.
    ///
    /// # Example
    ///
    /// ```
    /// use gpp_sim::chip::{ChipProfile, Vendor};
    ///
    /// let chip = ChipProfile::builder("TOY", Vendor::Amd)
    ///     .num_cus(8)
    ///     .subgroup_size(32)
    ///     .kernel_launch_cost(10_000.0)
    ///     .build();
    /// assert_eq!(chip.name, "TOY");
    /// ```
    pub fn builder(name: &str, vendor: Vendor) -> ChipProfileBuilder {
        ChipProfileBuilder {
            chip: ChipProfile::neutral(name, vendor),
        }
    }

    fn neutral(name: &str, vendor: Vendor) -> ChipProfile {
        ChipProfile {
            name: name.to_owned(),
            vendor,
            num_cus: 8,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 1024,
            max_wgs_per_cu: 8,
            throughput_threads: 2048,
            alu_cost: 1.0,
            global_mem_cost: 10.0,
            divergence_penalty: 2.5,
            barrier_divergence_relief: 0.15,
            local_mem_cost: 2.0,
            atomic_rmw_cost: 30.0,
            atomic_uncontended_cost: 8.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 1.0,
            wg_barrier_cost: 40.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 150.0,
            kernel_launch_cost: 20_000.0,
            host_copy_cost: 15_000.0,
            kernel_fixed_cost: 500.0,
        }
    }

    /// Nvidia Quadro M4000 (Maxwell, 13 CUs, subgroup 32). Discrete; very
    /// low launch/copy overhead; JIT performs subgroup RMW combining.
    pub fn m4000() -> ChipProfile {
        ChipProfile {
            num_cus: 13,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 2048,
            max_wgs_per_cu: 16,
            throughput_threads: 4_096,
            alu_cost: 0.9,
            global_mem_cost: 10.0,
            divergence_penalty: 3.0,
            barrier_divergence_relief: 0.30,
            local_mem_cost: 2.0,
            atomic_rmw_cost: 32.0,
            atomic_uncontended_cost: 8.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 0.14,
            wg_barrier_cost: 40.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 23.0,
            kernel_launch_cost: 2_500.0,
            host_copy_cost: 1_500.0,
            kernel_fixed_cost: 500.0,
            ..ChipProfile::neutral("M4000", Vendor::Nvidia)
        }
    }

    /// Nvidia GTX 1080 (Pascal, 20 CUs, subgroup 32). Discrete; the
    /// fastest chip of the study; JIT performs subgroup RMW combining.
    pub fn gtx1080() -> ChipProfile {
        ChipProfile {
            num_cus: 20,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 2048,
            max_wgs_per_cu: 16,
            throughput_threads: 6_144,
            alu_cost: 0.6,
            global_mem_cost: 8.0,
            divergence_penalty: 2.6,
            barrier_divergence_relief: 0.32,
            local_mem_cost: 1.6,
            atomic_rmw_cost: 24.0,
            atomic_uncontended_cost: 6.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 0.10,
            wg_barrier_cost: 32.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 25.0,
            kernel_launch_cost: 2_000.0,
            host_copy_cost: 1_200.0,
            kernel_fixed_cost: 400.0,
            ..ChipProfile::neutral("GTX1080", Vendor::Nvidia)
        }
    }

    /// Intel HD 5500 (Broadwell GT2, 24 EUs, subgroup 16). Integrated;
    /// high launch overhead; its JIT also combines subgroup RMWs.
    pub fn hd5500() -> ChipProfile {
        ChipProfile {
            num_cus: 24,
            subgroup_size: 16,
            lockstep_subgroups: false,
            max_threads_per_cu: 448,
            max_wgs_per_cu: 3,
            throughput_threads: 1_024,
            alu_cost: 3.0,
            global_mem_cost: 28.0,
            divergence_penalty: 2.2,
            barrier_divergence_relief: 0.35,
            local_mem_cost: 5.2,
            atomic_rmw_cost: 110.0,
            atomic_uncontended_cost: 24.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 3.2,
            wg_barrier_cost: 70.0,
            sg_barrier_cost: 30.0,
            global_barrier_cost_per_wg: 40.0,
            kernel_launch_cost: 7_000.0,
            host_copy_cost: 3_000.0,
            kernel_fixed_cost: 900.0,
            ..ChipProfile::neutral("HD5500", Vendor::Intel)
        }
    }

    /// Intel Iris 6100 (Broadwell GT3, 47 EUs, subgroup 16). Integrated;
    /// high launch overhead; no JIT RMW combining, so manual `coop-cv`
    /// pays off (paper Table X).
    pub fn iris6100() -> ChipProfile {
        ChipProfile {
            num_cus: 47,
            subgroup_size: 16,
            lockstep_subgroups: false,
            max_threads_per_cu: 448,
            max_wgs_per_cu: 3,
            throughput_threads: 2_048,
            alu_cost: 2.6,
            global_mem_cost: 26.0,
            divergence_penalty: 2.2,
            barrier_divergence_relief: 0.35,
            local_mem_cost: 4.8,
            atomic_rmw_cost: 120.0,
            atomic_uncontended_cost: 22.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 7.6,
            wg_barrier_cost: 65.0,
            sg_barrier_cost: 28.0,
            global_barrier_cost_per_wg: 30.0,
            kernel_launch_cost: 8_000.0,
            host_copy_cost: 3_500.0,
            kernel_fixed_cost: 900.0,
            ..ChipProfile::neutral("IRIS", Vendor::Intel)
        }
    }

    /// AMD Radeon R9 (28 CUs, subgroup 64). Discrete; no JIT combining, so
    /// `coop-cv` yields the largest sg-cmb speedup of the study.
    pub fn r9() -> ChipProfile {
        ChipProfile {
            num_cus: 28,
            subgroup_size: 64,
            lockstep_subgroups: true,
            max_threads_per_cu: 2560,
            max_wgs_per_cu: 16,
            throughput_threads: 6_144,
            alu_cost: 1.3,
            global_mem_cost: 16.0,
            divergence_penalty: 2.8,
            barrier_divergence_relief: 0.30,
            local_mem_cost: 3.2,
            atomic_rmw_cost: 50.0,
            atomic_uncontended_cost: 13.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 1.6,
            wg_barrier_cost: 80.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 20.0,
            kernel_launch_cost: 9_000.0,
            host_copy_cost: 4_000.0,
            kernel_fixed_cost: 700.0,
            ..ChipProfile::neutral("R9", Vendor::Amd)
        }
    }

    /// ARM Mali-T628 (4 CUs, no subgroups — size 1). Mobile; extreme
    /// sensitivity to intra-workgroup memory divergence (Section VIII-c)
    /// and very high launch overhead.
    pub fn mali() -> ChipProfile {
        ChipProfile {
            num_cus: 4,
            subgroup_size: 1,
            lockstep_subgroups: false,
            max_threads_per_cu: 256,
            max_wgs_per_cu: 2,
            throughput_threads: 256,
            alu_cost: 7.5,
            global_mem_cost: 60.0,
            divergence_penalty: 8.0,
            barrier_divergence_relief: 0.97,
            local_mem_cost: 50.0,
            atomic_rmw_cost: 210.0,
            atomic_uncontended_cost: 54.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 6.0,
            wg_barrier_cost: 270.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 500.0,
            kernel_launch_cost: 14_000.0,
            host_copy_cost: 6_000.0,
            kernel_fixed_cost: 1_500.0,
            ..ChipProfile::neutral("MALI", Vendor::Arm)
        }
    }

    /// Largest workgroup size supported in this model (all study chips
    /// support the study's two sizes, 128 and 256).
    pub fn max_workgroup_size(&self) -> u32 {
        self.max_threads_per_cu.min(256)
    }

    /// Number of workgroups of `wg_size` threads that can be resident on
    /// the whole chip at once (the occupancy bound of Section IV-b).
    ///
    /// # Panics
    ///
    /// Panics if `wg_size` is zero.
    pub fn resident_workgroups(&self, wg_size: u32) -> u32 {
        assert!(wg_size > 0, "workgroup size must be positive");
        let by_threads = self.max_threads_per_cu / wg_size;
        let per_cu = by_threads.min(self.max_wgs_per_cu).max(1);
        per_cu * self.num_cus
    }

    /// Cost of one workgroup barrier for a workgroup of `wg_size` threads.
    pub fn wg_barrier(&self, wg_size: u32) -> f64 {
        self.wg_barrier_cost * (wg_size as f64 / 128.0)
    }

    /// Host-side overhead of one iteration without `oitergb`: a kernel
    /// launch plus the small control copy. This is the quantity the
    /// launch-bound chips of the study pay per fixed-point iteration,
    /// and the `launch` + `copy` attribution of one iteration's
    /// [`gpp_obs::CostBreakdown`].
    pub fn launch_copy_overhead(&self) -> f64 {
        self.kernel_launch_cost + self.host_copy_cost
    }

    /// Effective divergence multiplier (≥ 1) on scattered global accesses,
    /// optionally relieved by barrier-separated execution
    /// (`barrier_relief` = workgroup barriers keep threads converged).
    pub fn divergence_factor(&self, barrier_relief: bool) -> f64 {
        if barrier_relief {
            1.0 + (self.divergence_penalty - 1.0) * (1.0 - self.barrier_divergence_relief)
        } else {
            self.divergence_penalty
        }
    }
}

/// Non-consuming builder for custom [`ChipProfile`]s (see
/// [`ChipProfile::builder`]).
#[derive(Debug, Clone)]
pub struct ChipProfileBuilder {
    chip: ChipProfile,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident : $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> Self {
                self.chip.$field = value;
                self
            }
        )*
    };
}

impl ChipProfileBuilder {
    builder_setters! {
        /// Sets the number of compute units.
        num_cus: u32,
        /// Sets the subgroup size (1 disables subgroups).
        subgroup_size: u32,
        /// Sets whether subgroups execute in lockstep.
        lockstep_subgroups: bool,
        /// Sets the per-CU resident-thread limit.
        max_threads_per_cu: u32,
        /// Sets the per-CU resident-workgroup limit.
        max_wgs_per_cu: u32,
        /// Sets the chip-wide execution throughput ceiling (threads).
        throughput_threads: u32,
        /// Sets the scalar ALU cost (ns).
        alu_cost: f64,
        /// Sets the coalesced global-memory transaction cost (ns).
        global_mem_cost: f64,
        /// Sets the divergent-access multiplier (≥ 1).
        divergence_penalty: f64,
        /// Sets the fraction of divergence relieved by barriers.
        barrier_divergence_relief: f64,
        /// Sets the local-memory access cost (ns).
        local_mem_cost: f64,
        /// Sets the contended atomic RMW cost (ns).
        atomic_rmw_cost: f64,
        /// Sets the uncontended atomic RMW cost (ns).
        atomic_uncontended_cost: f64,
        /// Sets whether the JIT performs subgroup RMW combining.
        jit_subgroup_combining: bool,
        /// Sets the per-element subgroup collective cost (ns).
        sg_collective_cost: f64,
        /// Sets the 128-thread workgroup barrier cost (ns).
        wg_barrier_cost: f64,
        /// Sets the subgroup barrier cost (ns).
        sg_barrier_cost: f64,
        /// Sets the per-resident-workgroup global barrier cost (ns).
        global_barrier_cost_per_wg: f64,
        /// Sets the host-side kernel launch cost (ns).
        kernel_launch_cost: f64,
        /// Sets the small host<->device copy cost (ns).
        host_copy_cost: f64,
        /// Sets the device-side fixed per-kernel cost (ns).
        kernel_fixed_cost: f64,
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (zero CUs, zero
    /// subgroup size, divergence penalty below 1, or relief outside
    /// `[0, 1]`).
    pub fn build(self) -> ChipProfile {
        let c = &self.chip;
        assert!(c.num_cus > 0, "chip must have at least one CU");
        assert!(c.subgroup_size > 0, "subgroup size must be at least 1");
        assert!(
            c.divergence_penalty >= 1.0,
            "divergence penalty must be >= 1"
        );
        assert!(
            (0.0..=1.0).contains(&c.barrier_divergence_relief),
            "barrier divergence relief must be in [0, 1]"
        );
        assert!(
            c.max_threads_per_cu >= 128,
            "chips must support 128-thread workgroups"
        );
        self.chip
    }
}

/// The six chips of the study, in the paper's Table I order:
/// M4000, GTX1080, HD5500, IRIS, R9, MALI.
pub fn study_chips() -> Vec<ChipProfile> {
    vec![
        ChipProfile::m4000(),
        ChipProfile::gtx1080(),
        ChipProfile::hd5500(),
        ChipProfile::iris6100(),
        ChipProfile::r9(),
        ChipProfile::mali(),
    ]
}

/// Looks up a study chip by its short name (case-insensitive).
pub fn study_chip(name: &str) -> Option<ChipProfile> {
    study_chips()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_chips_four_vendors() {
        let chips = study_chips();
        assert_eq!(chips.len(), 6);
        let mut vendors: Vec<Vendor> = chips.iter().map(|c| c.vendor).collect();
        vendors.sort();
        vendors.dedup();
        assert_eq!(vendors.len(), 4);
    }

    #[test]
    fn names_are_unique() {
        let chips = study_chips();
        let mut names: Vec<&str> = chips.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(study_chip("mali").unwrap().subgroup_size, 1);
        assert_eq!(study_chip("R9").unwrap().subgroup_size, 64);
        assert!(study_chip("RTX9090").is_none());
    }

    #[test]
    fn nvidia_has_lowest_launch_overhead() {
        let chips = study_chips();
        let nvidia_max = chips
            .iter()
            .filter(|c| c.vendor == Vendor::Nvidia)
            .map(ChipProfile::launch_copy_overhead)
            .fold(0.0f64, f64::max);
        let others_min = chips
            .iter()
            .filter(|c| c.vendor != Vendor::Nvidia)
            .map(ChipProfile::launch_copy_overhead)
            .fold(f64::INFINITY, f64::min);
        assert!(nvidia_max < others_min);
    }

    #[test]
    fn mali_is_most_divergence_sensitive() {
        let chips = study_chips();
        let mali = study_chip("MALI").unwrap();
        for c in &chips {
            if c.name != "MALI" {
                assert!(c.divergence_penalty < mali.divergence_penalty);
            }
        }
    }

    #[test]
    fn resident_workgroups_respects_both_limits() {
        let chip = ChipProfile::m4000();
        // 2048 threads / 128 = 16, capped at max 16 workgroups -> 16 * 13.
        assert_eq!(chip.resident_workgroups(128), 16 * 13);
        // 2048 / 256 = 8 workgroups per CU.
        assert_eq!(chip.resident_workgroups(256), 8 * 13);
        let mali = ChipProfile::mali();
        // 256 threads / 256 = 1 workgroup per CU.
        assert_eq!(mali.resident_workgroups(256), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resident_workgroups_rejects_zero() {
        ChipProfile::m4000().resident_workgroups(0);
    }

    #[test]
    fn wg_barrier_scales_with_size() {
        let chip = ChipProfile::r9();
        assert!((chip.wg_barrier(256) - 2.0 * chip.wg_barrier(128)).abs() < 1e-9);
    }

    #[test]
    fn divergence_factor_bounds() {
        for chip in study_chips() {
            let relieved = chip.divergence_factor(true);
            let raw = chip.divergence_factor(false);
            assert!(relieved >= 1.0);
            assert!(raw >= relieved);
            assert!((raw - chip.divergence_penalty).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_produces_custom_chip() {
        let chip = ChipProfile::builder("TOY", Vendor::Intel)
            .num_cus(2)
            .subgroup_size(8)
            .divergence_penalty(4.0)
            .build();
        assert_eq!(chip.num_cus, 2);
        assert_eq!(chip.subgroup_size, 8);
        assert_eq!(chip.vendor, Vendor::Intel);
    }

    #[test]
    #[should_panic(expected = "divergence penalty")]
    fn builder_rejects_sub_one_divergence() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .divergence_penalty(0.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn builder_rejects_zero_cus() {
        ChipProfile::builder("BAD", Vendor::Amd).num_cus(0).build();
    }

    #[test]
    fn serde_round_trip() {
        let chip = ChipProfile::iris6100();
        let json = serde_json::to_string(&chip).unwrap();
        let back: ChipProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(chip, back);
    }

    #[test]
    fn study_chip_table_matches_paper_table1() {
        // Vendor / #CUs / subgroup size, paper Table I.
        let expect = [
            ("M4000", Vendor::Nvidia, 13, 32),
            ("GTX1080", Vendor::Nvidia, 20, 32),
            ("HD5500", Vendor::Intel, 24, 16),
            ("IRIS", Vendor::Intel, 47, 16),
            ("R9", Vendor::Amd, 28, 64),
            ("MALI", Vendor::Arm, 4, 1),
        ];
        for ((name, vendor, cus, sg), chip) in expect.iter().zip(study_chips()) {
            assert_eq!(chip.name, *name);
            assert_eq!(chip.vendor, *vendor);
            assert_eq!(chip.num_cus, *cus);
            assert_eq!(chip.subgroup_size, *sg);
        }
    }
}

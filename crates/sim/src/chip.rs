//! Chip profiles: the per-GPU performance parameters of the cost model.
//!
//! The paper's analysis consumes only program timings, so a chip is fully
//! characterised here by the parameters that govern how the optimisations
//! of Section V interact with hardware (paper Table VI): launch and copy
//! overhead (`oitergb`), atomic RMW throughput and JIT combining
//! (`coop-cv`), barrier throughputs and local memory (`wg`/`sg`/`fg`),
//! occupancy limits (`sz256`), and memory-divergence sensitivity (the MALI
//! effect of Section VIII-c).
//!
//! The six study chips (paper Table I) are exposed via [`study_chips`];
//! their parameters are calibrated so that the paper's per-chip findings
//! (Table IX, Table X, Figures 1–5) re-emerge from the same mechanisms.
//! All times are in abstract nanoseconds.

use serde::{Deserialize, Serialize};

/// GPU vendor (paper Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Vendor {
    /// Nvidia (discrete: Quadro M4000, GTX 1080).
    Nvidia,
    /// Intel (integrated: HD 5500, Iris 6100).
    Intel,
    /// AMD (discrete: Radeon R9).
    Amd,
    /// ARM (mobile: Mali-T628).
    Arm,
}

impl std::fmt::Display for Vendor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Vendor::Nvidia => "Nvidia",
            Vendor::Intel => "Intel",
            Vendor::Amd => "AMD",
            Vendor::Arm => "ARM",
        })
    }
}

/// A complete performance description of one chip (GPU + runtime).
///
/// Construct custom profiles with [`ChipProfile::builder`]; the six study
/// chips come from [`study_chips`] or the named constructors
/// ([`ChipProfile::m4000`] etc.).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipProfile {
    /// Short name used throughout tables and figures (e.g. `"M4000"`).
    pub name: String,
    /// Hardware vendor.
    pub vendor: Vendor,
    /// Number of compute units.
    pub num_cus: u32,
    /// Subgroup size (1 on chips without subgroup support, like MALI).
    pub subgroup_size: u32,
    /// Whether subgroups execute in lockstep (subgroup barriers are free).
    pub lockstep_subgroups: bool,
    /// Maximum threads resident per CU (occupancy limit).
    pub max_threads_per_cu: u32,
    /// Maximum workgroups resident per CU (occupancy limit).
    pub max_wgs_per_cu: u32,
    /// Chip-wide execution throughput ceiling, in concurrently retiring
    /// threads. Resident threads beyond this hide latency but add no
    /// throughput.
    pub throughput_threads: u32,
    /// Cost of one scalar ALU operation per thread (ns).
    pub alu_cost: f64,
    /// Cost of one coalesced global-memory transaction (ns).
    pub global_mem_cost: f64,
    /// Multiplier on global-memory cost for divergent (scattered/strided)
    /// access within a workgroup. 1.0 = insensitive; MALI is very large.
    pub divergence_penalty: f64,
    /// Fraction of the divergence penalty removed by keeping threads of a
    /// workgroup in lockstep with (gratuitous) barriers (Section VIII-c).
    pub barrier_divergence_relief: f64,
    /// Cost of one local-memory access (ns).
    pub local_mem_cost: f64,
    /// Cost of one global atomic RMW on a contended location (ns,
    /// serialised throughput).
    pub atomic_rmw_cost: f64,
    /// Cost of one global atomic RMW on an uncontended location (ns).
    pub atomic_uncontended_cost: f64,
    /// Whether the OpenCL JIT already performs subgroup RMW combining
    /// (paper Section VIII-b: Nvidia chips and HD5500).
    pub jit_subgroup_combining: bool,
    /// Per-element cost of a subgroup collective (reduce/scan) used by
    /// manual cooperative conversion (ns).
    pub sg_collective_cost: f64,
    /// Cost of a workgroup barrier for a 128-thread workgroup (ns); scales
    /// linearly with workgroup size.
    pub wg_barrier_cost: f64,
    /// Cost of a subgroup barrier (ns); 0 on lockstep hardware.
    pub sg_barrier_cost: f64,
    /// Per-resident-workgroup cost of the portable global barrier (ns).
    pub global_barrier_cost_per_wg: f64,
    /// Host-side kernel launch overhead (ns).
    pub kernel_launch_cost: f64,
    /// Host<->device copy overhead for a small control transfer (ns).
    pub host_copy_cost: f64,
    /// Device-side fixed cost per kernel invocation (ns).
    pub kernel_fixed_cost: f64,
}

impl ChipProfile {
    /// Starts building a custom chip from neutral defaults.
    ///
    /// # Example
    ///
    /// ```
    /// use gpp_sim::chip::{ChipProfile, Vendor};
    ///
    /// let chip = ChipProfile::builder("TOY", Vendor::Amd)
    ///     .num_cus(8)
    ///     .subgroup_size(32)
    ///     .kernel_launch_cost(10_000.0)
    ///     .build();
    /// assert_eq!(chip.name, "TOY");
    /// ```
    pub fn builder(name: &str, vendor: Vendor) -> ChipProfileBuilder {
        ChipProfileBuilder {
            chip: ChipProfile::neutral(name, vendor),
        }
    }

    fn neutral(name: &str, vendor: Vendor) -> ChipProfile {
        ChipProfile {
            name: name.to_owned(),
            vendor,
            num_cus: 8,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 1024,
            max_wgs_per_cu: 8,
            throughput_threads: 2048,
            alu_cost: 1.0,
            global_mem_cost: 10.0,
            divergence_penalty: 2.5,
            barrier_divergence_relief: 0.15,
            local_mem_cost: 2.0,
            atomic_rmw_cost: 30.0,
            atomic_uncontended_cost: 8.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 1.0,
            wg_barrier_cost: 40.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 150.0,
            kernel_launch_cost: 20_000.0,
            host_copy_cost: 15_000.0,
            kernel_fixed_cost: 500.0,
        }
    }

    /// Nvidia Quadro M4000 (Maxwell, 13 CUs, subgroup 32). Discrete; very
    /// low launch/copy overhead; JIT performs subgroup RMW combining.
    pub fn m4000() -> ChipProfile {
        ChipProfile {
            num_cus: 13,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 2048,
            max_wgs_per_cu: 16,
            throughput_threads: 4_096,
            alu_cost: 0.9,
            global_mem_cost: 10.0,
            divergence_penalty: 3.0,
            barrier_divergence_relief: 0.30,
            local_mem_cost: 2.0,
            atomic_rmw_cost: 32.0,
            atomic_uncontended_cost: 8.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 0.14,
            wg_barrier_cost: 40.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 23.0,
            kernel_launch_cost: 2_500.0,
            host_copy_cost: 1_500.0,
            kernel_fixed_cost: 500.0,
            ..ChipProfile::neutral("M4000", Vendor::Nvidia)
        }
    }

    /// Nvidia GTX 1080 (Pascal, 20 CUs, subgroup 32). Discrete; the
    /// fastest chip of the study; JIT performs subgroup RMW combining.
    pub fn gtx1080() -> ChipProfile {
        ChipProfile {
            num_cus: 20,
            subgroup_size: 32,
            lockstep_subgroups: true,
            max_threads_per_cu: 2048,
            max_wgs_per_cu: 16,
            throughput_threads: 6_144,
            alu_cost: 0.6,
            global_mem_cost: 8.0,
            divergence_penalty: 2.6,
            barrier_divergence_relief: 0.32,
            local_mem_cost: 1.6,
            atomic_rmw_cost: 24.0,
            atomic_uncontended_cost: 6.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 0.10,
            wg_barrier_cost: 32.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 25.0,
            kernel_launch_cost: 2_000.0,
            host_copy_cost: 1_200.0,
            kernel_fixed_cost: 400.0,
            ..ChipProfile::neutral("GTX1080", Vendor::Nvidia)
        }
    }

    /// Intel HD 5500 (Broadwell GT2, 24 EUs, subgroup 16). Integrated;
    /// high launch overhead; its JIT also combines subgroup RMWs.
    pub fn hd5500() -> ChipProfile {
        ChipProfile {
            num_cus: 24,
            subgroup_size: 16,
            lockstep_subgroups: false,
            max_threads_per_cu: 448,
            max_wgs_per_cu: 3,
            throughput_threads: 1_024,
            alu_cost: 3.0,
            global_mem_cost: 28.0,
            divergence_penalty: 2.2,
            barrier_divergence_relief: 0.35,
            local_mem_cost: 5.2,
            atomic_rmw_cost: 110.0,
            atomic_uncontended_cost: 24.0,
            jit_subgroup_combining: true,
            sg_collective_cost: 3.2,
            wg_barrier_cost: 70.0,
            sg_barrier_cost: 30.0,
            global_barrier_cost_per_wg: 40.0,
            kernel_launch_cost: 7_000.0,
            host_copy_cost: 3_000.0,
            kernel_fixed_cost: 900.0,
            ..ChipProfile::neutral("HD5500", Vendor::Intel)
        }
    }

    /// Intel Iris 6100 (Broadwell GT3, 47 EUs, subgroup 16). Integrated;
    /// high launch overhead; no JIT RMW combining, so manual `coop-cv`
    /// pays off (paper Table X).
    pub fn iris6100() -> ChipProfile {
        ChipProfile {
            num_cus: 47,
            subgroup_size: 16,
            lockstep_subgroups: false,
            max_threads_per_cu: 448,
            max_wgs_per_cu: 3,
            throughput_threads: 2_048,
            alu_cost: 2.6,
            global_mem_cost: 26.0,
            divergence_penalty: 2.2,
            barrier_divergence_relief: 0.35,
            local_mem_cost: 4.8,
            atomic_rmw_cost: 120.0,
            atomic_uncontended_cost: 22.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 7.6,
            wg_barrier_cost: 65.0,
            sg_barrier_cost: 28.0,
            global_barrier_cost_per_wg: 30.0,
            kernel_launch_cost: 8_000.0,
            host_copy_cost: 3_500.0,
            kernel_fixed_cost: 900.0,
            ..ChipProfile::neutral("IRIS", Vendor::Intel)
        }
    }

    /// AMD Radeon R9 (28 CUs, subgroup 64). Discrete; no JIT combining, so
    /// `coop-cv` yields the largest sg-cmb speedup of the study.
    pub fn r9() -> ChipProfile {
        ChipProfile {
            num_cus: 28,
            subgroup_size: 64,
            lockstep_subgroups: true,
            max_threads_per_cu: 2560,
            max_wgs_per_cu: 16,
            throughput_threads: 6_144,
            alu_cost: 1.3,
            global_mem_cost: 16.0,
            divergence_penalty: 2.8,
            barrier_divergence_relief: 0.30,
            local_mem_cost: 3.2,
            atomic_rmw_cost: 50.0,
            atomic_uncontended_cost: 13.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 1.6,
            wg_barrier_cost: 80.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 20.0,
            kernel_launch_cost: 9_000.0,
            host_copy_cost: 4_000.0,
            kernel_fixed_cost: 700.0,
            ..ChipProfile::neutral("R9", Vendor::Amd)
        }
    }

    /// ARM Mali-T628 (4 CUs, no subgroups — size 1). Mobile; extreme
    /// sensitivity to intra-workgroup memory divergence (Section VIII-c)
    /// and very high launch overhead.
    pub fn mali() -> ChipProfile {
        ChipProfile {
            num_cus: 4,
            subgroup_size: 1,
            lockstep_subgroups: false,
            max_threads_per_cu: 256,
            max_wgs_per_cu: 2,
            throughput_threads: 256,
            alu_cost: 7.5,
            global_mem_cost: 60.0,
            divergence_penalty: 8.0,
            barrier_divergence_relief: 0.97,
            local_mem_cost: 50.0,
            atomic_rmw_cost: 210.0,
            atomic_uncontended_cost: 54.0,
            jit_subgroup_combining: false,
            sg_collective_cost: 6.0,
            wg_barrier_cost: 270.0,
            sg_barrier_cost: 0.0,
            global_barrier_cost_per_wg: 500.0,
            kernel_launch_cost: 14_000.0,
            host_copy_cost: 6_000.0,
            kernel_fixed_cost: 1_500.0,
            ..ChipProfile::neutral("MALI", Vendor::Arm)
        }
    }

    /// Largest workgroup size supported in this model (all study chips
    /// support the study's two sizes, 128 and 256).
    pub fn max_workgroup_size(&self) -> u32 {
        self.max_threads_per_cu.min(256)
    }

    /// Number of workgroups of `wg_size` threads that can be resident on
    /// the whole chip at once (the occupancy bound of Section IV-b).
    ///
    /// # Panics
    ///
    /// Panics if `wg_size` is zero.
    pub fn resident_workgroups(&self, wg_size: u32) -> u32 {
        assert!(wg_size > 0, "workgroup size must be positive");
        let by_threads = self.max_threads_per_cu / wg_size;
        let per_cu = by_threads.min(self.max_wgs_per_cu).max(1);
        per_cu * self.num_cus
    }

    /// Cost of one workgroup barrier for a workgroup of `wg_size` threads.
    pub fn wg_barrier(&self, wg_size: u32) -> f64 {
        self.wg_barrier_cost * (wg_size as f64 / 128.0)
    }

    /// Host-side overhead of one iteration without `oitergb`: a kernel
    /// launch plus the small control copy. This is the quantity the
    /// launch-bound chips of the study pay per fixed-point iteration,
    /// and the `launch` + `copy` attribution of one iteration's
    /// [`gpp_obs::CostBreakdown`].
    pub fn launch_copy_overhead(&self) -> f64 {
        self.kernel_launch_cost + self.host_copy_cost
    }

    /// Effective divergence multiplier (≥ 1) on scattered global accesses,
    /// optionally relieved by barrier-separated execution
    /// (`barrier_relief` = workgroup barriers keep threads converged).
    pub fn divergence_factor(&self, barrier_relief: bool) -> f64 {
        if barrier_relief {
            1.0 + (self.divergence_penalty - 1.0) * (1.0 - self.barrier_divergence_relief)
        } else {
            self.divergence_penalty
        }
    }

    /// Checks the profile for parameters that would poison pricing:
    /// zero geometry (`num_cus`, `subgroup_size`, occupancy limits),
    /// non-finite or non-positive costs, a divergence penalty below 1, or
    /// a barrier relief fraction outside `[0, 1]`. Every synthetic chip —
    /// interpolated, latin-hypercube-sampled, or loaded from a
    /// `--chips-file` JSON — goes through this before anything is priced,
    /// so a NaN or negative cost can never silently corrupt a sweep.
    ///
    /// `sg_barrier_cost` alone may be exactly zero: subgroup barriers are
    /// free on lockstep hardware (all the Nvidia/AMD study chips).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_cus == 0 {
            return Err("chip must have at least one CU".into());
        }
        if self.subgroup_size == 0 {
            return Err("subgroup size must be at least 1".into());
        }
        if !(self.divergence_penalty.is_finite() && self.divergence_penalty >= 1.0) {
            return Err("divergence penalty must be >= 1".into());
        }
        if !(self.barrier_divergence_relief.is_finite()
            && (0.0..=1.0).contains(&self.barrier_divergence_relief))
        {
            return Err("barrier divergence relief must be in [0, 1]".into());
        }
        if self.max_threads_per_cu < 128 {
            return Err("chips must support 128-thread workgroups".into());
        }
        if self.max_wgs_per_cu == 0 {
            return Err("max_wgs_per_cu must be at least 1".into());
        }
        if self.throughput_threads == 0 {
            return Err("throughput_threads must be at least 1".into());
        }
        let positive = [
            ("alu_cost", self.alu_cost),
            ("global_mem_cost", self.global_mem_cost),
            ("local_mem_cost", self.local_mem_cost),
            ("atomic_rmw_cost", self.atomic_rmw_cost),
            ("atomic_uncontended_cost", self.atomic_uncontended_cost),
            ("sg_collective_cost", self.sg_collective_cost),
            ("wg_barrier_cost", self.wg_barrier_cost),
            ("global_barrier_cost_per_wg", self.global_barrier_cost_per_wg),
            ("kernel_launch_cost", self.kernel_launch_cost),
            ("host_copy_cost", self.host_copy_cost),
            ("kernel_fixed_cost", self.kernel_fixed_cost),
        ];
        for (name, value) in positive {
            if !(value.is_finite() && value > 0.0) {
                return Err(format!("{name} must be positive and finite (got {value})"));
            }
        }
        if !(self.sg_barrier_cost.is_finite() && self.sg_barrier_cost >= 0.0) {
            return Err(format!(
                "sg_barrier_cost must be non-negative and finite (got {})",
                self.sg_barrier_cost
            ));
        }
        Ok(())
    }

    /// Linear interpolation between two chips at parameter `t ∈ [0, 1]`:
    /// `t = 0` is `a`, `t = 1` is `b`. Continuous cost axes are lerped;
    /// integer capacity axes (`num_cus`, `max_wgs_per_cu`,
    /// `throughput_threads`) round the lerp; discrete mechanism switches
    /// (`vendor`, `subgroup_size`, `max_threads_per_cu`,
    /// `lockstep_subgroups`, `jit_subgroup_combining`) snap to the nearer
    /// endpoint, because a "half-JIT-combining" chip or a fractional
    /// subgroup width has no meaning in the cost model — and keeping
    /// `subgroup_size`/`max_threads_per_cu` on endpoint values keeps
    /// interpolated chips inside existing [`ChipBatch`] geometry families.
    ///
    /// # Panics
    ///
    /// Panics if `t` is outside `[0, 1]` or either endpoint fails
    /// [`ChipProfile::validate`].
    pub fn interpolate(a: &ChipProfile, b: &ChipProfile, t: f64) -> ChipProfile {
        assert!(
            t.is_finite() && (0.0..=1.0).contains(&t),
            "interpolation parameter must be in [0, 1]"
        );
        let lerp = |x: f64, y: f64| x + (y - x) * t;
        let lerp_u32 = |x: u32, y: u32| lerp(x as f64, y as f64).round() as u32;
        let near_b = t >= 0.5;
        let chip = ChipProfile {
            name: format!("{}~{}@{t:.3}", a.name, b.name),
            vendor: if near_b { b.vendor } else { a.vendor },
            num_cus: lerp_u32(a.num_cus, b.num_cus).max(1),
            subgroup_size: if near_b { b.subgroup_size } else { a.subgroup_size },
            lockstep_subgroups: if near_b {
                b.lockstep_subgroups
            } else {
                a.lockstep_subgroups
            },
            max_threads_per_cu: if near_b {
                b.max_threads_per_cu
            } else {
                a.max_threads_per_cu
            },
            max_wgs_per_cu: lerp_u32(a.max_wgs_per_cu, b.max_wgs_per_cu).max(1),
            throughput_threads: lerp_u32(a.throughput_threads, b.throughput_threads).max(1),
            alu_cost: lerp(a.alu_cost, b.alu_cost),
            global_mem_cost: lerp(a.global_mem_cost, b.global_mem_cost),
            divergence_penalty: lerp(a.divergence_penalty, b.divergence_penalty),
            barrier_divergence_relief: lerp(
                a.barrier_divergence_relief,
                b.barrier_divergence_relief,
            ),
            local_mem_cost: lerp(a.local_mem_cost, b.local_mem_cost),
            atomic_rmw_cost: lerp(a.atomic_rmw_cost, b.atomic_rmw_cost),
            atomic_uncontended_cost: lerp(a.atomic_uncontended_cost, b.atomic_uncontended_cost),
            jit_subgroup_combining: if near_b {
                b.jit_subgroup_combining
            } else {
                a.jit_subgroup_combining
            },
            sg_collective_cost: lerp(a.sg_collective_cost, b.sg_collective_cost),
            wg_barrier_cost: lerp(a.wg_barrier_cost, b.wg_barrier_cost),
            sg_barrier_cost: lerp(a.sg_barrier_cost, b.sg_barrier_cost),
            global_barrier_cost_per_wg: lerp(
                a.global_barrier_cost_per_wg,
                b.global_barrier_cost_per_wg,
            ),
            kernel_launch_cost: lerp(a.kernel_launch_cost, b.kernel_launch_cost),
            host_copy_cost: lerp(a.host_copy_cost, b.host_copy_cost),
            kernel_fixed_cost: lerp(a.kernel_fixed_cost, b.kernel_fixed_cost),
        };
        if let Err(e) = chip.validate() {
            panic!("interpolating valid chips must yield a valid chip: {e}");
        }
        chip
    }
}

/// Non-consuming builder for custom [`ChipProfile`]s (see
/// [`ChipProfile::builder`]).
#[derive(Debug, Clone)]
pub struct ChipProfileBuilder {
    chip: ChipProfile,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident : $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> Self {
                self.chip.$field = value;
                self
            }
        )*
    };
}

impl ChipProfileBuilder {
    builder_setters! {
        /// Sets the number of compute units.
        num_cus: u32,
        /// Sets the subgroup size (1 disables subgroups).
        subgroup_size: u32,
        /// Sets whether subgroups execute in lockstep.
        lockstep_subgroups: bool,
        /// Sets the per-CU resident-thread limit.
        max_threads_per_cu: u32,
        /// Sets the per-CU resident-workgroup limit.
        max_wgs_per_cu: u32,
        /// Sets the chip-wide execution throughput ceiling (threads).
        throughput_threads: u32,
        /// Sets the scalar ALU cost (ns).
        alu_cost: f64,
        /// Sets the coalesced global-memory transaction cost (ns).
        global_mem_cost: f64,
        /// Sets the divergent-access multiplier (≥ 1).
        divergence_penalty: f64,
        /// Sets the fraction of divergence relieved by barriers.
        barrier_divergence_relief: f64,
        /// Sets the local-memory access cost (ns).
        local_mem_cost: f64,
        /// Sets the contended atomic RMW cost (ns).
        atomic_rmw_cost: f64,
        /// Sets the uncontended atomic RMW cost (ns).
        atomic_uncontended_cost: f64,
        /// Sets whether the JIT performs subgroup RMW combining.
        jit_subgroup_combining: bool,
        /// Sets the per-element subgroup collective cost (ns).
        sg_collective_cost: f64,
        /// Sets the 128-thread workgroup barrier cost (ns).
        wg_barrier_cost: f64,
        /// Sets the subgroup barrier cost (ns).
        sg_barrier_cost: f64,
        /// Sets the per-resident-workgroup global barrier cost (ns).
        global_barrier_cost_per_wg: f64,
        /// Sets the host-side kernel launch cost (ns).
        kernel_launch_cost: f64,
        /// Sets the small host<->device copy cost (ns).
        host_copy_cost: f64,
        /// Sets the device-side fixed per-kernel cost (ns).
        kernel_fixed_cost: f64,
    }

    /// Finishes the build.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`ChipProfile::validate`]: zero
    /// CUs, zero subgroup size, divergence penalty below 1, relief
    /// outside `[0, 1]`, or any non-finite / non-positive cost parameter.
    pub fn build(self) -> ChipProfile {
        if let Err(e) = self.chip.validate() {
            panic!("{e}");
        }
        self.chip
    }
}

/// A group of chips sharing one *geometry family* — the same effective
/// subgroup size and the same [`ChipProfile::max_workgroup_size`] — so
/// that one walk of an aggregate table can price every chip in the group.
///
/// Frontier aggregation (how work items partition into
/// workgroup/subgroup/serial classes) and the configuration grouping of
/// `geometry_groups` depend only on those two values; chips agreeing on
/// them share every per-row routing decision of the pricing pass and
/// differ only in cost coefficients, which the chip-major evaluator keeps
/// in struct-of-arrays form so its per-chip inner loop is branch-free.
#[derive(Debug, Clone)]
pub struct ChipBatch {
    chips: Vec<ChipProfile>,
    source: Vec<usize>,
    sg_size: u32,
    max_wg: u32,
}

impl ChipBatch {
    /// Builds a batch from chips that already share a geometry family.
    ///
    /// # Panics
    ///
    /// Panics if `chips` is empty, any chip fails
    /// [`ChipProfile::validate`], or the chips disagree on effective
    /// subgroup size or maximum workgroup size (use
    /// [`ChipBatch::partition`] for mixed sets).
    pub fn new(chips: Vec<ChipProfile>) -> ChipBatch {
        assert!(!chips.is_empty(), "a chip batch must contain at least one chip");
        let key = Self::geometry_key(&chips[0]);
        for chip in &chips {
            if let Err(e) = chip.validate() {
                panic!("chip {}: {e}", chip.name);
            }
            assert_eq!(
                Self::geometry_key(chip),
                key,
                "chips in a batch must share subgroup size and maximum workgroup size"
            );
        }
        let source = (0..chips.len()).collect();
        ChipBatch {
            chips,
            source,
            sg_size: key.0,
            max_wg: key.1,
        }
    }

    /// Partitions an arbitrary chip list into geometry-family batches,
    /// preserving first-seen family order and input order within each
    /// batch. [`ChipBatch::source_indices`] maps each batch entry back to
    /// its index in `chips`.
    ///
    /// # Panics
    ///
    /// Panics if any chip fails [`ChipProfile::validate`].
    pub fn partition(chips: &[ChipProfile]) -> Vec<ChipBatch> {
        let mut batches: Vec<ChipBatch> = Vec::new();
        for (i, chip) in chips.iter().enumerate() {
            if let Err(e) = chip.validate() {
                panic!("chip {}: {e}", chip.name);
            }
            let key = Self::geometry_key(chip);
            match batches
                .iter_mut()
                .find(|b| (b.sg_size, b.max_wg) == key)
            {
                Some(batch) => {
                    batch.chips.push(chip.clone());
                    batch.source.push(i);
                }
                None => batches.push(ChipBatch {
                    chips: vec![chip.clone()],
                    source: vec![i],
                    sg_size: key.0,
                    max_wg: key.1,
                }),
            }
        }
        batches
    }

    fn geometry_key(chip: &ChipProfile) -> (u32, u32) {
        (chip.subgroup_size.max(1), chip.max_workgroup_size())
    }

    /// The chips of the batch, in insertion order.
    pub fn chips(&self) -> &[ChipProfile] {
        &self.chips
    }

    /// For each batch entry, its index in the list
    /// [`ChipBatch::partition`] was called with.
    pub fn source_indices(&self) -> &[usize] {
        &self.source
    }

    /// Effective subgroup size shared by every chip in the batch (≥ 1).
    pub fn subgroup_size(&self) -> u32 {
        self.sg_size
    }

    /// Maximum workgroup size shared by every chip in the batch.
    pub fn max_workgroup_size(&self) -> u32 {
        self.max_wg
    }

    /// Number of chips in the batch (always ≥ 1).
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Always false; provided for clippy's `len`/`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }
}

/// The six chips of the study, in the paper's Table I order:
/// M4000, GTX1080, HD5500, IRIS, R9, MALI.
pub fn study_chips() -> Vec<ChipProfile> {
    vec![
        ChipProfile::m4000(),
        ChipProfile::gtx1080(),
        ChipProfile::hd5500(),
        ChipProfile::iris6100(),
        ChipProfile::r9(),
        ChipProfile::mali(),
    ]
}

/// Looks up a study chip by its short name (case-insensitive).
pub fn study_chip(name: &str) -> Option<ChipProfile> {
    study_chips()
        .into_iter()
        .find(|c| c.name.eq_ignore_ascii_case(name))
}

/// One stratified latin-hypercube column: a random permutation of the
/// `n` strata, jittered uniformly within each stratum, all drawn from a
/// dedicated fork of the parent stream so axes are independent.
fn lhs_column(rng: &mut gpp_graph::rng::Rng64, stream: u64, n: usize) -> Vec<f64> {
    let mut r = rng.fork(stream);
    let mut strata: Vec<usize> = (0..n).collect();
    r.shuffle(&mut strata);
    strata
        .into_iter()
        .map(|s| (s as f64 + r.next_f64()) / n as f64)
        .collect()
}

/// Deterministic latin-hypercube sample of `n` synthetic chips over the
/// mechanism axes of the cost model. The same `(n, seed)` pair always
/// yields the same cloud, independent of platform or thread count, so
/// sweep outputs are reproducible end to end.
///
/// Continuous cost axes are stratified on a log scale spanning (and
/// slightly widening) the range of the six study-chip calibrations, so
/// the sweep can see a little beyond the observed hardware. The two
/// geometry axes are *quantized*: `subgroup_size` is drawn from
/// `{1, 8, 16, 32, 64}` and `max_threads_per_cu` from
/// `{128, 256, 448, 1024, 2048, 2560}`. Continuous occupancy values in
/// `(128, 256)` would each mint a fresh effective-workgroup-size family
/// and shatter the cloud into singleton [`ChipBatch`]es; the quantized
/// grid keeps any cloud within at most 10 geometry families.
///
/// Every generated profile passes [`ChipProfile::validate`].
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn latin_hypercube_chips(n: usize, seed: u64) -> Vec<ChipProfile> {
    assert!(n > 0, "need at least one chip");
    let mut rng = gpp_graph::rng::Rng64::new(seed ^ 0x6c68_735f_6368_6970); // "lhs_chip"
    let log = |u: f64, lo: f64, hi: f64| (lo.ln() + (hi.ln() - lo.ln()) * u).exp();
    let lin = |u: f64, lo: f64, hi: f64| lo + (hi - lo) * u;
    let pick = |u: f64, k: usize| ((u * k as f64) as usize).min(k - 1);

    let alu = lhs_column(&mut rng, 0, n);
    let gmem = lhs_column(&mut rng, 1, n);
    let penalty = lhs_column(&mut rng, 2, n);
    let relief = lhs_column(&mut rng, 3, n);
    let lmem = lhs_column(&mut rng, 4, n);
    let rmw = lhs_column(&mut rng, 5, n);
    let unc = lhs_column(&mut rng, 6, n);
    let sgc = lhs_column(&mut rng, 7, n);
    let wgb = lhs_column(&mut rng, 8, n);
    let sgb = lhs_column(&mut rng, 9, n);
    let gbpw = lhs_column(&mut rng, 10, n);
    let launch = lhs_column(&mut rng, 11, n);
    let copy = lhs_column(&mut rng, 12, n);
    let fixed = lhs_column(&mut rng, 13, n);
    let sg_size = lhs_column(&mut rng, 14, n);
    let mtpc = lhs_column(&mut rng, 15, n);
    let cus = lhs_column(&mut rng, 16, n);
    let wgs_per_cu = lhs_column(&mut rng, 17, n);
    let tthreads = lhs_column(&mut rng, 18, n);
    let lockstep = lhs_column(&mut rng, 19, n);
    let jit = lhs_column(&mut rng, 20, n);
    let vendor = lhs_column(&mut rng, 21, n);

    const SG_SIZES: [u32; 5] = [1, 8, 16, 32, 64];
    const MTPC: [u32; 6] = [128, 256, 448, 1024, 2048, 2560];
    const WGS_PER_CU: [u32; 5] = [2, 3, 4, 8, 16];
    const TTHREADS: [u32; 6] = [256, 512, 1024, 2048, 4096, 6144];
    const VENDORS: [Vendor; 4] = [Vendor::Nvidia, Vendor::Intel, Vendor::Amd, Vendor::Arm];

    (0..n)
        .map(|i| {
            let chip = ChipProfile {
                name: format!("LHS-{i:04}"),
                vendor: VENDORS[pick(vendor[i], VENDORS.len())],
                num_cus: lin(cus[i], 2.0, 64.0).round() as u32,
                subgroup_size: SG_SIZES[pick(sg_size[i], SG_SIZES.len())],
                lockstep_subgroups: lockstep[i] < 0.5,
                max_threads_per_cu: MTPC[pick(mtpc[i], MTPC.len())],
                max_wgs_per_cu: WGS_PER_CU[pick(wgs_per_cu[i], WGS_PER_CU.len())],
                throughput_threads: TTHREADS[pick(tthreads[i], TTHREADS.len())],
                alu_cost: log(alu[i], 0.5, 8.0),
                global_mem_cost: log(gmem[i], 6.0, 64.0),
                divergence_penalty: lin(penalty[i], 1.2, 8.5),
                barrier_divergence_relief: lin(relief[i], 0.10, 0.97),
                local_mem_cost: log(lmem[i], 1.0, 55.0),
                atomic_rmw_cost: log(rmw[i], 20.0, 230.0),
                atomic_uncontended_cost: log(unc[i], 5.0, 60.0),
                jit_subgroup_combining: jit[i] < 0.5,
                sg_collective_cost: log(sgc[i], 0.08, 8.0),
                wg_barrier_cost: log(wgb[i], 28.0, 290.0),
                sg_barrier_cost: lin(sgb[i], 0.0, 32.0),
                global_barrier_cost_per_wg: log(gbpw[i], 18.0, 520.0),
                kernel_launch_cost: log(launch[i], 1_800.0, 22_000.0),
                host_copy_cost: log(copy[i], 1_000.0, 8_000.0),
                kernel_fixed_cost: log(fixed[i], 300.0, 1_600.0),
            };
            if let Err(e) = chip.validate() {
                panic!("latin-hypercube sample out of validated bounds: {e}");
            }
            chip
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_chips_four_vendors() {
        let chips = study_chips();
        assert_eq!(chips.len(), 6);
        let mut vendors: Vec<Vendor> = chips.iter().map(|c| c.vendor).collect();
        vendors.sort();
        vendors.dedup();
        assert_eq!(vendors.len(), 4);
    }

    #[test]
    fn names_are_unique() {
        let chips = study_chips();
        let mut names: Vec<&str> = chips.iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(study_chip("mali").unwrap().subgroup_size, 1);
        assert_eq!(study_chip("R9").unwrap().subgroup_size, 64);
        assert!(study_chip("RTX9090").is_none());
    }

    #[test]
    fn nvidia_has_lowest_launch_overhead() {
        let chips = study_chips();
        let nvidia_max = chips
            .iter()
            .filter(|c| c.vendor == Vendor::Nvidia)
            .map(ChipProfile::launch_copy_overhead)
            .fold(0.0f64, f64::max);
        let others_min = chips
            .iter()
            .filter(|c| c.vendor != Vendor::Nvidia)
            .map(ChipProfile::launch_copy_overhead)
            .fold(f64::INFINITY, f64::min);
        assert!(nvidia_max < others_min);
    }

    #[test]
    fn mali_is_most_divergence_sensitive() {
        let chips = study_chips();
        let mali = study_chip("MALI").unwrap();
        for c in &chips {
            if c.name != "MALI" {
                assert!(c.divergence_penalty < mali.divergence_penalty);
            }
        }
    }

    #[test]
    fn resident_workgroups_respects_both_limits() {
        let chip = ChipProfile::m4000();
        // 2048 threads / 128 = 16, capped at max 16 workgroups -> 16 * 13.
        assert_eq!(chip.resident_workgroups(128), 16 * 13);
        // 2048 / 256 = 8 workgroups per CU.
        assert_eq!(chip.resident_workgroups(256), 8 * 13);
        let mali = ChipProfile::mali();
        // 256 threads / 256 = 1 workgroup per CU.
        assert_eq!(mali.resident_workgroups(256), 4);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn resident_workgroups_rejects_zero() {
        ChipProfile::m4000().resident_workgroups(0);
    }

    #[test]
    fn wg_barrier_scales_with_size() {
        let chip = ChipProfile::r9();
        assert!((chip.wg_barrier(256) - 2.0 * chip.wg_barrier(128)).abs() < 1e-9);
    }

    #[test]
    fn divergence_factor_bounds() {
        for chip in study_chips() {
            let relieved = chip.divergence_factor(true);
            let raw = chip.divergence_factor(false);
            assert!(relieved >= 1.0);
            assert!(raw >= relieved);
            assert!((raw - chip.divergence_penalty).abs() < 1e-12);
        }
    }

    #[test]
    fn builder_produces_custom_chip() {
        let chip = ChipProfile::builder("TOY", Vendor::Intel)
            .num_cus(2)
            .subgroup_size(8)
            .divergence_penalty(4.0)
            .build();
        assert_eq!(chip.num_cus, 2);
        assert_eq!(chip.subgroup_size, 8);
        assert_eq!(chip.vendor, Vendor::Intel);
    }

    #[test]
    #[should_panic(expected = "divergence penalty")]
    fn builder_rejects_sub_one_divergence() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .divergence_penalty(0.5)
            .build();
    }

    #[test]
    #[should_panic(expected = "at least one CU")]
    fn builder_rejects_zero_cus() {
        ChipProfile::builder("BAD", Vendor::Amd).num_cus(0).build();
    }

    #[test]
    fn serde_round_trip() {
        let chip = ChipProfile::iris6100();
        let json = serde_json::to_string(&chip).unwrap();
        let back: ChipProfile = serde_json::from_str(&json).unwrap();
        assert_eq!(chip, back);
    }

    #[test]
    fn all_study_chips_validate() {
        for chip in study_chips() {
            chip.validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "alu_cost must be positive and finite")]
    fn builder_rejects_nan_cost() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .alu_cost(f64::NAN)
            .build();
    }

    #[test]
    #[should_panic(expected = "global_mem_cost must be positive and finite")]
    fn builder_rejects_negative_cost() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .global_mem_cost(-3.0)
            .build();
    }

    #[test]
    #[should_panic(expected = "kernel_launch_cost must be positive and finite")]
    fn builder_rejects_infinite_cost() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .kernel_launch_cost(f64::INFINITY)
            .build();
    }

    #[test]
    #[should_panic(expected = "sg_barrier_cost must be non-negative")]
    fn builder_rejects_negative_sg_barrier() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .sg_barrier_cost(-1.0)
            .build();
    }

    #[test]
    fn builder_accepts_zero_sg_barrier() {
        // Lockstep hardware has free subgroup barriers; zero must stay legal.
        let chip = ChipProfile::builder("OK", Vendor::Nvidia)
            .sg_barrier_cost(0.0)
            .build();
        chip.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "throughput_threads must be at least 1")]
    fn builder_rejects_zero_throughput() {
        ChipProfile::builder("BAD", Vendor::Amd)
            .throughput_threads(0)
            .build();
    }

    #[test]
    fn interpolate_endpoints_match_inputs() {
        let a = ChipProfile::m4000();
        let b = ChipProfile::mali();
        let at = ChipProfile::interpolate(&a, &b, 0.0);
        let bt = ChipProfile::interpolate(&a, &b, 1.0);
        assert_eq!(at.alu_cost, a.alu_cost);
        assert_eq!(at.subgroup_size, a.subgroup_size);
        assert_eq!(bt.alu_cost, b.alu_cost);
        assert_eq!(bt.subgroup_size, b.subgroup_size);
        assert_eq!(bt.vendor, Vendor::Arm);
    }

    #[test]
    fn interpolate_midpoint_is_valid_and_blended() {
        let a = ChipProfile::gtx1080();
        let b = ChipProfile::iris6100();
        let mid = ChipProfile::interpolate(&a, &b, 0.5);
        mid.validate().unwrap();
        assert!(mid.alu_cost > a.alu_cost && mid.alu_cost < b.alu_cost);
        // Discrete switches snap to the nearer endpoint (t = 0.5 -> b).
        assert_eq!(mid.subgroup_size, b.subgroup_size);
        assert_eq!(mid.jit_subgroup_combining, b.jit_subgroup_combining);
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn interpolate_rejects_out_of_range_t() {
        let a = ChipProfile::m4000();
        ChipProfile::interpolate(&a, &a, 1.5);
    }

    #[test]
    fn latin_hypercube_is_deterministic_and_valid() {
        let a = latin_hypercube_chips(64, 7);
        let b = latin_hypercube_chips(64, 7);
        assert_eq!(a, b);
        for chip in &a {
            chip.validate().unwrap();
        }
        // A different seed yields a different cloud.
        let c = latin_hypercube_chips(64, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn latin_hypercube_stratifies_each_axis() {
        // With n chips and n strata per axis, every stratum is hit exactly
        // once: the sorted alu costs must interleave the log-scale grid.
        let n = 32;
        let chips = latin_hypercube_chips(n, 99);
        let mut alu: Vec<f64> = chips.iter().map(|c| c.alu_cost).collect();
        alu.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let (lo, hi) = (0.5f64.ln(), 8.0f64.ln());
        for (k, v) in alu.iter().enumerate() {
            let stratum = ((v.ln() - lo) / (hi - lo) * n as f64).floor() as usize;
            assert_eq!(stratum, k, "stratum {k} sampled more than once");
        }
    }

    #[test]
    fn latin_hypercube_geometry_axes_are_quantized() {
        let chips = latin_hypercube_chips(200, 3);
        let batches = ChipBatch::partition(&chips);
        assert!(
            batches.len() <= 10,
            "expected at most 10 geometry families, got {}",
            batches.len()
        );
        for chip in &chips {
            assert!([1, 8, 16, 32, 64].contains(&chip.subgroup_size));
            assert!([128, 256, 448, 1024, 2048, 2560].contains(&chip.max_threads_per_cu));
        }
    }

    #[test]
    fn partition_groups_by_geometry_and_keeps_source_order() {
        let chips = vec![
            ChipProfile::m4000(),   // sg 32, max wg 256
            ChipProfile::mali(),    // sg 1,  max wg 256
            ChipProfile::gtx1080(), // sg 32, max wg 256
        ];
        let batches = ChipBatch::partition(&chips);
        assert_eq!(batches.len(), 2);
        assert_eq!(batches[0].source_indices(), &[0, 2]);
        assert_eq!(batches[1].source_indices(), &[1]);
        assert_eq!(batches[0].subgroup_size(), 32);
        assert_eq!(batches[1].subgroup_size(), 1);
        let total: usize = batches.iter().map(ChipBatch::len).sum();
        assert_eq!(total, chips.len());
    }

    #[test]
    #[should_panic(expected = "share subgroup size")]
    fn batch_new_rejects_mixed_geometries() {
        ChipBatch::new(vec![ChipProfile::m4000(), ChipProfile::mali()]);
    }

    #[test]
    fn study_chip_table_matches_paper_table1() {
        // Vendor / #CUs / subgroup size, paper Table I.
        let expect = [
            ("M4000", Vendor::Nvidia, 13, 32),
            ("GTX1080", Vendor::Nvidia, 20, 32),
            ("HD5500", Vendor::Intel, 24, 16),
            ("IRIS", Vendor::Intel, 47, 16),
            ("R9", Vendor::Amd, 28, 64),
            ("MALI", Vendor::Arm, 4, 1),
        ];
        for ((name, vendor, cus, sg), chip) in expect.iter().zip(study_chips()) {
            assert_eq!(chip.name, *name);
            assert_eq!(chip.vendor, *vendor);
            assert_eq!(chip.num_cus, *cus);
            assert_eq!(chip.subgroup_size, *sg);
        }
    }
}

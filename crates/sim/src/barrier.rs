//! The portable inter-workgroup global barrier (paper Section V-C).
//!
//! OpenCL gives no forward-progress guarantee between workgroups, so a
//! naive global barrier can deadlock if more workgroups are launched than
//! can be resident. The portable recipe (Sorensen et al., the paper's
//! reference 17) first
//! *discovers* the occupancy — how many workgroups the chip actually keeps
//! resident — then launches exactly that many persistent workgroups and
//! synchronises them with a master/slave flag protocol.
//!
//! This module provides both a *functional* simulation of that protocol
//! (used by tests to show the recipe is deadlock-free exactly when the
//! occupancy bound is respected) and the *cost* model used by the
//! execution engine.

use crate::chip::ChipProfile;

/// A discovered execution environment for global synchronisation.
///
/// # Example
///
/// ```
/// use gpp_sim::barrier::GlobalBarrier;
/// use gpp_sim::chip::ChipProfile;
///
/// let chip = ChipProfile::r9();
/// let gb = GlobalBarrier::discover(&chip, 128);
/// assert_eq!(gb.resident_workgroups(), chip.resident_workgroups(128));
/// assert!(gb.barrier_cost() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalBarrier {
    resident_wgs: u32,
    wg_size: u32,
    setup_cost: f64,
    setup_atomic_cost: f64,
    barrier_cost: f64,
}

impl GlobalBarrier {
    /// Runs (the cost model of) occupancy discovery on `chip` for
    /// workgroups of `wg_size` threads.
    ///
    /// # Panics
    ///
    /// Panics if `wg_size` is zero.
    pub fn discover(chip: &ChipProfile, wg_size: u32) -> Self {
        let resident = chip.resident_workgroups(wg_size);
        // Discovery: every candidate workgroup performs one global RMW on a
        // shared counter plus a polling read; the master then closes the
        // poll with one more RMW and a memory fence.
        let setup_cost = resident as f64 * (chip.atomic_rmw_cost + chip.global_mem_cost)
            + chip.atomic_rmw_cost
            + chip.global_mem_cost;
        // One barrier episode: each slave writes its flag and polls the
        // master's release flag; the master polls all slaves then releases.
        // Cost scales with resident workgroups (the master's serial scan)
        // plus two intra-workgroup barriers bracketing the episode.
        let barrier_cost =
            resident as f64 * chip.global_barrier_cost_per_wg + 2.0 * chip.wg_barrier(wg_size);
        GlobalBarrier {
            resident_wgs: resident,
            wg_size,
            setup_cost,
            setup_atomic_cost: (resident as f64 + 1.0) * chip.atomic_rmw_cost,
            barrier_cost,
        }
    }

    /// Number of persistent workgroups the discovered environment uses.
    pub fn resident_workgroups(&self) -> u32 {
        self.resident_wgs
    }

    /// Workgroup size the environment was discovered for.
    pub fn workgroup_size(&self) -> u32 {
        self.wg_size
    }

    /// One-time cost of discovery and environment setup (ns).
    pub fn setup_cost(&self) -> f64 {
        self.setup_cost
    }

    /// The atomic-RMW share of [`GlobalBarrier::setup_cost`]: one RMW
    /// per candidate workgroup plus the master's closing RMW. Used by
    /// cost attribution to book discovery atomics separately from the
    /// polling/fence traffic (which attribution books as barrier time).
    pub fn setup_atomic_cost(&self) -> f64 {
        self.setup_atomic_cost
    }

    /// Cost of one global barrier episode (ns).
    pub fn barrier_cost(&self) -> f64 {
        self.barrier_cost
    }
}

/// Outcome of the functional master/slave barrier protocol simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolOutcome {
    /// Every workgroup passed the barrier.
    Released {
        /// Number of protocol steps (flag reads/writes) executed.
        steps: usize,
    },
    /// The protocol cannot complete: some participant never becomes
    /// resident, so the master polls forever.
    Deadlock,
}

/// Functionally simulates the master/slave global-barrier protocol under
/// the *occupancy-bound execution model* (paper Section IV-b): only
/// `resident` workgroups make progress; the rest are not scheduled until
/// a resident one finishes — which persistent kernels never do.
///
/// Returns [`ProtocolOutcome::Deadlock`] iff `participants > resident`,
/// demonstrating why the portable recipe must first discover occupancy.
///
/// # Panics
///
/// Panics if `participants` is zero.
pub fn simulate_protocol(participants: u32, resident: u32) -> ProtocolOutcome {
    assert!(participants > 0, "barrier needs at least one participant");
    if participants > resident {
        // The master (workgroup 0) waits on slave flags that will never be
        // set: non-resident workgroups are not scheduled while the
        // resident ones spin.
        return ProtocolOutcome::Deadlock;
    }
    // All participants are resident: run the two-phase protocol.
    let n = participants as usize;
    let mut slave_flag = vec![false; n];
    let mut release_flag = vec![false; n];
    let mut steps = 0usize;

    // Phase 1: every slave announces arrival; the master observes each.
    for (wg, flag) in slave_flag.iter_mut().enumerate().skip(1) {
        *flag = true; // slave write
        steps += 1;
        let _ = wg;
    }
    for flag in slave_flag.iter().skip(1) {
        assert!(*flag, "master observed an unset slave flag");
        steps += 1; // master read
    }
    // Phase 2: the master releases every slave; slaves observe the release.
    for flag in release_flag.iter_mut().skip(1) {
        *flag = true; // master write
        steps += 1;
    }
    let mut released = 1usize; // the master releases itself
    for flag in release_flag.iter().skip(1) {
        assert!(*flag, "slave observed an unset release flag");
        released += 1;
        steps += 1; // slave read
    }
    assert_eq!(released, n, "not every workgroup passed the barrier");
    ProtocolOutcome::Released { steps }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};

    #[test]
    fn discovery_matches_chip_occupancy() {
        for chip in study_chips() {
            for ws in [128, 256] {
                let gb = GlobalBarrier::discover(&chip, ws);
                assert_eq!(gb.resident_workgroups(), chip.resident_workgroups(ws));
                assert_eq!(gb.workgroup_size(), ws);
            }
        }
    }

    #[test]
    fn costs_are_positive_and_scale_with_occupancy() {
        let big = GlobalBarrier::discover(&ChipProfile::r9(), 128);
        let small = GlobalBarrier::discover(&ChipProfile::mali(), 128);
        assert!(big.setup_cost() > 0.0 && big.barrier_cost() > 0.0);
        // R9 keeps two orders of magnitude more workgroups resident, so its
        // barrier episodes are more expensive than MALI's.
        assert!(big.barrier_cost() > small.barrier_cost());
    }

    #[test]
    fn setup_atomic_share_is_within_setup_cost() {
        for chip in study_chips() {
            for ws in [128, 256] {
                let gb = GlobalBarrier::discover(&chip, ws);
                let atomics = gb.setup_atomic_cost();
                assert!(atomics > 0.0, "{}", chip.name);
                assert!(atomics < gb.setup_cost(), "{}", chip.name);
                // One RMW per candidate workgroup plus the master's close.
                let expect = (gb.resident_workgroups() as f64 + 1.0) * chip.atomic_rmw_cost;
                assert_eq!(atomics, expect, "{}", chip.name);
            }
        }
    }

    #[test]
    fn protocol_releases_all_when_occupancy_respected() {
        match simulate_protocol(64, 64) {
            ProtocolOutcome::Released { steps } => {
                // 4 flag operations per slave (announce, observe, release,
                // observe release).
                assert_eq!(steps, 4 * 63);
            }
            ProtocolOutcome::Deadlock => panic!("unexpected deadlock"),
        }
    }

    #[test]
    fn protocol_deadlocks_when_oversubscribed() {
        assert_eq!(simulate_protocol(65, 64), ProtocolOutcome::Deadlock);
        assert_eq!(simulate_protocol(1000, 8), ProtocolOutcome::Deadlock);
    }

    #[test]
    fn single_workgroup_barrier_is_trivial() {
        assert_eq!(
            simulate_protocol(1, 1),
            ProtocolOutcome::Released { steps: 0 }
        );
    }

    #[test]
    #[should_panic(expected = "at least one participant")]
    fn protocol_rejects_zero_participants() {
        simulate_protocol(0, 4);
    }

    #[test]
    fn discovered_environment_never_deadlocks() {
        for chip in study_chips() {
            let gb = GlobalBarrier::discover(&chip, 128);
            let outcome =
                simulate_protocol(gb.resident_workgroups(), chip.resident_workgroups(128));
            assert!(
                matches!(outcome, ProtocolOutcome::Released { .. }),
                "{}",
                chip.name
            );
        }
    }
}

//! The optimisation space of the study (paper Section V).
//!
//! Six optimisation axes are modelled, exactly as in the paper:
//!
//! - `coop-cv` — cooperative conversion: combine worklist-push atomic RMWs
//!   within a subgroup into one RMW (Section V-A);
//! - `wg` / `sg` / `fg` — nested-parallelism load balancing at workgroup,
//!   subgroup, and fine-grained granularity; `fg` takes a
//!   one-edge-per-iteration (`fg1`) or eight-edge (`fg8`) variant
//!   (Section V-B);
//! - `oitergb` — iteration outlining using a portable global barrier
//!   (Section V-C);
//! - `sz256` — workgroup size 256 instead of the default 128 (Section V-D).
//!
//! `coop-cv`, `wg`, `sg`, `oitergb` and `sz256` are independent booleans;
//! `fg` is three-valued. The full space therefore has
//! `2^5 × 3 = 96` configurations: the baseline plus the paper's "95
//! optimisation combinations".

use std::fmt;

use serde::{Deserialize, Serialize};

/// The fine-grained load-balancing mode (paper `fg1` / `fg8`).
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub enum FgMode {
    /// Fine-grained balancing disabled.
    #[default]
    Off,
    /// One edge processed per inspector/executor iteration.
    Fg1,
    /// Eight edges processed per inspector/executor iteration.
    Fg8,
}

/// The binary view of the optimisation space used by the statistical
/// analysis: `fg1` and `fg8` are treated as two mutually exclusive binary
/// optimisations, exactly as in the paper (Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Optimization {
    /// Cooperative conversion of worklist-push RMWs.
    CoopCv,
    /// Workgroup-level nested parallelism.
    Wg,
    /// Subgroup-level nested parallelism.
    Sg,
    /// Fine-grained nested parallelism, one edge per iteration.
    Fg1,
    /// Fine-grained nested parallelism, eight edges per iteration.
    Fg8,
    /// Iteration outlining with a portable global barrier.
    Oitergb,
    /// Workgroup size 256 (default is 128).
    Sz256,
}

impl Optimization {
    /// All seven binary optimisations, in the paper's naming order.
    pub const ALL: [Optimization; 7] = [
        Optimization::CoopCv,
        Optimization::Wg,
        Optimization::Sg,
        Optimization::Fg1,
        Optimization::Fg8,
        Optimization::Oitergb,
        Optimization::Sz256,
    ];

    /// The paper's sans-serif name for this optimisation.
    pub fn name(self) -> &'static str {
        match self {
            Optimization::CoopCv => "coop-cv",
            Optimization::Wg => "wg",
            Optimization::Sg => "sg",
            Optimization::Fg1 => "fg",
            Optimization::Fg8 => "fg8",
            Optimization::Oitergb => "oitergb",
            Optimization::Sz256 => "sz256",
        }
    }

    /// Parses a paper-style optimisation name.
    pub fn parse(name: &str) -> Option<Optimization> {
        Optimization::ALL.into_iter().find(|o| o.name() == name)
    }
}

impl fmt::Display for Optimization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error returned when parsing optimisation names fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseOptError {
    token: String,
}

impl fmt::Display for ParseOptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown optimisation `{}`", self.token)
    }
}

impl std::error::Error for ParseOptError {}

impl std::str::FromStr for Optimization {
    type Err = ParseOptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Optimization::parse(s).ok_or_else(|| ParseOptError {
            token: s.to_owned(),
        })
    }
}

impl std::str::FromStr for OptConfig {
    type Err = ParseOptError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        OptConfig::parse(s).ok_or_else(|| ParseOptError {
            token: s.to_owned(),
        })
    }
}

/// One point in the 96-configuration optimisation space.
///
/// # Example
///
/// ```
/// use gpp_sim::opts::{OptConfig, Optimization};
///
/// let cfg = OptConfig::baseline().with(Optimization::Sg).with(Optimization::Fg8);
/// assert_eq!(cfg.to_string(), "sg, fg8");
/// assert_eq!(cfg.workgroup_size(), 128);
/// assert!(cfg.enables(Optimization::Fg8));
/// assert!(!cfg.enables(Optimization::Fg1)); // fg1 and fg8 are exclusive
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct OptConfig {
    /// Cooperative conversion enabled.
    pub coop_cv: bool,
    /// Workgroup-level load balancing enabled.
    pub wg: bool,
    /// Subgroup-level load balancing enabled.
    pub sg: bool,
    /// Fine-grained load balancing mode.
    pub fg: FgMode,
    /// Iteration outlining enabled.
    pub oitergb: bool,
    /// Workgroup size 256 (otherwise 128).
    pub sz256: bool,
}

/// Number of points in the optimisation space (baseline + 95 combinations).
pub const NUM_CONFIGS: usize = 96;

impl OptConfig {
    /// The baseline configuration: every optimisation disabled.
    pub fn baseline() -> Self {
        OptConfig::default()
    }

    /// Whether this is the baseline (no optimisations).
    pub fn is_baseline(&self) -> bool {
        *self == OptConfig::default()
    }

    /// The workgroup size implied by `sz256` (paper Section V-D).
    pub fn workgroup_size(&self) -> u32 {
        if self.sz256 {
            256
        } else {
            128
        }
    }

    /// Whether the given binary optimisation is enabled.
    pub fn enables(&self, opt: Optimization) -> bool {
        match opt {
            Optimization::CoopCv => self.coop_cv,
            Optimization::Wg => self.wg,
            Optimization::Sg => self.sg,
            Optimization::Fg1 => self.fg == FgMode::Fg1,
            Optimization::Fg8 => self.fg == FgMode::Fg8,
            Optimization::Oitergb => self.oitergb,
            Optimization::Sz256 => self.sz256,
        }
    }

    /// Returns a copy with `opt` enabled. Enabling `fg1` turns off `fg8`
    /// and vice versa (they are mutually exclusive).
    #[must_use]
    pub fn with(mut self, opt: Optimization) -> Self {
        match opt {
            Optimization::CoopCv => self.coop_cv = true,
            Optimization::Wg => self.wg = true,
            Optimization::Sg => self.sg = true,
            Optimization::Fg1 => self.fg = FgMode::Fg1,
            Optimization::Fg8 => self.fg = FgMode::Fg8,
            Optimization::Oitergb => self.oitergb = true,
            Optimization::Sz256 => self.sz256 = true,
        }
        self
    }

    /// Returns a copy with `opt` disabled — the "mirror setting" of
    /// Algorithm 1 line 12. Disabling `fg1` or `fg8` sets `fg` off.
    #[must_use]
    pub fn without(mut self, opt: Optimization) -> Self {
        match opt {
            Optimization::CoopCv => self.coop_cv = false,
            Optimization::Wg => self.wg = false,
            Optimization::Sg => self.sg = false,
            Optimization::Fg1 | Optimization::Fg8 => self.fg = FgMode::Off,
            Optimization::Oitergb => self.oitergb = false,
            Optimization::Sz256 => self.sz256 = false,
        }
        self
    }

    /// Builds a configuration from a set of binary optimisations.
    ///
    /// Later entries win if both `fg1` and `fg8` are given.
    pub fn from_opts<I: IntoIterator<Item = Optimization>>(opts: I) -> Self {
        opts.into_iter()
            .fold(OptConfig::baseline(), OptConfig::with)
    }

    /// The binary optimisations enabled in this configuration, in
    /// [`Optimization::ALL`] order.
    pub fn enabled_opts(&self) -> Vec<Optimization> {
        Optimization::ALL
            .into_iter()
            .filter(|&o| self.enables(o))
            .collect()
    }

    /// The dense index of this configuration in [`all_configs`]
    /// (`0 == baseline`).
    pub fn index(&self) -> usize {
        let fg = match self.fg {
            FgMode::Off => 0,
            FgMode::Fg1 => 1,
            FgMode::Fg8 => 2,
        };
        (((((fg * 2) + usize::from(self.coop_cv)) * 2 + usize::from(self.wg)) * 2
            + usize::from(self.sg))
            * 2
            + usize::from(self.oitergb))
            * 2
            + usize::from(self.sz256)
    }

    /// Inverse of [`OptConfig::index`].
    ///
    /// # Panics
    ///
    /// Panics if `index >= NUM_CONFIGS`.
    pub fn from_index(index: usize) -> Self {
        assert!(index < NUM_CONFIGS, "config index {index} out of range");
        let sz256 = index % 2 == 1;
        let index = index / 2;
        let oitergb = index % 2 == 1;
        let index = index / 2;
        let sg = index % 2 == 1;
        let index = index / 2;
        let wg = index % 2 == 1;
        let index = index / 2;
        let coop_cv = index % 2 == 1;
        let fg = match index / 2 {
            0 => FgMode::Off,
            1 => FgMode::Fg1,
            _ => FgMode::Fg8,
        };
        OptConfig {
            coop_cv,
            wg,
            sg,
            fg,
            oitergb,
            sz256,
        }
    }

    /// Parses a comma-separated list of paper-style names
    /// (e.g. `"sg, fg8, oitergb"`); the empty string (or `"baseline"`)
    /// is the baseline.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.is_empty() || text == "baseline" {
            return Some(OptConfig::baseline());
        }
        let mut cfg = OptConfig::baseline();
        for tok in text.split(',') {
            cfg = cfg.with(Optimization::parse(tok.trim())?);
        }
        Some(cfg)
    }
}

impl fmt::Display for OptConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_baseline() {
            return f.write_str("baseline");
        }
        let names: Vec<&str> = self.enabled_opts().iter().map(|o| o.name()).collect();
        f.write_str(&names.join(", "))
    }
}

/// All 96 configurations (baseline first), in [`OptConfig::index`] order.
pub fn all_configs() -> Vec<OptConfig> {
    (0..NUM_CONFIGS).map(OptConfig::from_index).collect()
}

/// All configurations in which the given binary optimisation is enabled —
/// `ALL_OPT_SETTINGS(opt)` from Algorithm 1 (line 11). There are 48 such
/// settings for the five boolean optimisations and 32 for `fg1`/`fg8`.
pub fn settings_enabling(opt: Optimization) -> Vec<OptConfig> {
    all_configs()
        .into_iter()
        .filter(|c| c.enables(opt))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn space_has_96_distinct_points() {
        let configs = all_configs();
        assert_eq!(configs.len(), 96);
        let set: HashSet<OptConfig> = configs.iter().copied().collect();
        assert_eq!(set.len(), 96);
    }

    #[test]
    fn exactly_one_baseline_and_95_optimised() {
        let configs = all_configs();
        assert_eq!(configs.iter().filter(|c| c.is_baseline()).count(), 1);
        assert_eq!(configs.iter().filter(|c| !c.is_baseline()).count(), 95);
    }

    #[test]
    fn index_round_trips() {
        for (i, cfg) in all_configs().into_iter().enumerate() {
            assert_eq!(cfg.index(), i);
            assert_eq!(OptConfig::from_index(i), cfg);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_index_rejects_out_of_range() {
        OptConfig::from_index(96);
    }

    #[test]
    fn fg_modes_are_exclusive() {
        let cfg = OptConfig::baseline()
            .with(Optimization::Fg1)
            .with(Optimization::Fg8);
        assert!(cfg.enables(Optimization::Fg8));
        assert!(!cfg.enables(Optimization::Fg1));
        let cfg = cfg.with(Optimization::Fg1);
        assert!(cfg.enables(Optimization::Fg1));
        assert!(!cfg.enables(Optimization::Fg8));
    }

    #[test]
    fn without_is_mirror_setting() {
        for opt in Optimization::ALL {
            for cfg in settings_enabling(opt) {
                let mirror = cfg.without(opt);
                assert!(!mirror.enables(opt));
                // The mirror differs only in `opt`.
                for other in Optimization::ALL {
                    if other != opt {
                        assert_eq!(
                            cfg.enables(other),
                            mirror.enables(other),
                            "{cfg} vs {mirror}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn settings_enabling_counts() {
        assert_eq!(settings_enabling(Optimization::Sg).len(), 48);
        assert_eq!(settings_enabling(Optimization::Fg1).len(), 32);
        assert_eq!(settings_enabling(Optimization::Fg8).len(), 32);
    }

    #[test]
    fn workgroup_sizes() {
        assert_eq!(OptConfig::baseline().workgroup_size(), 128);
        assert_eq!(
            OptConfig::baseline()
                .with(Optimization::Sz256)
                .workgroup_size(),
            256
        );
    }

    #[test]
    fn display_and_parse_round_trip() {
        for cfg in all_configs() {
            let text = cfg.to_string();
            assert_eq!(OptConfig::parse(&text), Some(cfg), "{text}");
        }
    }

    #[test]
    fn parse_rejects_unknown_names() {
        assert_eq!(OptConfig::parse("sg, turbo"), None);
    }

    #[test]
    fn display_matches_paper_style() {
        let cfg = OptConfig::from_opts([Optimization::Wg, Optimization::Fg8]);
        assert_eq!(cfg.to_string(), "wg, fg8");
        assert_eq!(OptConfig::baseline().to_string(), "baseline");
    }

    #[test]
    fn from_opts_builds_expected_config() {
        let cfg = OptConfig::from_opts([Optimization::Sz256, Optimization::Oitergb]);
        assert!(cfg.sz256 && cfg.oitergb && !cfg.wg && !cfg.sg && !cfg.coop_cv);
        assert_eq!(cfg.fg, FgMode::Off);
    }

    #[test]
    fn from_str_conforms() {
        use std::str::FromStr;
        assert_eq!(Optimization::from_str("fg8"), Ok(Optimization::Fg8));
        assert!(Optimization::from_str("warp").is_err());
        assert_eq!(
            "sg, fg8".parse::<OptConfig>().unwrap().to_string(),
            "sg, fg8"
        );
        let err = "sg, warp".parse::<OptConfig>().unwrap_err();
        assert!(err.to_string().contains("sg, warp"));
    }

    #[test]
    fn optimization_parse_names() {
        for opt in Optimization::ALL {
            assert_eq!(Optimization::parse(opt.name()), Some(opt));
        }
        assert_eq!(Optimization::parse("nope"), None);
    }
}

//! An abstract GPU machine standing in for the six physical GPUs of the
//! study.
//!
//! The paper's methodology consumes only *program timings*; what matters
//! is that each chip's timings respond to the optimisations of Section V
//! through the same mechanisms as real hardware: launch and copy overhead
//! (`oitergb`), atomic RMW throughput and JIT combining (`coop-cv`),
//! barrier throughput and occupancy (`wg`/`sg`/`fg`, `sz256`), and memory
//! divergence (the MALI effect). This crate models exactly those
//! mechanisms:
//!
//! - [`chip`] — per-GPU performance parameters and the six study chips;
//! - [`opts`] — the 96-point optimisation space;
//! - [`exec`] — the execution engine: workgroup/subgroup scheduling,
//!   load-balancing schemes, worklist RMW accounting;
//! - [`barrier`] — the portable inter-workgroup global barrier, with a
//!   functional deadlock-freedom simulation;
//! - [`microbench`] — the three diagnostic microbenchmarks of
//!   Section VIII;
//! - [`memmodel`] — the OpenCL 2.0 memory-consistency emulation of
//!   Section VI-A, with an exhaustive litmus-test explorer.
//!
//! # Example
//!
//! ```
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::{KernelProfile, Machine, WorkItem};
//! use gpp_sim::opts::{OptConfig, Optimization};
//!
//! let machine = Machine::new(ChipProfile::mali());
//! let skewed: Vec<WorkItem> =
//!     (0..1000).map(|i| WorkItem::new(if i == 0 { 900 } else { 2 }, 0)).collect();
//!
//! let mut plain = machine.session(OptConfig::baseline());
//! plain.kernel(&KernelProfile::frontier("bfs"), &skewed);
//!
//! let mut balanced = machine.session(OptConfig::baseline().with(Optimization::Sg));
//! balanced.kernel(&KernelProfile::frontier("bfs"), &skewed);
//!
//! assert!(balanced.elapsed_ns() < plain.elapsed_ns());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod chip;
pub mod exec;
pub mod memmodel;
pub mod microbench;
pub mod opts;
pub mod trace;

pub use chip::{latin_hypercube_chips, study_chip, study_chips, ChipBatch, ChipProfile, Vendor};
pub use exec::{
    evaluate_kernel, evaluate_kernel_batch, evaluate_kernel_batch_explained,
    evaluate_kernel_batch_many_chips, evaluate_kernel_explained, Executor, KernelProfile, Machine,
    RunStats, Session, WorkItem,
};
pub use gpp_obs::CostBreakdown;
pub use opts::{all_configs, FgMode, OptConfig, Optimization};
pub use trace::{CompiledTrace, Recorder, Trace};

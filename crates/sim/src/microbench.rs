//! The three microbenchmarks of paper Section VIII, expressed against the
//! chip model: kernel-launch utilisation (Fig. 5), subgroup atomic-RMW
//! combining `sg-cmb` (Table X), and intra-workgroup memory divergence
//! `m-divg` (Table X).

use crate::chip::ChipProfile;

/// Default number of kernel launches in the launch-overhead benchmark
/// (paper: 10000).
pub const LAUNCHES: u32 = 10_000;

/// Default number of atomic fetch-and-add invocations in `sg-cmb`
/// (paper: 20000).
pub const SG_CMB_N: u32 = 20_000;

/// Strided accesses per loop round in `m-divg`.
pub const M_DIVG_ACCESSES_PER_ROUND: u32 = 64;

/// Default loop rounds in `m-divg`.
pub const M_DIVG_ROUNDS: u32 = 4_096;

/// GPU utilisation when launching `launches` constant-time kernels of
/// duration `kernel_ns`, interleaved with a one-integer device-to-host
/// copy — the Fig. 5 experiment. Returns a fraction in `(0, 1]`.
///
/// # Panics
///
/// Panics if `kernel_ns` is not positive or `launches` is zero.
///
/// # Example
///
/// ```
/// use gpp_sim::chip::ChipProfile;
/// use gpp_sim::microbench::utilisation;
///
/// // Nvidia's low launch overhead yields higher utilisation at equal
/// // kernel duration.
/// let nv = utilisation(&ChipProfile::gtx1080(), 50_000.0, 10_000);
/// let arm = utilisation(&ChipProfile::mali(), 50_000.0, 10_000);
/// assert!(nv > arm);
/// ```
pub fn utilisation(chip: &ChipProfile, kernel_ns: f64, launches: u32) -> f64 {
    assert!(kernel_ns > 0.0, "kernel duration must be positive");
    assert!(launches > 0, "need at least one launch");
    let busy = launches as f64 * kernel_ns;
    let total = launches as f64 * (kernel_ns + chip.kernel_launch_cost + chip.host_copy_cost);
    busy / total
}

/// Result of the `sg-cmb` microbenchmark on one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgCmbResult {
    /// Time of `n` plain atomic fetch-and-adds on one location (ns).
    pub base_ns: f64,
    /// Time after manually combining all atomics in a subgroup (ns).
    pub combined_ns: f64,
}

impl SgCmbResult {
    /// Speedup of the combined version over the plain version.
    pub fn speedup(&self) -> f64 {
        self.base_ns / self.combined_ns
    }
}

/// Runs the `sg-cmb` microbenchmark: `n` atomic fetch-and-add invocations
/// on a single memory location, plain vs. manually subgroup-combined
/// (paper Section VIII-b, Table X).
///
/// On chips whose JIT already combines subgroup RMWs (Nvidia, HD5500) the
/// plain version is itself combined, so manual combining only adds
/// overhead; on subgroup-size-1 chips (MALI) combining is a no-op.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn sg_cmb(chip: &ChipProfile, n: u32) -> SgCmbResult {
    assert!(n > 0, "need at least one atomic");
    let n = n as f64;
    let sg = chip.subgroup_size.max(1) as f64;
    let combined_rmws = (n / sg).ceil() * chip.atomic_rmw_cost;
    let base_ns = if chip.jit_subgroup_combining {
        combined_rmws
    } else {
        n * chip.atomic_rmw_cost
    };
    let combined_ns = if chip.subgroup_size <= 1 {
        base_ns
    } else {
        combined_rmws + n * chip.sg_collective_cost
    };
    SgCmbResult {
        base_ns,
        combined_ns,
    }
}

/// Result of the `m-divg` microbenchmark on one chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MDivgResult {
    /// Time of the strided-access loop without the gratuitous barrier (ns).
    pub no_barrier_ns: f64,
    /// Time with a gratuitous workgroup barrier in the loop (ns).
    pub barrier_ns: f64,
}

impl MDivgResult {
    /// Speedup of the barrier version over the barrier-free version
    /// (> 1 when the chip benefits from forced convergence).
    pub fn speedup(&self) -> f64 {
        self.no_barrier_ns / self.barrier_ns
    }
}

/// Runs the `m-divg` microbenchmark: a loop of strided global accesses,
/// with and without a gratuitous workgroup barrier per round (paper
/// Section VIII-c, Table X). The barrier keeps threads of the workgroup
/// within one round of each other, relieving memory divergence.
///
/// # Panics
///
/// Panics if `rounds` is zero.
pub fn m_divg(chip: &ChipProfile, rounds: u32) -> MDivgResult {
    assert!(rounds > 0, "need at least one round");
    let rounds = rounds as f64;
    let per_round_mem = M_DIVG_ACCESSES_PER_ROUND as f64 * chip.global_mem_cost;
    let no_barrier_ns = rounds * per_round_mem * chip.divergence_factor(false);
    let barrier_ns = rounds * (per_round_mem * chip.divergence_factor(true) + chip.wg_barrier(128));
    MDivgResult {
        no_barrier_ns,
        barrier_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chip, study_chips};

    #[test]
    fn utilisation_in_unit_interval_and_monotone_in_kernel_time() {
        for chip in study_chips() {
            let u_short = utilisation(&chip, 1_000.0, LAUNCHES);
            let u_long = utilisation(&chip, 1_000_000.0, LAUNCHES);
            assert!(u_short > 0.0 && u_short < 1.0);
            assert!(u_long > u_short, "{}", chip.name);
        }
    }

    #[test]
    fn nvidia_utilisation_dominates_at_all_kernel_times() {
        // Fig. 5: Nvidia chips have the highest utilisation curves.
        let nvidia = [study_chip("M4000").unwrap(), study_chip("GTX1080").unwrap()];
        let others: Vec<_> = study_chips()
            .into_iter()
            .filter(|c| !["M4000", "GTX1080"].contains(&c.name.as_str()))
            .collect();
        for k in [5_000.0, 20_000.0, 100_000.0, 400_000.0] {
            let nv_min = nvidia
                .iter()
                .map(|c| utilisation(c, k, LAUNCHES))
                .fold(1.0, f64::min);
            let other_max = others
                .iter()
                .map(|c| utilisation(c, k, LAUNCHES))
                .fold(0.0, f64::max);
            assert!(nv_min > other_max, "kernel {k}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn utilisation_rejects_zero_kernel_time() {
        utilisation(&study_chip("R9").unwrap(), 0.0, 10);
    }

    #[test]
    fn sg_cmb_speedups_match_paper_shape() {
        // Table X: large on R9 (~22x) and IRIS (~8x); ~1 or below
        // elsewhere.
        let r9 = sg_cmb(&study_chip("R9").unwrap(), SG_CMB_N).speedup();
        assert!(r9 > 15.0 && r9 < 40.0, "R9 sg-cmb speedup {r9}");
        let iris = sg_cmb(&study_chip("IRIS").unwrap(), SG_CMB_N).speedup();
        assert!(iris > 5.0 && iris < 12.0, "IRIS sg-cmb speedup {iris}");
        for name in ["M4000", "GTX1080", "HD5500"] {
            let s = sg_cmb(&study_chip(name).unwrap(), SG_CMB_N).speedup();
            assert!(s <= 1.0, "{name} sg-cmb should not speed up, got {s}");
            assert!(s > 0.4, "{name} sg-cmb slowdown too extreme: {s}");
        }
        let mali = sg_cmb(&study_chip("MALI").unwrap(), SG_CMB_N).speedup();
        assert!(
            (mali - 1.0).abs() < 1e-9,
            "MALI sg-cmb must be a no-op, got {mali}"
        );
    }

    #[test]
    fn sg_cmb_combined_fraction_of_subgroup_size() {
        // Paper: the speedup is a fraction of the subgroup size.
        let r9 = study_chip("R9").unwrap();
        let s = sg_cmb(&r9, SG_CMB_N).speedup();
        assert!(s < r9.subgroup_size as f64);
    }

    #[test]
    fn m_divg_mali_is_the_outlier() {
        // Table X: all chips benefit, MALI by ~6.45x.
        let mut best = ("", 0.0f64);
        for chip in study_chips() {
            let s = m_divg(&chip, M_DIVG_ROUNDS).speedup();
            assert!(
                s >= 0.95,
                "{}: m-divg {s} should not significantly hurt",
                chip.name
            );
            if s > best.1 {
                best = (Box::leak(chip.name.clone().into_boxed_str()), s);
            }
        }
        assert_eq!(best.0, "MALI");
        assert!(
            best.1 > 4.0 && best.1 < 9.0,
            "MALI m-divg speedup {}",
            best.1
        );
    }

    #[test]
    fn m_divg_other_chips_modest() {
        for name in ["M4000", "GTX1080", "HD5500", "IRIS", "R9"] {
            let s = m_divg(&study_chip(name).unwrap(), M_DIVG_ROUNDS).speedup();
            assert!(s < 2.0, "{name}: m-divg speedup {s} should be modest");
        }
    }

    #[test]
    fn results_scale_linearly_with_inputs() {
        let chip = study_chip("IRIS").unwrap();
        let a = sg_cmb(&chip, 10_000);
        let b = sg_cmb(&chip, 20_000);
        assert!((b.base_ns / a.base_ns - 2.0).abs() < 0.01);
        let c = m_divg(&chip, 100);
        let d = m_divg(&chip, 200);
        assert!((d.no_barrier_ns / c.no_barrier_ns - 2.0).abs() < 1e-9);
    }
}

//! The abstract GPU machine: executes "compiled" graph-algorithm kernels
//! under a chip profile and an optimisation configuration, producing
//! modelled wall-clock time.
//!
//! # Model
//!
//! A kernel invocation processes a *frontier* of [`WorkItem`]s, one active
//! node per (virtual) thread. Nodes are packed into workgroups of 128 or
//! 256 threads ([`crate::opts::OptConfig::workgroup_size`]) and workgroups
//! into subgroups of the chip's subgroup size. Per workgroup, the nested
//! parallelism optimisations (paper Section V-B) partition nodes into
//! three degree classes — `big` (≥ workgroup size), `mid` (≥ subgroup
//! size) and `small` — and route each class to a scheme:
//!
//! - `wg`-scheme: `big` nodes are processed by the whole workgroup,
//!   serialising the outer loop (leader election plus two workgroup
//!   barriers per node);
//! - `sg`-scheme: `mid` nodes (and `big` ones if `wg` is off) are
//!   processed by their subgroup (two subgroup barriers per node);
//! - `fg`-scheme: the remaining classes' edges are linearised across the
//!   workgroup via an inspector/executor (prefix sum in local memory, one
//!   workgroup barrier per round of 1 or 8 edges per thread);
//! - otherwise a thread walks its node's edge list *serially*: subgroup
//!   lanes idle until the longest lane finishes (SIMD divergence) and the
//!   scattered per-edge accesses pay the chip's divergence penalty.
//!
//! Balanced schemes access edges in consecutive order, so they pay the
//! coalesced memory cost. The `sg` scheme additionally brackets execution
//! with barriers, which on divergence-sensitive chips (MALI) relieves part
//! of the penalty on the *serial* work too — the surprising effect of
//! paper Section VIII-c.
//!
//! Worklist pushes go through one global RMW per push unless combined:
//! either manually (`coop-cv`, paying a subgroup-collective overhead per
//! push) or transparently by the JIT on chips that support it
//! (Section VIII-b).
//!
//! Kernel time is `max(total workgroup time normalised by occupancy,
//! longest single workgroup)` plus the serialised worklist-RMW time, plus
//! fixed device overhead. Iteration overhead (launch + small copy per
//! kernel, or one launch plus a global barrier per kernel under
//! `oitergb`) is accounted by [`Session`].
//!
//! # Aggregated evaluation
//!
//! The scheme routing above only depends on each node's degree class, so a
//! frontier can be *pre-aggregated* per workgroup into [`ClassAgg`]s for a
//! given (workgroup size, subgroup size) pair and then evaluated for any
//! configuration in time proportional to the number of workgroups rather
//! than nodes. [`Session::kernel`] aggregates on the fly;
//! [`crate::trace`] records frontiers once and replays them cheaply
//! across every chip and configuration of the study.

use std::collections::HashMap;

use gpp_obs::CostBreakdown;
use serde::{Deserialize, Serialize};

use crate::barrier::GlobalBarrier;
use crate::chip::{ChipBatch, ChipProfile};
use crate::opts::{FgMode, OptConfig};

/// One active node in a kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Inner-loop trip count: edges this node's thread must process.
    pub degree: u32,
    /// Worklist pushes this node performs (atomic RMWs on a shared
    /// counter; combinable by `coop-cv`).
    pub pushes: u32,
}

impl WorkItem {
    /// Convenience constructor.
    pub fn new(degree: u32, pushes: u32) -> Self {
        WorkItem { degree, pushes }
    }
}

/// Static per-edge/per-node operation counts of one kernel — what the
/// graph-DSL compiler knows about the code it generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (for diagnostics).
    pub name: String,
    /// Scalar ALU operations per edge.
    pub alu_per_edge: f64,
    /// Scattered global reads per edge (divergence-sensitive).
    pub reads_per_edge: f64,
    /// Scattered global writes per edge (divergence-sensitive).
    pub writes_per_edge: f64,
    /// Uncontended global atomic RMWs per edge (e.g. `atomic_min` on a
    /// neighbour's distance).
    pub atomics_per_edge: f64,
    /// Scalar ALU operations per node.
    pub alu_per_node: f64,
    /// Coalesced global reads per node (frontier/own-state loads).
    pub reads_per_node: f64,
    /// Coalesced global writes per node.
    pub writes_per_node: f64,
    /// Whether the kernel contains an irregular nested loop over edges.
    /// The nested-parallelism schemes (`wg`/`sg`/`fg`) only instrument
    /// such kernels; regular kernels (pointer jumping, sorting passes,
    /// filters) always execute their items serially with no scheme
    /// overhead.
    pub irregular: bool,
}

impl KernelProfile {
    /// A light frontier-advance kernel profile (BFS-like): one flag read
    /// and level write per edge.
    pub fn frontier(name: &str) -> Self {
        KernelProfile {
            name: name.to_owned(),
            alu_per_edge: 4.0,
            reads_per_edge: 1.5,
            writes_per_edge: 0.5,
            atomics_per_edge: 0.0,
            alu_per_node: 6.0,
            reads_per_node: 2.0,
            writes_per_node: 1.0,
            irregular: true,
        }
    }

    /// Time to process one edge at the given divergence factor.
    pub fn edge_cost(&self, chip: &ChipProfile, divergence: f64) -> f64 {
        self.alu_per_edge * chip.alu_cost
            + (self.reads_per_edge + self.writes_per_edge) * chip.global_mem_cost * divergence
            + self.atomics_per_edge * chip.atomic_uncontended_cost
    }

    /// Fixed per-node time (coalesced accesses).
    pub fn node_cost(&self, chip: &ChipProfile) -> f64 {
        self.alu_per_node * chip.alu_cost
            + (self.reads_per_node + self.writes_per_node) * chip.global_mem_cost
    }
}

/// Per-workgroup aggregate of one degree class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassAgg {
    /// Number of nodes in the class.
    pub count: u32,
    /// Total edges over the class.
    pub edges: u64,
    /// `Σ ceil(degree / workgroup_size)` — wg-scheme rounds.
    pub rounds_wg: u64,
    /// `Σ ceil(degree / subgroup_size)` — sg-scheme rounds.
    pub rounds_sg: u64,
    /// Maximum degree in the class.
    pub max_degree: u32,
}

impl ClassAgg {
    fn add(&mut self, degree: u32, wg_size: u32, sg_size: u32) {
        self.count += 1;
        self.edges += degree as u64;
        self.rounds_wg += (degree as u64).div_ceil(wg_size as u64);
        self.rounds_sg += (degree as u64).div_ceil(sg_size as u64);
        self.max_degree = self.max_degree.max(degree);
    }
}

/// Aggregates of one workgroup's worth of frontier items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkgroupAgg {
    /// Degree ≥ workgroup size.
    pub big: ClassAgg,
    /// Subgroup size ≤ degree < workgroup size.
    pub mid: ClassAgg,
    /// Degree < subgroup size.
    pub small: ClassAgg,
}

/// A whole kernel invocation, pre-aggregated for one (workgroup size,
/// subgroup size) pair.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallAggregates {
    /// Workgroup size the aggregation was built for.
    pub wg_size: u32,
    /// Subgroup size the aggregation was built for.
    pub sg_size: u32,
    /// One aggregate per workgroup of the launch.
    pub workgroups: Vec<WorkgroupAgg>,
    /// Total worklist pushes over the launch.
    pub pushes: u64,
}

impl CallAggregates {
    /// Aggregates `items` into workgroups of `wg_size` threads with
    /// subgroups of `sg_size` threads.
    ///
    /// # Panics
    ///
    /// Panics if `wg_size` or `sg_size` is zero.
    pub fn from_items(items: &[WorkItem], wg_size: u32, sg_size: u32) -> Self {
        assert!(wg_size > 0 && sg_size > 0, "sizes must be positive");
        let mut workgroups = Vec::with_capacity(items.len().div_ceil(wg_size as usize));
        let mut pushes = 0u64;
        for chunk in items.chunks(wg_size as usize) {
            let mut agg = WorkgroupAgg::default();
            for item in chunk {
                pushes += item.pushes as u64;
                let d = item.degree;
                if d >= wg_size {
                    agg.big.add(d, wg_size, sg_size);
                } else if d >= sg_size && sg_size > 1 {
                    agg.mid.add(d, wg_size, sg_size);
                } else {
                    agg.small.add(d, wg_size, sg_size);
                }
            }
            workgroups.push(agg);
        }
        CallAggregates {
            wg_size,
            sg_size,
            workgroups,
            pushes,
        }
    }

    /// Aggregates `items` for several geometries in a *single* traversal,
    /// returning one [`CallAggregates`] per entry of `geometries` (in
    /// order). Every field update is an integer operation applied in the
    /// same per-item order as [`CallAggregates::from_items`], so each
    /// result is bit-identical to the per-geometry builder — the
    /// replay-identity property tests assert exactly that.
    ///
    /// This is what makes a chip set's aggregation cost O(items) instead
    /// of O(items × geometries): the item arena is streamed once and all
    /// geometry tables are written side by side.
    ///
    /// # Panics
    ///
    /// Panics if any geometry's workgroup or subgroup size is zero.
    pub fn from_items_multi(items: &[WorkItem], geometries: &[(u32, u32)]) -> Vec<Self> {
        // Per geometry: the output under construction, the current
        // (partial) workgroup aggregate, and how many items it holds.
        let mut states: Vec<(CallAggregates, WorkgroupAgg, u32)> = geometries
            .iter()
            .map(|&(wg_size, sg_size)| {
                assert!(wg_size > 0 && sg_size > 0, "sizes must be positive");
                let out = CallAggregates {
                    wg_size,
                    sg_size,
                    workgroups: Vec::with_capacity(items.len().div_ceil(wg_size as usize)),
                    pushes: 0,
                };
                (out, WorkgroupAgg::default(), 0u32)
            })
            .collect();
        let mut pushes = 0u64;
        for item in items {
            pushes += item.pushes as u64;
            let d = item.degree;
            for (out, agg, filled) in &mut states {
                if *filled == out.wg_size {
                    out.workgroups.push(*agg);
                    *agg = WorkgroupAgg::default();
                    *filled = 0;
                }
                let (wg_size, sg_size) = (out.wg_size, out.sg_size);
                if d >= wg_size {
                    agg.big.add(d, wg_size, sg_size);
                } else if d >= sg_size && sg_size > 1 {
                    agg.mid.add(d, wg_size, sg_size);
                } else {
                    agg.small.add(d, wg_size, sg_size);
                }
                *filled += 1;
            }
        }
        states
            .into_iter()
            .map(|(mut out, agg, filled)| {
                if filled > 0 {
                    out.workgroups.push(agg);
                }
                out.pushes = pushes;
                out
            })
            .collect()
    }
}

/// Aggregate statistics of one finished [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total modelled time in nanoseconds.
    pub time_ns: f64,
    /// Number of kernel invocations.
    pub kernels: u64,
    /// Number of host-side kernel launches (1 under `oitergb`).
    pub launches: u64,
    /// Number of global-barrier episodes (0 without `oitergb`).
    pub global_barriers: u64,
}

/// The sink applications execute against: either a timing [`Session`] or
/// a [`crate::trace::Recorder`].
///
/// Sessions started with [`Machine::session_explained`] additionally
/// attribute every nanosecond to a [`CostBreakdown`] mechanism.
pub trait Executor {
    /// Executes one kernel of the application's iteration loop.
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]);
}

/// The abstract GPU machine for one chip.
///
/// # Example
///
/// ```
/// use gpp_sim::chip::ChipProfile;
/// use gpp_sim::exec::{KernelProfile, Machine, WorkItem};
/// use gpp_sim::opts::OptConfig;
///
/// let machine = Machine::new(ChipProfile::gtx1080());
/// let mut session = machine.session(OptConfig::baseline());
/// let frontier = vec![WorkItem::new(4, 2); 1000];
/// session.kernel(&KernelProfile::frontier("bfs"), &frontier);
/// let stats = session.finish();
/// assert!(stats.time_ns > 0.0);
/// assert_eq!(stats.kernels, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    chip: ChipProfile,
}

impl Machine {
    /// Creates a machine for `chip`.
    pub fn new(chip: ChipProfile) -> Self {
        Machine { chip }
    }

    /// The chip this machine models.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Starts an execution session (one application run) under `config`.
    pub fn session(&self, config: OptConfig) -> Session<'_> {
        let wg_size = config.workgroup_size().min(self.chip.max_workgroup_size());
        let global_barrier = if config.oitergb {
            Some(GlobalBarrier::discover(&self.chip, wg_size))
        } else {
            None
        };
        Session {
            machine: self,
            config,
            wg_size,
            global_barrier,
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
            breakdown: None,
        }
    }

    /// Starts a session that additionally accumulates a per-mechanism
    /// [`CostBreakdown`] alongside the scalar timing. The scalar path
    /// is bit-identical to [`Machine::session`]; retrieve the
    /// breakdown with [`Session::finish_explained`].
    pub fn session_explained(&self, config: OptConfig) -> Session<'_> {
        let mut session = self.session(config);
        session.breakdown = Some(CostBreakdown::default());
        session
    }
}

/// One application run on a [`Machine`]: a sequence of kernel invocations
/// in an iterate-to-fixed-point loop, with iteration overhead accounted
/// per the `oitergb` setting.
#[derive(Debug)]
pub struct Session<'m> {
    machine: &'m Machine,
    config: OptConfig,
    wg_size: u32,
    global_barrier: Option<GlobalBarrier>,
    time_ns: f64,
    kernels: u64,
    launches: u64,
    global_barriers: u64,
    breakdown: Option<CostBreakdown>,
}

impl Session<'_> {
    /// The optimisation configuration of this session.
    pub fn config(&self) -> OptConfig {
        self.config
    }

    /// The effective workgroup size (after clamping to the chip limit).
    pub fn workgroup_size(&self) -> u32 {
        self.wg_size
    }

    /// Modelled time accrued so far (ns).
    pub fn elapsed_ns(&self) -> f64 {
        self.time_ns
    }

    /// Executes one kernel over `items` and returns the time charged for
    /// it (including iteration overhead).
    ///
    /// An empty frontier still pays iteration overhead — real
    /// fixed-point loops launch the kernel that discovers emptiness.
    pub fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) -> f64 {
        let aggs =
            CallAggregates::from_items(items, self.wg_size, self.machine.chip.subgroup_size.max(1));
        self.kernel_aggregated(profile, &aggs)
    }

    /// Executes one kernel from pre-built aggregates (see
    /// [`CallAggregates::from_items`] and [`crate::trace`]).
    ///
    /// # Panics
    ///
    /// Panics if `aggs` was built for a different workgroup or subgroup
    /// size than this session uses.
    pub fn kernel_aggregated(&mut self, profile: &KernelProfile, aggs: &CallAggregates) -> f64 {
        assert_eq!(
            aggs.wg_size, self.wg_size,
            "aggregation workgroup size mismatch"
        );
        assert_eq!(
            aggs.sg_size,
            self.machine.chip.subgroup_size.max(1),
            "aggregation subgroup size mismatch"
        );
        let chip = &self.machine.chip;
        let overhead = match &self.global_barrier {
            Some(gb) => {
                if self.kernels == 0 {
                    // One real launch; the setup includes occupancy
                    // discovery and the initial parameter copy.
                    self.launches += 1;
                    if let Some(b) = &mut self.breakdown {
                        b.launch += chip.kernel_launch_cost;
                        b.copy += chip.host_copy_cost;
                        let atomics = gb.setup_atomic_cost();
                        b.atomics += atomics;
                        b.barrier += gb.setup_cost() - atomics;
                    }
                    chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                } else {
                    self.global_barriers += 1;
                    if let Some(b) = &mut self.breakdown {
                        b.barrier += gb.barrier_cost();
                    }
                    gb.barrier_cost()
                }
            }
            None => {
                // Every iteration: a launch plus a small copy (the host
                // reads the "work left?" flag).
                self.launches += 1;
                if let Some(b) = &mut self.breakdown {
                    b.launch += chip.kernel_launch_cost;
                    b.copy += chip.host_copy_cost;
                }
                chip.kernel_launch_cost + chip.host_copy_cost
            }
        };
        let device = if self.breakdown.is_some() {
            let (device, device_breakdown) =
                evaluate_kernel_explained(chip, self.config, self.wg_size, profile, aggs);
            if let Some(b) = &mut self.breakdown {
                b.absorb(&device_breakdown);
            }
            device
        } else {
            evaluate_kernel(chip, self.config, self.wg_size, profile, aggs)
        };
        self.kernels += 1;
        let total = overhead + device;
        self.time_ns += total;
        total
    }

    /// The cost breakdown accumulated so far, if this session was
    /// started with [`Machine::session_explained`].
    pub fn breakdown(&self) -> Option<&CostBreakdown> {
        self.breakdown.as_ref()
    }

    /// Finishes the run and returns its statistics.
    pub fn finish(self) -> RunStats {
        RunStats {
            time_ns: self.time_ns,
            kernels: self.kernels,
            launches: self.launches,
            global_barriers: self.global_barriers,
        }
    }

    /// Finishes an explained run, returning the statistics plus the
    /// accumulated per-mechanism breakdown. The breakdown's
    /// [`CostBreakdown::total`] equals `time_ns` within floating-point
    /// round-off.
    ///
    /// # Panics
    ///
    /// Panics if the session was not started with
    /// [`Machine::session_explained`].
    pub fn finish_explained(self) -> (RunStats, CostBreakdown) {
        let breakdown = self
            .breakdown
            .expect("session was not started with session_explained");
        let stats = RunStats {
            time_ns: self.time_ns,
            kernels: self.kernels,
            launches: self.launches,
            global_barriers: self.global_barriers,
        };
        (stats, breakdown)
    }
}

impl Executor for Session<'_> {
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) {
        Session::kernel(self, profile, items);
    }
}

/// Device-side time of one kernel invocation from aggregates. This is the
/// single evaluation function shared by live sessions and trace replay.
pub fn evaluate_kernel(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
) -> f64 {
    if aggs.workgroups.is_empty() {
        return chip.kernel_fixed_cost;
    }
    let (pass, _) =
        device_pass::<false>(chip, wg_size, profile, aggs, cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv);
    finish_kernel(chip, cfg, wg_size, &pass, aggs.pushes)
}

/// Like [`evaluate_kernel`], but additionally attributes the returned
/// scalar to cost mechanisms. The scalar is bit-identical to
/// [`evaluate_kernel`] (the attribution accumulators never feed back
/// into the timing arithmetic), and the breakdown's
/// [`CostBreakdown::total`] equals it within floating-point round-off
/// (well inside 1e-9 relative).
pub fn evaluate_kernel_explained(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
) -> (f64, CostBreakdown) {
    if aggs.workgroups.is_empty() {
        return (
            chip.kernel_fixed_cost,
            CostBreakdown {
                compute: chip.kernel_fixed_cost,
                ..CostBreakdown::default()
            },
        );
    }
    let (pass, buckets) =
        device_pass::<true>(chip, wg_size, profile, aggs, cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv);
    finish_kernel_explained(chip, cfg, wg_size, &pass, &buckets, aggs.pushes)
}

/// Prices one kernel invocation under *all* of `configs` in a single walk
/// of the aggregates, hoisting config-invariant work out of the
/// configuration loop: configurations whose device-side behaviour is
/// provably identical (same scheme routing, divergence regime, and
/// fine-grained mode) share one `device_pass`, and only the cheap O(1)
/// occupancy/worklist assembly runs per configuration.
///
/// Returns one device time per entry of `configs`, each bit-identical to
/// the corresponding [`evaluate_kernel`] call.
///
/// # Panics
///
/// Panics if `aggs` was built for a different geometry than `wg_size`, or
/// if any configuration implies a different effective workgroup size.
pub fn evaluate_kernel_batch(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    configs: &[OptConfig],
) -> Vec<f64> {
    assert_eq!(
        aggs.wg_size, wg_size,
        "aggregation workgroup size mismatch"
    );
    assert_eq!(
        aggs.sg_size,
        chip.subgroup_size.max(1),
        "aggregation subgroup size mismatch"
    );
    if aggs.workgroups.is_empty() {
        return vec![chip.kernel_fixed_cost; configs.len()];
    }
    let sg_size = chip.subgroup_size.max(1);
    // Dedup configurations into distinct device passes. The pass depends
    // only on (wg, sg, fg, coop-cv) — and for regular kernels the three
    // nested-parallelism axes are dead, so whole swathes of the space
    // collapse onto one pass. `oitergb`/`sz256` never enter the pass:
    // `oitergb` only scales occupancy and `sz256` is fixed by `wg_size`.
    let mut slots: HashMap<(bool, bool, FgMode, bool), usize> = HashMap::new();
    let mut passes: Vec<DevicePass> = Vec::new();
    let results = configs
        .iter()
        .map(|cfg| {
            assert_eq!(
                cfg.workgroup_size().min(chip.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
            let key = if profile.irregular {
                (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
            } else {
                (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
            };
            let slot = *slots.entry(key).or_insert_with(|| {
                passes.push(
                    device_pass::<false>(
                        chip, wg_size, profile, aggs, key.0, key.1, key.2, key.3,
                    )
                    .0,
                );
                passes.len() - 1
            });
            (*cfg, slot)
        })
        .collect::<Vec<_>>();
    results
        .into_iter()
        .map(|(cfg, slot)| finish_kernel(chip, cfg, wg_size, &passes[slot], aggs.pushes))
        .collect()
}

/// Like [`evaluate_kernel_batch`], but each configuration's device time
/// comes with its per-mechanism [`CostBreakdown`]. The scalars are
/// bit-identical to [`evaluate_kernel_batch`] (and hence to individual
/// [`evaluate_kernel`] calls).
///
/// # Panics
///
/// Panics under the same conditions as [`evaluate_kernel_batch`].
pub fn evaluate_kernel_batch_explained(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    configs: &[OptConfig],
) -> Vec<(f64, CostBreakdown)> {
    assert_eq!(
        aggs.wg_size, wg_size,
        "aggregation workgroup size mismatch"
    );
    assert_eq!(
        aggs.sg_size,
        chip.subgroup_size.max(1),
        "aggregation subgroup size mismatch"
    );
    if aggs.workgroups.is_empty() {
        let empty = (
            chip.kernel_fixed_cost,
            CostBreakdown {
                compute: chip.kernel_fixed_cost,
                ..CostBreakdown::default()
            },
        );
        return vec![empty; configs.len()];
    }
    let sg_size = chip.subgroup_size.max(1);
    let mut slots: HashMap<(bool, bool, FgMode, bool), usize> = HashMap::new();
    let mut passes: Vec<(DevicePass, PassBuckets)> = Vec::new();
    let results = configs
        .iter()
        .map(|cfg| {
            assert_eq!(
                cfg.workgroup_size().min(chip.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
            let key = if profile.irregular {
                (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
            } else {
                (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
            };
            let slot = *slots.entry(key).or_insert_with(|| {
                passes.push(device_pass::<true>(
                    chip, wg_size, profile, aggs, key.0, key.1, key.2, key.3,
                ));
                passes.len() - 1
            });
            (*cfg, slot)
        })
        .collect::<Vec<_>>();
    results
        .into_iter()
        .map(|(cfg, slot)| {
            let (pass, buckets) = &passes[slot];
            finish_kernel_explained(chip, cfg, wg_size, pass, buckets, aggs.pushes)
        })
        .collect()
}

/// Chip-major counterpart of [`evaluate_kernel_batch`]: prices one kernel
/// invocation under all of `configs` for *every* chip of a [`ChipBatch`]
/// in a single walk of the aggregates per distinct device pass. Within a
/// batch the per-row scheme routing depends only on the shared geometry
/// (subgroup size, workgroup size) and the configuration flags, so the
/// row walk records each row's routing once and an inner struct-of-arrays
/// loop applies every chip's cost coefficients to it.
///
/// Returns a flat configuration-major vector: entry
/// `cfg_idx * batch.len() + chip_idx` is the device time of
/// `configs[cfg_idx]` on `batch.chips()[chip_idx]`, bit-identical
/// (`f64::to_bits`) to the corresponding per-chip
/// [`evaluate_kernel_batch`] result.
///
/// # Panics
///
/// Panics if `aggs` was built for a different geometry than
/// `(wg_size, batch.subgroup_size())`, or if any configuration implies a
/// different effective workgroup size for the batch.
pub fn evaluate_kernel_batch_many_chips(
    batch: &ChipBatch,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    configs: &[OptConfig],
) -> Vec<f64> {
    let chips = batch.chips();
    let n_chips = chips.len();
    let sg_size = batch.subgroup_size();
    assert_eq!(
        aggs.wg_size, wg_size,
        "aggregation workgroup size mismatch"
    );
    assert_eq!(
        aggs.sg_size, sg_size,
        "aggregation subgroup size mismatch"
    );
    if aggs.workgroups.is_empty() {
        let mut out = Vec::with_capacity(configs.len() * n_chips);
        for _ in configs {
            out.extend(chips.iter().map(|chip| chip.kernel_fixed_cost));
        }
        return out;
    }
    let coeffs = BatchCoeffs::new(chips, wg_size, profile);
    // Same pass dedup as the per-chip batch evaluator: every chip of the
    // batch shares the (wg, sg, fg, coop-cv) pass key because the key
    // only consults the shared subgroup size and the kernel's regularity.
    let mut slots: HashMap<(bool, bool, FgMode, bool), usize> = HashMap::new();
    let mut passes: Vec<Vec<DevicePass>> = Vec::new();
    let keyed: Vec<usize> = configs
        .iter()
        .map(|cfg| {
            assert_eq!(
                cfg.workgroup_size().min(batch.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
            let key = if profile.irregular {
                (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
            } else {
                (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
            };
            *slots.entry(key).or_insert_with(|| {
                passes.push(device_pass_many_chips(
                    &coeffs, sg_size, wg_size, profile, aggs, key.0, key.1, key.2, key.3,
                ));
                passes.len() - 1
            })
        })
        .collect();
    let mut out = Vec::with_capacity(configs.len() * n_chips);
    for (cfg, &slot) in configs.iter().zip(&keyed) {
        let pass = &passes[slot];
        for (chip, dev) in chips.iter().zip(pass) {
            out.push(finish_kernel(chip, *cfg, wg_size, dev, aggs.pushes));
        }
    }
    out
}

/// Per-configuration slot routing for one geometry group: the unique
/// [`SlotKey`]s of the group's configurations (first-seen order) and, per
/// configuration, the index of its tail buffer (`slot * 2 + oitergb`).
struct ClassSlots {
    keys: Vec<SlotKey>,
    cfg_tail: Vec<usize>,
}

impl ClassSlots {
    fn new(configs: &[OptConfig], sg_size: u32, irregular: bool) -> ClassSlots {
        let mut keys: Vec<SlotKey> = Vec::new();
        let cfg_tail = configs
            .iter()
            .map(|cfg| {
                let key = if irregular {
                    (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
                } else {
                    (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
                };
                let slot = keys.iter().position(|k| *k == key).unwrap_or_else(|| {
                    keys.push(key);
                    keys.len() - 1
                });
                slot * 2 + cfg.oitergb as usize
            })
            .collect();
        ClassSlots { keys, cfg_tail }
    }
}

/// Per interned kernel profile: the batch's cost coefficients and one
/// [`PassPrelude`] per slot of the profile's class — everything about a
/// kernel that does not depend on the frontier, built once per trace.
struct ProfileCtx {
    coeffs: BatchCoeffs,
    preludes: Vec<PassPrelude>,
}

/// Reusable chip-major pricing state for one `(batch, geometry group)`
/// pair of a trace replay. Everything a call evaluation needs that does
/// not depend on the frontier is computed once and cached here:
///
/// - per-chip launch/barrier overheads and `kernel_fixed_cost`,
/// - per-chip capacity (with and without the `oitergb` occupancy
///   penalty), hoisted out of [`finish_kernel`]'s per-configuration
///   loop,
/// - per-profile [`BatchCoeffs`] and per-slot [`PassPrelude`]s, keyed by
///   the trace's interned profile pointers,
/// - the group's configuration → slot routing for both kernel classes.
///
/// [`BatchGroupPricer::accumulate_call`] then folds one call's prices
/// into a flat configuration-major time accumulator using the exact
/// per-call expression order of the chip-at-a-time replay, so the
/// accumulated times are bit-identical to the oracle path while the per
/// `(configuration, chip)` work shrinks to a handful of sequential
/// array operations.
pub(crate) struct BatchGroupPricer<'b> {
    chips: &'b [ChipProfile],
    wg_size: u32,
    sg_size: u32,
    /// `kernel_fixed_cost` per chip — the whole device time of an
    /// empty-frontier call.
    fixed: Vec<f64>,
    /// `capacity_threads` per chip: `[0]` without and `[1]` with the
    /// `oitergb` occupancy penalty, exactly as [`finish_kernel`] forms
    /// them.
    cap: [Vec<f64>; 2],
    /// Per-launch host overhead (`kernel_launch_cost + host_copy_cost`).
    launch: Vec<f64>,
    /// First-call overhead under `oitergb` (launch + barrier setup).
    setup: Vec<f64>,
    /// Steady-state global-barrier overhead under `oitergb`.
    bar: Vec<f64>,
    /// Slot routing for `[regular, irregular]` kernels.
    classes: [ClassSlots; 2],
    /// Per configuration: worklist-combining selector (`coop_cv`).
    cfg_rmw: Vec<usize>,
    /// Pointer-keyed contexts for the trace's interned profiles. The
    /// pointers are identity keys only and are never dereferenced.
    profiles: Vec<(*const KernelProfile, ProfileCtx)>,
    // Scratch buffers reused across calls.
    busy: Vec<f64>,
    maxwg: Vec<f64>,
    tails: Vec<f64>,
    rmw: [Vec<f64>; 2],
}

impl<'b> BatchGroupPricer<'b> {
    /// Builds the pricer for one geometry group of `batch`'s replay.
    ///
    /// # Panics
    ///
    /// Panics if any of `configs` implies a different effective
    /// workgroup size for the batch.
    pub(crate) fn new(
        batch: &'b ChipBatch,
        wg_size: u32,
        configs: &[OptConfig],
    ) -> BatchGroupPricer<'b> {
        let chips = batch.chips();
        let n = chips.len();
        let sg_size = batch.subgroup_size();
        for cfg in configs {
            assert_eq!(
                cfg.workgroup_size().min(batch.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
        }
        let capacity = |occupancy_factor: f64| -> Vec<f64> {
            chips
                .iter()
                .map(|chip| {
                    let resident = (chip.resident_workgroups(wg_size) as f64)
                        * wg_size as f64
                        * occupancy_factor;
                    resident.min(chip.throughput_threads as f64)
                })
                .collect()
        };
        let launch: Vec<f64> = chips
            .iter()
            .map(|chip| chip.kernel_launch_cost + chip.host_copy_cost)
            .collect();
        let mut setup = Vec::with_capacity(n);
        let mut bar = Vec::with_capacity(n);
        for (chip, &l) in chips.iter().zip(&launch) {
            let gb = GlobalBarrier::discover(chip, wg_size);
            setup.push(l + gb.setup_cost());
            bar.push(gb.barrier_cost());
        }
        BatchGroupPricer {
            chips,
            wg_size,
            sg_size,
            fixed: chips.iter().map(|chip| chip.kernel_fixed_cost).collect(),
            cap: [capacity(1.0), capacity(0.8)],
            launch,
            setup,
            bar,
            classes: [
                ClassSlots::new(configs, sg_size, false),
                ClassSlots::new(configs, sg_size, true),
            ],
            cfg_rmw: configs.iter().map(|cfg| cfg.coop_cv as usize).collect(),
            profiles: Vec::new(),
            busy: vec![0.0; n],
            maxwg: vec![0.0; n],
            tails: Vec::new(),
            rmw: [vec![0.0; n], vec![0.0; n]],
        }
    }

    /// Adds one call's `overhead + device` term to the flat
    /// configuration-major accumulator (`times[k * n_chips + c]`), in
    /// the exact expression order of the per-chip replay: the device
    /// time associates as `(kernel_fixed_cost + compute) + rmw` and the
    /// per-call fold as `acc += overhead + device`.
    ///
    /// # Panics
    ///
    /// Panics if `aggs` was built for a different geometry than the
    /// pricer's.
    pub(crate) fn accumulate_call(
        &mut self,
        call_idx: usize,
        profile: &KernelProfile,
        aggs: &CallAggregates,
        configs: &[OptConfig],
        times: &mut [f64],
    ) {
        assert_eq!(
            aggs.wg_size, self.wg_size,
            "aggregation workgroup size mismatch"
        );
        assert_eq!(
            aggs.sg_size, self.sg_size,
            "aggregation subgroup size mismatch"
        );
        let n = self.chips.len();

        if aggs.workgroups.is_empty() {
            // Empty frontier: the device time is exactly
            // `kernel_fixed_cost`, as the per-chip evaluator's early
            // return prices it.
            for (k, cfg) in configs.iter().enumerate() {
                let over = &self.overhead(cfg, call_idx)[..n];
                let fixed = &self.fixed[..n];
                let acc = &mut times[k * n..(k + 1) * n];
                for ((acc, &over), &fixed) in acc.iter_mut().zip(over).zip(fixed) {
                    *acc += over + fixed;
                }
            }
            return;
        }

        let class = profile.irregular as usize;
        let ctx_idx = self
            .profiles
            .iter()
            .position(|(p, _)| std::ptr::eq(*p, profile))
            .unwrap_or_else(|| {
                let coeffs = BatchCoeffs::new(self.chips, self.wg_size, profile);
                let preludes = self.classes[class]
                    .keys
                    .iter()
                    .map(|&key| PassPrelude::new(&coeffs, profile, self.sg_size, self.wg_size, key))
                    .collect();
                self.profiles.push((
                    profile as *const KernelProfile,
                    ProfileCtx { coeffs, preludes },
                ));
                self.profiles.len() - 1
            });

        // One aggregate walk per slot; each walk feeds two tail buffers
        // (without/with the oitergb occupancy penalty):
        // `tail = kernel_fixed_cost + compute`, associated exactly as
        // `finish_kernel`.
        let n_slots = self.classes[class].keys.len();
        if self.tails.len() < n_slots * 2 * n {
            self.tails.resize(n_slots * 2 * n, 0.0);
        }
        let ctx = &self.profiles[ctx_idx].1;
        for s in 0..n_slots {
            device_pass_rows(
                &ctx.coeffs,
                &ctx.preludes[s],
                self.sg_size,
                self.wg_size,
                aggs,
                &mut self.busy,
                &mut self.maxwg,
            );
            // Both occupancy variants read the same pass arrays; fill
            // them in one bounds-check-free sweep.
            let base = s * 2 * n;
            let (t0, t1) = self.tails[base..base + 2 * n].split_at_mut(n);
            let busy = &self.busy[..n];
            let maxwg = &self.maxwg[..n];
            let fixed = &self.fixed[..n];
            let cap0 = &self.cap[0][..n];
            let cap1 = &self.cap[1][..n];
            for c in 0..n {
                let (b, m, f) = (busy[c], maxwg[c], fixed[c]);
                t0[c] = f + (b / cap0[c]).max(m);
                t1[c] = f + (b / cap1[c]).max(m);
            }
        }
        for (coop, dst) in self.rmw.iter_mut().enumerate() {
            for (chip, r) in self.chips.iter().zip(dst.iter_mut()) {
                *r = worklist_rmw_time(chip, coop == 1, aggs.pushes);
            }
        }

        let slots = &self.classes[class];
        for (k, cfg) in configs.iter().enumerate() {
            let over = &self.overhead(cfg, call_idx)[..n];
            let t = &self.tails[slots.cfg_tail[k] * n..(slots.cfg_tail[k] + 1) * n];
            let r = &self.rmw[self.cfg_rmw[k]][..n];
            let acc = &mut times[k * n..(k + 1) * n];
            for (((acc, &over), &t), &r) in acc.iter_mut().zip(over).zip(t).zip(r) {
                *acc += over + (t + r);
            }
        }
    }

    /// The per-chip host overhead of one call under `cfg`, mirroring
    /// `Session::kernel_aggregated`'s accounting: launch + copy per
    /// kernel, except under `oitergb` where only the first call launches
    /// (with barrier setup) and later calls pay a global barrier.
    fn overhead(&self, cfg: &OptConfig, call_idx: usize) -> &[f64] {
        if cfg.oitergb {
            if call_idx == 0 {
                &self.setup
            } else {
                &self.bar
            }
        } else {
            &self.launch
        }
    }
}

/// The config-dependent tail of kernel evaluation: occupancy-normalised
/// compute time plus fixed and worklist costs. O(1) per configuration.
fn finish_kernel(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    pass: &DevicePass,
    pushes: u64,
) -> f64 {
    // The outlined megakernel of `oitergb` holds every kernel's registers
    // and local-memory footprint live at once, costing some occupancy.
    let occupancy_factor = if cfg.oitergb { 0.8 } else { 1.0 };
    let resident_threads =
        (chip.resident_workgroups(wg_size) as f64) * wg_size as f64 * occupancy_factor;
    let capacity_threads = resident_threads.min(chip.throughput_threads as f64);
    let compute = (pass.total_busy / capacity_threads).max(pass.max_wg_time);

    chip.kernel_fixed_cost + compute + worklist_rmw_time(chip, cfg.coop_cv, pushes)
}

/// The explained counterpart of [`finish_kernel`]: returns the same
/// scalar (computed by calling [`finish_kernel`] itself, so it is
/// bit-identical) plus its attribution.
///
/// The busy-work buckets sum to `pass.total_busy` algebraically, so
/// rescaling them by `throughput_time / Σbuckets` attributes the
/// throughput-limited time exactly; any excess of the critical-path
/// workgroup over throughput-limited execution is the occupancy tail.
fn finish_kernel_explained(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    pass: &DevicePass,
    buckets: &PassBuckets,
    pushes: u64,
) -> (f64, CostBreakdown) {
    let total = finish_kernel(chip, cfg, wg_size, pass, pushes);
    let occupancy_factor = if cfg.oitergb { 0.8 } else { 1.0 };
    let resident_threads =
        (chip.resident_workgroups(wg_size) as f64) * wg_size as f64 * occupancy_factor;
    let capacity_threads = resident_threads.min(chip.throughput_threads as f64);
    let throughput_time = pass.total_busy / capacity_threads;
    let compute = throughput_time.max(pass.max_wg_time);
    let busy_sum = buckets.base + buckets.divergence + buckets.atomic + buckets.barrier;
    let scale = if busy_sum > 0.0 {
        throughput_time / busy_sum
    } else {
        0.0
    };
    let breakdown = CostBreakdown {
        compute: chip.kernel_fixed_cost + buckets.base * scale,
        divergence: buckets.divergence * scale,
        atomics: buckets.atomic * scale,
        barrier: buckets.barrier * scale,
        occupancy_tail: compute - throughput_time,
        worklist: worklist_rmw_time(chip, cfg.coop_cv, pushes),
        ..CostBreakdown::default()
    };
    (total, breakdown)
}

/// Result of walking one invocation's workgroups under one effective
/// scheme setting: total thread-busy work and the longest single
/// workgroup (the critical path).
#[derive(Debug, Clone, Copy)]
struct DevicePass {
    total_busy: f64,
    max_wg_time: f64,
}

/// Attribution of [`DevicePass::total_busy`] to cost mechanisms, only
/// populated when [`device_pass`] runs with `EXPLAIN = true`. The four
/// buckets sum to `total_busy` (algebraically; floating-point
/// round-off aside):
///
/// * `base` — per-node prologues plus every edge's converged ALU and
///   memory cost, regardless of which scheme executed it;
/// * `divergence` — serial-scheme time in excess of the converged cost
///   of the same edges (divergence penalty and masked-lane waste);
/// * `atomic` — the per-edge atomic-RMW share of edge work;
/// * `barrier` — scheme orchestration: ballots, subgroup/workgroup
///   barriers, inspector bookkeeping, and fixed scheme agreement.
#[derive(Debug, Clone, Copy, Default)]
struct PassBuckets {
    base: f64,
    divergence: f64,
    atomic: f64,
    barrier: f64,
}

/// Walks the per-workgroup aggregates once for one effective setting of
/// the device-side optimisation axes (`cfg_wg`, `cfg_sg`, `cfg_fg`,
/// `cfg_coop_cv` — the raw configuration booleans; regular-kernel and
/// subgroup-size gating happens inside, exactly as the pre-batching
/// evaluator did). This is the O(#workgroups) hot loop of replay.
///
/// With `EXPLAIN = false` the attribution accumulators compile out and
/// the returned [`PassBuckets`] is all zeros; the timing arithmetic is
/// byte-for-byte the same either way, so `EXPLAIN = true` never
/// perturbs the scalar result.
#[allow(clippy::too_many_arguments)]
fn device_pass<const EXPLAIN: bool>(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    cfg_wg: bool,
    cfg_sg: bool,
    cfg_fg: FgMode,
    cfg_coop_cv: bool,
) -> (DevicePass, PassBuckets) {
    let sg_size = chip.subgroup_size.max(1);
    let n_subgroups = (wg_size / sg_size).max(1) as f64;

    // The sg scheme brackets execution with barriers, keeping the
    // workgroup converged; on divergence-sensitive chips this relieves
    // part of the penalty on serial work too (Section VIII-c).
    let serial_div = chip.divergence_factor(cfg_sg && profile.irregular);
    let edge_balanced = profile.edge_cost(chip, 1.0);
    let node_fixed = profile.node_cost(chip);
    let wg_barrier = chip.wg_barrier(wg_size);
    let sg_barrier = if chip.lockstep_subgroups {
        0.0
    } else {
        chip.sg_barrier_cost
    };
    let (fg_on, fg_epi) = match cfg_fg {
        FgMode::Off => (false, 1.0),
        FgMode::Fg1 => (profile.irregular, 1.0),
        FgMode::Fg8 => (profile.irregular, 8.0),
    };
    let fg_round_overhead = wg_barrier + (wg_size as f64).log2() * chip.local_mem_cost;
    // Regular kernels have no nested loop for the schemes to rewrite.
    let wg_on = cfg_wg && profile.irregular;
    let sg_on = cfg_sg && sg_size > 1 && profile.irregular;
    let sg_orchestration = 2.0 * sg_barrier + 2.0 * chip.local_mem_cost;
    // One workgroup-wide ballot: barrier plus a local-memory reduction
    // tree. The wg executor pays one per serialised node (leader
    // election) and two to enter/exit the phase.
    let wg_ballot = wg_barrier + (wg_size as f64).log2() * chip.local_mem_cost;
    // Attribution constants: the atomic share of one converged edge and
    // the remaining (ALU + memory) share.
    let e_atomic = profile.atomics_per_edge * chip.atomic_uncontended_cost;
    let e_flat = edge_balanced - e_atomic;

    let mut total_busy = 0.0f64;
    let mut max_wg_time = 0.0f64;
    let mut buckets = PassBuckets::default();

    for wg in &aggs.workgroups {
        // Route classes to schemes:
        // big -> wg (if on) -> sg (if on) -> fg (if on) -> serial
        // mid -> sg (if on) -> fg (if on) -> serial
        // small -> fg (if on) -> serial
        let mut wg_phase = 0.0f64;
        let mut sg_work = 0.0f64;
        let mut sg_max_single = 0.0f64;
        let mut fg_edges = 0u64;
        let mut fg_nodes = 0u64;
        let mut serial_max = 0u32;
        let mut serial_edges = 0u64;
        let mut serial_count = 0u32;
        // EXPLAIN only: balanced edge-equivalents priced at
        // `edge_balanced` inside each cooperative phase, so the
        // phases' orchestration remainder can be attributed to the
        // barrier bucket.
        let mut wg_units = 0u64;
        let mut sg_units = 0u64;
        let mut fg_units = 0.0f64;

        let mut route = |class: &ClassAgg, start: Scheme| {
            if class.count == 0 {
                return;
            }
            match start {
                Scheme::Wg if wg_on => {
                    wg_phase +=
                        class.count as f64 * wg_ballot + class.rounds_wg as f64 * edge_balanced;
                    if EXPLAIN {
                        wg_units += class.rounds_wg;
                    }
                }
                Scheme::Wg | Scheme::Sg if sg_on => {
                    sg_work += class.count as f64 * sg_orchestration
                        + class.rounds_sg as f64 * edge_balanced;
                    let single = sg_orchestration
                        + (class.max_degree as u64).div_ceil(sg_size as u64) as f64 * edge_balanced;
                    sg_max_single = sg_max_single.max(single);
                    if EXPLAIN {
                        sg_units += class.rounds_sg;
                    }
                }
                _ if fg_on => {
                    fg_edges += class.edges;
                    fg_nodes += class.count as u64;
                }
                _ => {
                    serial_max = serial_max.max(class.max_degree);
                    serial_edges += class.edges;
                    serial_count += class.count;
                }
            }
        };
        route(&wg.big, Scheme::Wg);
        route(&wg.mid, Scheme::Sg);
        route(&wg.small, Scheme::Fg);

        // Divergence scales with intra-workgroup imbalance: lockstep lanes
        // walking equal-length edge lists stay converged (a uniform-degree
        // loop is nearly free of divergence), while skewed lists force the
        // full penalty. A floor accounts for the irreducible scatter of
        // neighbour indices.
        let (edge_serial, simd_waste) = if serial_edges > 0 && serial_count > 0 {
            let mean = serial_edges as f64 / serial_count as f64;
            let ratio = serial_max as f64 / mean;
            let imbalance = ((ratio - 1.0) / 3.0).clamp(0.25, 1.0);
            // Divergent lanes also waste issue slots: while the longest
            // lane runs, its subgroup's other lanes are masked out, so the
            // effective throughput cost of a serial edge grows with the
            // imbalance (bounded by the subgroup width; scalar chips like
            // MALI waste nothing).
            let waste = (0.5 * ratio).clamp(1.0, sg_size as f64);
            (
                profile.edge_cost(chip, 1.0 + (serial_div - 1.0) * imbalance),
                waste,
            )
        } else {
            (profile.edge_cost(chip, serial_div), 1.0)
        };

        // Critical path of the serial phase: lanes idle until the longest
        // edge loop in the workgroup finishes.
        let serial_phase = serial_max as f64 * edge_serial;
        let sg_phase = if sg_work > 0.0 {
            (sg_work / n_subgroups).max(sg_max_single)
        } else {
            0.0
        };

        // Inspector/executor: linearise the pooled edges across the
        // workgroup, `fg_epi` edges per thread per round.
        let mut fg_phase = 0.0f64;
        if fg_on {
            if fg_edges == 0 {
                // An empty pool costs one cheap agreement barrier.
                fg_phase += wg_barrier;
            } else {
                // Inspector writes each *contributing* node's range to
                // local memory (amortised across the workgroup's
                // threads); nodes without edges are filtered by a flag.
                let contributing = fg_nodes.min(fg_edges) as f64;
                fg_phase += contributing * 2.0 * chip.local_mem_cost / wg_size as f64;
                // Full rounds stride `fg_epi` edges per thread; the tail
                // round only walks the remaining edges (excess lanes are
                // masked off).
                let per_round = wg_size as f64 * fg_epi;
                let full_rounds = (fg_edges as f64 / per_round).floor();
                fg_phase += full_rounds * (fg_epi * edge_balanced + fg_round_overhead);
                if EXPLAIN {
                    fg_units += full_rounds * fg_epi;
                }
                let tail_edges = fg_edges as f64 - full_rounds * per_round;
                if tail_edges > 0.0 {
                    let tail_rounds = (tail_edges / wg_size as f64).ceil();
                    fg_phase += tail_rounds * edge_balanced + fg_round_overhead;
                    if EXPLAIN {
                        fg_units += tail_rounds;
                    }
                }
            }
        }

        // Scheme fixed overheads paid whether or not any node qualified:
        // threads must agree the pools are empty.
        let mut scheme_fixed = 0.0f64;
        if wg_on {
            scheme_fixed += 2.0 * wg_ballot;
        }
        if sg_on {
            scheme_fixed += 2.0 * sg_barrier + 2.0 * chip.local_mem_cost;
        }
        if cfg_coop_cv && sg_size > 1 {
            scheme_fixed += 2.0 * chip.local_mem_cost;
        }

        let wg_time = node_fixed + serial_phase + sg_phase + wg_phase + fg_phase + scheme_fixed;
        max_wg_time = max_wg_time.max(wg_time);

        // Busy work: what the workgroup's threads actually execute. The
        // per-node prologue and scheme agreement run on every launched
        // thread slot (idle slots of a partial workgroup included), the
        // serial phase occupies one thread per edge, and the cooperative
        // phases occupy the whole workgroup for their duration.
        total_busy += (node_fixed + scheme_fixed) * wg_size as f64
            + serial_edges as f64 * edge_serial * simd_waste
            + sg_work * sg_size as f64
            + (wg_phase + fg_phase) * wg_size as f64;

        if EXPLAIN {
            // Split this workgroup's busy contribution into buckets.
            // `units` counts cooperative edge-equivalents weighted by
            // the thread width each occupies, so
            // `units * edge_balanced` is exactly the balanced-edge part
            // of the cooperative phases' busy time; what remains of
            // each phase is orchestration. Serial edges occupy one
            // thread each; their excess over the converged cost is the
            // divergence bucket.
            let serial = serial_edges as f64;
            let units = (wg_units as f64 + fg_units) * wg_size as f64
                + sg_units as f64 * sg_size as f64;
            let edge_units = units + serial;
            buckets.base += node_fixed * wg_size as f64 + edge_units * e_flat;
            buckets.atomic += edge_units * e_atomic;
            buckets.divergence += serial * edge_serial * simd_waste - serial * edge_balanced;
            buckets.barrier += scheme_fixed * wg_size as f64
                + (wg_phase - wg_units as f64 * edge_balanced) * wg_size as f64
                + (sg_work - sg_units as f64 * edge_balanced) * sg_size as f64
                + (fg_phase - fg_units * edge_balanced) * wg_size as f64;
        }
    }

    (
        DevicePass {
            total_busy,
            max_wg_time,
        },
        buckets,
    )
}

#[derive(Clone, Copy)]
enum Scheme {
    Wg,
    Sg,
    Fg,
}

/// Per-chip cost coefficients of one batch, one contiguous array per
/// coefficient (struct-of-arrays), computed once per
/// (batch, workgroup size, kernel profile). Each value reproduces the
/// exact expression tree [`device_pass`] evaluates for a single chip —
/// e.g. `edge_balanced[c]` is literally
/// `(e_alu[c] + e_mem[c] * 1.0) + e_atom[c]`, the same left-associated
/// sum as [`KernelProfile::edge_cost`] at divergence 1 — so the hoisting
/// never changes a single bit of the result.
struct BatchCoeffs {
    /// `alu_per_edge * alu_cost`.
    e_alu: Vec<f64>,
    /// `(reads_per_edge + writes_per_edge) * global_mem_cost` — the
    /// divergence-sensitive factor of the edge cost.
    e_mem: Vec<f64>,
    /// `atomics_per_edge * atomic_uncontended_cost`.
    e_atom: Vec<f64>,
    /// [`KernelProfile::edge_cost`] at divergence 1.
    edge_balanced: Vec<f64>,
    /// [`KernelProfile::node_cost`].
    node_fixed: Vec<f64>,
    /// [`ChipProfile::wg_barrier`] at the batch workgroup size.
    wg_barrier: Vec<f64>,
    /// Workgroup ballot: `wg_barrier + log2(wg) * local_mem_cost`. The
    /// fine-grained round overhead is the same expression, so this array
    /// serves both (they are bit-identical in `device_pass` too).
    wg_ballot: Vec<f64>,
    /// Effective subgroup barrier (0 on lockstep hardware).
    sg_barrier: Vec<f64>,
    /// `2 * sg_barrier + 2 * local_mem_cost`.
    sg_orchestration: Vec<f64>,
    /// `local_mem_cost`.
    local_mem: Vec<f64>,
    /// [`ChipProfile::divergence_factor`] without barrier relief.
    div_raw: Vec<f64>,
    /// [`ChipProfile::divergence_factor`] with barrier relief.
    div_relieved: Vec<f64>,
}

impl BatchCoeffs {
    fn new(chips: &[ChipProfile], wg_size: u32, profile: &KernelProfile) -> BatchCoeffs {
        let n = chips.len();
        let rw_edge = profile.reads_per_edge + profile.writes_per_edge;
        let log2_wg = (wg_size as f64).log2();
        let mut co = BatchCoeffs {
            e_alu: Vec::with_capacity(n),
            e_mem: Vec::with_capacity(n),
            e_atom: Vec::with_capacity(n),
            edge_balanced: Vec::with_capacity(n),
            node_fixed: Vec::with_capacity(n),
            wg_barrier: Vec::with_capacity(n),
            wg_ballot: Vec::with_capacity(n),
            sg_barrier: Vec::with_capacity(n),
            sg_orchestration: Vec::with_capacity(n),
            local_mem: Vec::with_capacity(n),
            div_raw: Vec::with_capacity(n),
            div_relieved: Vec::with_capacity(n),
        };
        for chip in chips {
            let e_alu = profile.alu_per_edge * chip.alu_cost;
            let e_mem = rw_edge * chip.global_mem_cost;
            let e_atom = profile.atomics_per_edge * chip.atomic_uncontended_cost;
            co.e_alu.push(e_alu);
            co.e_mem.push(e_mem);
            co.e_atom.push(e_atom);
            co.edge_balanced.push(e_alu + e_mem * 1.0 + e_atom);
            co.node_fixed.push(profile.node_cost(chip));
            let wg_barrier = chip.wg_barrier(wg_size);
            co.wg_barrier.push(wg_barrier);
            co.wg_ballot.push(wg_barrier + log2_wg * chip.local_mem_cost);
            let sg_barrier = if chip.lockstep_subgroups {
                0.0
            } else {
                chip.sg_barrier_cost
            };
            co.sg_barrier.push(sg_barrier);
            co.sg_orchestration
                .push(2.0 * sg_barrier + 2.0 * chip.local_mem_cost);
            co.local_mem.push(chip.local_mem_cost);
            co.div_raw.push(chip.divergence_factor(false));
            co.div_relieved.push(chip.divergence_factor(true));
        }
        co
    }

    fn len(&self) -> usize {
        self.e_alu.len()
    }
}

/// Chip-major [`device_pass`]: walks the per-workgroup aggregates *once*
/// for one effective optimisation setting, pricing every chip of the
/// batch per row. Per row the chip-independent part — scheme routing,
/// serial imbalance statistics, fine-grained round counts — is computed
/// exactly once; a branch-light inner loop then applies each chip's
/// struct-of-arrays coefficients in the same expression order as
/// [`device_pass`], so each chip's `DevicePass` is bit-identical to a
/// per-chip walk. Routing is shareable because every routing decision
/// reads only the class counts and the batch's shared subgroup size, and
/// the sg phase keeps at most two entries in routing order (big before
/// mid) so the float accumulation order is preserved too.
#[allow(clippy::too_many_arguments)]
fn device_pass_many_chips(
    co: &BatchCoeffs,
    sg_size: u32,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    cfg_wg: bool,
    cfg_sg: bool,
    cfg_fg: FgMode,
    cfg_coop_cv: bool,
) -> Vec<DevicePass> {
    let pre = PassPrelude::new(
        co,
        profile,
        sg_size,
        wg_size,
        (cfg_wg, cfg_sg, cfg_fg, cfg_coop_cv),
    );
    let n = co.len();
    let mut total_busy = vec![0.0f64; n];
    let mut max_wg_time = vec![0.0f64; n];
    device_pass_rows(
        co,
        &pre,
        sg_size,
        wg_size,
        aggs,
        &mut total_busy,
        &mut max_wg_time,
    );
    total_busy
        .into_iter()
        .zip(max_wg_time)
        .map(|(total_busy, max_wg_time)| DevicePass {
            total_busy,
            max_wg_time,
        })
        .collect()
}

/// A device pass's effective key: `(wg, sg, fg, coop-cv)` after applying
/// the kernel's regularity and the batch's subgroup width. Configurations
/// with equal keys share one walk of the aggregates.
pub(crate) type SlotKey = (bool, bool, FgMode, bool);

/// The row-independent half of [`device_pass_many_chips`]: the effective
/// scheme flags plus the per-chip pass-level coefficient arrays (serial
/// divergence factor, fixed scheme-agreement cost, its busy-work
/// contribution, one full fine-grained round). A prelude depends only on
/// the kernel profile, the batch geometry and the slot key — not on the
/// frontier — so one prelude per (profile, slot) serves every call of a
/// trace.
struct PassPrelude {
    wg_on: bool,
    sg_on: bool,
    fg_on: bool,
    fg_epi: f64,
    serial_div: Vec<f64>,
    sd1: Vec<f64>,
    scheme_fixed: Vec<f64>,
    busy_fixed: Vec<f64>,
    fg_full: Vec<f64>,
}

impl PassPrelude {
    fn new(
        co: &BatchCoeffs,
        profile: &KernelProfile,
        sg_size: u32,
        wg_size: u32,
        key: SlotKey,
    ) -> PassPrelude {
        let (cfg_wg, cfg_sg, cfg_fg, cfg_coop_cv) = key;
        let n = co.len();
        let relieved = cfg_sg && profile.irregular;
        let (fg_on, fg_epi) = match cfg_fg {
            FgMode::Off => (false, 1.0),
            FgMode::Fg1 => (profile.irregular, 1.0),
            FgMode::Fg8 => (profile.irregular, 8.0),
        };
        let wg_on = cfg_wg && profile.irregular;
        let sg_on = cfg_sg && sg_size > 1 && profile.irregular;
        let coop_on = cfg_coop_cv && sg_size > 1;
        let wg_f = wg_size as f64;

        let mut serial_div = Vec::with_capacity(n);
        let mut sd1 = Vec::with_capacity(n);
        let mut scheme_fixed = Vec::with_capacity(n);
        let mut busy_fixed = Vec::with_capacity(n);
        let mut fg_full = Vec::with_capacity(n);
        for c in 0..n {
            let sdv = if relieved {
                co.div_relieved[c]
            } else {
                co.div_raw[c]
            };
            serial_div.push(sdv);
            sd1.push(sdv - 1.0);
            let mut fixed = 0.0f64;
            if wg_on {
                fixed += 2.0 * co.wg_ballot[c];
            }
            if sg_on {
                fixed += 2.0 * co.sg_barrier[c] + 2.0 * co.local_mem[c];
            }
            if coop_on {
                fixed += 2.0 * co.local_mem[c];
            }
            scheme_fixed.push(fixed);
            busy_fixed.push((co.node_fixed[c] + fixed) * wg_f);
            fg_full.push(fg_epi * co.edge_balanced[c] + co.wg_ballot[c]);
        }
        PassPrelude {
            wg_on,
            sg_on,
            fg_on,
            fg_epi,
            serial_div,
            sd1,
            scheme_fixed,
            busy_fixed,
            fg_full,
        }
    }
}

/// The per-frontier half of [`device_pass_many_chips`]: walks the
/// aggregate rows once, computing each row's chip-independent routing and
/// statistics a single time and applying every chip's coefficients in the
/// exact expression order of `device_pass`. Overwrites `total_busy` and
/// `max_wg_time` (both `co.len()` long) with the pass results.
fn device_pass_rows(
    co: &BatchCoeffs,
    pre: &PassPrelude,
    sg_size: u32,
    wg_size: u32,
    aggs: &CallAggregates,
    total_busy: &mut [f64],
    max_wg_time: &mut [f64],
) {
    let n = co.len();
    let n_subgroups = (wg_size / sg_size).max(1) as f64;
    let PassPrelude {
        wg_on,
        sg_on,
        fg_on,
        fg_epi,
        ref serial_div,
        ref sd1,
        ref scheme_fixed,
        ref busy_fixed,
        ref fg_full,
    } = *pre;
    let wg_f = wg_size as f64;
    let sg_f = sg_size as f64;

    // Equal-length slices so the per-chip loops below are free of bounds
    // checks and open to vectorisation.
    let serial_div = &serial_div[..n];
    let sd1 = &sd1[..n];
    let scheme_fixed = &scheme_fixed[..n];
    let busy_fixed = &busy_fixed[..n];
    let fg_full = &fg_full[..n];
    let e_alu = &co.e_alu[..n];
    let e_mem = &co.e_mem[..n];
    let e_atom = &co.e_atom[..n];
    let edge_balanced = &co.edge_balanced[..n];
    let node_fixed = &co.node_fixed[..n];
    let wg_barrier = &co.wg_barrier[..n];
    let wg_ballot = &co.wg_ballot[..n];
    let sg_orchestration = &co.sg_orchestration[..n];
    let local_mem = &co.local_mem[..n];
    let total_busy = &mut total_busy[..n];
    let max_wg_time = &mut max_wg_time[..n];

    total_busy.fill(0.0);
    max_wg_time.fill(0.0);

    for wg in &aggs.workgroups {
        // --- Chip-independent routing, identical to `device_pass` ---
        // At most one class (big) can reach the wg scheme; at most two
        // (big, mid — in that order) can reach the sg scheme.
        let mut wg_entry: Option<(f64, f64)> = None; // (count, rounds_wg)
        let mut sg_entries = [(0.0f64, 0.0f64, 0.0f64); 2]; // (count, rounds_sg, ceil(max_deg/sg))
        let mut n_sg = 0usize;
        let mut fg_edges = 0u64;
        let mut fg_nodes = 0u64;
        let mut serial_max = 0u32;
        let mut serial_edges = 0u64;
        let mut serial_count = 0u32;
        {
            let mut route = |class: &ClassAgg, start: Scheme| {
                if class.count == 0 {
                    return;
                }
                match start {
                    Scheme::Wg if wg_on => {
                        wg_entry = Some((class.count as f64, class.rounds_wg as f64));
                    }
                    Scheme::Wg | Scheme::Sg if sg_on => {
                        sg_entries[n_sg] = (
                            class.count as f64,
                            class.rounds_sg as f64,
                            (class.max_degree as u64).div_ceil(sg_size as u64) as f64,
                        );
                        n_sg += 1;
                    }
                    _ if fg_on => {
                        fg_edges += class.edges;
                        fg_nodes += class.count as u64;
                    }
                    _ => {
                        serial_max = serial_max.max(class.max_degree);
                        serial_edges += class.edges;
                        serial_count += class.count;
                    }
                }
            };
            route(&wg.big, Scheme::Wg);
            route(&wg.mid, Scheme::Sg);
            route(&wg.small, Scheme::Fg);
        }

        // Chip-independent serial statistics: the imbalance and SIMD-waste
        // factors read only counts and the shared subgroup width.
        let has_serial_stats = serial_edges > 0 && serial_count > 0;
        let (imbalance, waste) = if has_serial_stats {
            let mean = serial_edges as f64 / serial_count as f64;
            let ratio = serial_max as f64 / mean;
            (
                ((ratio - 1.0) / 3.0).clamp(0.25, 1.0),
                (0.5 * ratio).clamp(1.0, sg_f),
            )
        } else {
            (0.0, 1.0)
        };
        let serial_max_f = serial_max as f64;
        let serial_edges_f = serial_edges as f64;

        // Chip-independent fine-grained pool statistics.
        let (fg_contrib2, full_rounds, tail_rounds, has_tail) = if fg_on && fg_edges > 0 {
            let contributing = fg_nodes.min(fg_edges) as f64;
            let per_round = wg_f * fg_epi;
            let full = (fg_edges as f64 / per_round).floor();
            let tail_edges = fg_edges as f64 - full * per_round;
            let tail = if tail_edges > 0.0 {
                (tail_edges / wg_f).ceil()
            } else {
                0.0
            };
            (contributing * 2.0, full, tail, tail_edges > 0.0)
        } else {
            (0.0, 0.0, 0.0, false)
        };

        // --- Per-chip inner loop: pure coefficient application ---
        let sg_entries = &sg_entries[..n_sg];
        for c in 0..n {
            let eb = edge_balanced[c];

            let wg_phase = match wg_entry {
                Some((count, rounds)) => count * wg_ballot[c] + rounds * eb,
                None => 0.0,
            };

            let mut sg_work = 0.0f64;
            let mut sg_max_single = 0.0f64;
            for &(count, rounds, ceil_rounds) in sg_entries {
                sg_work += count * sg_orchestration[c] + rounds * eb;
                let single = sg_orchestration[c] + ceil_rounds * eb;
                sg_max_single = sg_max_single.max(single);
            }

            // `edge_cost(chip, d)` with the per-chip factors split out:
            // `(e_alu + e_mem * d) + e_atom`, associated exactly as the
            // original method.
            let (edge_serial, simd_waste) = if has_serial_stats {
                (
                    e_alu[c] + e_mem[c] * (1.0 + sd1[c] * imbalance) + e_atom[c],
                    waste,
                )
            } else {
                (e_alu[c] + e_mem[c] * serial_div[c] + e_atom[c], 1.0)
            };

            let serial_phase = serial_max_f * edge_serial;
            let sg_phase = if sg_work > 0.0 {
                (sg_work / n_subgroups).max(sg_max_single)
            } else {
                0.0
            };

            let mut fg_phase = 0.0f64;
            if fg_on {
                if fg_edges == 0 {
                    fg_phase += wg_barrier[c];
                } else {
                    fg_phase += fg_contrib2 * local_mem[c] / wg_f;
                    fg_phase += full_rounds * fg_full[c];
                    if has_tail {
                        fg_phase += tail_rounds * eb + wg_ballot[c];
                    }
                }
            }

            let wg_time =
                node_fixed[c] + serial_phase + sg_phase + wg_phase + fg_phase + scheme_fixed[c];
            max_wg_time[c] = max_wg_time[c].max(wg_time);

            total_busy[c] += busy_fixed[c]
                + serial_edges_f * edge_serial * simd_waste
                + sg_work * sg_f
                + (wg_phase + fg_phase) * wg_f;
        }
    }
}

/// Serialised time of worklist pushes: one hot RMW counter, optionally
/// combined per subgroup (manually via coop-cv, or by the JIT).
fn worklist_rmw_time(chip: &ChipProfile, coop_cv: bool, pushes: u64) -> f64 {
    if pushes == 0 {
        return 0.0;
    }
    let pushes = pushes as f64;
    let sg = chip.subgroup_size.max(1) as f64;
    let combined_rmws = (pushes / sg).ceil() * chip.atomic_rmw_cost;
    match (coop_cv, chip.jit_subgroup_combining) {
        // Manual combining: combined RMWs plus the per-push collective
        // overhead. On subgroup-size-1 chips the transformation is a
        // semantically valid no-op (paper Section VI-A).
        (true, _) if chip.subgroup_size <= 1 => pushes * chip.atomic_rmw_cost,
        (true, _) => combined_rmws + pushes * chip.sg_collective_cost,
        // JIT combines transparently at no orchestration cost.
        (false, true) => combined_rmws,
        // No combining at all: fully serialised.
        (false, false) => pushes * chip.atomic_rmw_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};
    use crate::opts::{OptConfig, Optimization};

    fn run_once(chip: ChipProfile, cfg: OptConfig, items: &[WorkItem]) -> f64 {
        let m = Machine::new(chip);
        let mut s = m.session(cfg);
        Session::kernel(&mut s, &KernelProfile::frontier("k"), items);
        s.finish().time_ns
    }

    fn uniform(n: usize, degree: u32) -> Vec<WorkItem> {
        vec![WorkItem::new(degree, 0); n]
    }

    /// A frontier with one huge node and many tiny ones — the skewed
    /// regime where load balancing matters.
    fn skewed(n: usize, hub_degree: u32) -> Vec<WorkItem> {
        let mut v = vec![WorkItem::new(2, 0); n];
        v[0].degree = hub_degree;
        v
    }

    #[test]
    fn multi_geometry_aggregation_matches_per_geometry_builder() {
        let items: Vec<WorkItem> = (0..1_237)
            .map(|i| WorkItem::new((i * 31) % 401, (i % 5 == 0) as u32))
            .collect();
        // Every study-chip geometry plus a few degenerate ones, with
        // duplicates: the single pass must reproduce each bit-for-bit.
        let geometries = [
            (128, 32),
            (256, 32),
            (128, 16),
            (256, 16),
            (128, 64),
            (256, 64),
            (128, 1),
            (256, 1),
            (128, 32),
            (1, 1),
            (7, 3),
        ];
        let multi = CallAggregates::from_items_multi(&items, &geometries);
        assert_eq!(multi.len(), geometries.len());
        for (&(wg_size, sg_size), got) in geometries.iter().zip(&multi) {
            let want = CallAggregates::from_items(&items, wg_size, sg_size);
            assert_eq!(*got, want, "geometry ({wg_size}, {sg_size})");
        }
        // Empty frontier: one empty table per geometry.
        for agg in CallAggregates::from_items_multi(&[], &geometries) {
            assert!(agg.workgroups.is_empty());
            assert_eq!(agg.pushes, 0);
        }
    }

    #[test]
    fn empty_frontier_costs_only_fixed_overhead() {
        let chip = ChipProfile::gtx1080();
        let expect = chip.kernel_launch_cost + chip.host_copy_cost + chip.kernel_fixed_cost;
        let t = run_once(chip, OptConfig::baseline(), &[]);
        assert!((t - expect).abs() < 1e-6, "{t} vs {expect}");
    }

    #[test]
    fn more_work_takes_longer() {
        let chip = ChipProfile::r9();
        let t_small = run_once(chip.clone(), OptConfig::baseline(), &uniform(1_000, 4));
        let t_big = run_once(chip, OptConfig::baseline(), &uniform(100_000, 4));
        assert!(t_big > t_small);
    }

    #[test]
    fn higher_degree_takes_longer() {
        let chip = ChipProfile::m4000();
        let t4 = run_once(chip.clone(), OptConfig::baseline(), &uniform(10_000, 4));
        let t16 = run_once(chip, OptConfig::baseline(), &uniform(10_000, 16));
        assert!(t16 > t4);
    }

    #[test]
    fn wg_scheme_tames_hub_nodes() {
        let chip = ChipProfile::gtx1080();
        let items = skewed(10_000, 50_000);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let wg = run_once(chip, OptConfig::baseline().with(Optimization::Wg), &items);
        assert!(
            wg < base,
            "wg {wg} should beat baseline {base} on skewed input"
        );
    }

    #[test]
    fn sg_scheme_tames_heavy_nodes_without_wg() {
        let chip = ChipProfile::r9();
        // With wg off, nodes above the workgroup size fall to the sg
        // scheme, which splits their edge loops across the subgroup.
        let mut items = vec![WorkItem::new(6, 0); 5_000];
        for item in items.iter_mut().step_by(40) {
            item.degree = 1_000;
        }
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let sg = run_once(chip, OptConfig::baseline().with(Optimization::Sg), &items);
        assert!(sg < base, "sg {sg} should beat baseline {base}");
    }

    #[test]
    fn fg_beats_baseline_on_skew_and_fg8_amortises_barriers() {
        let chip = ChipProfile::m4000();
        let items = skewed(20_000, 10_000);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let fg1 = run_once(
            chip.clone(),
            OptConfig::baseline().with(Optimization::Fg1),
            &items,
        );
        let fg8 = run_once(chip, OptConfig::baseline().with(Optimization::Fg8), &items);
        assert!(fg1 < base);
        assert!(
            fg8 < fg1,
            "fg8 {fg8} should beat fg1 {fg1} (fewer barrier rounds)"
        );
    }

    #[test]
    fn balancing_uniform_low_degree_work_only_adds_overhead() {
        let chip = ChipProfile::gtx1080();
        let items = uniform(50_000, 3);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let all = OptConfig::baseline()
            .with(Optimization::Wg)
            .with(Optimization::Sg)
            .with(Optimization::Fg1);
        let opt = run_once(chip, all, &items);
        assert!(
            opt > base,
            "balancing flat work should cost, got {opt} vs {base}"
        );
    }

    #[test]
    fn coop_cv_helps_r9_hurts_nvidia() {
        let items: Vec<WorkItem> = vec![WorkItem::new(1, 4); 30_000];
        let cfg_cv = OptConfig::baseline().with(Optimization::CoopCv);
        let r9_base = run_once(ChipProfile::r9(), OptConfig::baseline(), &items);
        let r9_cv = run_once(ChipProfile::r9(), cfg_cv, &items);
        assert!(
            r9_cv < r9_base,
            "coop-cv should help R9: {r9_cv} vs {r9_base}"
        );
        let nv_base = run_once(ChipProfile::gtx1080(), OptConfig::baseline(), &items);
        let nv_cv = run_once(ChipProfile::gtx1080(), cfg_cv, &items);
        assert!(
            nv_cv > nv_base,
            "coop-cv should hurt GTX1080 (JIT combines already)"
        );
    }

    #[test]
    fn coop_cv_is_noop_on_mali() {
        let items: Vec<WorkItem> = vec![WorkItem::new(1, 4); 10_000];
        let base = run_once(ChipProfile::mali(), OptConfig::baseline(), &items);
        let cv = run_once(
            ChipProfile::mali(),
            OptConfig::baseline().with(Optimization::CoopCv),
            &items,
        );
        assert!((base - cv).abs() < 1e-6, "subgroup size 1: {base} vs {cv}");
    }

    #[test]
    fn oitergb_pays_off_with_many_short_kernels_on_high_overhead_chips() {
        // 200 dependent iterations over a tiny frontier: the road-BFS
        // regime of Section V-C.
        for chip in [
            ChipProfile::iris6100(),
            ChipProfile::mali(),
            ChipProfile::r9(),
        ] {
            let name = chip.name.clone();
            let m = Machine::new(chip);
            let run = |cfg: OptConfig| {
                let mut s = m.session(cfg);
                for _ in 0..200 {
                    Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(64, 3));
                }
                s.finish()
            };
            let base = run(OptConfig::baseline());
            let outlined = run(OptConfig::baseline().with(Optimization::Oitergb));
            assert!(
                outlined.time_ns < base.time_ns,
                "{name}: oitergb {} should beat {}",
                outlined.time_ns,
                base.time_ns
            );
            assert_eq!(outlined.launches, 1);
            assert_eq!(outlined.global_barriers, 199);
            assert_eq!(base.launches, 200);
        }
    }

    #[test]
    fn oitergb_hurts_nvidia() {
        // On Nvidia the global barrier saves little over the cheap launch
        // and the persistent megakernel costs occupancy, so once kernels
        // carry real work the outlined loop loses. On the launch-bound
        // extreme GTX1080 still loses; M4000 is a near-tie by design
        // (paper Table IX reports effect size 0.47 for it).
        for (chip, frontier) in [
            (ChipProfile::m4000(), 60_000usize),
            (ChipProfile::gtx1080(), 60_000),
            (ChipProfile::gtx1080(), 64),
        ] {
            let name = chip.name.clone();
            let m = Machine::new(chip);
            let run = |cfg: OptConfig| {
                let mut s = m.session(cfg);
                for _ in 0..20 {
                    Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(frontier, 3));
                }
                s.finish().time_ns
            };
            let base = run(OptConfig::baseline());
            let outlined = run(OptConfig::baseline().with(Optimization::Oitergb));
            assert!(
                outlined > base,
                "{name} frontier {frontier}: oitergb should not pay off on Nvidia"
            );
        }
    }

    #[test]
    fn sg_relieves_divergence_on_mali() {
        // Serial-heavy, moderately skewed work below the subgroup/wg
        // thresholds: sg cannot rebalance anything on MALI (subgroup size
        // 1) yet still speeds it up via barrier-induced convergence.
        let mut items = uniform(20_000, 8);
        for (i, item) in items.iter_mut().enumerate() {
            item.degree = 2 + (i % 16) as u32;
        }
        let base = run_once(ChipProfile::mali(), OptConfig::baseline(), &items);
        let sg = run_once(
            ChipProfile::mali(),
            OptConfig::baseline().with(Optimization::Sg),
            &items,
        );
        assert!(
            sg < base,
            "sg should relieve MALI divergence: {sg} vs {base}"
        );
    }

    #[test]
    fn sz256_alone_is_nearly_neutral_on_uniform_work() {
        let items = uniform(60_000, 6);
        let base = run_once(ChipProfile::r9(), OptConfig::baseline(), &items);
        let big = run_once(
            ChipProfile::r9(),
            OptConfig::baseline().with(Optimization::Sz256),
            &items,
        );
        assert!(
            (big / base - 1.0).abs() < 0.1,
            "sz256 alone: {big} vs {base}"
        );
    }

    #[test]
    fn sz256_amplifies_wg_scheme_ballot_costs() {
        // Workgroup ballots scale with workgroup size, so the wg scheme's
        // fixed overhead doubles at 256 threads — the paper's worst-ranked
        // combinations are exactly wg + sz256 (Table III).
        let items = uniform(60_000, 4);
        for chip in [ChipProfile::mali(), ChipProfile::iris6100()] {
            let name = chip.name.clone();
            let wg = OptConfig::baseline().with(Optimization::Wg);
            let t_wg = run_once(chip.clone(), wg, &items);
            let t_wg_256 = run_once(chip, wg.with(Optimization::Sz256), &items);
            assert!(t_wg_256 > t_wg, "{name}: wg+sz256 {t_wg_256} vs wg {t_wg}");
        }
    }

    #[test]
    fn throughput_ceiling_binds_for_large_launches() {
        // Beyond the throughput ceiling, doubling the work doubles the
        // time even though plenty of workgroups are resident.
        let chip = ChipProfile::gtx1080();
        let t1 = run_once(chip.clone(), OptConfig::baseline(), &uniform(100_000, 6));
        let t2 = run_once(chip.clone(), OptConfig::baseline(), &uniform(200_000, 6));
        let overhead = chip.kernel_launch_cost + chip.host_copy_cost + chip.kernel_fixed_cost;
        let ratio = (t2 - overhead) / (t1 - overhead);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn session_counts_kernels_and_launches() {
        let m = Machine::new(ChipProfile::hd5500());
        let mut s = m.session(OptConfig::baseline());
        for _ in 0..5 {
            Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(10, 2));
        }
        let stats = s.finish();
        assert_eq!(stats.kernels, 5);
        assert_eq!(stats.launches, 5);
        assert_eq!(stats.global_barriers, 0);
    }

    #[test]
    fn elapsed_accumulates_monotonically() {
        let m = Machine::new(ChipProfile::m4000());
        let mut s = m.session(OptConfig::baseline());
        let mut last = 0.0;
        for _ in 0..3 {
            Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(100, 4));
            assert!(s.elapsed_ns() > last);
            last = s.elapsed_ns();
        }
    }

    #[test]
    fn kernel_time_is_deterministic() {
        for chip in study_chips() {
            let items = skewed(5_000, 3_000);
            let cfg = OptConfig::from_index(37);
            let a = run_once(chip.clone(), cfg, &items);
            let b = run_once(chip, cfg, &items);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_configs_produce_finite_positive_times() {
        let items = skewed(2_000, 500);
        for chip in study_chips() {
            for cfg in crate::opts::all_configs() {
                let t = run_once(chip.clone(), cfg, &items);
                assert!(t.is_finite() && t > 0.0, "{} {cfg}: {t}", chip.name);
            }
        }
    }

    #[test]
    fn aggregates_classify_by_degree() {
        let items = [
            WorkItem::new(200, 0),
            WorkItem::new(50, 1),
            WorkItem::new(3, 2),
            WorkItem::new(130, 0),
        ];
        let aggs = CallAggregates::from_items(&items, 128, 32);
        assert_eq!(aggs.workgroups.len(), 1);
        let wg = &aggs.workgroups[0];
        assert_eq!(wg.big.count, 2);
        assert_eq!(wg.big.max_degree, 200);
        assert_eq!(wg.big.edges, 330);
        assert_eq!(wg.big.rounds_wg, 2 + 2); // ceil(200/128) + ceil(130/128)
        assert_eq!(wg.mid.count, 1);
        assert_eq!(wg.small.count, 1);
        assert_eq!(aggs.pushes, 3);
    }

    #[test]
    fn aggregates_with_subgroup_one_have_no_mid_class() {
        let items = [WorkItem::new(50, 0), WorkItem::new(3, 0)];
        let aggs = CallAggregates::from_items(&items, 128, 1);
        let wg = &aggs.workgroups[0];
        assert_eq!(wg.mid.count, 0);
        assert_eq!(wg.small.count, 2);
    }

    #[test]
    fn kernel_aggregated_matches_kernel() {
        for chip in study_chips() {
            let items = skewed(7_000, 900);
            for cfg_idx in [0, 17, 42, 95] {
                let cfg = OptConfig::from_index(cfg_idx);
                let m = Machine::new(chip.clone());
                let mut s1 = m.session(cfg);
                let t1 = Session::kernel(&mut s1, &KernelProfile::frontier("k"), &items);
                let mut s2 = m.session(cfg);
                let aggs = CallAggregates::from_items(
                    &items,
                    s2.workgroup_size(),
                    chip.subgroup_size.max(1),
                );
                let t2 = s2.kernel_aggregated(&KernelProfile::frontier("k"), &aggs);
                assert_eq!(t1, t2, "{} cfg {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn batch_evaluation_is_bit_identical_to_individual() {
        // The batched evaluator must agree bit-for-bit with 96 individual
        // evaluations, for irregular and regular kernels alike, on every
        // study chip and both workgroup sizes.
        let items = skewed(5_000, 3_000);
        let mut regular = KernelProfile::frontier("filter");
        regular.irregular = false;
        for chip in study_chips() {
            for profile in [KernelProfile::frontier("k"), regular.clone()] {
                for wg_size in [128u32, 256] {
                    let wg_size = wg_size.min(chip.max_workgroup_size());
                    let aggs =
                        CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                    let configs: Vec<OptConfig> = crate::opts::all_configs()
                        .into_iter()
                        .filter(|c| c.workgroup_size().min(chip.max_workgroup_size()) == wg_size)
                        .collect();
                    let batch = evaluate_kernel_batch(&chip, wg_size, &profile, &aggs, &configs);
                    for (cfg, t) in configs.iter().zip(&batch) {
                        let single = evaluate_kernel(&chip, *cfg, wg_size, &profile, &aggs);
                        assert_eq!(
                            single, *t,
                            "{} {cfg} wg={wg_size} {}",
                            chip.name, profile.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_evaluation_handles_empty_frontier() {
        let chip = ChipProfile::gtx1080();
        let aggs = CallAggregates::from_items(&[], 128, chip.subgroup_size.max(1));
        let configs: Vec<OptConfig> = crate::opts::all_configs()
            .into_iter()
            .filter(|c| c.workgroup_size() == 128)
            .collect();
        let batch = evaluate_kernel_batch(&chip, 128, &KernelProfile::frontier("k"), &aggs, &configs);
        assert!(batch.iter().all(|&t| t == chip.kernel_fixed_cost));
    }

    #[test]
    fn many_chips_evaluation_is_bit_identical_to_per_chip_batch() {
        // The chip-major evaluator must agree bit-for-bit with the
        // per-chip batch evaluator for every chip of every geometry
        // family, irregular and regular kernels alike — including a
        // duplicate chip and interpolated blends.
        let items = skewed(5_000, 3_000);
        let mut regular = KernelProfile::frontier("filter");
        regular.irregular = false;
        let mut chips = study_chips();
        chips.push(ChipProfile::m4000()); // duplicate in the same family
        chips.push(ChipProfile::interpolate(
            &ChipProfile::hd5500(),
            &ChipProfile::iris6100(),
            0.35,
        ));
        for batch in crate::chip::ChipBatch::partition(&chips) {
            for profile in [KernelProfile::frontier("k"), regular.clone()] {
                for wg_size in [128u32, 256] {
                    let wg_size = wg_size.min(batch.max_workgroup_size());
                    let aggs = CallAggregates::from_items(&items, wg_size, batch.subgroup_size());
                    let configs: Vec<OptConfig> = crate::opts::all_configs()
                        .into_iter()
                        .filter(|c| c.workgroup_size().min(batch.max_workgroup_size()) == wg_size)
                        .collect();
                    let many =
                        evaluate_kernel_batch_many_chips(&batch, wg_size, &profile, &aggs, &configs);
                    assert_eq!(many.len(), configs.len() * batch.len());
                    for (chip_idx, chip) in batch.chips().iter().enumerate() {
                        let single =
                            evaluate_kernel_batch(chip, wg_size, &profile, &aggs, &configs);
                        for (cfg_idx, (cfg, s)) in configs.iter().zip(&single).enumerate() {
                            let m = many[cfg_idx * batch.len() + chip_idx];
                            assert_eq!(
                                s.to_bits(),
                                m.to_bits(),
                                "{} {cfg} wg={wg_size} {}",
                                chip.name,
                                profile.name
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn many_chips_evaluation_handles_empty_frontier() {
        let batch =
            crate::chip::ChipBatch::new(vec![ChipProfile::m4000(), ChipProfile::gtx1080()]);
        let aggs = CallAggregates::from_items(&[], 128, batch.subgroup_size());
        let configs: Vec<OptConfig> = crate::opts::all_configs()
            .into_iter()
            .filter(|c| c.workgroup_size() == 128)
            .collect();
        let many = evaluate_kernel_batch_many_chips(
            &batch,
            128,
            &KernelProfile::frontier("k"),
            &aggs,
            &configs,
        );
        for (i, &t) in many.iter().enumerate() {
            let chip = &batch.chips()[i % batch.len()];
            assert_eq!(t, chip.kernel_fixed_cost);
        }
    }

    #[test]
    fn explained_kernel_is_bit_identical_and_sums_to_total() {
        let items = skewed(5_000, 3_000);
        let mut regular = KernelProfile::frontier("filter");
        regular.irregular = false;
        for chip in study_chips() {
            for profile in [KernelProfile::frontier("k"), regular.clone()] {
                for cfg in crate::opts::all_configs() {
                    let wg_size = cfg.workgroup_size().min(chip.max_workgroup_size());
                    let aggs =
                        CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                    let plain = evaluate_kernel(&chip, cfg, wg_size, &profile, &aggs);
                    let (explained, b) =
                        evaluate_kernel_explained(&chip, cfg, wg_size, &profile, &aggs);
                    assert_eq!(plain, explained, "{} {cfg} {}", chip.name, profile.name);
                    let rel = (b.total() - plain).abs() / plain;
                    assert!(
                        rel < 1e-9,
                        "{} {cfg} {}: breakdown {} vs scalar {plain}",
                        chip.name,
                        profile.name,
                        b.total()
                    );
                    // Components are non-negative up to round-off of the
                    // orchestration remainders.
                    assert!(
                        b.components().iter().all(|&(_, v)| v >= -1e-9 * plain),
                        "{} {cfg}: negative component in {b:?}",
                        chip.name
                    );
                }
            }
        }
    }

    #[test]
    fn explained_batch_matches_plain_batch() {
        let items = skewed(5_000, 3_000);
        let profile = KernelProfile::frontier("k");
        for chip in study_chips() {
            for wg_size in [128u32, 256] {
                let wg_size = wg_size.min(chip.max_workgroup_size());
                let aggs = CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                let configs: Vec<OptConfig> = crate::opts::all_configs()
                    .into_iter()
                    .filter(|c| c.workgroup_size().min(chip.max_workgroup_size()) == wg_size)
                    .collect();
                let plain = evaluate_kernel_batch(&chip, wg_size, &profile, &aggs, &configs);
                let explained =
                    evaluate_kernel_batch_explained(&chip, wg_size, &profile, &aggs, &configs);
                for ((t, (te, b)), cfg) in plain.iter().zip(&explained).zip(&configs) {
                    assert_eq!(t, te, "{} {cfg}", chip.name);
                    let rel = (b.total() - t).abs() / t;
                    assert!(rel < 1e-9, "{} {cfg}: {} vs {t}", chip.name, b.total());
                }
            }
        }
    }

    #[test]
    fn explained_session_matches_plain_session() {
        let items = skewed(4_000, 1_000);
        for chip in study_chips() {
            for cfg in [
                OptConfig::baseline(),
                OptConfig::baseline().with(Optimization::Oitergb),
                OptConfig::from_index(95),
            ] {
                let m = Machine::new(chip.clone());
                fn run<'m>(mut s: Session<'m>, items: &[WorkItem]) -> Session<'m> {
                    for _ in 0..4 {
                        Session::kernel(&mut s, &KernelProfile::frontier("k"), items);
                    }
                    s
                }
                let plain = run(m.session(cfg), &items).finish();
                let (stats, b) = run(m.session_explained(cfg), &items).finish_explained();
                assert_eq!(plain, stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs time {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
                if cfg.oitergb {
                    assert!(b.barrier > 0.0, "{}: oitergb must book barrier time", chip.name);
                }
                assert!(b.launch > 0.0 && b.copy > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "workgroup size mismatch")]
    fn kernel_aggregated_rejects_mismatched_sizes() {
        let m = Machine::new(ChipProfile::r9());
        let mut s = m.session(OptConfig::baseline());
        let aggs = CallAggregates::from_items(&[WorkItem::new(1, 0)], 256, 64);
        s.kernel_aggregated(&KernelProfile::frontier("k"), &aggs);
    }
}

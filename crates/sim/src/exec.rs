//! The abstract GPU machine: executes "compiled" graph-algorithm kernels
//! under a chip profile and an optimisation configuration, producing
//! modelled wall-clock time.
//!
//! # Model
//!
//! A kernel invocation processes a *frontier* of [`WorkItem`]s, one active
//! node per (virtual) thread. Nodes are packed into workgroups of 128 or
//! 256 threads ([`crate::opts::OptConfig::workgroup_size`]) and workgroups
//! into subgroups of the chip's subgroup size. Per workgroup, the nested
//! parallelism optimisations (paper Section V-B) partition nodes into
//! three degree classes — `big` (≥ workgroup size), `mid` (≥ subgroup
//! size) and `small` — and route each class to a scheme:
//!
//! - `wg`-scheme: `big` nodes are processed by the whole workgroup,
//!   serialising the outer loop (leader election plus two workgroup
//!   barriers per node);
//! - `sg`-scheme: `mid` nodes (and `big` ones if `wg` is off) are
//!   processed by their subgroup (two subgroup barriers per node);
//! - `fg`-scheme: the remaining classes' edges are linearised across the
//!   workgroup via an inspector/executor (prefix sum in local memory, one
//!   workgroup barrier per round of 1 or 8 edges per thread);
//! - otherwise a thread walks its node's edge list *serially*: subgroup
//!   lanes idle until the longest lane finishes (SIMD divergence) and the
//!   scattered per-edge accesses pay the chip's divergence penalty.
//!
//! Balanced schemes access edges in consecutive order, so they pay the
//! coalesced memory cost. The `sg` scheme additionally brackets execution
//! with barriers, which on divergence-sensitive chips (MALI) relieves part
//! of the penalty on the *serial* work too — the surprising effect of
//! paper Section VIII-c.
//!
//! Worklist pushes go through one global RMW per push unless combined:
//! either manually (`coop-cv`, paying a subgroup-collective overhead per
//! push) or transparently by the JIT on chips that support it
//! (Section VIII-b).
//!
//! Kernel time is `max(total workgroup time normalised by occupancy,
//! longest single workgroup)` plus the serialised worklist-RMW time, plus
//! fixed device overhead. Iteration overhead (launch + small copy per
//! kernel, or one launch plus a global barrier per kernel under
//! `oitergb`) is accounted by [`Session`].
//!
//! # Aggregated evaluation
//!
//! The scheme routing above only depends on each node's degree class, so a
//! frontier can be *pre-aggregated* per workgroup into [`ClassAgg`]s for a
//! given (workgroup size, subgroup size) pair and then evaluated for any
//! configuration in time proportional to the number of workgroups rather
//! than nodes. [`Session::kernel`] aggregates on the fly;
//! [`crate::trace`] records frontiers once and replays them cheaply
//! across every chip and configuration of the study.

use std::collections::HashMap;

use gpp_obs::CostBreakdown;
use serde::{Deserialize, Serialize};

use crate::barrier::GlobalBarrier;
use crate::chip::ChipProfile;
use crate::opts::{FgMode, OptConfig};

/// One active node in a kernel invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// Inner-loop trip count: edges this node's thread must process.
    pub degree: u32,
    /// Worklist pushes this node performs (atomic RMWs on a shared
    /// counter; combinable by `coop-cv`).
    pub pushes: u32,
}

impl WorkItem {
    /// Convenience constructor.
    pub fn new(degree: u32, pushes: u32) -> Self {
        WorkItem { degree, pushes }
    }
}

/// Static per-edge/per-node operation counts of one kernel — what the
/// graph-DSL compiler knows about the code it generated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Kernel name (for diagnostics).
    pub name: String,
    /// Scalar ALU operations per edge.
    pub alu_per_edge: f64,
    /// Scattered global reads per edge (divergence-sensitive).
    pub reads_per_edge: f64,
    /// Scattered global writes per edge (divergence-sensitive).
    pub writes_per_edge: f64,
    /// Uncontended global atomic RMWs per edge (e.g. `atomic_min` on a
    /// neighbour's distance).
    pub atomics_per_edge: f64,
    /// Scalar ALU operations per node.
    pub alu_per_node: f64,
    /// Coalesced global reads per node (frontier/own-state loads).
    pub reads_per_node: f64,
    /// Coalesced global writes per node.
    pub writes_per_node: f64,
    /// Whether the kernel contains an irregular nested loop over edges.
    /// The nested-parallelism schemes (`wg`/`sg`/`fg`) only instrument
    /// such kernels; regular kernels (pointer jumping, sorting passes,
    /// filters) always execute their items serially with no scheme
    /// overhead.
    pub irregular: bool,
}

impl KernelProfile {
    /// A light frontier-advance kernel profile (BFS-like): one flag read
    /// and level write per edge.
    pub fn frontier(name: &str) -> Self {
        KernelProfile {
            name: name.to_owned(),
            alu_per_edge: 4.0,
            reads_per_edge: 1.5,
            writes_per_edge: 0.5,
            atomics_per_edge: 0.0,
            alu_per_node: 6.0,
            reads_per_node: 2.0,
            writes_per_node: 1.0,
            irregular: true,
        }
    }

    /// Time to process one edge at the given divergence factor.
    pub fn edge_cost(&self, chip: &ChipProfile, divergence: f64) -> f64 {
        self.alu_per_edge * chip.alu_cost
            + (self.reads_per_edge + self.writes_per_edge) * chip.global_mem_cost * divergence
            + self.atomics_per_edge * chip.atomic_uncontended_cost
    }

    /// Fixed per-node time (coalesced accesses).
    pub fn node_cost(&self, chip: &ChipProfile) -> f64 {
        self.alu_per_node * chip.alu_cost
            + (self.reads_per_node + self.writes_per_node) * chip.global_mem_cost
    }
}

/// Per-workgroup aggregate of one degree class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassAgg {
    /// Number of nodes in the class.
    pub count: u32,
    /// Total edges over the class.
    pub edges: u64,
    /// `Σ ceil(degree / workgroup_size)` — wg-scheme rounds.
    pub rounds_wg: u64,
    /// `Σ ceil(degree / subgroup_size)` — sg-scheme rounds.
    pub rounds_sg: u64,
    /// Maximum degree in the class.
    pub max_degree: u32,
}

impl ClassAgg {
    fn add(&mut self, degree: u32, wg_size: u32, sg_size: u32) {
        self.count += 1;
        self.edges += degree as u64;
        self.rounds_wg += (degree as u64).div_ceil(wg_size as u64);
        self.rounds_sg += (degree as u64).div_ceil(sg_size as u64);
        self.max_degree = self.max_degree.max(degree);
    }
}

/// Aggregates of one workgroup's worth of frontier items.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkgroupAgg {
    /// Degree ≥ workgroup size.
    pub big: ClassAgg,
    /// Subgroup size ≤ degree < workgroup size.
    pub mid: ClassAgg,
    /// Degree < subgroup size.
    pub small: ClassAgg,
}

/// A whole kernel invocation, pre-aggregated for one (workgroup size,
/// subgroup size) pair.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CallAggregates {
    /// Workgroup size the aggregation was built for.
    pub wg_size: u32,
    /// Subgroup size the aggregation was built for.
    pub sg_size: u32,
    /// One aggregate per workgroup of the launch.
    pub workgroups: Vec<WorkgroupAgg>,
    /// Total worklist pushes over the launch.
    pub pushes: u64,
}

impl CallAggregates {
    /// Aggregates `items` into workgroups of `wg_size` threads with
    /// subgroups of `sg_size` threads.
    ///
    /// # Panics
    ///
    /// Panics if `wg_size` or `sg_size` is zero.
    pub fn from_items(items: &[WorkItem], wg_size: u32, sg_size: u32) -> Self {
        assert!(wg_size > 0 && sg_size > 0, "sizes must be positive");
        let mut workgroups = Vec::with_capacity(items.len().div_ceil(wg_size as usize));
        let mut pushes = 0u64;
        for chunk in items.chunks(wg_size as usize) {
            let mut agg = WorkgroupAgg::default();
            for item in chunk {
                pushes += item.pushes as u64;
                let d = item.degree;
                if d >= wg_size {
                    agg.big.add(d, wg_size, sg_size);
                } else if d >= sg_size && sg_size > 1 {
                    agg.mid.add(d, wg_size, sg_size);
                } else {
                    agg.small.add(d, wg_size, sg_size);
                }
            }
            workgroups.push(agg);
        }
        CallAggregates {
            wg_size,
            sg_size,
            workgroups,
            pushes,
        }
    }

    /// Aggregates `items` for several geometries in a *single* traversal,
    /// returning one [`CallAggregates`] per entry of `geometries` (in
    /// order). Every field update is an integer operation applied in the
    /// same per-item order as [`CallAggregates::from_items`], so each
    /// result is bit-identical to the per-geometry builder — the
    /// replay-identity property tests assert exactly that.
    ///
    /// This is what makes a chip set's aggregation cost O(items) instead
    /// of O(items × geometries): the item arena is streamed once and all
    /// geometry tables are written side by side.
    ///
    /// # Panics
    ///
    /// Panics if any geometry's workgroup or subgroup size is zero.
    pub fn from_items_multi(items: &[WorkItem], geometries: &[(u32, u32)]) -> Vec<Self> {
        // Per geometry: the output under construction, the current
        // (partial) workgroup aggregate, and how many items it holds.
        let mut states: Vec<(CallAggregates, WorkgroupAgg, u32)> = geometries
            .iter()
            .map(|&(wg_size, sg_size)| {
                assert!(wg_size > 0 && sg_size > 0, "sizes must be positive");
                let out = CallAggregates {
                    wg_size,
                    sg_size,
                    workgroups: Vec::with_capacity(items.len().div_ceil(wg_size as usize)),
                    pushes: 0,
                };
                (out, WorkgroupAgg::default(), 0u32)
            })
            .collect();
        let mut pushes = 0u64;
        for item in items {
            pushes += item.pushes as u64;
            let d = item.degree;
            for (out, agg, filled) in &mut states {
                if *filled == out.wg_size {
                    out.workgroups.push(*agg);
                    *agg = WorkgroupAgg::default();
                    *filled = 0;
                }
                let (wg_size, sg_size) = (out.wg_size, out.sg_size);
                if d >= wg_size {
                    agg.big.add(d, wg_size, sg_size);
                } else if d >= sg_size && sg_size > 1 {
                    agg.mid.add(d, wg_size, sg_size);
                } else {
                    agg.small.add(d, wg_size, sg_size);
                }
                *filled += 1;
            }
        }
        states
            .into_iter()
            .map(|(mut out, agg, filled)| {
                if filled > 0 {
                    out.workgroups.push(agg);
                }
                out.pushes = pushes;
                out
            })
            .collect()
    }
}

/// Aggregate statistics of one finished [`Session`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total modelled time in nanoseconds.
    pub time_ns: f64,
    /// Number of kernel invocations.
    pub kernels: u64,
    /// Number of host-side kernel launches (1 under `oitergb`).
    pub launches: u64,
    /// Number of global-barrier episodes (0 without `oitergb`).
    pub global_barriers: u64,
}

/// The sink applications execute against: either a timing [`Session`] or
/// a [`crate::trace::Recorder`].
///
/// Sessions started with [`Machine::session_explained`] additionally
/// attribute every nanosecond to a [`CostBreakdown`] mechanism.
pub trait Executor {
    /// Executes one kernel of the application's iteration loop.
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]);
}

/// The abstract GPU machine for one chip.
///
/// # Example
///
/// ```
/// use gpp_sim::chip::ChipProfile;
/// use gpp_sim::exec::{KernelProfile, Machine, WorkItem};
/// use gpp_sim::opts::OptConfig;
///
/// let machine = Machine::new(ChipProfile::gtx1080());
/// let mut session = machine.session(OptConfig::baseline());
/// let frontier = vec![WorkItem::new(4, 2); 1000];
/// session.kernel(&KernelProfile::frontier("bfs"), &frontier);
/// let stats = session.finish();
/// assert!(stats.time_ns > 0.0);
/// assert_eq!(stats.kernels, 1);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    chip: ChipProfile,
}

impl Machine {
    /// Creates a machine for `chip`.
    pub fn new(chip: ChipProfile) -> Self {
        Machine { chip }
    }

    /// The chip this machine models.
    pub fn chip(&self) -> &ChipProfile {
        &self.chip
    }

    /// Starts an execution session (one application run) under `config`.
    pub fn session(&self, config: OptConfig) -> Session<'_> {
        let wg_size = config.workgroup_size().min(self.chip.max_workgroup_size());
        let global_barrier = if config.oitergb {
            Some(GlobalBarrier::discover(&self.chip, wg_size))
        } else {
            None
        };
        Session {
            machine: self,
            config,
            wg_size,
            global_barrier,
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
            breakdown: None,
        }
    }

    /// Starts a session that additionally accumulates a per-mechanism
    /// [`CostBreakdown`] alongside the scalar timing. The scalar path
    /// is bit-identical to [`Machine::session`]; retrieve the
    /// breakdown with [`Session::finish_explained`].
    pub fn session_explained(&self, config: OptConfig) -> Session<'_> {
        let mut session = self.session(config);
        session.breakdown = Some(CostBreakdown::default());
        session
    }
}

/// One application run on a [`Machine`]: a sequence of kernel invocations
/// in an iterate-to-fixed-point loop, with iteration overhead accounted
/// per the `oitergb` setting.
#[derive(Debug)]
pub struct Session<'m> {
    machine: &'m Machine,
    config: OptConfig,
    wg_size: u32,
    global_barrier: Option<GlobalBarrier>,
    time_ns: f64,
    kernels: u64,
    launches: u64,
    global_barriers: u64,
    breakdown: Option<CostBreakdown>,
}

impl Session<'_> {
    /// The optimisation configuration of this session.
    pub fn config(&self) -> OptConfig {
        self.config
    }

    /// The effective workgroup size (after clamping to the chip limit).
    pub fn workgroup_size(&self) -> u32 {
        self.wg_size
    }

    /// Modelled time accrued so far (ns).
    pub fn elapsed_ns(&self) -> f64 {
        self.time_ns
    }

    /// Executes one kernel over `items` and returns the time charged for
    /// it (including iteration overhead).
    ///
    /// An empty frontier still pays iteration overhead — real
    /// fixed-point loops launch the kernel that discovers emptiness.
    pub fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) -> f64 {
        let aggs =
            CallAggregates::from_items(items, self.wg_size, self.machine.chip.subgroup_size.max(1));
        self.kernel_aggregated(profile, &aggs)
    }

    /// Executes one kernel from pre-built aggregates (see
    /// [`CallAggregates::from_items`] and [`crate::trace`]).
    ///
    /// # Panics
    ///
    /// Panics if `aggs` was built for a different workgroup or subgroup
    /// size than this session uses.
    pub fn kernel_aggregated(&mut self, profile: &KernelProfile, aggs: &CallAggregates) -> f64 {
        assert_eq!(
            aggs.wg_size, self.wg_size,
            "aggregation workgroup size mismatch"
        );
        assert_eq!(
            aggs.sg_size,
            self.machine.chip.subgroup_size.max(1),
            "aggregation subgroup size mismatch"
        );
        let chip = &self.machine.chip;
        let overhead = match &self.global_barrier {
            Some(gb) => {
                if self.kernels == 0 {
                    // One real launch; the setup includes occupancy
                    // discovery and the initial parameter copy.
                    self.launches += 1;
                    if let Some(b) = &mut self.breakdown {
                        b.launch += chip.kernel_launch_cost;
                        b.copy += chip.host_copy_cost;
                        let atomics = gb.setup_atomic_cost();
                        b.atomics += atomics;
                        b.barrier += gb.setup_cost() - atomics;
                    }
                    chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                } else {
                    self.global_barriers += 1;
                    if let Some(b) = &mut self.breakdown {
                        b.barrier += gb.barrier_cost();
                    }
                    gb.barrier_cost()
                }
            }
            None => {
                // Every iteration: a launch plus a small copy (the host
                // reads the "work left?" flag).
                self.launches += 1;
                if let Some(b) = &mut self.breakdown {
                    b.launch += chip.kernel_launch_cost;
                    b.copy += chip.host_copy_cost;
                }
                chip.kernel_launch_cost + chip.host_copy_cost
            }
        };
        let device = if self.breakdown.is_some() {
            let (device, device_breakdown) =
                evaluate_kernel_explained(chip, self.config, self.wg_size, profile, aggs);
            if let Some(b) = &mut self.breakdown {
                b.absorb(&device_breakdown);
            }
            device
        } else {
            evaluate_kernel(chip, self.config, self.wg_size, profile, aggs)
        };
        self.kernels += 1;
        let total = overhead + device;
        self.time_ns += total;
        total
    }

    /// The cost breakdown accumulated so far, if this session was
    /// started with [`Machine::session_explained`].
    pub fn breakdown(&self) -> Option<&CostBreakdown> {
        self.breakdown.as_ref()
    }

    /// Finishes the run and returns its statistics.
    pub fn finish(self) -> RunStats {
        RunStats {
            time_ns: self.time_ns,
            kernels: self.kernels,
            launches: self.launches,
            global_barriers: self.global_barriers,
        }
    }

    /// Finishes an explained run, returning the statistics plus the
    /// accumulated per-mechanism breakdown. The breakdown's
    /// [`CostBreakdown::total`] equals `time_ns` within floating-point
    /// round-off.
    ///
    /// # Panics
    ///
    /// Panics if the session was not started with
    /// [`Machine::session_explained`].
    pub fn finish_explained(self) -> (RunStats, CostBreakdown) {
        let breakdown = self
            .breakdown
            .expect("session was not started with session_explained");
        let stats = RunStats {
            time_ns: self.time_ns,
            kernels: self.kernels,
            launches: self.launches,
            global_barriers: self.global_barriers,
        };
        (stats, breakdown)
    }
}

impl Executor for Session<'_> {
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) {
        Session::kernel(self, profile, items);
    }
}

/// Device-side time of one kernel invocation from aggregates. This is the
/// single evaluation function shared by live sessions and trace replay.
pub fn evaluate_kernel(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
) -> f64 {
    if aggs.workgroups.is_empty() {
        return chip.kernel_fixed_cost;
    }
    let (pass, _) =
        device_pass::<false>(chip, wg_size, profile, aggs, cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv);
    finish_kernel(chip, cfg, wg_size, &pass, aggs.pushes)
}

/// Like [`evaluate_kernel`], but additionally attributes the returned
/// scalar to cost mechanisms. The scalar is bit-identical to
/// [`evaluate_kernel`] (the attribution accumulators never feed back
/// into the timing arithmetic), and the breakdown's
/// [`CostBreakdown::total`] equals it within floating-point round-off
/// (well inside 1e-9 relative).
pub fn evaluate_kernel_explained(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
) -> (f64, CostBreakdown) {
    if aggs.workgroups.is_empty() {
        return (
            chip.kernel_fixed_cost,
            CostBreakdown {
                compute: chip.kernel_fixed_cost,
                ..CostBreakdown::default()
            },
        );
    }
    let (pass, buckets) =
        device_pass::<true>(chip, wg_size, profile, aggs, cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv);
    finish_kernel_explained(chip, cfg, wg_size, &pass, &buckets, aggs.pushes)
}

/// Prices one kernel invocation under *all* of `configs` in a single walk
/// of the aggregates, hoisting config-invariant work out of the
/// configuration loop: configurations whose device-side behaviour is
/// provably identical (same scheme routing, divergence regime, and
/// fine-grained mode) share one [`device_pass`], and only the cheap O(1)
/// occupancy/worklist assembly runs per configuration.
///
/// Returns one device time per entry of `configs`, each bit-identical to
/// the corresponding [`evaluate_kernel`] call.
///
/// # Panics
///
/// Panics if `aggs` was built for a different geometry than `wg_size`, or
/// if any configuration implies a different effective workgroup size.
pub fn evaluate_kernel_batch(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    configs: &[OptConfig],
) -> Vec<f64> {
    assert_eq!(
        aggs.wg_size, wg_size,
        "aggregation workgroup size mismatch"
    );
    assert_eq!(
        aggs.sg_size,
        chip.subgroup_size.max(1),
        "aggregation subgroup size mismatch"
    );
    if aggs.workgroups.is_empty() {
        return vec![chip.kernel_fixed_cost; configs.len()];
    }
    let sg_size = chip.subgroup_size.max(1);
    // Dedup configurations into distinct device passes. The pass depends
    // only on (wg, sg, fg, coop-cv) — and for regular kernels the three
    // nested-parallelism axes are dead, so whole swathes of the space
    // collapse onto one pass. `oitergb`/`sz256` never enter the pass:
    // `oitergb` only scales occupancy and `sz256` is fixed by `wg_size`.
    let mut slots: HashMap<(bool, bool, FgMode, bool), usize> = HashMap::new();
    let mut passes: Vec<DevicePass> = Vec::new();
    let results = configs
        .iter()
        .map(|cfg| {
            assert_eq!(
                cfg.workgroup_size().min(chip.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
            let key = if profile.irregular {
                (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
            } else {
                (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
            };
            let slot = *slots.entry(key).or_insert_with(|| {
                passes.push(
                    device_pass::<false>(
                        chip, wg_size, profile, aggs, key.0, key.1, key.2, key.3,
                    )
                    .0,
                );
                passes.len() - 1
            });
            (*cfg, slot)
        })
        .collect::<Vec<_>>();
    results
        .into_iter()
        .map(|(cfg, slot)| finish_kernel(chip, cfg, wg_size, &passes[slot], aggs.pushes))
        .collect()
}

/// Like [`evaluate_kernel_batch`], but each configuration's device time
/// comes with its per-mechanism [`CostBreakdown`]. The scalars are
/// bit-identical to [`evaluate_kernel_batch`] (and hence to individual
/// [`evaluate_kernel`] calls).
///
/// # Panics
///
/// Panics under the same conditions as [`evaluate_kernel_batch`].
pub fn evaluate_kernel_batch_explained(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    configs: &[OptConfig],
) -> Vec<(f64, CostBreakdown)> {
    assert_eq!(
        aggs.wg_size, wg_size,
        "aggregation workgroup size mismatch"
    );
    assert_eq!(
        aggs.sg_size,
        chip.subgroup_size.max(1),
        "aggregation subgroup size mismatch"
    );
    if aggs.workgroups.is_empty() {
        let empty = (
            chip.kernel_fixed_cost,
            CostBreakdown {
                compute: chip.kernel_fixed_cost,
                ..CostBreakdown::default()
            },
        );
        return vec![empty; configs.len()];
    }
    let sg_size = chip.subgroup_size.max(1);
    let mut slots: HashMap<(bool, bool, FgMode, bool), usize> = HashMap::new();
    let mut passes: Vec<(DevicePass, PassBuckets)> = Vec::new();
    let results = configs
        .iter()
        .map(|cfg| {
            assert_eq!(
                cfg.workgroup_size().min(chip.max_workgroup_size()),
                wg_size,
                "configuration implies a different workgroup size"
            );
            let key = if profile.irregular {
                (cfg.wg, cfg.sg, cfg.fg, cfg.coop_cv && sg_size > 1)
            } else {
                (false, false, FgMode::Off, cfg.coop_cv && sg_size > 1)
            };
            let slot = *slots.entry(key).or_insert_with(|| {
                passes.push(device_pass::<true>(
                    chip, wg_size, profile, aggs, key.0, key.1, key.2, key.3,
                ));
                passes.len() - 1
            });
            (*cfg, slot)
        })
        .collect::<Vec<_>>();
    results
        .into_iter()
        .map(|(cfg, slot)| {
            let (pass, buckets) = &passes[slot];
            finish_kernel_explained(chip, cfg, wg_size, pass, buckets, aggs.pushes)
        })
        .collect()
}

/// The config-dependent tail of kernel evaluation: occupancy-normalised
/// compute time plus fixed and worklist costs. O(1) per configuration.
fn finish_kernel(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    pass: &DevicePass,
    pushes: u64,
) -> f64 {
    // The outlined megakernel of `oitergb` holds every kernel's registers
    // and local-memory footprint live at once, costing some occupancy.
    let occupancy_factor = if cfg.oitergb { 0.8 } else { 1.0 };
    let resident_threads =
        (chip.resident_workgroups(wg_size) as f64) * wg_size as f64 * occupancy_factor;
    let capacity_threads = resident_threads.min(chip.throughput_threads as f64);
    let compute = (pass.total_busy / capacity_threads).max(pass.max_wg_time);

    chip.kernel_fixed_cost + compute + worklist_rmw_time(chip, cfg, pushes)
}

/// The explained counterpart of [`finish_kernel`]: returns the same
/// scalar (computed by calling [`finish_kernel`] itself, so it is
/// bit-identical) plus its attribution.
///
/// The busy-work buckets sum to `pass.total_busy` algebraically, so
/// rescaling them by `throughput_time / Σbuckets` attributes the
/// throughput-limited time exactly; any excess of the critical-path
/// workgroup over throughput-limited execution is the occupancy tail.
fn finish_kernel_explained(
    chip: &ChipProfile,
    cfg: OptConfig,
    wg_size: u32,
    pass: &DevicePass,
    buckets: &PassBuckets,
    pushes: u64,
) -> (f64, CostBreakdown) {
    let total = finish_kernel(chip, cfg, wg_size, pass, pushes);
    let occupancy_factor = if cfg.oitergb { 0.8 } else { 1.0 };
    let resident_threads =
        (chip.resident_workgroups(wg_size) as f64) * wg_size as f64 * occupancy_factor;
    let capacity_threads = resident_threads.min(chip.throughput_threads as f64);
    let throughput_time = pass.total_busy / capacity_threads;
    let compute = throughput_time.max(pass.max_wg_time);
    let busy_sum = buckets.base + buckets.divergence + buckets.atomic + buckets.barrier;
    let scale = if busy_sum > 0.0 {
        throughput_time / busy_sum
    } else {
        0.0
    };
    let breakdown = CostBreakdown {
        compute: chip.kernel_fixed_cost + buckets.base * scale,
        divergence: buckets.divergence * scale,
        atomics: buckets.atomic * scale,
        barrier: buckets.barrier * scale,
        occupancy_tail: compute - throughput_time,
        worklist: worklist_rmw_time(chip, cfg, pushes),
        ..CostBreakdown::default()
    };
    (total, breakdown)
}

/// Result of walking one invocation's workgroups under one effective
/// scheme setting: total thread-busy work and the longest single
/// workgroup (the critical path).
#[derive(Debug, Clone, Copy)]
struct DevicePass {
    total_busy: f64,
    max_wg_time: f64,
}

/// Attribution of [`DevicePass::total_busy`] to cost mechanisms, only
/// populated when [`device_pass`] runs with `EXPLAIN = true`. The four
/// buckets sum to `total_busy` (algebraically; floating-point
/// round-off aside):
///
/// * `base` — per-node prologues plus every edge's converged ALU and
///   memory cost, regardless of which scheme executed it;
/// * `divergence` — serial-scheme time in excess of the converged cost
///   of the same edges (divergence penalty and masked-lane waste);
/// * `atomic` — the per-edge atomic-RMW share of edge work;
/// * `barrier` — scheme orchestration: ballots, subgroup/workgroup
///   barriers, inspector bookkeeping, and fixed scheme agreement.
#[derive(Debug, Clone, Copy, Default)]
struct PassBuckets {
    base: f64,
    divergence: f64,
    atomic: f64,
    barrier: f64,
}

/// Walks the per-workgroup aggregates once for one effective setting of
/// the device-side optimisation axes (`cfg_wg`, `cfg_sg`, `cfg_fg`,
/// `cfg_coop_cv` — the raw configuration booleans; regular-kernel and
/// subgroup-size gating happens inside, exactly as the pre-batching
/// evaluator did). This is the O(#workgroups) hot loop of replay.
///
/// With `EXPLAIN = false` the attribution accumulators compile out and
/// the returned [`PassBuckets`] is all zeros; the timing arithmetic is
/// byte-for-byte the same either way, so `EXPLAIN = true` never
/// perturbs the scalar result.
#[allow(clippy::too_many_arguments)]
fn device_pass<const EXPLAIN: bool>(
    chip: &ChipProfile,
    wg_size: u32,
    profile: &KernelProfile,
    aggs: &CallAggregates,
    cfg_wg: bool,
    cfg_sg: bool,
    cfg_fg: FgMode,
    cfg_coop_cv: bool,
) -> (DevicePass, PassBuckets) {
    let sg_size = chip.subgroup_size.max(1);
    let n_subgroups = (wg_size / sg_size).max(1) as f64;

    // The sg scheme brackets execution with barriers, keeping the
    // workgroup converged; on divergence-sensitive chips this relieves
    // part of the penalty on serial work too (Section VIII-c).
    let serial_div = chip.divergence_factor(cfg_sg && profile.irregular);
    let edge_balanced = profile.edge_cost(chip, 1.0);
    let node_fixed = profile.node_cost(chip);
    let wg_barrier = chip.wg_barrier(wg_size);
    let sg_barrier = if chip.lockstep_subgroups {
        0.0
    } else {
        chip.sg_barrier_cost
    };
    let (fg_on, fg_epi) = match cfg_fg {
        FgMode::Off => (false, 1.0),
        FgMode::Fg1 => (profile.irregular, 1.0),
        FgMode::Fg8 => (profile.irregular, 8.0),
    };
    let fg_round_overhead = wg_barrier + (wg_size as f64).log2() * chip.local_mem_cost;
    // Regular kernels have no nested loop for the schemes to rewrite.
    let wg_on = cfg_wg && profile.irregular;
    let sg_on = cfg_sg && sg_size > 1 && profile.irregular;
    let sg_orchestration = 2.0 * sg_barrier + 2.0 * chip.local_mem_cost;
    // One workgroup-wide ballot: barrier plus a local-memory reduction
    // tree. The wg executor pays one per serialised node (leader
    // election) and two to enter/exit the phase.
    let wg_ballot = wg_barrier + (wg_size as f64).log2() * chip.local_mem_cost;
    // Attribution constants: the atomic share of one converged edge and
    // the remaining (ALU + memory) share.
    let e_atomic = profile.atomics_per_edge * chip.atomic_uncontended_cost;
    let e_flat = edge_balanced - e_atomic;

    let mut total_busy = 0.0f64;
    let mut max_wg_time = 0.0f64;
    let mut buckets = PassBuckets::default();

    for wg in &aggs.workgroups {
        // Route classes to schemes:
        // big -> wg (if on) -> sg (if on) -> fg (if on) -> serial
        // mid -> sg (if on) -> fg (if on) -> serial
        // small -> fg (if on) -> serial
        let mut wg_phase = 0.0f64;
        let mut sg_work = 0.0f64;
        let mut sg_max_single = 0.0f64;
        let mut fg_edges = 0u64;
        let mut fg_nodes = 0u64;
        let mut serial_max = 0u32;
        let mut serial_edges = 0u64;
        let mut serial_count = 0u32;
        // EXPLAIN only: balanced edge-equivalents priced at
        // `edge_balanced` inside each cooperative phase, so the
        // phases' orchestration remainder can be attributed to the
        // barrier bucket.
        let mut wg_units = 0u64;
        let mut sg_units = 0u64;
        let mut fg_units = 0.0f64;

        let mut route = |class: &ClassAgg, start: Scheme| {
            if class.count == 0 {
                return;
            }
            match start {
                Scheme::Wg if wg_on => {
                    wg_phase +=
                        class.count as f64 * wg_ballot + class.rounds_wg as f64 * edge_balanced;
                    if EXPLAIN {
                        wg_units += class.rounds_wg;
                    }
                }
                Scheme::Wg | Scheme::Sg if sg_on => {
                    sg_work += class.count as f64 * sg_orchestration
                        + class.rounds_sg as f64 * edge_balanced;
                    let single = sg_orchestration
                        + (class.max_degree as u64).div_ceil(sg_size as u64) as f64 * edge_balanced;
                    sg_max_single = sg_max_single.max(single);
                    if EXPLAIN {
                        sg_units += class.rounds_sg;
                    }
                }
                _ if fg_on => {
                    fg_edges += class.edges;
                    fg_nodes += class.count as u64;
                }
                _ => {
                    serial_max = serial_max.max(class.max_degree);
                    serial_edges += class.edges;
                    serial_count += class.count;
                }
            }
        };
        route(&wg.big, Scheme::Wg);
        route(&wg.mid, Scheme::Sg);
        route(&wg.small, Scheme::Fg);

        // Divergence scales with intra-workgroup imbalance: lockstep lanes
        // walking equal-length edge lists stay converged (a uniform-degree
        // loop is nearly free of divergence), while skewed lists force the
        // full penalty. A floor accounts for the irreducible scatter of
        // neighbour indices.
        let (edge_serial, simd_waste) = if serial_edges > 0 && serial_count > 0 {
            let mean = serial_edges as f64 / serial_count as f64;
            let ratio = serial_max as f64 / mean;
            let imbalance = ((ratio - 1.0) / 3.0).clamp(0.25, 1.0);
            // Divergent lanes also waste issue slots: while the longest
            // lane runs, its subgroup's other lanes are masked out, so the
            // effective throughput cost of a serial edge grows with the
            // imbalance (bounded by the subgroup width; scalar chips like
            // MALI waste nothing).
            let waste = (0.5 * ratio).clamp(1.0, sg_size as f64);
            (
                profile.edge_cost(chip, 1.0 + (serial_div - 1.0) * imbalance),
                waste,
            )
        } else {
            (profile.edge_cost(chip, serial_div), 1.0)
        };

        // Critical path of the serial phase: lanes idle until the longest
        // edge loop in the workgroup finishes.
        let serial_phase = serial_max as f64 * edge_serial;
        let sg_phase = if sg_work > 0.0 {
            (sg_work / n_subgroups).max(sg_max_single)
        } else {
            0.0
        };

        // Inspector/executor: linearise the pooled edges across the
        // workgroup, `fg_epi` edges per thread per round.
        let mut fg_phase = 0.0f64;
        if fg_on {
            if fg_edges == 0 {
                // An empty pool costs one cheap agreement barrier.
                fg_phase += wg_barrier;
            } else {
                // Inspector writes each *contributing* node's range to
                // local memory (amortised across the workgroup's
                // threads); nodes without edges are filtered by a flag.
                let contributing = fg_nodes.min(fg_edges) as f64;
                fg_phase += contributing * 2.0 * chip.local_mem_cost / wg_size as f64;
                // Full rounds stride `fg_epi` edges per thread; the tail
                // round only walks the remaining edges (excess lanes are
                // masked off).
                let per_round = wg_size as f64 * fg_epi;
                let full_rounds = (fg_edges as f64 / per_round).floor();
                fg_phase += full_rounds * (fg_epi * edge_balanced + fg_round_overhead);
                if EXPLAIN {
                    fg_units += full_rounds * fg_epi;
                }
                let tail_edges = fg_edges as f64 - full_rounds * per_round;
                if tail_edges > 0.0 {
                    let tail_rounds = (tail_edges / wg_size as f64).ceil();
                    fg_phase += tail_rounds * edge_balanced + fg_round_overhead;
                    if EXPLAIN {
                        fg_units += tail_rounds;
                    }
                }
            }
        }

        // Scheme fixed overheads paid whether or not any node qualified:
        // threads must agree the pools are empty.
        let mut scheme_fixed = 0.0f64;
        if wg_on {
            scheme_fixed += 2.0 * wg_ballot;
        }
        if sg_on {
            scheme_fixed += 2.0 * sg_barrier + 2.0 * chip.local_mem_cost;
        }
        if cfg_coop_cv && sg_size > 1 {
            scheme_fixed += 2.0 * chip.local_mem_cost;
        }

        let wg_time = node_fixed + serial_phase + sg_phase + wg_phase + fg_phase + scheme_fixed;
        max_wg_time = max_wg_time.max(wg_time);

        // Busy work: what the workgroup's threads actually execute. The
        // per-node prologue and scheme agreement run on every launched
        // thread slot (idle slots of a partial workgroup included), the
        // serial phase occupies one thread per edge, and the cooperative
        // phases occupy the whole workgroup for their duration.
        total_busy += (node_fixed + scheme_fixed) * wg_size as f64
            + serial_edges as f64 * edge_serial * simd_waste
            + sg_work * sg_size as f64
            + (wg_phase + fg_phase) * wg_size as f64;

        if EXPLAIN {
            // Split this workgroup's busy contribution into buckets.
            // `units` counts cooperative edge-equivalents weighted by
            // the thread width each occupies, so
            // `units * edge_balanced` is exactly the balanced-edge part
            // of the cooperative phases' busy time; what remains of
            // each phase is orchestration. Serial edges occupy one
            // thread each; their excess over the converged cost is the
            // divergence bucket.
            let serial = serial_edges as f64;
            let units = (wg_units as f64 + fg_units) * wg_size as f64
                + sg_units as f64 * sg_size as f64;
            let edge_units = units + serial;
            buckets.base += node_fixed * wg_size as f64 + edge_units * e_flat;
            buckets.atomic += edge_units * e_atomic;
            buckets.divergence += serial * edge_serial * simd_waste - serial * edge_balanced;
            buckets.barrier += scheme_fixed * wg_size as f64
                + (wg_phase - wg_units as f64 * edge_balanced) * wg_size as f64
                + (sg_work - sg_units as f64 * edge_balanced) * sg_size as f64
                + (fg_phase - fg_units * edge_balanced) * wg_size as f64;
        }
    }

    (
        DevicePass {
            total_busy,
            max_wg_time,
        },
        buckets,
    )
}

#[derive(Clone, Copy)]
enum Scheme {
    Wg,
    Sg,
    Fg,
}

/// Serialised time of worklist pushes: one hot RMW counter, optionally
/// combined per subgroup (manually via coop-cv, or by the JIT).
fn worklist_rmw_time(chip: &ChipProfile, cfg: OptConfig, pushes: u64) -> f64 {
    if pushes == 0 {
        return 0.0;
    }
    let pushes = pushes as f64;
    let sg = chip.subgroup_size.max(1) as f64;
    let combined_rmws = (pushes / sg).ceil() * chip.atomic_rmw_cost;
    match (cfg.coop_cv, chip.jit_subgroup_combining) {
        // Manual combining: combined RMWs plus the per-push collective
        // overhead. On subgroup-size-1 chips the transformation is a
        // semantically valid no-op (paper Section VI-A).
        (true, _) if chip.subgroup_size <= 1 => pushes * chip.atomic_rmw_cost,
        (true, _) => combined_rmws + pushes * chip.sg_collective_cost,
        // JIT combines transparently at no orchestration cost.
        (false, true) => combined_rmws,
        // No combining at all: fully serialised.
        (false, false) => pushes * chip.atomic_rmw_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};
    use crate::opts::{OptConfig, Optimization};

    fn run_once(chip: ChipProfile, cfg: OptConfig, items: &[WorkItem]) -> f64 {
        let m = Machine::new(chip);
        let mut s = m.session(cfg);
        Session::kernel(&mut s, &KernelProfile::frontier("k"), items);
        s.finish().time_ns
    }

    fn uniform(n: usize, degree: u32) -> Vec<WorkItem> {
        vec![WorkItem::new(degree, 0); n]
    }

    /// A frontier with one huge node and many tiny ones — the skewed
    /// regime where load balancing matters.
    fn skewed(n: usize, hub_degree: u32) -> Vec<WorkItem> {
        let mut v = vec![WorkItem::new(2, 0); n];
        v[0].degree = hub_degree;
        v
    }

    #[test]
    fn multi_geometry_aggregation_matches_per_geometry_builder() {
        let items: Vec<WorkItem> = (0..1_237)
            .map(|i| WorkItem::new((i * 31) % 401, (i % 5 == 0) as u32))
            .collect();
        // Every study-chip geometry plus a few degenerate ones, with
        // duplicates: the single pass must reproduce each bit-for-bit.
        let geometries = [
            (128, 32),
            (256, 32),
            (128, 16),
            (256, 16),
            (128, 64),
            (256, 64),
            (128, 1),
            (256, 1),
            (128, 32),
            (1, 1),
            (7, 3),
        ];
        let multi = CallAggregates::from_items_multi(&items, &geometries);
        assert_eq!(multi.len(), geometries.len());
        for (&(wg_size, sg_size), got) in geometries.iter().zip(&multi) {
            let want = CallAggregates::from_items(&items, wg_size, sg_size);
            assert_eq!(*got, want, "geometry ({wg_size}, {sg_size})");
        }
        // Empty frontier: one empty table per geometry.
        for agg in CallAggregates::from_items_multi(&[], &geometries) {
            assert!(agg.workgroups.is_empty());
            assert_eq!(agg.pushes, 0);
        }
    }

    #[test]
    fn empty_frontier_costs_only_fixed_overhead() {
        let chip = ChipProfile::gtx1080();
        let expect = chip.kernel_launch_cost + chip.host_copy_cost + chip.kernel_fixed_cost;
        let t = run_once(chip, OptConfig::baseline(), &[]);
        assert!((t - expect).abs() < 1e-6, "{t} vs {expect}");
    }

    #[test]
    fn more_work_takes_longer() {
        let chip = ChipProfile::r9();
        let t_small = run_once(chip.clone(), OptConfig::baseline(), &uniform(1_000, 4));
        let t_big = run_once(chip, OptConfig::baseline(), &uniform(100_000, 4));
        assert!(t_big > t_small);
    }

    #[test]
    fn higher_degree_takes_longer() {
        let chip = ChipProfile::m4000();
        let t4 = run_once(chip.clone(), OptConfig::baseline(), &uniform(10_000, 4));
        let t16 = run_once(chip, OptConfig::baseline(), &uniform(10_000, 16));
        assert!(t16 > t4);
    }

    #[test]
    fn wg_scheme_tames_hub_nodes() {
        let chip = ChipProfile::gtx1080();
        let items = skewed(10_000, 50_000);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let wg = run_once(chip, OptConfig::baseline().with(Optimization::Wg), &items);
        assert!(
            wg < base,
            "wg {wg} should beat baseline {base} on skewed input"
        );
    }

    #[test]
    fn sg_scheme_tames_heavy_nodes_without_wg() {
        let chip = ChipProfile::r9();
        // With wg off, nodes above the workgroup size fall to the sg
        // scheme, which splits their edge loops across the subgroup.
        let mut items = vec![WorkItem::new(6, 0); 5_000];
        for item in items.iter_mut().step_by(40) {
            item.degree = 1_000;
        }
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let sg = run_once(chip, OptConfig::baseline().with(Optimization::Sg), &items);
        assert!(sg < base, "sg {sg} should beat baseline {base}");
    }

    #[test]
    fn fg_beats_baseline_on_skew_and_fg8_amortises_barriers() {
        let chip = ChipProfile::m4000();
        let items = skewed(20_000, 10_000);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let fg1 = run_once(
            chip.clone(),
            OptConfig::baseline().with(Optimization::Fg1),
            &items,
        );
        let fg8 = run_once(chip, OptConfig::baseline().with(Optimization::Fg8), &items);
        assert!(fg1 < base);
        assert!(
            fg8 < fg1,
            "fg8 {fg8} should beat fg1 {fg1} (fewer barrier rounds)"
        );
    }

    #[test]
    fn balancing_uniform_low_degree_work_only_adds_overhead() {
        let chip = ChipProfile::gtx1080();
        let items = uniform(50_000, 3);
        let base = run_once(chip.clone(), OptConfig::baseline(), &items);
        let all = OptConfig::baseline()
            .with(Optimization::Wg)
            .with(Optimization::Sg)
            .with(Optimization::Fg1);
        let opt = run_once(chip, all, &items);
        assert!(
            opt > base,
            "balancing flat work should cost, got {opt} vs {base}"
        );
    }

    #[test]
    fn coop_cv_helps_r9_hurts_nvidia() {
        let items: Vec<WorkItem> = vec![WorkItem::new(1, 4); 30_000];
        let cfg_cv = OptConfig::baseline().with(Optimization::CoopCv);
        let r9_base = run_once(ChipProfile::r9(), OptConfig::baseline(), &items);
        let r9_cv = run_once(ChipProfile::r9(), cfg_cv, &items);
        assert!(
            r9_cv < r9_base,
            "coop-cv should help R9: {r9_cv} vs {r9_base}"
        );
        let nv_base = run_once(ChipProfile::gtx1080(), OptConfig::baseline(), &items);
        let nv_cv = run_once(ChipProfile::gtx1080(), cfg_cv, &items);
        assert!(
            nv_cv > nv_base,
            "coop-cv should hurt GTX1080 (JIT combines already)"
        );
    }

    #[test]
    fn coop_cv_is_noop_on_mali() {
        let items: Vec<WorkItem> = vec![WorkItem::new(1, 4); 10_000];
        let base = run_once(ChipProfile::mali(), OptConfig::baseline(), &items);
        let cv = run_once(
            ChipProfile::mali(),
            OptConfig::baseline().with(Optimization::CoopCv),
            &items,
        );
        assert!((base - cv).abs() < 1e-6, "subgroup size 1: {base} vs {cv}");
    }

    #[test]
    fn oitergb_pays_off_with_many_short_kernels_on_high_overhead_chips() {
        // 200 dependent iterations over a tiny frontier: the road-BFS
        // regime of Section V-C.
        for chip in [
            ChipProfile::iris6100(),
            ChipProfile::mali(),
            ChipProfile::r9(),
        ] {
            let name = chip.name.clone();
            let m = Machine::new(chip);
            let run = |cfg: OptConfig| {
                let mut s = m.session(cfg);
                for _ in 0..200 {
                    Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(64, 3));
                }
                s.finish()
            };
            let base = run(OptConfig::baseline());
            let outlined = run(OptConfig::baseline().with(Optimization::Oitergb));
            assert!(
                outlined.time_ns < base.time_ns,
                "{name}: oitergb {} should beat {}",
                outlined.time_ns,
                base.time_ns
            );
            assert_eq!(outlined.launches, 1);
            assert_eq!(outlined.global_barriers, 199);
            assert_eq!(base.launches, 200);
        }
    }

    #[test]
    fn oitergb_hurts_nvidia() {
        // On Nvidia the global barrier saves little over the cheap launch
        // and the persistent megakernel costs occupancy, so once kernels
        // carry real work the outlined loop loses. On the launch-bound
        // extreme GTX1080 still loses; M4000 is a near-tie by design
        // (paper Table IX reports effect size 0.47 for it).
        for (chip, frontier) in [
            (ChipProfile::m4000(), 60_000usize),
            (ChipProfile::gtx1080(), 60_000),
            (ChipProfile::gtx1080(), 64),
        ] {
            let name = chip.name.clone();
            let m = Machine::new(chip);
            let run = |cfg: OptConfig| {
                let mut s = m.session(cfg);
                for _ in 0..20 {
                    Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(frontier, 3));
                }
                s.finish().time_ns
            };
            let base = run(OptConfig::baseline());
            let outlined = run(OptConfig::baseline().with(Optimization::Oitergb));
            assert!(
                outlined > base,
                "{name} frontier {frontier}: oitergb should not pay off on Nvidia"
            );
        }
    }

    #[test]
    fn sg_relieves_divergence_on_mali() {
        // Serial-heavy, moderately skewed work below the subgroup/wg
        // thresholds: sg cannot rebalance anything on MALI (subgroup size
        // 1) yet still speeds it up via barrier-induced convergence.
        let mut items = uniform(20_000, 8);
        for (i, item) in items.iter_mut().enumerate() {
            item.degree = 2 + (i % 16) as u32;
        }
        let base = run_once(ChipProfile::mali(), OptConfig::baseline(), &items);
        let sg = run_once(
            ChipProfile::mali(),
            OptConfig::baseline().with(Optimization::Sg),
            &items,
        );
        assert!(
            sg < base,
            "sg should relieve MALI divergence: {sg} vs {base}"
        );
    }

    #[test]
    fn sz256_alone_is_nearly_neutral_on_uniform_work() {
        let items = uniform(60_000, 6);
        let base = run_once(ChipProfile::r9(), OptConfig::baseline(), &items);
        let big = run_once(
            ChipProfile::r9(),
            OptConfig::baseline().with(Optimization::Sz256),
            &items,
        );
        assert!(
            (big / base - 1.0).abs() < 0.1,
            "sz256 alone: {big} vs {base}"
        );
    }

    #[test]
    fn sz256_amplifies_wg_scheme_ballot_costs() {
        // Workgroup ballots scale with workgroup size, so the wg scheme's
        // fixed overhead doubles at 256 threads — the paper's worst-ranked
        // combinations are exactly wg + sz256 (Table III).
        let items = uniform(60_000, 4);
        for chip in [ChipProfile::mali(), ChipProfile::iris6100()] {
            let name = chip.name.clone();
            let wg = OptConfig::baseline().with(Optimization::Wg);
            let t_wg = run_once(chip.clone(), wg, &items);
            let t_wg_256 = run_once(chip, wg.with(Optimization::Sz256), &items);
            assert!(t_wg_256 > t_wg, "{name}: wg+sz256 {t_wg_256} vs wg {t_wg}");
        }
    }

    #[test]
    fn throughput_ceiling_binds_for_large_launches() {
        // Beyond the throughput ceiling, doubling the work doubles the
        // time even though plenty of workgroups are resident.
        let chip = ChipProfile::gtx1080();
        let t1 = run_once(chip.clone(), OptConfig::baseline(), &uniform(100_000, 6));
        let t2 = run_once(chip.clone(), OptConfig::baseline(), &uniform(200_000, 6));
        let overhead = chip.kernel_launch_cost + chip.host_copy_cost + chip.kernel_fixed_cost;
        let ratio = (t2 - overhead) / (t1 - overhead);
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio}");
    }

    #[test]
    fn session_counts_kernels_and_launches() {
        let m = Machine::new(ChipProfile::hd5500());
        let mut s = m.session(OptConfig::baseline());
        for _ in 0..5 {
            Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(10, 2));
        }
        let stats = s.finish();
        assert_eq!(stats.kernels, 5);
        assert_eq!(stats.launches, 5);
        assert_eq!(stats.global_barriers, 0);
    }

    #[test]
    fn elapsed_accumulates_monotonically() {
        let m = Machine::new(ChipProfile::m4000());
        let mut s = m.session(OptConfig::baseline());
        let mut last = 0.0;
        for _ in 0..3 {
            Session::kernel(&mut s, &KernelProfile::frontier("k"), &uniform(100, 4));
            assert!(s.elapsed_ns() > last);
            last = s.elapsed_ns();
        }
    }

    #[test]
    fn kernel_time_is_deterministic() {
        for chip in study_chips() {
            let items = skewed(5_000, 3_000);
            let cfg = OptConfig::from_index(37);
            let a = run_once(chip.clone(), cfg, &items);
            let b = run_once(chip, cfg, &items);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn all_configs_produce_finite_positive_times() {
        let items = skewed(2_000, 500);
        for chip in study_chips() {
            for cfg in crate::opts::all_configs() {
                let t = run_once(chip.clone(), cfg, &items);
                assert!(t.is_finite() && t > 0.0, "{} {cfg}: {t}", chip.name);
            }
        }
    }

    #[test]
    fn aggregates_classify_by_degree() {
        let items = [
            WorkItem::new(200, 0),
            WorkItem::new(50, 1),
            WorkItem::new(3, 2),
            WorkItem::new(130, 0),
        ];
        let aggs = CallAggregates::from_items(&items, 128, 32);
        assert_eq!(aggs.workgroups.len(), 1);
        let wg = &aggs.workgroups[0];
        assert_eq!(wg.big.count, 2);
        assert_eq!(wg.big.max_degree, 200);
        assert_eq!(wg.big.edges, 330);
        assert_eq!(wg.big.rounds_wg, 2 + 2); // ceil(200/128) + ceil(130/128)
        assert_eq!(wg.mid.count, 1);
        assert_eq!(wg.small.count, 1);
        assert_eq!(aggs.pushes, 3);
    }

    #[test]
    fn aggregates_with_subgroup_one_have_no_mid_class() {
        let items = [WorkItem::new(50, 0), WorkItem::new(3, 0)];
        let aggs = CallAggregates::from_items(&items, 128, 1);
        let wg = &aggs.workgroups[0];
        assert_eq!(wg.mid.count, 0);
        assert_eq!(wg.small.count, 2);
    }

    #[test]
    fn kernel_aggregated_matches_kernel() {
        for chip in study_chips() {
            let items = skewed(7_000, 900);
            for cfg_idx in [0, 17, 42, 95] {
                let cfg = OptConfig::from_index(cfg_idx);
                let m = Machine::new(chip.clone());
                let mut s1 = m.session(cfg);
                let t1 = Session::kernel(&mut s1, &KernelProfile::frontier("k"), &items);
                let mut s2 = m.session(cfg);
                let aggs = CallAggregates::from_items(
                    &items,
                    s2.workgroup_size(),
                    chip.subgroup_size.max(1),
                );
                let t2 = s2.kernel_aggregated(&KernelProfile::frontier("k"), &aggs);
                assert_eq!(t1, t2, "{} cfg {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn batch_evaluation_is_bit_identical_to_individual() {
        // The batched evaluator must agree bit-for-bit with 96 individual
        // evaluations, for irregular and regular kernels alike, on every
        // study chip and both workgroup sizes.
        let items = skewed(5_000, 3_000);
        let mut regular = KernelProfile::frontier("filter");
        regular.irregular = false;
        for chip in study_chips() {
            for profile in [KernelProfile::frontier("k"), regular.clone()] {
                for wg_size in [128u32, 256] {
                    let wg_size = wg_size.min(chip.max_workgroup_size());
                    let aggs =
                        CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                    let configs: Vec<OptConfig> = crate::opts::all_configs()
                        .into_iter()
                        .filter(|c| c.workgroup_size().min(chip.max_workgroup_size()) == wg_size)
                        .collect();
                    let batch = evaluate_kernel_batch(&chip, wg_size, &profile, &aggs, &configs);
                    for (cfg, t) in configs.iter().zip(&batch) {
                        let single = evaluate_kernel(&chip, *cfg, wg_size, &profile, &aggs);
                        assert_eq!(
                            single, *t,
                            "{} {cfg} wg={wg_size} {}",
                            chip.name, profile.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batch_evaluation_handles_empty_frontier() {
        let chip = ChipProfile::gtx1080();
        let aggs = CallAggregates::from_items(&[], 128, chip.subgroup_size.max(1));
        let configs: Vec<OptConfig> = crate::opts::all_configs()
            .into_iter()
            .filter(|c| c.workgroup_size() == 128)
            .collect();
        let batch = evaluate_kernel_batch(&chip, 128, &KernelProfile::frontier("k"), &aggs, &configs);
        assert!(batch.iter().all(|&t| t == chip.kernel_fixed_cost));
    }

    #[test]
    fn explained_kernel_is_bit_identical_and_sums_to_total() {
        let items = skewed(5_000, 3_000);
        let mut regular = KernelProfile::frontier("filter");
        regular.irregular = false;
        for chip in study_chips() {
            for profile in [KernelProfile::frontier("k"), regular.clone()] {
                for cfg in crate::opts::all_configs() {
                    let wg_size = cfg.workgroup_size().min(chip.max_workgroup_size());
                    let aggs =
                        CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                    let plain = evaluate_kernel(&chip, cfg, wg_size, &profile, &aggs);
                    let (explained, b) =
                        evaluate_kernel_explained(&chip, cfg, wg_size, &profile, &aggs);
                    assert_eq!(plain, explained, "{} {cfg} {}", chip.name, profile.name);
                    let rel = (b.total() - plain).abs() / plain;
                    assert!(
                        rel < 1e-9,
                        "{} {cfg} {}: breakdown {} vs scalar {plain}",
                        chip.name,
                        profile.name,
                        b.total()
                    );
                    // Components are non-negative up to round-off of the
                    // orchestration remainders.
                    assert!(
                        b.components().iter().all(|&(_, v)| v >= -1e-9 * plain),
                        "{} {cfg}: negative component in {b:?}",
                        chip.name
                    );
                }
            }
        }
    }

    #[test]
    fn explained_batch_matches_plain_batch() {
        let items = skewed(5_000, 3_000);
        let profile = KernelProfile::frontier("k");
        for chip in study_chips() {
            for wg_size in [128u32, 256] {
                let wg_size = wg_size.min(chip.max_workgroup_size());
                let aggs = CallAggregates::from_items(&items, wg_size, chip.subgroup_size.max(1));
                let configs: Vec<OptConfig> = crate::opts::all_configs()
                    .into_iter()
                    .filter(|c| c.workgroup_size().min(chip.max_workgroup_size()) == wg_size)
                    .collect();
                let plain = evaluate_kernel_batch(&chip, wg_size, &profile, &aggs, &configs);
                let explained =
                    evaluate_kernel_batch_explained(&chip, wg_size, &profile, &aggs, &configs);
                for ((t, (te, b)), cfg) in plain.iter().zip(&explained).zip(&configs) {
                    assert_eq!(t, te, "{} {cfg}", chip.name);
                    let rel = (b.total() - t).abs() / t;
                    assert!(rel < 1e-9, "{} {cfg}: {} vs {t}", chip.name, b.total());
                }
            }
        }
    }

    #[test]
    fn explained_session_matches_plain_session() {
        let items = skewed(4_000, 1_000);
        for chip in study_chips() {
            for cfg in [
                OptConfig::baseline(),
                OptConfig::baseline().with(Optimization::Oitergb),
                OptConfig::from_index(95),
            ] {
                let m = Machine::new(chip.clone());
                let run = |mut s: Session<'_>| {
                    for _ in 0..4 {
                        Session::kernel(&mut s, &KernelProfile::frontier("k"), &items);
                    }
                    s
                };
                let plain = run(m.session(cfg)).finish();
                let (stats, b) = run(m.session_explained(cfg)).finish_explained();
                assert_eq!(plain, stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs time {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
                if cfg.oitergb {
                    assert!(b.barrier > 0.0, "{}: oitergb must book barrier time", chip.name);
                }
                assert!(b.launch > 0.0 && b.copy > 0.0);
            }
        }
    }

    #[test]
    #[should_panic(expected = "workgroup size mismatch")]
    fn kernel_aggregated_rejects_mismatched_sizes() {
        let m = Machine::new(ChipProfile::r9());
        let mut s = m.session(OptConfig::baseline());
        let aggs = CallAggregates::from_items(&[WorkItem::new(1, 0)], 256, 64);
        s.kernel_aggregated(&KernelProfile::frontier("k"), &aggs);
    }
}

//! OpenCL 2.0 memory-consistency emulation (paper Section VI-A).
//!
//! The ARM and Nvidia chips of the study do not natively support the
//! OpenCL 2.0 memory model; the paper emulated it — with inline PTX
//! fences on Nvidia and best-effort OpenCL 1.x fences on ARM — and
//! validated the emulation against an oracle. This module reproduces
//! that artefact:
//!
//! - a tiny weak-memory machine with per-thread store buffers
//!   ([`explore`] exhaustively enumerates its executions);
//! - the three emulation levels of the paper
//!   ([`AtomicSupport`]) and the *mapping* each uses to implement
//!   acquire/release atomics ([`lower`]);
//! - litmus tests ([`message_passing_violates`],
//!   [`store_buffering_weak_outcome`]) showing the
//!   mappings are sound — and that the unfenced mapping is **not**,
//!   which is exactly why the emulation is required.
//!
//! The machine models buffered stores with ARM-like weak ordering: a
//! store enters its thread's buffer and drains to shared memory at any
//! later point, *in any order* (stores to different locations may
//! reorder); loads forward from the youngest same-location entry of the
//! local buffer first. A fence drains the issuing thread's buffer. This
//! is weak enough to exhibit both the message-passing and the
//! store-buffering anomalies, and strong enough to make the fenced
//! mappings correct — sufficient for the orderings graph worklists rely
//! on.

use std::collections::BTreeSet;

/// Memory locations are small integers.
pub type Loc = usize;

/// Thread-local registers are small integers.
pub type Reg = usize;

/// One instruction of the litmus machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Buffered store of a constant.
    Store(Loc, u32),
    /// Load into a register (forwards from the own store buffer).
    Load(Reg, Loc),
    /// Full fence: drains the issuing thread's store buffer.
    Fence,
}

/// How a chip provides OpenCL 2.0 atomics (paper Section VI-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicSupport {
    /// Native OpenCL 2.0 memory-model support (AMD, Intel).
    Native,
    /// Emulated with inline PTX memory fences (Nvidia).
    InlinePtx,
    /// Best-effort emulation with OpenCL 1.x fences (ARM).
    BestEffortFences,
    /// A deliberately broken mapping that omits the fences — used to
    /// demonstrate why the emulation is necessary.
    UnfencedBroken,
}

/// A release store / acquire load pair at the OpenCL source level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// `atomic_store_explicit(loc, val, memory_order_release)`.
    StoreRelease(Loc, u32),
    /// `atomic_load_explicit(loc, memory_order_acquire)` into a register.
    LoadAcquire(Reg, Loc),
    /// Plain non-atomic store.
    PlainStore(Loc, u32),
    /// Plain non-atomic load.
    PlainLoad(Reg, Loc),
}

/// Lowers one source-level operation to machine instructions under the
/// given support level. The fenced mappings bracket atomics with the
/// fences the respective platform requires; the broken mapping lowers
/// atomics to plain accesses.
pub fn lower(op: AtomicOp, support: AtomicSupport) -> Vec<Op> {
    let fenced = !matches!(support, AtomicSupport::UnfencedBroken);
    match op {
        AtomicOp::StoreRelease(loc, val) => {
            if fenced {
                // Release: everything before must be visible first.
                vec![Op::Fence, Op::Store(loc, val), Op::Fence]
            } else {
                vec![Op::Store(loc, val)]
            }
        }
        AtomicOp::LoadAcquire(reg, loc) => {
            if fenced {
                // Acquire: nothing after may hoist above the load.
                vec![Op::Load(reg, loc), Op::Fence]
            } else {
                vec![Op::Load(reg, loc)]
            }
        }
        AtomicOp::PlainStore(loc, val) => vec![Op::Store(loc, val)],
        AtomicOp::PlainLoad(reg, loc) => vec![Op::Load(reg, loc)],
    }
}

/// Lowers a whole thread.
pub fn lower_thread(ops: &[AtomicOp], support: AtomicSupport) -> Vec<Op> {
    ops.iter().flat_map(|&op| lower(op, support)).collect()
}

/// Number of memory locations in litmus configurations.
const LOCS: usize = 4;
/// Number of registers per thread.
const REGS: usize = 4;

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct ThreadState {
    pc: usize,
    buffer: Vec<(Loc, u32)>,
    regs: [u32; REGS],
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct MachineState {
    memory: [u32; LOCS],
    threads: Vec<ThreadState>,
}

/// Exhaustively explores every execution of a two-thread program and
/// returns the set of final register files `(t0.regs, t1.regs)`.
///
/// All memory starts at zero. At each step any thread may either execute
/// its next instruction or drain the oldest entry of its store buffer;
/// terminal states require empty buffers.
///
/// # Panics
///
/// Panics if a program references a location or register out of range.
pub fn explore(t0: &[Op], t1: &[Op]) -> BTreeSet<([u32; REGS], [u32; REGS])> {
    let programs = [t0, t1];
    for p in programs {
        for op in p {
            match *op {
                Op::Store(l, _) => assert!(l < LOCS, "location {l} out of range"),
                Op::Load(r, l) => {
                    assert!(l < LOCS, "location {l} out of range");
                    assert!(r < REGS, "register {r} out of range");
                }
                Op::Fence => {}
            }
        }
    }
    let start = MachineState {
        memory: [0; LOCS],
        threads: vec![
            ThreadState {
                pc: 0,
                buffer: Vec::new(),
                regs: [0; REGS],
            },
            ThreadState {
                pc: 0,
                buffer: Vec::new(),
                regs: [0; REGS],
            },
        ],
    };
    let mut outcomes = BTreeSet::new();
    let mut seen = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(state) = stack.pop() {
        if !seen.insert(state.clone()) {
            continue;
        }
        let done = (0..2).all(|t| {
            state.threads[t].pc >= programs[t].len() && state.threads[t].buffer.is_empty()
        });
        if done {
            outcomes.insert((state.threads[0].regs, state.threads[1].regs));
            continue;
        }
        #[allow(clippy::needless_range_loop)] // t indexes both programs and threads
        for t in 0..2 {
            // Option A: drain any buffered store (weak ordering: stores
            // to different locations may become visible out of order;
            // same-location stores keep their relative order).
            for i in 0..state.threads[t].buffer.len() {
                let loc = state.threads[t].buffer[i].0;
                let is_oldest_to_loc = state.threads[t].buffer[..i].iter().all(|&(l, _)| l != loc);
                if !is_oldest_to_loc {
                    continue;
                }
                let mut next = state.clone();
                let (loc, val) = next.threads[t].buffer.remove(i);
                next.memory[loc] = val;
                stack.push(next);
            }
            // Option B: execute the next instruction.
            let pc = state.threads[t].pc;
            if pc < programs[t].len() {
                match programs[t][pc] {
                    Op::Store(loc, val) => {
                        let mut next = state.clone();
                        next.threads[t].buffer.push((loc, val));
                        next.threads[t].pc += 1;
                        stack.push(next);
                    }
                    Op::Load(reg, loc) => {
                        let mut next = state.clone();
                        // Forward the youngest buffered store to the
                        // same location, if any.
                        let value = next.threads[t]
                            .buffer
                            .iter()
                            .rev()
                            .find(|(l, _)| *l == loc)
                            .map(|&(_, v)| v)
                            .unwrap_or(next.memory[loc]);
                        next.threads[t].regs[reg] = value;
                        next.threads[t].pc += 1;
                        stack.push(next);
                    }
                    Op::Fence => {
                        // A fence only executes with an empty buffer;
                        // otherwise the thread must drain first.
                        if state.threads[t].buffer.is_empty() {
                            let mut next = state.clone();
                            next.threads[t].pc += 1;
                            stack.push(next);
                        }
                    }
                }
            }
        }
    }
    outcomes
}

/// The message-passing litmus test: thread 0 writes data then sets a
/// flag with release semantics; thread 1 reads the flag with acquire
/// semantics, then the data. Returns `true` iff the *stale-data* outcome
/// (flag seen set, data seen zero) is reachable under the given support
/// level — i.e. iff the mapping is broken.
pub fn message_passing_violates(support: AtomicSupport) -> bool {
    const DATA: Loc = 0;
    const FLAG: Loc = 1;
    let t0 = lower_thread(
        &[
            AtomicOp::PlainStore(DATA, 42),
            AtomicOp::StoreRelease(FLAG, 1),
        ],
        support,
    );
    let t1 = lower_thread(
        &[AtomicOp::LoadAcquire(0, FLAG), AtomicOp::PlainLoad(1, DATA)],
        support,
    );
    explore(&t0, &t1)
        .into_iter()
        .any(|(_, r1)| r1[0] == 1 && r1[1] == 0)
}

/// The store-buffering litmus test: both threads store to their own
/// location then load the other's. Returns `true` iff the weak outcome
/// `r0 == 0 && r1 == 0` is reachable.
pub fn store_buffering_weak_outcome(support: AtomicSupport) -> bool {
    const X: Loc = 0;
    const Y: Loc = 1;
    let t0 = lower_thread(
        &[AtomicOp::StoreRelease(X, 1), AtomicOp::LoadAcquire(0, Y)],
        support,
    );
    let t1 = lower_thread(
        &[AtomicOp::StoreRelease(Y, 1), AtomicOp::LoadAcquire(0, X)],
        support,
    );
    explore(&t0, &t1)
        .into_iter()
        .any(|(r0, r1)| r0[0] == 0 && r1[0] == 0)
}

impl AtomicSupport {
    /// A short human-readable description of the emulation level, used
    /// by the `explain` command alongside the cost attribution.
    pub fn label(self) -> &'static str {
        match self {
            AtomicSupport::Native => "native OpenCL 2.0 atomics",
            AtomicSupport::InlinePtx => "emulated via inline PTX fences",
            AtomicSupport::BestEffortFences => "best-effort OpenCL 1.x fences",
            AtomicSupport::UnfencedBroken => "unfenced (broken; demo only)",
        }
    }
}

/// The emulation level each study chip uses (paper Section VI-A).
pub fn chip_support(chip_name: &str) -> AtomicSupport {
    match chip_name {
        "M4000" | "GTX1080" => AtomicSupport::InlinePtx,
        "MALI" => AtomicSupport::BestEffortFences,
        _ => AtomicSupport::Native,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::study_chips;

    #[test]
    fn plain_machine_exhibits_store_buffer_reordering() {
        // The raw machine without fences must show the MP anomaly —
        // otherwise the litmus harness would prove nothing.
        assert!(message_passing_violates(AtomicSupport::UnfencedBroken));
        assert!(store_buffering_weak_outcome(AtomicSupport::UnfencedBroken));
    }

    #[test]
    fn every_real_mapping_forbids_stale_message_passing() {
        for support in [
            AtomicSupport::Native,
            AtomicSupport::InlinePtx,
            AtomicSupport::BestEffortFences,
        ] {
            assert!(
                !message_passing_violates(support),
                "{support:?} must order data before flag"
            );
        }
    }

    #[test]
    fn fenced_mappings_forbid_the_sb_weak_outcome() {
        for support in [
            AtomicSupport::Native,
            AtomicSupport::InlinePtx,
            AtomicSupport::BestEffortFences,
        ] {
            assert!(!store_buffering_weak_outcome(support), "{support:?}");
        }
    }

    #[test]
    fn every_study_chip_has_a_sound_mapping() {
        for chip in study_chips() {
            let support = chip_support(&chip.name);
            assert!(
                !message_passing_violates(support),
                "{}: worklist publication would be racy",
                chip.name
            );
        }
    }

    #[test]
    fn support_labels_are_distinct_and_nonempty() {
        let labels: Vec<&str> = [
            AtomicSupport::Native,
            AtomicSupport::InlinePtx,
            AtomicSupport::BestEffortFences,
            AtomicSupport::UnfencedBroken,
        ]
        .iter()
        .map(|s| s.label())
        .collect();
        assert!(labels.iter().all(|l| !l.is_empty()));
        for (i, a) in labels.iter().enumerate() {
            assert!(labels[i + 1..].iter().all(|b| b != a), "duplicate {a}");
        }
    }

    #[test]
    fn lowering_shapes_match_the_platform_recipes() {
        let rel = lower(AtomicOp::StoreRelease(0, 1), AtomicSupport::InlinePtx);
        assert_eq!(rel, vec![Op::Fence, Op::Store(0, 1), Op::Fence]);
        let acq = lower(AtomicOp::LoadAcquire(0, 1), AtomicSupport::BestEffortFences);
        assert_eq!(acq, vec![Op::Load(0, 1), Op::Fence]);
        let broken = lower(AtomicOp::StoreRelease(0, 1), AtomicSupport::UnfencedBroken);
        assert_eq!(broken, vec![Op::Store(0, 1)]);
    }

    #[test]
    fn explore_finds_all_sequential_outcomes() {
        // A trivially racy pair: both store different values to the same
        // location, then read it. Final register must be one of the two
        // stores, and both interleavings must be found.
        let t0 = [Op::Store(0, 1), Op::Load(0, 0)];
        let t1 = [Op::Store(0, 2), Op::Load(0, 0)];
        let outcomes = explore(&t0, &t1);
        // Own-store forwarding: each thread reads at least its own value.
        assert!(outcomes.iter().all(|(r0, r1)| r0[0] != 0 && r1[0] != 0));
        assert!(
            outcomes.len() >= 3,
            "expected several interleavings, got {outcomes:?}"
        );
    }

    #[test]
    fn loads_forward_from_the_youngest_buffered_store() {
        let t0 = [Op::Store(0, 1), Op::Store(0, 2), Op::Load(0, 0)];
        let outcomes = explore(&t0, &[]);
        assert!(outcomes.iter().all(|(r0, _)| r0[0] == 2), "{outcomes:?}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explore_rejects_bad_locations() {
        explore(&[Op::Store(99, 1)], &[]);
    }
}

//! Record-once, replay-everywhere execution traces.
//!
//! The kernel sequence an application executes — which frontiers it
//! processes, with which degrees and worklist pushes — depends only on the
//! application and its input graph, *not* on the chip or the optimisation
//! configuration (the optimisations of the study are semantics-preserving
//! program transformations). The study exploits this: each (application,
//! input) pair is executed once against a [`Recorder`], and the recorded
//! [`Trace`] is then replayed against every chip × configuration cell,
//! which only re-prices the same work.
//!
//! Replay cost is further reduced by pre-aggregating each recorded
//! frontier per (workgroup size, subgroup size) pair — see
//! [`crate::exec::CallAggregates`] — so that one replay costs time
//! proportional to the number of workgroups, not nodes.
//!
//! # Example
//!
//! ```
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::{Executor, KernelProfile, Machine, WorkItem};
//! use gpp_sim::opts::OptConfig;
//! use gpp_sim::trace::{CompiledTrace, Recorder};
//!
//! let mut rec = Recorder::new();
//! rec.kernel(&KernelProfile::frontier("bfs"), &[WorkItem::new(5, 2); 100]);
//! let mut compiled = CompiledTrace::new(rec.into_trace());
//!
//! let machine = Machine::new(ChipProfile::r9());
//! let stats = compiled.replay(&machine, OptConfig::baseline());
//! assert_eq!(stats.kernels, 1);
//! ```

use std::collections::HashMap;

use crate::exec::{CallAggregates, Executor, KernelProfile, Machine, RunStats, WorkItem};
use crate::opts::OptConfig;

/// One recorded kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCall {
    /// The kernel's operation-count profile.
    pub profile: KernelProfile,
    /// The frontier it processed.
    pub items: Vec<WorkItem>,
}

/// A recorded application run: the exact sequence of kernel invocations
/// with their frontiers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    calls: Vec<TraceCall>,
}

impl Trace {
    /// The recorded kernel invocations, in execution order.
    pub fn calls(&self) -> &[TraceCall] {
        &self.calls
    }

    /// Number of recorded kernel invocations.
    pub fn num_kernels(&self) -> usize {
        self.calls.len()
    }

    /// Total work items over all invocations.
    pub fn num_items(&self) -> usize {
        self.calls.iter().map(|c| c.items.len()).sum()
    }

    /// Total edges over all invocations.
    pub fn num_edges(&self) -> u64 {
        self.calls
            .iter()
            .map(|c| c.items.iter().map(|i| i.degree as u64).sum::<u64>())
            .sum()
    }
}

/// An [`Executor`] that records instead of timing.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Trace,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Consumes the recorder, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Executor for Recorder {
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) {
        self.trace.calls.push(TraceCall {
            profile: profile.clone(),
            items: items.to_vec(),
        });
    }
}

/// A trace plus its lazily built per-(workgroup size, subgroup size)
/// aggregations, ready for cheap replay on any chip and configuration.
#[derive(Debug, Clone)]
pub struct CompiledTrace {
    trace: Trace,
    // Keyed by (wg_size, sg_size); one CallAggregates per trace call.
    compiled: HashMap<(u32, u32), Vec<CallAggregates>>,
}

impl CompiledTrace {
    /// Wraps a trace for replay.
    pub fn new(trace: Trace) -> Self {
        CompiledTrace {
            trace,
            compiled: HashMap::new(),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Replays the trace on `machine` under `config`, returning the same
    /// statistics a live [`crate::exec::Session`] would produce.
    ///
    /// The first replay for a given (workgroup size, subgroup size) pair
    /// builds the aggregation; subsequent replays reuse it.
    pub fn replay(&mut self, machine: &Machine, config: OptConfig) -> RunStats {
        let mut session = machine.session(config);
        let key = (
            session.workgroup_size(),
            machine.chip().subgroup_size.max(1),
        );
        if !self.compiled.contains_key(&key) {
            let aggs = self
                .trace
                .calls
                .iter()
                .map(|c| CallAggregates::from_items(&c.items, key.0, key.1))
                .collect();
            self.compiled.insert(key, aggs);
        }
        let aggs = &self.compiled[&key];
        for (call, agg) in self.trace.calls.iter().zip(aggs.iter()) {
            session.kernel_aggregated(&call.profile, agg);
        }
        session.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};
    use crate::exec::Session;
    use crate::opts::all_configs;

    fn sample_trace() -> Trace {
        let mut rec = Recorder::new();
        let profile = KernelProfile::frontier("bfs");
        for iter in 0..10u32 {
            let items: Vec<WorkItem> = (0..500)
                .map(|i| WorkItem::new(1 + (i * iter) % 97, (i % 3 == 0) as u32))
                .collect();
            rec.kernel(&profile, &items);
        }
        rec.into_trace()
    }

    #[test]
    fn recorder_captures_calls_in_order() {
        let trace = sample_trace();
        assert_eq!(trace.num_kernels(), 10);
        assert_eq!(trace.num_items(), 5_000);
        assert!(trace.num_edges() > 0);
        assert_eq!(trace.calls()[0].items.len(), 500);
    }

    #[test]
    fn replay_matches_live_session_on_all_chips_and_configs() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let mut compiled = CompiledTrace::new(trace.clone());
            for cfg in all_configs().into_iter().step_by(7) {
                let mut live = machine.session(cfg);
                for call in trace.calls() {
                    Session::kernel(&mut live, &call.profile, &call.items);
                }
                let live_stats = live.finish();
                let replay_stats = compiled.replay(&machine, cfg);
                assert_eq!(live_stats, replay_stats, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn replay_is_repeatable() {
        let mut compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::mali());
        let a = compiled.replay(&machine, OptConfig::baseline());
        let b = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_replays_to_zero_kernels() {
        let mut compiled = CompiledTrace::new(Trace::default());
        let machine = Machine::new(ChipProfile::m4000());
        let stats = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(stats.kernels, 0);
        assert_eq!(stats.time_ns, 0.0);
    }

    #[test]
    fn compilation_is_cached_per_geometry() {
        let mut compiled = CompiledTrace::new(sample_trace());
        let m1 = Machine::new(ChipProfile::m4000()); // sg 32
        let m2 = Machine::new(ChipProfile::r9()); // sg 64
        compiled.replay(&m1, OptConfig::baseline());
        compiled.replay(&m2, OptConfig::baseline());
        compiled.replay(&m1, OptConfig::from_index(1)); // sz256 -> new wg size
        assert_eq!(compiled.compiled.len(), 3);
    }
}

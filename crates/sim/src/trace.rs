//! Record-once, replay-everywhere execution traces.
//!
//! The kernel sequence an application executes — which frontiers it
//! processes, with which degrees and worklist pushes — depends only on the
//! application and its input graph, *not* on the chip or the optimisation
//! configuration (the optimisations of the study are semantics-preserving
//! program transformations). The study exploits this: each (application,
//! input) pair is executed once against a [`Recorder`], and the recorded
//! [`Trace`] is then replayed against every chip × configuration cell,
//! which only re-prices the same work.
//!
//! # Storage layout
//!
//! A trace is stored structure-of-arrays: one contiguous [`WorkItem`]
//! arena shared by every recorded call, a small table of interned
//! [`KernelProfile`]s (one per distinct kernel name), and a per-call
//! record holding a profile id plus an `(start, len)` range into the
//! arena. Recording `k` calls therefore costs one amortised arena
//! allocation rather than `k` heap vectors and `k` profile clones, and a
//! whole trace serialises compactly for the persistent trace cache (see
//! `RECORDER_VERSION`). [`Trace::call`] and [`Trace::calls`] present the
//! familiar per-call view as cheap borrows into the arena.
//!
//! Replay cost is further reduced by pre-aggregating each recorded
//! frontier per (workgroup size, subgroup size) pair — see
//! [`crate::exec::CallAggregates`]. Aggregations for *all* geometries a
//! chip set needs are built in a single pass over the arena
//! ([`crate::exec::CallAggregates::from_items_multi`]), so aggregation
//! cost is O(items), not O(items × geometries). Each geometry lives in a
//! [`OnceLock`] slot, so it is built exactly once no matter how many
//! threads race to replay it; call [`CompiledTrace::precompile`] (or
//! [`CompiledTrace::precompile_all`] for a whole chip set) first to build
//! the aggregations outside the parallel section.
//! [`CompiledTrace::replay_all_configs`] prices the whole configuration
//! space in a single traversal per geometry.
//!
//! # Example
//!
//! ```
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::{Executor, KernelProfile, Machine, WorkItem};
//! use gpp_sim::opts::OptConfig;
//! use gpp_sim::trace::{CompiledTrace, Recorder};
//!
//! let mut rec = Recorder::new();
//! rec.kernel(&KernelProfile::frontier("bfs"), &[WorkItem::new(5, 2); 100]);
//! let compiled = CompiledTrace::new(rec.into_trace());
//!
//! let machine = Machine::new(ChipProfile::r9());
//! let stats = compiled.replay(&machine, OptConfig::baseline());
//! assert_eq!(stats.kernels, 1);
//!
//! // One traversal prices every configuration of the study space.
//! let all = compiled.replay_all_configs(&machine);
//! assert_eq!(all[OptConfig::baseline().index()], stats);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, OnceLock, RwLock};

use gpp_obs::metrics;
use gpp_obs::CostBreakdown;
use serde::{Deserialize, Serialize};

use crate::barrier::GlobalBarrier;
use crate::chip::{ChipBatch, ChipProfile};
use crate::exec::{
    evaluate_kernel_batch, evaluate_kernel_batch_explained, BatchGroupPricer, CallAggregates,
    Executor, KernelProfile, Machine, RunStats, WorkItem,
};
use crate::opts::{all_configs, OptConfig, NUM_CONFIGS};

/// Version stamp of the recorded trace format and recording semantics.
///
/// Any change to the arena layout, the interning rules, or what a
/// [`Recorder`] captures per call must bump this constant; persistent
/// trace caches key on it, so stale on-disk traces are invalidated
/// rather than silently replayed.
pub const RECORDER_VERSION: u32 = 2;

/// One recorded call: an interned profile id plus the `(start, len)`
/// range of its frontier in the shared item arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct CallRecord {
    profile: u32,
    start: usize,
    len: usize,
}

/// A borrowed view of one recorded kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct TraceCall<'a> {
    /// The kernel's operation-count profile.
    pub profile: &'a KernelProfile,
    /// The frontier it processed (a slice of the trace's item arena).
    pub items: &'a [WorkItem],
}

/// A recorded application run: the exact sequence of kernel invocations
/// with their frontiers, stored structure-of-arrays (see the module
/// docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Every call's frontier, back to back.
    items: Vec<WorkItem>,
    /// Per-call profile id and arena range, in execution order.
    calls: Vec<CallRecord>,
    /// Interned profiles; `CallRecord::profile` indexes this table.
    profiles: Vec<KernelProfile>,
}

impl Trace {
    /// The `i`-th recorded kernel invocation.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.num_kernels()`.
    pub fn call(&self, i: usize) -> TraceCall<'_> {
        let c = &self.calls[i];
        TraceCall {
            profile: &self.profiles[c.profile as usize],
            items: &self.items[c.start..c.start + c.len],
        }
    }

    /// The recorded kernel invocations, in execution order.
    pub fn calls(&self) -> impl ExactSizeIterator<Item = TraceCall<'_>> + '_ {
        self.calls.iter().map(|c| TraceCall {
            profile: &self.profiles[c.profile as usize],
            items: &self.items[c.start..c.start + c.len],
        })
    }

    /// The whole item arena: every call's frontier, back to back.
    pub fn items(&self) -> &[WorkItem] {
        &self.items
    }

    /// The interned kernel profiles, one per distinct kernel name.
    pub fn profiles(&self) -> &[KernelProfile] {
        &self.profiles
    }

    /// Number of recorded kernel invocations.
    pub fn num_kernels(&self) -> usize {
        self.calls.len()
    }

    /// Total work items over all invocations (O(1): the arena length).
    pub fn num_items(&self) -> usize {
        self.items.len()
    }

    /// Total edges over all invocations.
    pub fn num_edges(&self) -> u64 {
        self.items.iter().map(|i| i.degree as u64).sum()
    }

    /// Bytes held by the item arena (capacity, not length): the dominant
    /// memory cost of a trace, reported per item by the bench harness.
    pub fn arena_bytes(&self) -> usize {
        self.items.capacity() * std::mem::size_of::<WorkItem>()
    }
}

/// An [`Executor`] that records instead of timing.
///
/// Frontiers append into one shared arena and profiles are interned by
/// kernel name, so recording is one amortised allocation per call; see
/// the module docs for the layout.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Trace,
    // Kernel name -> index into trace.profiles.
    interned: HashMap<String, u32>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Consumes the recorder, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Executor for Recorder {
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) {
        let id = match self.interned.get(&profile.name) {
            Some(&id) => {
                // Interning merges calls by name; two kernels sharing a
                // name but differing structurally would silently collapse
                // into one profile, so that is a recording bug.
                debug_assert_eq!(
                    &self.trace.profiles[id as usize], profile,
                    "kernel {:?} re-recorded with a structurally different profile",
                    profile.name
                );
                id
            }
            None => {
                let id = u32::try_from(self.trace.profiles.len()).expect("< 2^32 distinct kernels");
                self.trace.profiles.push(profile.clone());
                self.interned.insert(profile.name.clone(), id);
                id
            }
        };
        let start = self.trace.items.len();
        self.trace.items.extend_from_slice(items);
        self.trace.calls.push(CallRecord {
            profile: id,
            start,
            len: items.len(),
        });
    }
}

/// Groups the study's configuration space by the *effective* workgroup
/// size on `chip` (requested size clamped to the chip limit). Each group
/// shares one aggregation geometry and one batched evaluation per call.
///
/// This is the single source of truth for which geometries a chip needs:
/// [`CompiledTrace::replay_all_configs`],
/// [`CompiledTrace::replay_all_configs_explained`] and
/// [`CompiledTrace::precompile`] all derive their workgroup sizes from
/// it, so they can never drift apart.
///
/// The partition depends on the chip only through
/// [`ChipProfile::max_workgroup_size`] (the sole input to the per-config
/// clamp), so results are memoized process-wide under that key: a
/// thousand-chip sweep builds each distinct grouping once instead of
/// rebuilding a `Vec<(u32, Vec<OptConfig>)>` on every
/// `replay_all_configs` call. The returned [`Arc`] shares the cached
/// grouping; iterate it with `.iter()`.
pub fn geometry_groups(chip: &ChipProfile) -> Arc<Vec<(u32, Vec<OptConfig>)>> {
    type GroupCache = RwLock<HashMap<u32, Arc<Vec<(u32, Vec<OptConfig>)>>>>;
    static CACHE: OnceLock<GroupCache> = OnceLock::new();
    let cache = CACHE.get_or_init(|| RwLock::new(HashMap::new()));
    let max_wg = chip.max_workgroup_size();
    if let Some(groups) = cache.read().unwrap().get(&max_wg) {
        return Arc::clone(groups);
    }
    let mut groups: Vec<(u32, Vec<OptConfig>)> = Vec::new();
    for cfg in all_configs() {
        let wg_size = cfg.workgroup_size().min(max_wg);
        match groups.iter_mut().find(|(g, _)| *g == wg_size) {
            Some((_, v)) => v.push(cfg),
            None => groups.push((wg_size, vec![cfg])),
        }
    }
    // A racing builder produced an identical value; either wins.
    Arc::clone(
        cache
            .write()
            .unwrap()
            .entry(max_wg)
            .or_insert_with(|| Arc::new(groups)),
    )
}

/// The (workgroup size, subgroup size) pairs `chip` uses, in group order.
fn chip_geometries(chip: &ChipProfile) -> Vec<(u32, u32)> {
    let sg_size = chip.subgroup_size.max(1);
    geometry_groups(chip)
        .iter()
        .map(|(wg_size, _)| (*wg_size, sg_size))
        .collect()
}

// One geometry's aggregation slot. The OnceLock guarantees the (now
// single-pass, hence larger) build happens exactly once per geometry even
// when replays race; the Arc around the value lets a replay keep using an
// aggregation without holding the map lock.
type GeometrySlot = Arc<OnceLock<Arc<Vec<CallAggregates>>>>;

/// A trace plus its lazily built per-(workgroup size, subgroup size)
/// aggregations, ready for cheap replay on any chip and configuration.
///
/// The aggregation cache is a map of [`OnceLock`] slots behind an
/// [`RwLock`], so replay methods take `&self` and the same compiled trace
/// can be shared across threads (`CompiledTrace` is `Sync`). Each
/// geometry is built exactly once — racing threads block on the slot's
/// `OnceLock` instead of duplicating the build — and replays for an
/// already-built geometry only take the read lock.
#[derive(Debug)]
pub struct CompiledTrace {
    trace: Trace,
    // Keyed by (wg_size, sg_size); one CallAggregates per trace call.
    compiled: RwLock<HashMap<(u32, u32), GeometrySlot>>,
}

impl Clone for CompiledTrace {
    fn clone(&self) -> Self {
        // Deep-clone only the *built* geometries: an empty slot in the
        // clone would share build-exactly-once state with the original.
        let compiled = self
            .compiled
            .read()
            .unwrap()
            .iter()
            .filter_map(|(key, slot)| {
                slot.get().map(|aggs| {
                    let fresh: GeometrySlot = Arc::default();
                    fresh.set(Arc::clone(aggs)).expect("fresh slot is empty");
                    (*key, fresh)
                })
            })
            .collect();
        CompiledTrace {
            trace: self.trace.clone(),
            compiled: RwLock::new(compiled),
        }
    }
}

impl CompiledTrace {
    /// Wraps a trace for replay.
    pub fn new(trace: Trace) -> Self {
        CompiledTrace {
            trace,
            compiled: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The [`OnceLock`] slot for one geometry, inserting an empty slot
    /// under the write lock if the geometry is new.
    fn slot(&self, key: (u32, u32)) -> GeometrySlot {
        if let Some(slot) = self.compiled.read().unwrap().get(&key) {
            return Arc::clone(slot);
        }
        Arc::clone(self.compiled.write().unwrap().entry(key).or_default())
    }

    /// Builds the per-call aggregations for several geometries in one
    /// pass over the item arena.
    fn build_geometries(&self, keys: &[(u32, u32)]) -> Vec<Vec<CallAggregates>> {
        metrics::counter("replay.geometry_builds", keys.len() as u64);
        let mut out: Vec<Vec<CallAggregates>> = keys
            .iter()
            .map(|_| Vec::with_capacity(self.trace.num_kernels()))
            .collect();
        for call in self.trace.calls() {
            let built = CallAggregates::from_items_multi(call.items, keys);
            for (per_geometry, agg) in out.iter_mut().zip(built) {
                per_geometry.push(agg);
            }
        }
        out
    }

    /// The aggregation for one geometry, building and caching it on first
    /// use. Concurrent callers for the same geometry build it once.
    fn aggregates(&self, wg_size: u32, sg_size: u32) -> Arc<Vec<CallAggregates>> {
        let slot = self.slot((wg_size, sg_size));
        let aggs = slot.get_or_init(|| {
            let [aggs] = <[_; 1]>::try_from(self.build_geometries(&[(wg_size, sg_size)]))
                .expect("one geometry in, one out");
            Arc::new(aggs)
        });
        Arc::clone(aggs)
    }

    /// Builds every not-yet-built geometry in `keys` with a *single* pass
    /// over the item arena, however many geometries are missing.
    fn build_missing(&self, keys: &[(u32, u32)]) {
        let mut missing: Vec<((u32, u32), GeometrySlot)> = Vec::new();
        for &key in keys {
            if missing.iter().any(|(k, _)| *k == key) {
                continue;
            }
            let slot = self.slot(key);
            if slot.get().is_none() {
                missing.push((key, slot));
            }
        }
        if missing.is_empty() {
            return;
        }
        let missing_keys: Vec<(u32, u32)> = missing.iter().map(|(k, _)| *k).collect();
        let built = self.build_geometries(&missing_keys);
        for ((_, slot), aggs) in missing.iter().zip(built) {
            // A racing aggregates() call may have won the slot meanwhile;
            // its value is identical, so losing the race is harmless.
            let _ = slot.set(Arc::new(aggs));
        }
    }

    /// Builds the aggregations for every geometry `machine`'s chip can
    /// use (the distinct effective workgroup sizes of
    /// [`geometry_groups`]), so later replays never build. All of the
    /// chip's geometries are aggregated in one pass over the item arena.
    /// Idempotent.
    pub fn precompile(&self, machine: &Machine) {
        self.build_missing(&chip_geometries(machine.chip()));
    }

    /// [`CompiledTrace::precompile`] for a whole chip set: every
    /// geometry any of `machines` needs, still one pass over the item
    /// arena for all of them together. Idempotent.
    pub fn precompile_all(&self, machines: &[Machine]) {
        let mut keys: Vec<(u32, u32)> = Vec::new();
        for machine in machines {
            for key in chip_geometries(machine.chip()) {
                if !keys.contains(&key) {
                    keys.push(key);
                }
            }
        }
        self.build_missing(&keys);
    }

    /// Number of distinct geometries aggregated so far.
    pub fn num_compiled_geometries(&self) -> usize {
        self.compiled
            .read()
            .unwrap()
            .values()
            .filter(|slot| slot.get().is_some())
            .count()
    }

    /// Replays the trace on `machine` under `config`, returning the same
    /// statistics a live [`crate::exec::Session`] would produce.
    ///
    /// The first replay for a given (workgroup size, subgroup size) pair
    /// builds the aggregation; subsequent replays reuse it.
    pub fn replay(&self, machine: &Machine, config: OptConfig) -> RunStats {
        metrics::counter("replay.configs_priced", 1);
        let mut session = machine.session(config);
        let aggs = self.aggregates(
            session.workgroup_size(),
            machine.chip().subgroup_size.max(1),
        );
        for (call, agg) in self.trace.calls().zip(aggs.iter()) {
            session.kernel_aggregated(call.profile, agg);
        }
        session.finish()
    }

    /// Like [`CompiledTrace::replay`], but additionally returns the
    /// per-mechanism [`CostBreakdown`] of the whole run. The statistics
    /// are bit-identical to [`CompiledTrace::replay`], and the
    /// breakdown's [`CostBreakdown::total`] equals `time_ns` within
    /// floating-point round-off.
    pub fn replay_explained(&self, machine: &Machine, config: OptConfig) -> (RunStats, CostBreakdown) {
        let mut session = machine.session_explained(config);
        let aggs = self.aggregates(
            session.workgroup_size(),
            machine.chip().subgroup_size.max(1),
        );
        for (call, agg) in self.trace.calls().zip(aggs.iter()) {
            session.kernel_aggregated(call.profile, agg);
        }
        session.finish_explained()
    }

    /// Replays the trace under *every* configuration of the study space
    /// in one traversal per geometry, returning statistics indexed by
    /// [`OptConfig::index`]. Each entry is bit-identical to the
    /// corresponding [`CompiledTrace::replay`] call: the device-side
    /// times come from [`evaluate_kernel_batch`] (which dedups
    /// configurations into shared device passes) and the per-kernel
    /// iteration overhead is accounted call-by-call exactly as a live
    /// session does.
    pub fn replay_all_configs(&self, machine: &Machine) -> Vec<RunStats> {
        metrics::counter("replay.batched_traversals", 1);
        metrics::counter("replay.configs_priced", NUM_CONFIGS as u64);
        let chip = machine.chip();
        let sg_size = chip.subgroup_size.max(1);
        let empty = RunStats {
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
        };
        let mut out = vec![empty; NUM_CONFIGS];
        for (wg_size, configs) in geometry_groups(chip).iter() {
            let aggs = self.aggregates(*wg_size, sg_size);
            // One barrier discovery per oitergb configuration, as
            // Machine::session does once per replay.
            let barriers: Vec<Option<GlobalBarrier>> = configs
                .iter()
                .map(|c| c.oitergb.then(|| GlobalBarrier::discover(chip, *wg_size)))
                .collect();
            for (call, agg) in self.trace.calls().zip(aggs.iter()) {
                let device = evaluate_kernel_batch(chip, *wg_size, call.profile, agg, configs);
                for ((cfg, dev), gb) in configs.iter().zip(&device).zip(&barriers) {
                    let acc = &mut out[cfg.index()];
                    // Mirror Session::kernel_aggregated's overhead
                    // accounting exactly (first-kernel setup vs barrier
                    // under oitergb; launch + copy otherwise).
                    let overhead = match gb {
                        Some(gb) => {
                            if acc.kernels == 0 {
                                acc.launches += 1;
                                chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                            } else {
                                acc.global_barriers += 1;
                                gb.barrier_cost()
                            }
                        }
                        None => {
                            acc.launches += 1;
                            chip.kernel_launch_cost + chip.host_copy_cost
                        }
                    };
                    acc.kernels += 1;
                    acc.time_ns += overhead + dev;
                }
            }
        }
        out
    }

    /// Chip-major [`CompiledTrace::replay_all_configs`]: replays the
    /// trace for *every* chip of a [`ChipBatch`] while walking each
    /// geometry's aggregate tables only once, via a per-group
    /// `BatchGroupPricer` that caches every frontier-independent term
    /// (pass preludes and cost coefficients per interned kernel profile,
    /// per-chip capacity and launch/barrier overheads) across the
    /// trace's calls. Returns one [`OptConfig::index`]-indexed
    /// statistics vector per chip, in batch order; every entry is
    /// bit-identical (`f64::to_bits` on `time_ns`, equal integer
    /// counters) to `self.replay_all_configs(&Machine::new(chip))` for
    /// that chip.
    ///
    /// Device times accumulate call by call into a flat
    /// configuration-major buffer in the oracle's exact expression
    /// order; the integer counters are a closed-form function of the
    /// call count (every call is one kernel; `oitergb` launches once and
    /// pays a global barrier per later call, other configurations launch
    /// per call) and so are filled in directly at scatter time.
    pub fn replay_all_configs_many_chips(&self, batch: &ChipBatch) -> Vec<Vec<RunStats>> {
        let chips = batch.chips();
        let n_chips = chips.len();
        metrics::counter("replay.chip_batches", 1);
        metrics::counter("replay.configs_priced", (NUM_CONFIGS * n_chips) as u64);
        let sg_size = batch.subgroup_size();
        let empty = RunStats {
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
        };
        let mut out = vec![vec![empty; NUM_CONFIGS]; n_chips];
        // All chips of a batch share max_workgroup_size, hence the same
        // geometry grouping; any member stands for the batch.
        for (wg_size, configs) in geometry_groups(&chips[0]).iter() {
            let aggs = self.aggregates(*wg_size, sg_size);
            let mut pricer = BatchGroupPricer::new(batch, *wg_size, configs);
            let mut times = vec![0.0f64; configs.len() * n_chips];
            for (call_idx, (call, agg)) in self.trace.calls().zip(aggs.iter()).enumerate() {
                pricer.accumulate_call(call_idx, call.profile, agg, configs, &mut times);
            }
            let n_calls = aggs.len() as u64;
            for (k, cfg) in configs.iter().enumerate() {
                let (launches, global_barriers) = if cfg.oitergb {
                    (u64::from(n_calls > 0), n_calls.saturating_sub(1))
                } else {
                    (n_calls, 0)
                };
                let idx = cfg.index();
                for (c, stats) in out.iter_mut().enumerate() {
                    stats[idx] = RunStats {
                        time_ns: times[k * n_chips + c],
                        kernels: n_calls,
                        launches,
                        global_barriers,
                    };
                }
            }
        }
        out
    }

    /// Like [`CompiledTrace::replay_all_configs`], but each
    /// configuration's statistics come with the run-level
    /// [`CostBreakdown`]. The statistics are bit-identical to
    /// [`CompiledTrace::replay_all_configs`] (and hence to individual
    /// replays), and every breakdown sums to its `time_ns` within
    /// floating-point round-off.
    pub fn replay_all_configs_explained(
        &self,
        machine: &Machine,
    ) -> Vec<(RunStats, CostBreakdown)> {
        let chip = machine.chip();
        let sg_size = chip.subgroup_size.max(1);
        let empty = RunStats {
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
        };
        let mut out = vec![(empty, CostBreakdown::default()); NUM_CONFIGS];
        for (wg_size, configs) in geometry_groups(chip).iter() {
            let aggs = self.aggregates(*wg_size, sg_size);
            let barriers: Vec<Option<GlobalBarrier>> = configs
                .iter()
                .map(|c| c.oitergb.then(|| GlobalBarrier::discover(chip, *wg_size)))
                .collect();
            for (call, agg) in self.trace.calls().zip(aggs.iter()) {
                let device =
                    evaluate_kernel_batch_explained(chip, *wg_size, call.profile, agg, configs);
                for ((cfg, (dev, dev_breakdown)), gb) in
                    configs.iter().zip(&device).zip(&barriers)
                {
                    let (acc, breakdown) = &mut out[cfg.index()];
                    // Mirror Session::kernel_aggregated's overhead
                    // accounting and attribution exactly.
                    let overhead = match gb {
                        Some(gb) => {
                            if acc.kernels == 0 {
                                acc.launches += 1;
                                breakdown.launch += chip.kernel_launch_cost;
                                breakdown.copy += chip.host_copy_cost;
                                let atomics = gb.setup_atomic_cost();
                                breakdown.atomics += atomics;
                                breakdown.barrier += gb.setup_cost() - atomics;
                                chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                            } else {
                                acc.global_barriers += 1;
                                breakdown.barrier += gb.barrier_cost();
                                gb.barrier_cost()
                            }
                        }
                        None => {
                            acc.launches += 1;
                            breakdown.launch += chip.kernel_launch_cost;
                            breakdown.copy += chip.host_copy_cost;
                            chip.kernel_launch_cost + chip.host_copy_cost
                        }
                    };
                    breakdown.absorb(dev_breakdown);
                    acc.kernels += 1;
                    acc.time_ns += overhead + dev;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};
    use crate::exec::Session;

    fn sample_trace() -> Trace {
        let mut rec = Recorder::new();
        let profile = KernelProfile::frontier("bfs");
        for iter in 0..10u32 {
            let items: Vec<WorkItem> = (0..500)
                .map(|i| WorkItem::new(1 + (i * iter) % 97, (i % 3 == 0) as u32))
                .collect();
            rec.kernel(&profile, &items);
        }
        rec.into_trace()
    }

    #[test]
    fn recorder_captures_calls_in_order() {
        let trace = sample_trace();
        assert_eq!(trace.num_kernels(), 10);
        assert_eq!(trace.num_items(), 5_000);
        assert!(trace.num_edges() > 0);
        assert_eq!(trace.call(0).items.len(), 500);
        assert_eq!(trace.calls().len(), 10);
        assert_eq!(trace.calls().last().unwrap().items.len(), 500);
    }

    #[test]
    fn recorder_interns_profiles_by_name() {
        let trace = sample_trace();
        // Ten calls of the same kernel intern to a single profile...
        assert_eq!(trace.profiles().len(), 1);
        // ...into one contiguous arena covering every call.
        assert_eq!(trace.items().len(), 5_000);
        for (i, call) in trace.calls().enumerate() {
            assert!(std::ptr::eq(call.profile, &trace.profiles()[0]));
            assert_eq!(call.items, &trace.items()[i * 500..(i + 1) * 500]);
        }

        let mut rec = Recorder::new();
        rec.kernel(&KernelProfile::frontier("a"), &[WorkItem::new(1, 0)]);
        rec.kernel(&KernelProfile::frontier("b"), &[WorkItem::new(2, 0)]);
        rec.kernel(&KernelProfile::frontier("a"), &[WorkItem::new(3, 0)]);
        let trace = rec.into_trace();
        assert_eq!(trace.profiles().len(), 2);
        assert_eq!(trace.call(0).profile.name, "a");
        assert_eq!(trace.call(2).profile.name, "a");
        assert!(std::ptr::eq(trace.call(0).profile, trace.call(2).profile));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "structurally different profile")]
    fn interning_rejects_same_name_different_structure() {
        let mut rec = Recorder::new();
        rec.kernel(&KernelProfile::frontier("bfs"), &[WorkItem::new(1, 0)]);
        let mut other = KernelProfile::frontier("bfs");
        other.alu_per_edge += 1.0;
        rec.kernel(&other, &[WorkItem::new(1, 0)]);
    }

    #[test]
    fn trace_serde_round_trips_exactly() {
        let trace = sample_trace();
        let json = serde_json::to_string(&trace).unwrap();
        let back: Trace = serde_json::from_str(&json).unwrap();
        assert_eq!(trace, back);
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }

    #[test]
    fn replay_matches_live_session_on_all_chips_and_configs() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            for cfg in all_configs().into_iter().step_by(7) {
                let mut live = machine.session(cfg);
                for call in trace.calls() {
                    Session::kernel(&mut live, call.profile, call.items);
                }
                let live_stats = live.finish();
                let replay_stats = compiled.replay(&machine, cfg);
                assert_eq!(live_stats, replay_stats, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn replay_is_repeatable() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::mali());
        let a = compiled.replay(&machine, OptConfig::baseline());
        let b = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_replays_to_zero_kernels() {
        let compiled = CompiledTrace::new(Trace::default());
        let machine = Machine::new(ChipProfile::m4000());
        let stats = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(stats.kernels, 0);
        assert_eq!(stats.time_ns, 0.0);
    }

    #[test]
    fn compilation_is_cached_per_geometry() {
        let compiled = CompiledTrace::new(sample_trace());
        let m1 = Machine::new(ChipProfile::m4000()); // sg 32
        let m2 = Machine::new(ChipProfile::r9()); // sg 64
        compiled.replay(&m1, OptConfig::baseline());
        compiled.replay(&m2, OptConfig::baseline());
        compiled.replay(&m1, OptConfig::from_index(1)); // sz256 -> new wg size
        assert_eq!(compiled.num_compiled_geometries(), 3);
    }

    #[test]
    fn precompile_covers_all_geometries_of_a_chip() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::gtx1080());
        compiled.precompile(&machine);
        assert_eq!(compiled.num_compiled_geometries(), 2); // wg 128 and 256
        compiled.precompile(&machine); // idempotent
        assert_eq!(compiled.num_compiled_geometries(), 2);
    }

    #[test]
    fn geometry_groups_cover_all_configs_exactly_once() {
        for chip in study_chips() {
            let groups = geometry_groups(&chip);
            let total: usize = groups.iter().map(|(_, v)| v.len()).sum();
            assert_eq!(total, NUM_CONFIGS, "{}", chip.name);
            for (wg_size, configs) in groups.iter() {
                assert!(*wg_size <= chip.max_workgroup_size());
                for cfg in configs {
                    assert_eq!(
                        *wg_size,
                        cfg.workgroup_size().min(chip.max_workgroup_size())
                    );
                }
            }
        }
    }

    #[test]
    fn precompile_builds_the_same_geometries_replay_uses() {
        // The drift bug the shared helper removes: precompile must cover
        // exactly what replay_all_configs will ask for — no more, no
        // fewer — on every study chip.
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            compiled.precompile(&machine);
            let precompiled = compiled.num_compiled_geometries();
            assert_eq!(precompiled, geometry_groups(&chip).len(), "{}", chip.name);
            compiled.replay_all_configs(&machine);
            assert_eq!(
                compiled.num_compiled_geometries(),
                precompiled,
                "replay built geometries precompile missed on {}",
                chip.name
            );
        }
    }

    #[test]
    fn precompile_all_is_one_arena_pass_for_a_chip_set() {
        let trace = sample_trace();
        let machines: Vec<Machine> = study_chips().into_iter().map(Machine::new).collect();
        let compiled = CompiledTrace::new(trace.clone());
        compiled.precompile_all(&machines);
        let per_chip = CompiledTrace::new(trace);
        for machine in &machines {
            per_chip.precompile(machine);
        }
        assert_eq!(
            compiled.num_compiled_geometries(),
            per_chip.num_compiled_geometries()
        );
        // And the aggregations themselves are identical.
        for machine in &machines {
            assert_eq!(
                compiled.replay_all_configs(machine),
                per_chip.replay_all_configs(machine),
                "{}",
                machine.chip().name
            );
        }
    }

    #[test]
    fn clone_carries_built_geometries() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::r9());
        compiled.precompile(&machine);
        let cloned = compiled.clone();
        assert_eq!(
            cloned.num_compiled_geometries(),
            compiled.num_compiled_geometries()
        );
        assert_eq!(
            cloned.replay(&machine, OptConfig::baseline()),
            compiled.replay(&machine, OptConfig::baseline())
        );
    }

    #[test]
    fn replay_all_configs_matches_individual_replays_on_every_study_chip() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            let all = compiled.replay_all_configs(&machine);
            assert_eq!(all.len(), NUM_CONFIGS);
            for cfg in all_configs() {
                let single = compiled.replay(&machine, cfg);
                assert_eq!(all[cfg.index()], single, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn many_chips_replay_is_bit_identical_to_per_chip_replay() {
        // Chip-major replay must agree bit-for-bit with the per-chip
        // oracle on every chip of every geometry family, duplicates and
        // interpolated blends included.
        let trace = sample_trace();
        let compiled = CompiledTrace::new(trace);
        let mut chips = study_chips();
        chips.push(ChipProfile::gtx1080()); // duplicate
        chips.push(ChipProfile::interpolate(
            &ChipProfile::m4000(),
            &ChipProfile::gtx1080(),
            0.5,
        ));
        for batch in ChipBatch::partition(&chips) {
            let many = compiled.replay_all_configs_many_chips(&batch);
            assert_eq!(many.len(), batch.len());
            for (chip, stats) in batch.chips().iter().zip(&many) {
                let single = compiled.replay_all_configs(&Machine::new(chip.clone()));
                assert_eq!(stats.len(), single.len());
                for (cfg, (m, s)) in all_configs().into_iter().zip(stats.iter().zip(&single)) {
                    assert_eq!(
                        m.time_ns.to_bits(),
                        s.time_ns.to_bits(),
                        "{} {cfg}",
                        chip.name
                    );
                    assert_eq!(m.kernels, s.kernels, "{} {cfg}", chip.name);
                    assert_eq!(m.launches, s.launches, "{} {cfg}", chip.name);
                    assert_eq!(m.global_barriers, s.global_barriers, "{} {cfg}", chip.name);
                }
            }
        }
    }

    #[test]
    fn many_chips_replay_handles_single_chip_batches() {
        let trace = sample_trace();
        let compiled = CompiledTrace::new(trace);
        let batch = ChipBatch::new(vec![ChipProfile::mali()]);
        let many = compiled.replay_all_configs_many_chips(&batch);
        let single = compiled.replay_all_configs(&Machine::new(ChipProfile::mali()));
        assert_eq!(many.len(), 1);
        assert_eq!(many[0], single);
    }

    #[test]
    fn geometry_groups_are_memoized_per_effective_workgroup_size() {
        // Same max_workgroup_size -> the same cached allocation; the
        // grouping itself only depends on that clamp.
        let a = geometry_groups(&ChipProfile::m4000());
        let b = geometry_groups(&ChipProfile::gtx1080());
        assert!(Arc::ptr_eq(&a, &b));
        let mali = geometry_groups(&ChipProfile::mali());
        assert!(Arc::ptr_eq(&a, &mali)); // MALI also clamps to 256
        let narrow = geometry_groups(
            &ChipProfile::builder("NARROW", crate::chip::Vendor::Arm)
                .max_threads_per_cu(128)
                .build(),
        );
        assert!(!Arc::ptr_eq(&a, &narrow));
        assert_eq!(narrow.len(), 1, "128-thread chips have one geometry");
    }

    #[test]
    fn explained_replay_is_bit_identical_and_sums_to_total() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            for cfg in all_configs().into_iter().step_by(11) {
                let plain = compiled.replay(&machine, cfg);
                let (stats, b) = compiled.replay_explained(&machine, cfg);
                assert_eq!(plain, stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
            }
        }
    }

    #[test]
    fn explained_batch_replay_matches_plain_and_explained_individual() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            let plain = compiled.replay_all_configs(&machine);
            let explained = compiled.replay_all_configs_explained(&machine);
            assert_eq!(explained.len(), NUM_CONFIGS);
            for cfg in all_configs() {
                let (stats, b) = &explained[cfg.index()];
                assert_eq!(plain[cfg.index()], *stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
            }
            // Spot-check against the individually-explained path too.
            for cfg in all_configs().into_iter().step_by(17) {
                let (stats, b) = compiled.replay_explained(&machine, cfg);
                let (batch_stats, batch_b) = &explained[cfg.index()];
                assert_eq!(stats, *batch_stats, "{} {cfg}", chip.name);
                assert_eq!(b, *batch_b, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn replay_all_configs_on_empty_trace() {
        let compiled = CompiledTrace::new(Trace::default());
        let machine = Machine::new(ChipProfile::iris6100());
        for stats in compiled.replay_all_configs(&machine) {
            assert_eq!(stats.kernels, 0);
            assert_eq!(stats.time_ns, 0.0);
        }
    }

    #[test]
    fn shared_replay_across_threads_is_deterministic() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::hd5500());
        let serial: Vec<RunStats> = all_configs()
            .into_iter()
            .map(|cfg| compiled.replay(&machine, cfg))
            .collect();
        let parallel: Vec<RunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = all_configs()
                .into_iter()
                .map(|cfg| {
                    let (compiled, machine) = (&compiled, &machine);
                    scope.spawn(move || compiled.replay(machine, cfg))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel);
    }
}

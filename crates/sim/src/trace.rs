//! Record-once, replay-everywhere execution traces.
//!
//! The kernel sequence an application executes — which frontiers it
//! processes, with which degrees and worklist pushes — depends only on the
//! application and its input graph, *not* on the chip or the optimisation
//! configuration (the optimisations of the study are semantics-preserving
//! program transformations). The study exploits this: each (application,
//! input) pair is executed once against a [`Recorder`], and the recorded
//! [`Trace`] is then replayed against every chip × configuration cell,
//! which only re-prices the same work.
//!
//! Replay cost is further reduced by pre-aggregating each recorded
//! frontier per (workgroup size, subgroup size) pair — see
//! [`crate::exec::CallAggregates`] — so that one replay costs time
//! proportional to the number of workgroups, not nodes. The aggregation
//! cache is internally synchronised, so replay takes `&self` and one
//! compiled trace can be priced from many threads at once; call
//! [`CompiledTrace::precompile`] first to build the aggregations outside
//! the parallel section. [`CompiledTrace::replay_all_configs`] prices the
//! whole configuration space in a single traversal per geometry.
//!
//! # Example
//!
//! ```
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::{Executor, KernelProfile, Machine, WorkItem};
//! use gpp_sim::opts::OptConfig;
//! use gpp_sim::trace::{CompiledTrace, Recorder};
//!
//! let mut rec = Recorder::new();
//! rec.kernel(&KernelProfile::frontier("bfs"), &[WorkItem::new(5, 2); 100]);
//! let compiled = CompiledTrace::new(rec.into_trace());
//!
//! let machine = Machine::new(ChipProfile::r9());
//! let stats = compiled.replay(&machine, OptConfig::baseline());
//! assert_eq!(stats.kernels, 1);
//!
//! // One traversal prices every configuration of the study space.
//! let all = compiled.replay_all_configs(&machine);
//! assert_eq!(all[OptConfig::baseline().index()], stats);
//! ```

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use gpp_obs::CostBreakdown;

use crate::barrier::GlobalBarrier;
use crate::exec::{
    evaluate_kernel_batch, evaluate_kernel_batch_explained, CallAggregates, Executor,
    KernelProfile, Machine, RunStats, WorkItem,
};
use crate::opts::{all_configs, OptConfig, NUM_CONFIGS};

/// One recorded kernel invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCall {
    /// The kernel's operation-count profile.
    pub profile: KernelProfile,
    /// The frontier it processed.
    pub items: Vec<WorkItem>,
}

/// A recorded application run: the exact sequence of kernel invocations
/// with their frontiers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    calls: Vec<TraceCall>,
}

impl Trace {
    /// The recorded kernel invocations, in execution order.
    pub fn calls(&self) -> &[TraceCall] {
        &self.calls
    }

    /// Number of recorded kernel invocations.
    pub fn num_kernels(&self) -> usize {
        self.calls.len()
    }

    /// Total work items over all invocations.
    pub fn num_items(&self) -> usize {
        self.calls.iter().map(|c| c.items.len()).sum()
    }

    /// Total edges over all invocations.
    pub fn num_edges(&self) -> u64 {
        self.calls
            .iter()
            .map(|c| c.items.iter().map(|i| i.degree as u64).sum::<u64>())
            .sum()
    }
}

/// An [`Executor`] that records instead of timing.
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    trace: Trace,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Consumes the recorder, returning the recorded trace.
    pub fn into_trace(self) -> Trace {
        self.trace
    }
}

impl Executor for Recorder {
    fn kernel(&mut self, profile: &KernelProfile, items: &[WorkItem]) {
        self.trace.calls.push(TraceCall {
            profile: profile.clone(),
            items: items.to_vec(),
        });
    }
}

/// A trace plus its lazily built per-(workgroup size, subgroup size)
/// aggregations, ready for cheap replay on any chip and configuration.
///
/// The aggregation cache lives behind an [`RwLock`], so replay methods
/// take `&self` and the same compiled trace can be shared across threads
/// (`CompiledTrace` is `Sync`). Aggregations are built at most once per
/// geometry; concurrent replays for an already-built geometry only take
/// the read lock.
#[derive(Debug)]
pub struct CompiledTrace {
    trace: Trace,
    // Keyed by (wg_size, sg_size); one CallAggregates per trace call.
    // Arc lets a replay keep using an aggregation without holding the
    // lock while other threads insert new geometries.
    compiled: RwLock<HashMap<(u32, u32), Arc<Vec<CallAggregates>>>>,
}

impl Clone for CompiledTrace {
    fn clone(&self) -> Self {
        CompiledTrace {
            trace: self.trace.clone(),
            compiled: RwLock::new(self.compiled.read().unwrap().clone()),
        }
    }
}

impl CompiledTrace {
    /// Wraps a trace for replay.
    pub fn new(trace: Trace) -> Self {
        CompiledTrace {
            trace,
            compiled: RwLock::new(HashMap::new()),
        }
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The aggregation for one geometry, building and caching it on first
    /// use.
    fn aggregates(&self, wg_size: u32, sg_size: u32) -> Arc<Vec<CallAggregates>> {
        let key = (wg_size, sg_size);
        if let Some(aggs) = self.compiled.read().unwrap().get(&key) {
            return Arc::clone(aggs);
        }
        // Built outside the lock: aggregation is the expensive part, and
        // a racing thread building the same geometry produces an
        // identical value, so either insert is fine.
        let built: Arc<Vec<CallAggregates>> = Arc::new(
            self.trace
                .calls
                .iter()
                .map(|c| CallAggregates::from_items(&c.items, wg_size, sg_size))
                .collect(),
        );
        let mut map = self.compiled.write().unwrap();
        Arc::clone(map.entry(key).or_insert(built))
    }

    /// Builds the aggregations for every geometry `machine`'s chip can
    /// use (both workgroup sizes, clamped to the chip limit), so later
    /// replays never take the write lock. Idempotent.
    pub fn precompile(&self, machine: &Machine) {
        let chip = machine.chip();
        let sg_size = chip.subgroup_size.max(1);
        for wg_size in [128u32, 256] {
            self.aggregates(wg_size.min(chip.max_workgroup_size()), sg_size);
        }
    }

    /// Number of distinct geometries aggregated so far.
    pub fn num_compiled_geometries(&self) -> usize {
        self.compiled.read().unwrap().len()
    }

    /// Replays the trace on `machine` under `config`, returning the same
    /// statistics a live [`crate::exec::Session`] would produce.
    ///
    /// The first replay for a given (workgroup size, subgroup size) pair
    /// builds the aggregation; subsequent replays reuse it.
    pub fn replay(&self, machine: &Machine, config: OptConfig) -> RunStats {
        let mut session = machine.session(config);
        let aggs = self.aggregates(
            session.workgroup_size(),
            machine.chip().subgroup_size.max(1),
        );
        for (call, agg) in self.trace.calls.iter().zip(aggs.iter()) {
            session.kernel_aggregated(&call.profile, agg);
        }
        session.finish()
    }

    /// Like [`CompiledTrace::replay`], but additionally returns the
    /// per-mechanism [`CostBreakdown`] of the whole run. The statistics
    /// are bit-identical to [`CompiledTrace::replay`], and the
    /// breakdown's [`CostBreakdown::total`] equals `time_ns` within
    /// floating-point round-off.
    pub fn replay_explained(&self, machine: &Machine, config: OptConfig) -> (RunStats, CostBreakdown) {
        let mut session = machine.session_explained(config);
        let aggs = self.aggregates(
            session.workgroup_size(),
            machine.chip().subgroup_size.max(1),
        );
        for (call, agg) in self.trace.calls.iter().zip(aggs.iter()) {
            session.kernel_aggregated(&call.profile, agg);
        }
        session.finish_explained()
    }

    /// Replays the trace under *every* configuration of the study space
    /// in one traversal per geometry, returning statistics indexed by
    /// [`OptConfig::index`]. Each entry is bit-identical to the
    /// corresponding [`CompiledTrace::replay`] call: the device-side
    /// times come from [`evaluate_kernel_batch`] (which dedups
    /// configurations into shared device passes) and the per-kernel
    /// iteration overhead is accounted call-by-call exactly as a live
    /// session does.
    pub fn replay_all_configs(&self, machine: &Machine) -> Vec<RunStats> {
        let chip = machine.chip();
        let sg_size = chip.subgroup_size.max(1);
        let empty = RunStats {
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
        };
        let mut out = vec![empty; NUM_CONFIGS];
        // Group configurations by effective workgroup size: each group
        // shares one aggregation and one batched evaluation per call.
        let mut groups: Vec<(u32, Vec<OptConfig>)> = Vec::new();
        for cfg in all_configs() {
            let wg_size = cfg.workgroup_size().min(chip.max_workgroup_size());
            match groups.iter_mut().find(|(g, _)| *g == wg_size) {
                Some((_, v)) => v.push(cfg),
                None => groups.push((wg_size, vec![cfg])),
            }
        }
        for (wg_size, configs) in &groups {
            let aggs = self.aggregates(*wg_size, sg_size);
            // One barrier discovery per oitergb configuration, as
            // Machine::session does once per replay.
            let barriers: Vec<Option<GlobalBarrier>> = configs
                .iter()
                .map(|c| c.oitergb.then(|| GlobalBarrier::discover(chip, *wg_size)))
                .collect();
            for (call, agg) in self.trace.calls.iter().zip(aggs.iter()) {
                let device = evaluate_kernel_batch(chip, *wg_size, &call.profile, agg, configs);
                for ((cfg, dev), gb) in configs.iter().zip(&device).zip(&barriers) {
                    let acc = &mut out[cfg.index()];
                    // Mirror Session::kernel_aggregated's overhead
                    // accounting exactly (first-kernel setup vs barrier
                    // under oitergb; launch + copy otherwise).
                    let overhead = match gb {
                        Some(gb) => {
                            if acc.kernels == 0 {
                                acc.launches += 1;
                                chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                            } else {
                                acc.global_barriers += 1;
                                gb.barrier_cost()
                            }
                        }
                        None => {
                            acc.launches += 1;
                            chip.kernel_launch_cost + chip.host_copy_cost
                        }
                    };
                    acc.kernels += 1;
                    acc.time_ns += overhead + dev;
                }
            }
        }
        out
    }

    /// Like [`CompiledTrace::replay_all_configs`], but each
    /// configuration's statistics come with the run-level
    /// [`CostBreakdown`]. The statistics are bit-identical to
    /// [`CompiledTrace::replay_all_configs`] (and hence to individual
    /// replays), and every breakdown sums to its `time_ns` within
    /// floating-point round-off.
    pub fn replay_all_configs_explained(
        &self,
        machine: &Machine,
    ) -> Vec<(RunStats, CostBreakdown)> {
        let chip = machine.chip();
        let sg_size = chip.subgroup_size.max(1);
        let empty = RunStats {
            time_ns: 0.0,
            kernels: 0,
            launches: 0,
            global_barriers: 0,
        };
        let mut out = vec![(empty, CostBreakdown::default()); NUM_CONFIGS];
        let mut groups: Vec<(u32, Vec<OptConfig>)> = Vec::new();
        for cfg in all_configs() {
            let wg_size = cfg.workgroup_size().min(chip.max_workgroup_size());
            match groups.iter_mut().find(|(g, _)| *g == wg_size) {
                Some((_, v)) => v.push(cfg),
                None => groups.push((wg_size, vec![cfg])),
            }
        }
        for (wg_size, configs) in &groups {
            let aggs = self.aggregates(*wg_size, sg_size);
            let barriers: Vec<Option<GlobalBarrier>> = configs
                .iter()
                .map(|c| c.oitergb.then(|| GlobalBarrier::discover(chip, *wg_size)))
                .collect();
            for (call, agg) in self.trace.calls.iter().zip(aggs.iter()) {
                let device =
                    evaluate_kernel_batch_explained(chip, *wg_size, &call.profile, agg, configs);
                for ((cfg, (dev, dev_breakdown)), gb) in
                    configs.iter().zip(&device).zip(&barriers)
                {
                    let (acc, breakdown) = &mut out[cfg.index()];
                    // Mirror Session::kernel_aggregated's overhead
                    // accounting and attribution exactly.
                    let overhead = match gb {
                        Some(gb) => {
                            if acc.kernels == 0 {
                                acc.launches += 1;
                                breakdown.launch += chip.kernel_launch_cost;
                                breakdown.copy += chip.host_copy_cost;
                                let atomics = gb.setup_atomic_cost();
                                breakdown.atomics += atomics;
                                breakdown.barrier += gb.setup_cost() - atomics;
                                chip.kernel_launch_cost + chip.host_copy_cost + gb.setup_cost()
                            } else {
                                acc.global_barriers += 1;
                                breakdown.barrier += gb.barrier_cost();
                                gb.barrier_cost()
                            }
                        }
                        None => {
                            acc.launches += 1;
                            breakdown.launch += chip.kernel_launch_cost;
                            breakdown.copy += chip.host_copy_cost;
                            chip.kernel_launch_cost + chip.host_copy_cost
                        }
                    };
                    breakdown.absorb(dev_breakdown);
                    acc.kernels += 1;
                    acc.time_ns += overhead + dev;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::{study_chips, ChipProfile};
    use crate::exec::Session;

    fn sample_trace() -> Trace {
        let mut rec = Recorder::new();
        let profile = KernelProfile::frontier("bfs");
        for iter in 0..10u32 {
            let items: Vec<WorkItem> = (0..500)
                .map(|i| WorkItem::new(1 + (i * iter) % 97, (i % 3 == 0) as u32))
                .collect();
            rec.kernel(&profile, &items);
        }
        rec.into_trace()
    }

    #[test]
    fn recorder_captures_calls_in_order() {
        let trace = sample_trace();
        assert_eq!(trace.num_kernels(), 10);
        assert_eq!(trace.num_items(), 5_000);
        assert!(trace.num_edges() > 0);
        assert_eq!(trace.calls()[0].items.len(), 500);
    }

    #[test]
    fn replay_matches_live_session_on_all_chips_and_configs() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            for cfg in all_configs().into_iter().step_by(7) {
                let mut live = machine.session(cfg);
                for call in trace.calls() {
                    Session::kernel(&mut live, &call.profile, &call.items);
                }
                let live_stats = live.finish();
                let replay_stats = compiled.replay(&machine, cfg);
                assert_eq!(live_stats, replay_stats, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn replay_is_repeatable() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::mali());
        let a = compiled.replay(&machine, OptConfig::baseline());
        let b = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_replays_to_zero_kernels() {
        let compiled = CompiledTrace::new(Trace::default());
        let machine = Machine::new(ChipProfile::m4000());
        let stats = compiled.replay(&machine, OptConfig::baseline());
        assert_eq!(stats.kernels, 0);
        assert_eq!(stats.time_ns, 0.0);
    }

    #[test]
    fn compilation_is_cached_per_geometry() {
        let compiled = CompiledTrace::new(sample_trace());
        let m1 = Machine::new(ChipProfile::m4000()); // sg 32
        let m2 = Machine::new(ChipProfile::r9()); // sg 64
        compiled.replay(&m1, OptConfig::baseline());
        compiled.replay(&m2, OptConfig::baseline());
        compiled.replay(&m1, OptConfig::from_index(1)); // sz256 -> new wg size
        assert_eq!(compiled.num_compiled_geometries(), 3);
    }

    #[test]
    fn precompile_covers_all_geometries_of_a_chip() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::gtx1080());
        compiled.precompile(&machine);
        assert_eq!(compiled.num_compiled_geometries(), 2); // wg 128 and 256
        compiled.precompile(&machine); // idempotent
        assert_eq!(compiled.num_compiled_geometries(), 2);
    }

    #[test]
    fn replay_all_configs_matches_individual_replays_on_every_study_chip() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            let all = compiled.replay_all_configs(&machine);
            assert_eq!(all.len(), NUM_CONFIGS);
            for cfg in all_configs() {
                let single = compiled.replay(&machine, cfg);
                assert_eq!(all[cfg.index()], single, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn explained_replay_is_bit_identical_and_sums_to_total() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            for cfg in all_configs().into_iter().step_by(11) {
                let plain = compiled.replay(&machine, cfg);
                let (stats, b) = compiled.replay_explained(&machine, cfg);
                assert_eq!(plain, stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
            }
        }
    }

    #[test]
    fn explained_batch_replay_matches_plain_and_explained_individual() {
        let trace = sample_trace();
        for chip in study_chips() {
            let machine = Machine::new(chip.clone());
            let compiled = CompiledTrace::new(trace.clone());
            let plain = compiled.replay_all_configs(&machine);
            let explained = compiled.replay_all_configs_explained(&machine);
            assert_eq!(explained.len(), NUM_CONFIGS);
            for cfg in all_configs() {
                let (stats, b) = &explained[cfg.index()];
                assert_eq!(plain[cfg.index()], *stats, "{} {cfg}", chip.name);
                let rel = (b.total() - stats.time_ns).abs() / stats.time_ns;
                assert!(
                    rel < 1e-9,
                    "{} {cfg}: breakdown {} vs {}",
                    chip.name,
                    b.total(),
                    stats.time_ns
                );
            }
            // Spot-check against the individually-explained path too.
            for cfg in all_configs().into_iter().step_by(17) {
                let (stats, b) = compiled.replay_explained(&machine, cfg);
                let (batch_stats, batch_b) = &explained[cfg.index()];
                assert_eq!(stats, *batch_stats, "{} {cfg}", chip.name);
                assert_eq!(b, *batch_b, "{} {cfg}", chip.name);
            }
        }
    }

    #[test]
    fn replay_all_configs_on_empty_trace() {
        let compiled = CompiledTrace::new(Trace::default());
        let machine = Machine::new(ChipProfile::iris6100());
        for stats in compiled.replay_all_configs(&machine) {
            assert_eq!(stats.kernels, 0);
            assert_eq!(stats.time_ns, 0.0);
        }
    }

    #[test]
    fn shared_replay_across_threads_is_deterministic() {
        let compiled = CompiledTrace::new(sample_trace());
        let machine = Machine::new(ChipProfile::hd5500());
        let serial: Vec<RunStats> = all_configs()
            .into_iter()
            .map(|cfg| compiled.replay(&machine, cfg))
            .collect();
        let parallel: Vec<RunStats> = std::thread::scope(|scope| {
            let handles: Vec<_> = all_configs()
                .into_iter()
                .map(|cfg| {
                    let (compiled, machine) = (&compiled, &machine);
                    scope.spawn(move || compiled.replay(machine, cfg))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(serial, parallel);
    }
}

//! Statistical machinery of the analysis: medians, geometric means, 95%
//! confidence intervals, and the rank-based Mann–Whitney U test with its
//! common-language effect size.
//!
//! The paper's key methodological point (Sections II-C and III) is that
//! *magnitude-based* summaries are biased towards optimisation-sensitive
//! chips, so the enable/disable decision uses the *rank-based* MWU test,
//! which only asks whether one sample is stochastically smaller than the
//! other.

/// Median of a sample (the upper median for even sizes, matching the
/// dataset's 3-run cells where it is simply the middle run).
///
/// # Panics
///
/// Panics if `values` is empty or contains NaN.
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty sample");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("median requires non-NaN values"));
    v[v.len() / 2]
}

/// Geometric mean of strictly positive values. An empty sample returns
/// 1.0 — the fold's neutral element — so degenerate datasets (zero
/// cells, zero chips) produce a defined report value instead of a
/// panic or a NaN.
///
/// # Panics
///
/// Panics if any value is not positive.
pub fn geomean(values: &[f64]) -> f64 {
    geomean_iter(values.iter().copied())
}

/// Streaming [`geomean`]: the identical fold — a sequential sum of
/// `ln` values in iteration order, one divide, one `exp` — without
/// materialising a slice, so hot paths can feed ratios straight from
/// memoized tables with zero per-call allocation. Bit-identical to
/// collecting into a `Vec` and calling [`geomean`]. Empty input
/// returns 1.0.
///
/// # Panics
///
/// Panics if any value is not positive.
pub fn geomean_iter<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0f64;
    let mut n = 0usize;
    for v in values {
        assert!(v > 0.0, "geomean requires positive values, got {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    (log_sum / n as f64).exp()
}

/// A 95% confidence interval for the mean of a small sample, using the
/// t-distribution critical values for the tiny degrees of freedom that
/// occur with the study's 3-run measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ci95 {
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Two-sided t critical values at 95% for df = 1..=30 (df > 30 uses the
/// normal value 1.96).
const T_CRIT: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Computes the sample's 95% CI for the mean. A single observation yields
/// the degenerate interval `[x, x]`.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn ci95(values: &[f64]) -> Ci95 {
    assert!(!values.is_empty(), "CI of empty sample");
    let n = values.len();
    let mean = values.iter().sum::<f64>() / n as f64;
    if n == 1 {
        return Ci95 { lo: mean, hi: mean };
    }
    let var = values.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    let t = T_CRIT.get(n - 2).copied().unwrap_or(1.96);
    let half = t * (var / n as f64).sqrt();
    Ci95 {
        lo: mean - half,
        hi: mean + half,
    }
}

/// Whether two samples differ significantly at the 95% level, judged by
/// non-overlapping confidence intervals — the `SIGNIFICANT` predicate of
/// Algorithm 1 (line 14).
pub fn significantly_different(a: &[f64], b: &[f64]) -> bool {
    let (ca, cb) = (ci95(a), ci95(b));
    ca.hi < cb.lo || cb.hi < ca.lo
}

/// Result of a two-sided Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MwuResult {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Two-sided p-value (normal approximation with tie correction and
    /// continuity correction).
    pub p_value: f64,
    /// Common-language effect size: the probability that a random draw
    /// from the first sample is *smaller* than one from the second
    /// (ties count half). For normalised runtimes against a baseline of
    /// 1.0 this is the probability of a speedup.
    pub effect_size: f64,
}

/// Reusable pooled-sample buffer for [`mwu_into`]. One instance can
/// serve any number of tests: it grows to the largest pooled sample seen
/// and is reused thereafter, so steady-state calls allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct MwuScratch {
    /// Pooled values tagged with membership (`true` = first sample).
    pooled: Vec<(f64, bool)>,
}

/// Runs the two-sided Mann–Whitney U test on two samples.
///
/// Returns `None` when either sample is empty or when every value is tied
/// (zero rank variance), in which case no decision can be made.
///
/// This is the allocating convenience wrapper around [`mwu_into`]; hot
/// loops should hold an [`MwuScratch`] and call [`mwu_into`] directly.
pub fn mann_whitney_u(a: &[f64], b: &[f64]) -> Option<MwuResult> {
    mwu_into(a, b, &mut MwuScratch::default())
}

/// [`mann_whitney_u`] with a caller-supplied rank buffer: bit-identical
/// results, zero allocation once the scratch has grown to the largest
/// pooled sample it sees.
///
/// The pooled buffer is sorted with an unstable sort. Entries compare by
/// value only, and every quantity derived from a tie group — the group's
/// average rank, the number of first-sample members, the tie-correction
/// term — is invariant under permutation within the group, so the result
/// matches the stable-sorted reference bit for bit.
pub fn mwu_into(a: &[f64], b: &[f64], scratch: &mut MwuScratch) -> Option<MwuResult> {
    let (n1, n2) = (a.len(), b.len());
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample, averaging ranks over ties.
    let pooled = &mut scratch.pooled;
    pooled.clear();
    pooled.extend(a.iter().map(|&v| (v, true)));
    pooled.extend(b.iter().map(|&v| (v, false)));
    pooled.sort_unstable_by(|x, y| x.0.partial_cmp(&y.0).expect("MWU requires non-NaN values"));

    let n = pooled.len();
    let mut rank_sum_a = 0.0f64;
    let mut tie_term = 0.0f64; // sum of t^3 - t over tie groups
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let tie_len = (j - i + 1) as f64;
        // Average rank of the tie group (1-based ranks).
        let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
        for entry in &pooled[i..=j] {
            if entry.1 {
                rank_sum_a += avg_rank;
            }
        }
        if tie_len > 1.0 {
            tie_term += tie_len * tie_len * tie_len - tie_len;
        }
        i = j + 1;
    }

    let (n1f, n2f, nf) = (n1 as f64, n2 as f64, n as f64);
    let u1 = rank_sum_a - n1f * (n1f + 1.0) / 2.0;
    let mean_u = n1f * n2f / 2.0;
    let var_u = if nf > 1.0 {
        (n1f * n2f / 12.0) * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)))
    } else {
        0.0
    };
    // Effect size: P(a < b) with ties counted half. U1 counts pairs where
    // a beats b (is larger), so invert.
    let effect_size = 1.0 - u1 / (n1f * n2f);

    if var_u <= 0.0 {
        // All values tied: no evidence of difference.
        return Some(MwuResult {
            u: u1,
            p_value: 1.0,
            effect_size,
        });
    }
    // Continuity-corrected normal approximation.
    let diff = u1 - mean_u;
    let z = (diff.abs() - 0.5).max(0.0) / var_u.sqrt();
    let p_value = 2.0 * (1.0 - standard_normal_cdf(z));
    Some(MwuResult {
        u: u1,
        p_value: p_value.clamp(0.0, 1.0),
        effect_size,
    })
}

/// Φ(z): standard normal CDF via the Abramowitz–Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7).
pub fn standard_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 3.0); // upper median
        assert_eq!(median(&[5.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn median_rejects_empty() {
        median(&[]);
    }

    #[test]
    fn geomean_known_values() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[0.5, 2.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_nonpositive() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn geomean_empty_is_one() {
        assert_eq!(geomean(&[]), 1.0);
        assert_eq!(geomean_iter(std::iter::empty::<f64>()), 1.0);
    }

    #[test]
    fn geomean_iter_bit_identical_to_slice() {
        let values = [1.0, 4.0, 0.25, 3.7, 9.125, 0.001];
        for len in 1..=values.len() {
            let slice = &values[..len];
            assert_eq!(
                geomean(slice).to_bits(),
                geomean_iter(slice.iter().copied()).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn ci95_contains_mean_and_shrinks_with_n() {
        let wide = ci95(&[10.0, 12.0, 14.0]);
        assert!(wide.lo < 12.0 && 12.0 < wide.hi);
        let narrow = ci95(&[10.0, 12.0, 14.0, 10.0, 12.0, 14.0, 10.0, 12.0, 14.0]);
        assert!(narrow.hi - narrow.lo < wide.hi - wide.lo);
    }

    #[test]
    fn ci95_single_value_is_degenerate() {
        let ci = ci95(&[7.0]);
        assert_eq!((ci.lo, ci.hi), (7.0, 7.0));
    }

    #[test]
    fn clearly_different_samples_are_significant() {
        assert!(significantly_different(
            &[1.0, 1.01, 0.99],
            &[2.0, 2.01, 1.99]
        ));
    }

    #[test]
    fn noisy_overlapping_samples_are_not_significant() {
        assert!(!significantly_different(&[1.0, 2.0, 3.0], &[1.5, 2.5, 3.5]));
    }

    #[test]
    fn mwu_detects_stochastic_dominance() {
        let a: Vec<f64> = (0..30).map(|i| 0.5 + i as f64 * 0.001).collect();
        let b: Vec<f64> = (0..30).map(|i| 1.5 + i as f64 * 0.001).collect();
        let r = mann_whitney_u(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p={}", r.p_value);
        assert!(r.effect_size > 0.99);
    }

    #[test]
    fn mwu_identical_samples_not_significant() {
        let a = vec![1.0; 10];
        let b = vec![1.0; 10];
        let r = mann_whitney_u(&a, &b).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert!((r.effect_size - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mwu_symmetry_of_effect_size() {
        let a = vec![0.8, 0.9, 1.1, 0.7, 0.95];
        let b = vec![1.0, 1.0, 1.0, 1.0, 1.0];
        let ab = mann_whitney_u(&a, &b).unwrap();
        let ba = mann_whitney_u(&b, &a).unwrap();
        assert!((ab.effect_size + ba.effect_size - 1.0).abs() < 1e-12);
        assert!((ab.p_value - ba.p_value).abs() < 1e-9);
    }

    #[test]
    fn mwu_empty_sample_is_none() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn mwu_small_samples_cannot_reach_significance() {
        // Two observations per side cannot reach p < 0.05 under MWU.
        let r = mann_whitney_u(&[0.1, 0.2], &[1.0, 1.0]).unwrap();
        assert!(r.p_value > 0.05, "p={}", r.p_value);
    }

    #[test]
    fn mwu_is_magnitude_agnostic() {
        // Scaling one sample's spread must not change the verdict: the
        // property that motivates the paper's choice of test.
        let a1: Vec<f64> = (0..20).map(|i| 0.9 - i as f64 * 0.001).collect();
        let a2: Vec<f64> = (0..20).map(|i| 0.9 - i as f64 * 0.02).collect();
        let b = vec![1.0; 20];
        let r1 = mann_whitney_u(&a1, &b).unwrap();
        let r2 = mann_whitney_u(&a2, &b).unwrap();
        assert!((r1.p_value - r2.p_value).abs() < 1e-9);
        assert_eq!(r1.effect_size, r2.effect_size);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((standard_normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((standard_normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((standard_normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        assert!(standard_normal_cdf(6.0) > 0.999_999);
    }

    #[test]
    fn mwu_effect_size_counts_ties_half() {
        let r = mann_whitney_u(&[1.0], &[1.0]).unwrap();
        assert!((r.effect_size - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mwu_scratch_reuse_across_growing_and_shrinking_samples() {
        let mut scratch = MwuScratch::default();
        let big: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let small = [0.4, 0.8];
        let ones = vec![1.0; 50];
        // Large call grows the buffer; the small call after it must not
        // see stale entries.
        let first = mwu_into(&big, &ones, &mut scratch);
        assert_eq!(first, mann_whitney_u(&big, &ones));
        let second = mwu_into(&small, &ones[..2], &mut scratch);
        assert_eq!(second, mann_whitney_u(&small, &ones[..2]));
    }

    /// The historical allocating implementation (stable sort, fresh
    /// `Vec` per call), kept verbatim as the reference the scratch-based
    /// rewrite is property-tested against.
    fn mwu_reference(a: &[f64], b: &[f64]) -> Option<MwuResult> {
        let (n1, n2) = (a.len(), b.len());
        if n1 == 0 || n2 == 0 {
            return None;
        }
        let mut pooled: Vec<(f64, usize)> = a
            .iter()
            .map(|&v| (v, 0usize))
            .chain(b.iter().map(|&v| (v, 1usize)))
            .collect();
        pooled.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("non-NaN"));
        let n = pooled.len();
        let mut rank_sum_a = 0.0f64;
        let mut tie_term = 0.0f64;
        let mut i = 0;
        while i < n {
            let mut j = i;
            while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
                j += 1;
            }
            let tie_len = (j - i + 1) as f64;
            let avg_rank = (i + 1 + j + 1) as f64 / 2.0;
            for entry in &pooled[i..=j] {
                if entry.1 == 0 {
                    rank_sum_a += avg_rank;
                }
            }
            if tie_len > 1.0 {
                tie_term += tie_len * tie_len * tie_len - tie_len;
            }
            i = j + 1;
        }
        let (n1f, n2f, nf) = (n1 as f64, n2 as f64, n as f64);
        let u1 = rank_sum_a - n1f * (n1f + 1.0) / 2.0;
        let mean_u = n1f * n2f / 2.0;
        let var_u = if nf > 1.0 {
            (n1f * n2f / 12.0) * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)))
        } else {
            0.0
        };
        let effect_size = 1.0 - u1 / (n1f * n2f);
        if var_u <= 0.0 {
            return Some(MwuResult {
                u: u1,
                p_value: 1.0,
                effect_size,
            });
        }
        let diff = u1 - mean_u;
        let z = (diff.abs() - 0.5).max(0.0) / var_u.sqrt();
        let p_value = 2.0 * (1.0 - standard_normal_cdf(z));
        Some(MwuResult {
            u: u1,
            p_value: p_value.clamp(0.0, 1.0),
            effect_size,
        })
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn exact_match(a: &[f64], b: &[f64]) -> Result<(), TestCaseError> {
            let expect = mwu_reference(a, b);
            let mut scratch = MwuScratch::default();
            prop_assert_eq!(mwu_into(a, b, &mut scratch), expect);
            // A second call on the now-grown scratch must agree too.
            prop_assert_eq!(mwu_into(a, b, &mut scratch), expect);
            prop_assert_eq!(mann_whitney_u(a, b), expect);
            Ok(())
        }

        proptest! {
            /// Tie-heavy inputs: values drawn from eight levels, so most
            /// pooled entries fall into multi-member tie groups. Sample
            /// sizes start at 1, covering single-element inputs.
            #[test]
            fn mwu_into_matches_reference_on_tie_heavy_samples(
                a in proptest::collection::vec(0u8..8, 1..40),
                b in proptest::collection::vec(0u8..8, 1..40),
            ) {
                let a: Vec<f64> = a.into_iter().map(|v| f64::from(v) * 0.25).collect();
                let b: Vec<f64> = b.into_iter().map(|v| f64::from(v) * 0.25).collect();
                exact_match(&a, &b)?;
            }

            /// Mostly-distinct continuous inputs.
            #[test]
            fn mwu_into_matches_reference_on_continuous_samples(
                a in proptest::collection::vec(0.01f64..10.0, 1..60),
                b in proptest::collection::vec(0.01f64..10.0, 1..60),
            ) {
                exact_match(&a, &b)?;
            }
        }
    }
}

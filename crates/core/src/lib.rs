//! The paper's primary contribution: a statistical methodology that
//! consumes the study's timing dataset and produces *portable
//! optimisation strategies* at every degree of specialisation, plus the
//! evaluation machinery behind each table and figure.
//!
//! - [`stats`] — medians, geomeans, 95% CIs, and the rank-based
//!   Mann–Whitney U test with common-language effect size;
//! - [`analysis`] — Algorithm 1: per-partition enable/disable decisions
//!   from statistically significant evidence only;
//! - [`strategy`] — the Table V strategy functions, from `baseline` to
//!   `oracle`, resolved against a dataset;
//! - [`evaluation`] — Figures 1–4 and Tables II–IV/IX computations;
//! - [`report`] — plain-text table rendering for the regenerators.
//!
//! # Example
//!
//! ```no_run
//! use gpp_apps::study::{run_study, StudyConfig};
//! use gpp_core::analysis::DatasetStats;
//! use gpp_core::evaluation::evaluate_assignment;
//! use gpp_core::strategy::{build_assignment, Strategy};
//!
//! let dataset = run_study(&StudyConfig::default());
//! let stats = DatasetStats::new(&dataset);
//! let global = build_assignment(&stats, Strategy::Global);
//! let eval = evaluate_assignment(&stats, &global);
//! println!("fully portable strategy: {} speedups, {} slowdowns",
//!          eval.speedups, eval.slowdowns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod evaluation;
pub mod predict;
pub mod report;
pub mod sensitivity;
pub mod stats;
pub mod strategy;

pub use analysis::{opts_for_partition, DatasetStats, Decision, OptDecision, PartitionAnalysis};
pub use evaluation::{
    classify, evaluate_assignment, extremes, heatmap, improvable, max_geomean_config,
    per_chip_outcomes, ranking, top_speedup_opts, Heatmap, Outcome, RankedConfig,
    StrategyEvaluation,
};
pub use predict::{leave_one_out, predict_config, probe_set, PredictionEvaluation};
pub use sensitivity::{subsample_sensitivity, SensitivityPoint, SensitivityReport};
pub use strategy::{build_assignment, chip_function, Assignment, PartitionKey, Strategy};

//! The paper's primary contribution: a statistical methodology that
//! consumes the study's timing dataset and produces *portable
//! optimisation strategies* at every degree of specialisation, plus the
//! evaluation machinery behind each table and figure.
//!
//! - [`stats`] — medians, geomeans, 95% CIs, and the rank-based
//!   Mann–Whitney U test with common-language effect size;
//! - [`analysis`] — Algorithm 1: per-partition enable/disable decisions
//!   from statistically significant evidence only;
//! - [`strategy`] — the Table V strategy functions, from `baseline` to
//!   `oracle`, resolved against a dataset;
//! - [`predict`] / [`sensitivity`] — the future-work studies (probe
//!   prediction, sample-size sensitivity);
//! - [`evaluation`] — Figures 1–4 and Tables II–IV/IX computations;
//! - [`portfolio`] — k-version strategy search ("A Few Fit Most"):
//!   dense slowdown matrix, exact branch-and-bound + seeded beam
//!   search, and the portability-cost curve (slowdown vs k);
//! - [`sweep`] — mechanism inversion over a parametric chip sweep:
//!   per-optimisation win/loss boundaries against the chip axes;
//!
//! The expensive passes (`build_assignment`, `chip_function`,
//! `leave_one_out`, `subsample_sensitivity`) all have `*_par` variants
//! that fan partitions, chips, held-out cells, or trials out over
//! `gpp-par` worker threads. Results are scattered back in input order
//! and all floating-point folds keep their serial order, so every
//! `*_par` output is byte-identical to its serial counterpart at any
//! thread count.
//! - [`report`] — plain-text table rendering for the regenerators.
//!
//! # Example
//!
//! ```no_run
//! use gpp_apps::study::{run_study, StudyConfig};
//! use gpp_core::analysis::DatasetStats;
//! use gpp_core::evaluation::evaluate_assignment;
//! use gpp_core::strategy::{build_assignment, Strategy};
//!
//! let dataset = run_study(&StudyConfig::default());
//! let stats = DatasetStats::new(&dataset);
//! let global = build_assignment(&stats, Strategy::Global);
//! let eval = evaluate_assignment(&stats, &global);
//! println!("fully portable strategy: {} speedups, {} slowdowns",
//!          eval.speedups, eval.slowdowns);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod evaluation;
pub mod portfolio;
pub mod predict;
pub mod report;
pub mod sensitivity;
pub mod stats;
pub mod strategy;
pub mod sweep;

pub use analysis::{
    opts_for_partition, opts_for_partition_with, AnalysisScratch, DatasetStats, Decision,
    OptDecision, PartitionAnalysis,
};
pub use evaluation::{
    classify, evaluate_assignment, extremes, heatmap, improvable, max_geomean_config,
    per_chip_outcomes, ranking, top_speedup_opts, Heatmap, Outcome, RankedConfig,
    StrategyEvaluation,
};
pub use portfolio::{
    exact_search, score_portfolio_naive, search_curve, search_curve_over, CurvePoint, Objective,
    PortfolioCurve, PortfolioScorer, SearchOutcome, SearchParams, SlowdownMatrix,
};
pub use predict::{
    leave_one_out, leave_one_out_par, predict_config, probe_set, PredictionEvaluation,
};
pub use sensitivity::{
    subsample_sensitivity, subsample_sensitivity_par, SensitivityPoint, SensitivityReport,
};
pub use stats::{mann_whitney_u, mwu_into, MwuResult, MwuScratch};
pub use strategy::{
    build_assignment, build_assignment_par, chip_function, chip_function_on, chip_function_par,
    Assignment, PartitionKey, Strategy,
};
pub use sweep::{chip_features, invert_sweep, sweep_table, OptBoundary, SweepReport};

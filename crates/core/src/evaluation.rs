//! Evaluation machinery for every table and figure of the paper:
//! speedup/slowdown classification (Fig. 3), geomean slowdown vs the
//! oracle (Fig. 4), the cross-chip portability heatmap (Fig. 1), per-chip
//! extremes (Table II), the global configuration ranking (Table III),
//! per-chip bias breakdowns (Table IV), and the oracle-optimisation
//! attribution of Fig. 2.

use gpp_sim::opts::{all_configs, OptConfig, Optimization};
use serde::{Deserialize, Serialize};

use crate::analysis::DatasetStats;
use crate::portfolio::SlowdownMatrix;
use crate::stats::{geomean, geomean_iter};
use crate::strategy::Assignment;

/// Outcome of running a cell under some configuration, relative to the
/// baseline. Speedups and slowdowns require statistical significance
/// (95% CI), as everywhere in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// Significantly faster than baseline.
    Speedup,
    /// Significantly slower than baseline.
    Slowdown,
    /// No significant difference.
    NoChange,
}

/// Classifies `config` on `cell` against the baseline.
pub fn classify(stats: &DatasetStats<'_>, cell: usize, config: OptConfig) -> Outcome {
    let baseline = OptConfig::baseline();
    if config == baseline || !stats.significant(cell, config, baseline) {
        return Outcome::NoChange;
    }
    if stats.median_of(cell, config) < stats.median_of(cell, baseline) {
        Outcome::Speedup
    } else {
        Outcome::Slowdown
    }
}

/// Whether the cell can be improved at all: its oracle configuration is a
/// significant speedup over the baseline. The paper excludes the
/// non-improvable tests (43% of its dataset) from the Fig. 3 counts.
pub fn improvable(stats: &DatasetStats<'_>, cell: usize) -> bool {
    classify(stats, cell, stats.best_config(cell)) == Outcome::Speedup
}

/// Aggregate evaluation of one strategy (one bar of Fig. 3 + one point of
/// Fig. 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyEvaluation {
    /// Strategy name.
    pub strategy: String,
    /// Improvable cells showing a significant speedup.
    pub speedups: usize,
    /// Improvable cells showing a significant slowdown.
    pub slowdowns: usize,
    /// Improvable cells with no significant change.
    pub no_change: usize,
    /// Number of improvable cells (the Fig. 3 denominator).
    pub improvable: usize,
    /// Geometric mean over *all* cells of `t(assigned) / t(oracle)`
    /// (≥ 1; 1 = oracle performance, Fig. 4).
    pub geomean_slowdown_vs_oracle: f64,
    /// Geometric mean speedup over baseline across all cells.
    pub geomean_speedup_vs_baseline: f64,
}

/// Evaluates an assignment against the dataset.
pub fn evaluate_assignment(
    stats: &DatasetStats<'_>,
    assignment: &Assignment,
) -> StrategyEvaluation {
    let n = stats.num_cells();
    let (mut speedups, mut slowdowns, mut no_change, mut improvable_count) = (0, 0, 0, 0);
    let mut vs_oracle = Vec::with_capacity(n);
    let mut vs_baseline = Vec::with_capacity(n);
    for cell in 0..n {
        let cfg = assignment.config(cell);
        if improvable(stats, cell) {
            improvable_count += 1;
            match classify(stats, cell, cfg) {
                Outcome::Speedup => speedups += 1,
                Outcome::Slowdown => slowdowns += 1,
                Outcome::NoChange => no_change += 1,
            }
        }
        vs_oracle.push(stats.slowdown_vs_oracle(cell, cfg));
        vs_baseline.push(stats.speedup(cell, cfg));
    }
    StrategyEvaluation {
        strategy: assignment.strategy().name().to_owned(),
        speedups,
        slowdowns,
        no_change,
        improvable: improvable_count,
        geomean_slowdown_vs_oracle: geomean(&vs_oracle),
        geomean_speedup_vs_baseline: geomean(&vs_baseline),
    }
}

/// The Fig. 1 heatmap: how configurations specialised to one chip travel
/// to the others.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    /// Chip names, indexing both axes.
    pub chips: Vec<String>,
    /// `matrix[run_on][tuned_for]`: geomean over (application, input) of
    /// the slowdown of chip `tuned_for`'s oracle configuration when run
    /// on chip `run_on`, relative to `run_on`'s own oracle.
    pub matrix: Vec<Vec<f64>>,
    /// Column geomeans (portability of each chip's optima; smaller =
    /// more portable).
    pub column_geomeans: Vec<f64>,
    /// Row geomeans (sensitivity of each chip to foreign optima).
    pub row_geomeans: Vec<f64>,
}

/// Computes the Fig. 1 heatmap. Slowdown ratios come from a
/// [`SlowdownMatrix`] built once over the memoized median tables —
/// entry (config, cell) is bit-identical to the historical per-pair
/// `median_of(dst, cfg) / median_of(dst, best_config(dst))` expression
/// — and every geomean streams through [`geomean_iter`], so the per-
/// pair loop performs no allocation and no repeated oracle lookups.
pub fn heatmap(stats: &DatasetStats<'_>) -> Heatmap {
    let ds = stats.dataset();
    let chips = ds.chips.clone();
    let k = chips.len();
    let slowdowns = SlowdownMatrix::from_stats(stats);
    let mut matrix = vec![vec![0.0f64; k]; k];
    for (from_idx, tuned_for) in chips.iter().enumerate() {
        for (on_idx, run_on) in chips.iter().enumerate() {
            matrix[on_idx][from_idx] = geomean_iter(ds.apps.iter().flat_map(|app| {
                ds.inputs.iter().map(|input| {
                    let src = stats.cell_index(app, input, tuned_for).expect("full grid");
                    let dst = stats.cell_index(app, input, run_on).expect("full grid");
                    slowdowns.ratio(stats.best_config(src).index(), dst)
                })
            }));
        }
    }
    // Column/row geomeans exclude the diagonal (which is 1 by
    // construction), matching the "on all *other* chips" reading.
    let column_geomeans = (0..k)
        .map(|c| geomean_iter((0..k).filter(|&r| r != c).map(|r| matrix[r][c])))
        .collect();
    let row_geomeans = (0..k)
        .map(|r| geomean_iter((0..k).filter(|&c| c != r).map(|c| matrix[r][c])))
        .collect();
    Heatmap {
        chips,
        matrix,
        column_geomeans,
        row_geomeans,
    }
}

/// Per-chip performance envelope (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipExtremes {
    /// Chip name.
    pub chip: String,
    /// Largest speedup of any configuration over baseline on this chip.
    pub max_speedup: f64,
    /// (application, input) of the largest speedup.
    pub speedup_test: (String, String),
    /// Largest slowdown factor (baseline / config median, inverted to a
    /// ≥ 1 "slowdown of" value).
    pub max_slowdown: f64,
    /// (application, input) of the largest slowdown.
    pub slowdown_test: (String, String),
}

/// Computes Table II: the extreme speedup and slowdown per chip across
/// all (application, input, configuration) combinations.
pub fn extremes(stats: &DatasetStats<'_>) -> Vec<ChipExtremes> {
    let ds = stats.dataset();
    ds.chips
        .iter()
        .map(|chip| {
            let mut best = (1.0f64, (String::new(), String::new()));
            let mut worst = (1.0f64, (String::new(), String::new()));
            for cell in stats.select_indices(None, None, Some(chip)) {
                for cfg in all_configs() {
                    if cfg.is_baseline() {
                        continue;
                    }
                    let speedup = stats.speedup(cell, cfg);
                    if speedup > best.0 {
                        best = (
                            speedup,
                            (ds.cells[cell].app.clone(), ds.cells[cell].input.clone()),
                        );
                    }
                    let slowdown = 1.0 / speedup;
                    if slowdown > worst.0 {
                        worst = (
                            slowdown,
                            (ds.cells[cell].app.clone(), ds.cells[cell].input.clone()),
                        );
                    }
                }
            }
            ChipExtremes {
                chip: chip.clone(),
                max_speedup: best.0,
                speedup_test: best.1,
                max_slowdown: worst.0,
                slowdown_test: worst.1,
            }
        })
        .collect()
}

/// One row of the Table III global ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedConfig {
    /// The configuration.
    pub config: OptConfig,
    /// Cells where applying it globally causes a significant slowdown.
    pub slowdowns: usize,
    /// Cells where it causes a significant speedup.
    pub speedups: usize,
    /// Geomean speedup over baseline across all cells.
    pub geomean_speedup: f64,
}

/// Computes Table III: every non-baseline configuration applied globally,
/// ranked by the number of slowdowns it causes (ascending; ties broken by
/// more speedups, then higher geomean).
pub fn ranking(stats: &DatasetStats<'_>) -> Vec<RankedConfig> {
    let n = stats.num_cells();
    let mut rows: Vec<RankedConfig> = all_configs()
        .into_iter()
        .filter(|c| !c.is_baseline())
        .map(|config| {
            let (mut slowdowns, mut speedups) = (0, 0);
            for cell in 0..n {
                match classify(stats, cell, config) {
                    Outcome::Slowdown => slowdowns += 1,
                    Outcome::Speedup => speedups += 1,
                    Outcome::NoChange => {}
                }
            }
            // Streamed straight off the memoized median tables in the
            // same cell order the historical Vec was pushed —
            // bit-identical geomean, no per-config allocation.
            let geomean_speedup = geomean_iter((0..n).map(|cell| stats.speedup(cell, config)));
            RankedConfig {
                config,
                slowdowns,
                speedups,
                geomean_speedup,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        a.slowdowns
            .cmp(&b.slowdowns)
            .then(b.speedups.cmp(&a.speedups))
            .then(
                b.geomean_speedup
                    .partial_cmp(&a.geomean_speedup)
                    .expect("finite"),
            )
    });
    rows
}

/// The configuration maximising geomean speedup across the whole dataset
/// — the biased "maximise geomean" pick of Section II-C.
pub fn max_geomean_config(stats: &DatasetStats<'_>) -> RankedConfig {
    ranking(stats)
        .into_iter()
        .max_by(|a, b| {
            a.geomean_speedup
                .partial_cmp(&b.geomean_speedup)
                .expect("finite")
        })
        .expect("non-empty configuration space")
}

/// Per-chip speedup/slowdown counts for one globally applied
/// configuration (Table IV).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerChipOutcome {
    /// Chip name.
    pub chip: String,
    /// Significant speedups on this chip.
    pub speedups: usize,
    /// Significant slowdowns on this chip.
    pub slowdowns: usize,
    /// Largest individual speedup on this chip.
    pub max_speedup: f64,
}

/// Computes Table IV for one configuration.
pub fn per_chip_outcomes(stats: &DatasetStats<'_>, config: OptConfig) -> Vec<PerChipOutcome> {
    stats
        .dataset()
        .chips
        .iter()
        .map(|chip| {
            let cells = stats.select_indices(None, None, Some(chip));
            let (mut speedups, mut slowdowns) = (0, 0);
            let mut max_speedup = 1.0f64;
            for cell in cells {
                match classify(stats, cell, config) {
                    Outcome::Speedup => speedups += 1,
                    Outcome::Slowdown => slowdowns += 1,
                    Outcome::NoChange => {}
                }
                max_speedup = max_speedup.max(stats.speedup(cell, config));
            }
            PerChipOutcome {
                chip: chip.clone(),
                speedups,
                slowdowns,
                max_speedup,
            }
        })
        .collect()
}

/// Fig. 2: how often each optimisation appears in the per-test oracle
/// configurations of each chip.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopOptUsage {
    /// Chip name.
    pub chip: String,
    /// For each optimisation (in [`Optimization::ALL`] order), the
    /// fraction of this chip's improvable tests whose oracle enables it.
    pub usage: Vec<(Optimization, f64)>,
}

/// Computes Fig. 2 from the per-cell oracle configurations.
pub fn top_speedup_opts(stats: &DatasetStats<'_>) -> Vec<TopOptUsage> {
    stats
        .dataset()
        .chips
        .iter()
        .map(|chip| {
            let cells: Vec<usize> = stats
                .select_indices(None, None, Some(chip))
                .into_iter()
                .filter(|&c| improvable(stats, c))
                .collect();
            let usage = Optimization::ALL
                .into_iter()
                .map(|opt| {
                    let count = cells
                        .iter()
                        .filter(|&&c| stats.best_config(c).enables(opt))
                        .count();
                    (
                        opt,
                        if cells.is_empty() {
                            0.0
                        } else {
                            count as f64 / cells.len() as f64
                        },
                    )
                })
                .collect();
            TopOptUsage {
                chip: chip.clone(),
                usage,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{build_assignment, Strategy};
    use gpp_apps::study::{run_study, StudyConfig};

    fn stats_fixture(ds: &gpp_apps::study::Dataset) -> DatasetStats<'_> {
        DatasetStats::new(ds)
    }

    #[test]
    fn baseline_classifies_as_no_change() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        for cell in (0..stats.num_cells()).step_by(31) {
            assert_eq!(
                classify(&stats, cell, OptConfig::baseline()),
                Outcome::NoChange
            );
        }
    }

    #[test]
    fn oracle_never_classified_slower() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        for cell in 0..stats.num_cells() {
            assert_ne!(
                classify(&stats, cell, stats.best_config(cell)),
                Outcome::Slowdown
            );
        }
    }

    #[test]
    fn oracle_evaluation_is_perfect() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let oracle = build_assignment(&stats, Strategy::Oracle);
        let eval = evaluate_assignment(&stats, &oracle);
        assert_eq!(eval.slowdowns, 0);
        assert_eq!(eval.speedups, eval.improvable);
        assert!((eval.geomean_slowdown_vs_oracle - 1.0).abs() < 1e-12);
    }

    #[test]
    fn baseline_evaluation_shows_no_changes() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let baseline = build_assignment(&stats, Strategy::Baseline);
        let eval = evaluate_assignment(&stats, &baseline);
        assert_eq!(eval.speedups, 0);
        assert_eq!(eval.slowdowns, 0);
        assert!((eval.geomean_speedup_vs_baseline - 1.0).abs() < 1e-12);
        assert!(eval.geomean_slowdown_vs_oracle >= 1.0);
    }

    #[test]
    fn heatmap_diagonal_is_one() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let hm = heatmap(&stats);
        assert_eq!(hm.chips.len(), 6);
        for i in 0..6 {
            assert!((hm.matrix[i][i] - 1.0).abs() < 1e-12, "diagonal at {i}");
            for j in 0..6 {
                assert!(
                    hm.matrix[i][j] >= 1.0 - 1e-12,
                    "[{i}][{j}] = {}",
                    hm.matrix[i][j]
                );
            }
        }
        assert_eq!(hm.column_geomeans.len(), 6);
        assert_eq!(hm.row_geomeans.len(), 6);
    }

    #[test]
    fn extremes_cover_every_chip_and_exceed_one() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let ex = extremes(&stats);
        assert_eq!(ex.len(), 6);
        for e in &ex {
            assert!(e.max_speedup >= 1.0, "{}", e.chip);
            assert!(e.max_slowdown >= 1.0, "{}", e.chip);
        }
    }

    #[test]
    fn ranking_has_95_rows_sorted_by_slowdowns() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let rows = ranking(&stats);
        assert_eq!(rows.len(), 95);
        assert!(rows.windows(2).all(|w| w[0].slowdowns <= w[1].slowdowns));
        for r in &rows {
            assert!(!r.config.is_baseline());
            assert!(r.slowdowns + r.speedups <= stats.num_cells());
        }
    }

    #[test]
    fn per_chip_outcomes_partition_the_cells() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let cfg = ranking(&stats)[0].config;
        let rows = per_chip_outcomes(&stats, cfg);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.speedups + r.slowdowns <= 17 * 3, "{}", r.chip);
            assert!(r.max_speedup >= 1.0);
        }
    }

    #[test]
    fn top_opts_fractions_in_unit_interval() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        for row in top_speedup_opts(&stats) {
            assert_eq!(row.usage.len(), 7);
            for (opt, f) in row.usage {
                assert!((0.0..=1.0).contains(&f), "{} {opt}: {f}", row.chip);
            }
        }
    }

    #[test]
    fn max_geomean_config_tops_the_geomean_column() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = stats_fixture(&ds);
        let top = max_geomean_config(&stats);
        for r in ranking(&stats) {
            assert!(r.geomean_speedup <= top.geomean_speedup + 1e-12);
        }
    }
}

//! Algorithm 1 of the paper: deciding, per data partition, which
//! optimisations to enable — using only statistically significant,
//! rank-based evidence.
//!
//! For every binary optimisation `opt` and every configuration `os` that
//! enables it, the mirror configuration `os[opt=disabled]` is compared on
//! each test of the partition. Where the two differ significantly (95%
//! CI), the normalised runtime `t(os) / t(mirror)` joins sample `A` and
//! the baseline `1.0` joins sample `B`. The optimisation is enabled iff
//! the Mann–Whitney U test finds `A` stochastically different from `B`
//! (`p < 0.05`) *and* the median of `A` shows a speedup.

use gpp_apps::study::Dataset;
use gpp_sim::opts::{settings_enabling, OptConfig, Optimization, NUM_CONFIGS};
use serde::{Deserialize, Serialize};

use crate::stats::{ci95, mann_whitney_u, median, Ci95};

/// Precomputed per-cell, per-configuration statistics over a dataset:
/// medians and 95% confidence intervals, plus the oracle (fastest)
/// configuration per cell. Everything downstream works through this view.
#[derive(Debug, Clone)]
pub struct DatasetStats<'d> {
    dataset: &'d Dataset,
    medians: Vec<Vec<f64>>,
    cis: Vec<Vec<Ci95>>,
    best: Vec<OptConfig>,
}

impl<'d> DatasetStats<'d> {
    /// Builds the statistics cache for `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if any cell lacks the full 96-configuration grid.
    pub fn new(dataset: &'d Dataset) -> Self {
        let mut medians = Vec::with_capacity(dataset.cells.len());
        let mut cis = Vec::with_capacity(dataset.cells.len());
        let mut best = Vec::with_capacity(dataset.cells.len());
        for cell in &dataset.cells {
            assert_eq!(
                cell.times.len(),
                NUM_CONFIGS,
                "cell is missing configurations"
            );
            // Medians and best-config come from the cell's own memoized
            // cache — same upper-median and last-minimum-on-ties
            // semantics as the historical clone-and-sort scan.
            medians.push(cell.medians().to_vec());
            let c: Vec<Ci95> = cell.times.iter().map(|runs| ci95(runs)).collect();
            cis.push(c);
            best.push(cell.best_config());
        }
        DatasetStats {
            dataset,
            medians,
            cis,
            best,
        }
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'d Dataset {
        self.dataset
    }

    /// Number of cells ((application, input, chip) tuples).
    pub fn num_cells(&self) -> usize {
        self.dataset.cells.len()
    }

    /// Median runtime of `cell` under `config`.
    pub fn median_of(&self, cell: usize, config: OptConfig) -> f64 {
        self.medians[cell][config.index()]
    }

    /// The oracle configuration of `cell` (smallest median).
    pub fn best_config(&self, cell: usize) -> OptConfig {
        self.best[cell]
    }

    /// Whether `a` and `b` differ significantly on `cell` (95% CI).
    pub fn significant(&self, cell: usize, a: OptConfig, b: OptConfig) -> bool {
        let (ca, cb) = (self.cis[cell][a.index()], self.cis[cell][b.index()]);
        ca.hi < cb.lo || cb.hi < ca.lo
    }

    /// Speedup of `config` over the baseline on `cell` (> 1 is faster).
    pub fn speedup(&self, cell: usize, config: OptConfig) -> f64 {
        self.median_of(cell, OptConfig::baseline()) / self.median_of(cell, config)
    }

    /// Index of the cell for an (application, input, chip) tuple
    /// (O(1) via the dataset's prebuilt index).
    pub fn cell_index(&self, app: &str, input: &str, chip: &str) -> Option<usize> {
        self.dataset.cell_index(app, input, chip)
    }

    /// Indices of all cells matching the given dimension filters.
    pub fn select_indices(
        &self,
        app: Option<&str>,
        input: Option<&str>,
        chip: Option<&str>,
    ) -> Vec<usize> {
        self.dataset
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                app.is_none_or(|a| c.app == a)
                    && input.is_none_or(|i| c.input == i)
                    && chip.is_none_or(|h| c.chip == h)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// The verdict of Algorithm 1 on one optimisation for one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Statistically significant speedup: enable.
    Enable,
    /// Evidence present but no significant speedup (ineffective or
    /// harmful): leave disabled.
    Disable,
    /// Too few significant comparisons to decide (the paper's
    /// fg8-on-MALI case).
    Inconclusive,
}

/// One optimisation's analysis outcome for a partition, including the
/// values reported in paper Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptDecision {
    /// The optimisation decided on.
    pub opt: Optimization,
    /// The verdict.
    pub decision: Decision,
    /// Two-sided MWU p-value (1.0 when no samples were available).
    pub p_value: f64,
    /// Common-language effect size: probability a random (application,
    /// input) pair shows a speedup under this optimisation.
    pub effect_size: f64,
    /// Number of significant comparisons that entered the test.
    pub samples: usize,
}

/// Fewer significant comparisons than this and the analysis refuses to
/// decide (MWU cannot approach `p < 0.05` on smaller samples anyway).
pub const MIN_SAMPLES: usize = 5;

/// `OPTS_FOR_PARTITION` of Algorithm 1: analyses every optimisation over
/// the given cells and returns the recommended configuration together
/// with the per-optimisation detail.
///
/// If both `fg1` and `fg8` win, the one with the stronger effect size is
/// kept (they are mutually exclusive).
pub fn opts_for_partition(stats: &DatasetStats<'_>, cells: &[usize]) -> PartitionAnalysis {
    let mut decisions = Vec::with_capacity(Optimization::ALL.len());
    for opt in Optimization::ALL {
        let mut a = Vec::new();
        for os in settings_enabling(opt) {
            let mirror = os.without(opt);
            for &cell in cells {
                if stats.significant(cell, os, mirror) {
                    a.push(stats.median_of(cell, os) / stats.median_of(cell, mirror));
                }
            }
        }
        let b = vec![1.0f64; a.len()];
        let decision = if a.len() < MIN_SAMPLES {
            OptDecision {
                opt,
                decision: Decision::Inconclusive,
                p_value: 1.0,
                effect_size: if a.is_empty() {
                    0.5
                } else {
                    mann_whitney_u(&a, &b).map_or(0.5, |r| r.effect_size)
                },
                samples: a.len(),
            }
        } else {
            let r = mann_whitney_u(&a, &b).expect("non-empty samples");
            let enable = r.p_value < 0.05 && median(&a) < 1.0;
            OptDecision {
                opt,
                decision: if enable {
                    Decision::Enable
                } else {
                    Decision::Disable
                },
                p_value: r.p_value,
                effect_size: r.effect_size,
                samples: a.len(),
            }
        };
        decisions.push(decision);
    }

    // Resolve the fg1/fg8 exclusivity by effect size.
    let fg1 = decisions
        .iter()
        .find(|d| d.opt == Optimization::Fg1)
        .expect("fg1 analysed");
    let fg8 = decisions
        .iter()
        .find(|d| d.opt == Optimization::Fg8)
        .expect("fg8 analysed");
    let drop_fg = if fg1.decision == Decision::Enable && fg8.decision == Decision::Enable {
        Some(if fg1.effect_size >= fg8.effect_size {
            Optimization::Fg8
        } else {
            Optimization::Fg1
        })
    } else {
        None
    };

    let config = decisions
        .iter()
        .filter(|d| d.decision == Decision::Enable && Some(d.opt) != drop_fg)
        .fold(OptConfig::baseline(), |cfg, d| cfg.with(d.opt));

    PartitionAnalysis { config, decisions }
}

/// Result of analysing one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionAnalysis {
    /// The configuration recommended for the partition.
    pub config: OptConfig,
    /// Per-optimisation verdicts, in [`Optimization::ALL`] order.
    pub decisions: Vec<OptDecision>,
}

impl PartitionAnalysis {
    /// The verdict for one optimisation.
    pub fn decision(&self, opt: Optimization) -> &OptDecision {
        self.decisions
            .iter()
            .find(|d| d.opt == opt)
            .expect("all optimisations analysed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, StudyConfig};

    fn tiny() -> Dataset {
        run_study(&StudyConfig::tiny())
    }

    #[test]
    fn stats_cache_matches_cell_methods() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        for (i, cell) in ds.cells.iter().enumerate().step_by(37) {
            for idx in [0usize, 13, 95] {
                let cfg = OptConfig::from_index(idx);
                assert_eq!(stats.median_of(i, cfg), cell.median(cfg));
            }
            assert_eq!(stats.best_config(i), cell.best_config());
        }
    }

    #[test]
    fn cell_index_round_trips() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let i = stats
            .cell_index("bfs-wl", "social", "R9")
            .expect("cell exists");
        assert_eq!(ds.cells[i].app, "bfs-wl");
        assert_eq!(ds.cells[i].chip, "R9");
        assert!(stats.cell_index("bfs-wl", "social", "NOPE").is_none());
    }

    #[test]
    fn select_indices_counts() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        assert_eq!(stats.select_indices(None, None, None).len(), 306);
        assert_eq!(stats.select_indices(None, None, Some("MALI")).len(), 51);
        assert_eq!(
            stats
                .select_indices(Some("tri"), Some("road"), Some("R9"))
                .len(),
            1
        );
    }

    #[test]
    fn identical_configs_never_significant() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        for i in (0..stats.num_cells()).step_by(29) {
            let cfg = OptConfig::from_index(7);
            assert!(!stats.significant(i, cfg, cfg));
        }
    }

    #[test]
    fn partition_analysis_produces_valid_config() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let all: Vec<usize> = (0..stats.num_cells()).collect();
        let analysis = opts_for_partition(&stats, &all);
        // fg1 and fg8 never both enabled.
        assert!(
            !(analysis.config.enables(Optimization::Fg1)
                && analysis.config.enables(Optimization::Fg8))
        );
        assert_eq!(analysis.decisions.len(), 7);
        for d in &analysis.decisions {
            assert!((0.0..=1.0).contains(&d.p_value), "{d:?}");
            assert!((0.0..=1.0).contains(&d.effect_size), "{d:?}");
            if d.decision == Decision::Enable {
                // Enabled decisions appear in the config — except one of
                // fg1/fg8 when both win (they are mutually exclusive).
                let fg_displaced = matches!(d.opt, Optimization::Fg1 | Optimization::Fg8)
                    && (analysis.config.enables(Optimization::Fg1)
                        || analysis.config.enables(Optimization::Fg8));
                assert!(analysis.config.enables(d.opt) || fg_displaced, "{d:?}");
                assert!(d.p_value < 0.05);
            }
        }
    }

    #[test]
    fn empty_partition_is_all_inconclusive() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let analysis = opts_for_partition(&stats, &[]);
        assert!(analysis.config.is_baseline());
        assert!(analysis
            .decisions
            .iter()
            .all(|d| d.decision == Decision::Inconclusive));
    }

    #[test]
    fn decision_lookup_by_opt() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let all: Vec<usize> = (0..stats.num_cells()).collect();
        let analysis = opts_for_partition(&stats, &all);
        assert_eq!(analysis.decision(Optimization::Sg).opt, Optimization::Sg);
    }
}

//! Algorithm 1 of the paper: deciding, per data partition, which
//! optimisations to enable — using only statistically significant,
//! rank-based evidence.
//!
//! For every binary optimisation `opt` and every configuration `os` that
//! enables it, the mirror configuration `os[opt=disabled]` is compared on
//! each test of the partition. Where the two differ significantly (95%
//! CI), the normalised runtime `t(os) / t(mirror)` joins sample `A` and
//! the baseline `1.0` joins sample `B`. The optimisation is enabled iff
//! the Mann–Whitney U test finds `A` stochastically different from `B`
//! (`p < 0.05`) *and* the median of `A` shows a speedup.

use std::ops::Range;
use std::sync::OnceLock;

use gpp_apps::study::Dataset;
use gpp_sim::opts::{settings_enabling, OptConfig, Optimization, NUM_CONFIGS};
use serde::{Deserialize, Serialize};

use crate::stats::{ci95, mwu_into, Ci95, MwuScratch};

/// The flattened comparison table of the binary optimisation space: for
/// every optimisation, in [`Optimization::ALL`] order, each
/// configuration enabling it paired with its *mirror* (the same
/// configuration with the optimisation cleared), in
/// [`settings_enabling`] order. Built once per process. Both the
/// per-cell memo table and the partition analysis walk this one table,
/// which is what keeps the memoized evidence in exactly the order the
/// historical nested loops pushed it.
#[derive(Debug)]
struct ComparisonPairs {
    /// All (enabling setting, mirror) pairs, optimisation-major.
    pairs: Vec<(OptConfig, OptConfig)>,
    /// Sub-range of `pairs` belonging to each optimisation, indexed in
    /// [`Optimization::ALL`] order.
    ranges: Vec<Range<usize>>,
}

fn comparison_pairs() -> &'static ComparisonPairs {
    static PAIRS: OnceLock<ComparisonPairs> = OnceLock::new();
    PAIRS.get_or_init(|| {
        let mut pairs = Vec::new();
        let mut ranges = Vec::with_capacity(Optimization::ALL.len());
        for opt in Optimization::ALL {
            let start = pairs.len();
            for os in settings_enabling(opt) {
                pairs.push((os, os.without(opt)));
            }
            ranges.push(start..pairs.len());
        }
        ComparisonPairs { pairs, ranges }
    })
}

/// Precomputed per-cell, per-configuration statistics over a dataset:
/// medians and 95% confidence intervals, the oracle (fastest)
/// configuration per cell, and the memoized Algorithm 1 evidence for
/// every (cell, comparison pair). Everything downstream works through
/// this view.
#[derive(Debug, Clone)]
pub struct DatasetStats<'d> {
    dataset: &'d Dataset,
    medians: Vec<Vec<f64>>,
    cis: Vec<Vec<Ci95>>,
    best: Vec<OptConfig>,
    /// Per cell, the median of its oracle configuration — the
    /// denominator of every slowdown-vs-oracle ratio, memoized so the
    /// hot evaluation paths do one load instead of an indirected
    /// best-config lookup per call.
    oracle: Vec<f64>,
    /// Cell-major memo over [`comparison_pairs`]: `Some(ratio)` when
    /// the pair differs significantly on the cell, `None` otherwise.
    evidence: Vec<Option<f64>>,
}

impl<'d> DatasetStats<'d> {
    /// Builds the statistics cache for `dataset`.
    ///
    /// # Panics
    ///
    /// Panics if any cell lacks the full 96-configuration grid.
    pub fn new(dataset: &'d Dataset) -> Self {
        let mut medians = Vec::with_capacity(dataset.cells.len());
        let mut cis = Vec::with_capacity(dataset.cells.len());
        let mut best = Vec::with_capacity(dataset.cells.len());
        for cell in &dataset.cells {
            assert_eq!(
                cell.times.len(),
                NUM_CONFIGS,
                "cell is missing configurations"
            );
            // Medians and best-config come from the cell's own memoized
            // cache — same upper-median and last-minimum-on-ties
            // semantics as the historical clone-and-sort scan.
            medians.push(cell.medians().to_vec());
            let c: Vec<Ci95> = cell.times.iter().map(|runs| ci95(runs)).collect();
            cis.push(c);
            best.push(cell.best_config());
        }
        let oracle: Vec<f64> = medians
            .iter()
            .zip(&best)
            .map(|(row, b)| row[b.index()])
            .collect();
        // Memoize the Algorithm 1 evidence: for every cell and every
        // (setting, mirror) pair, the significance verdict and — when
        // significant — the normalised runtime, computed once here
        // instead of on every partition query.
        let table = comparison_pairs();
        let mut evidence = Vec::with_capacity(dataset.cells.len() * table.pairs.len());
        for (med_row, ci_row) in medians.iter().zip(&cis) {
            for &(os, mirror) in &table.pairs {
                let (ca, cb) = (ci_row[os.index()], ci_row[mirror.index()]);
                let sig = ca.hi < cb.lo || cb.hi < ca.lo;
                evidence.push(sig.then(|| med_row[os.index()] / med_row[mirror.index()]));
            }
        }
        DatasetStats {
            dataset,
            medians,
            cis,
            best,
            oracle,
            evidence,
        }
    }

    /// Number of (enabling setting, mirror) comparison pairs in the
    /// memo table: 48 per five optimisations plus 32 for each of the
    /// two mutually exclusive fine-grained variants, 304 in total.
    pub fn num_comparison_pairs(&self) -> usize {
        comparison_pairs().pairs.len()
    }

    /// The `pair`-th memoized comparison — a configuration enabling an
    /// optimisation and its mirror with that optimisation cleared — in
    /// [`Optimization::ALL`]-major, [`settings_enabling`]-minor order.
    pub fn comparison_pair(&self, pair: usize) -> (OptConfig, OptConfig) {
        comparison_pairs().pairs[pair]
    }

    /// Memoized Algorithm 1 evidence for one (cell, pair): the
    /// normalised runtime `t(setting) / t(mirror)` when the two
    /// configurations differ significantly on the cell, `None`
    /// otherwise. Agrees with [`DatasetStats::significant`] and
    /// [`DatasetStats::median_of`] by construction, but costs one table
    /// load per query instead of two interval comparisons and a divide.
    pub fn evidence(&self, cell: usize, pair: usize) -> Option<f64> {
        self.evidence[cell * comparison_pairs().pairs.len() + pair]
    }

    /// The underlying dataset.
    pub fn dataset(&self) -> &'d Dataset {
        self.dataset
    }

    /// Number of cells ((application, input, chip) tuples).
    pub fn num_cells(&self) -> usize {
        self.dataset.cells.len()
    }

    /// Median runtime of `cell` under `config`.
    pub fn median_of(&self, cell: usize, config: OptConfig) -> f64 {
        self.medians[cell][config.index()]
    }

    /// The oracle configuration of `cell` (smallest median).
    pub fn best_config(&self, cell: usize) -> OptConfig {
        self.best[cell]
    }

    /// Median runtime of `cell` under its oracle configuration —
    /// bit-identical to `median_of(cell, best_config(cell))`, one load.
    pub fn oracle_median(&self, cell: usize) -> f64 {
        self.oracle[cell]
    }

    /// Slowdown of `config` vs the cell's oracle (≥ 1; 1 = this *is*
    /// the oracle). The numerator and denominator are the same
    /// memoized medians the historical per-call expression divided, so
    /// the ratio is bit-identical to
    /// `median_of(cell, config) / median_of(cell, best_config(cell))`.
    pub fn slowdown_vs_oracle(&self, cell: usize, config: OptConfig) -> f64 {
        self.medians[cell][config.index()] / self.oracle[cell]
    }

    /// Whether `a` and `b` differ significantly on `cell` (95% CI).
    pub fn significant(&self, cell: usize, a: OptConfig, b: OptConfig) -> bool {
        let (ca, cb) = (self.cis[cell][a.index()], self.cis[cell][b.index()]);
        ca.hi < cb.lo || cb.hi < ca.lo
    }

    /// Speedup of `config` over the baseline on `cell` (> 1 is faster).
    pub fn speedup(&self, cell: usize, config: OptConfig) -> f64 {
        self.median_of(cell, OptConfig::baseline()) / self.median_of(cell, config)
    }

    /// Index of the cell for an (application, input, chip) tuple
    /// (O(1) via the dataset's prebuilt index).
    pub fn cell_index(&self, app: &str, input: &str, chip: &str) -> Option<usize> {
        self.dataset.cell_index(app, input, chip)
    }

    /// Indices of all cells matching the given dimension filters.
    pub fn select_indices(
        &self,
        app: Option<&str>,
        input: Option<&str>,
        chip: Option<&str>,
    ) -> Vec<usize> {
        self.dataset
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| {
                app.is_none_or(|a| c.app == a)
                    && input.is_none_or(|i| c.input == i)
                    && chip.is_none_or(|h| c.chip == h)
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// The verdict of Algorithm 1 on one optimisation for one partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// Statistically significant speedup: enable.
    Enable,
    /// Evidence present but no significant speedup (ineffective or
    /// harmful): leave disabled.
    Disable,
    /// Too few significant comparisons to decide (the paper's
    /// fg8-on-MALI case).
    Inconclusive,
}

/// One optimisation's analysis outcome for a partition, including the
/// values reported in paper Table IX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OptDecision {
    /// The optimisation decided on.
    pub opt: Optimization,
    /// The verdict.
    pub decision: Decision,
    /// Two-sided MWU p-value (1.0 when no samples were available).
    pub p_value: f64,
    /// Common-language effect size: probability a random (application,
    /// input) pair shows a speedup under this optimisation.
    pub effect_size: f64,
    /// Number of significant comparisons that entered the test.
    pub samples: usize,
}

/// Fewer significant comparisons than this and the analysis refuses to
/// decide (MWU cannot approach `p < 0.05` on smaller samples anyway).
pub const MIN_SAMPLES: usize = 5;

/// Reusable buffers for [`opts_for_partition_with`]: the significant
/// evidence sample, its all-ones reference, a median workspace, and the
/// Mann–Whitney rank buffer. One instance serves any number of
/// partition analyses; each buffer grows to the largest partition seen,
/// after which queries allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct AnalysisScratch {
    a: Vec<f64>,
    b: Vec<f64>,
    med: Vec<f64>,
    mwu: MwuScratch,
}

/// Upper median through a reusable buffer — the same value as
/// [`crate::stats::median`] without its allocation, and quickselect
/// instead of a full sort.
fn upper_median(values: &[f64], buf: &mut Vec<f64>) -> f64 {
    debug_assert!(!values.is_empty(), "median of empty sample");
    buf.clear();
    buf.extend_from_slice(values);
    let mid = buf.len() / 2;
    let (_, m, _) = buf.select_nth_unstable_by(mid, |x, y| {
        x.partial_cmp(y).expect("median requires non-NaN values")
    });
    *m
}

/// `OPTS_FOR_PARTITION` of Algorithm 1: analyses every optimisation over
/// the given cells and returns the recommended configuration together
/// with the per-optimisation detail.
///
/// If both `fg1` and `fg8` win, the one with the stronger effect size is
/// kept (they are mutually exclusive).
///
/// Allocates a fresh [`AnalysisScratch`] per call; loops analysing many
/// partitions should hold one and call [`opts_for_partition_with`].
pub fn opts_for_partition(stats: &DatasetStats<'_>, cells: &[usize]) -> PartitionAnalysis {
    opts_for_partition_with(stats, cells, &mut AnalysisScratch::default())
}

/// [`opts_for_partition`] with caller-supplied scratch buffers: the same
/// analysis, bit for bit, but the inner loop reads the memoized
/// per-cell evidence table and performs zero allocation.
///
/// The evidence sample is assembled pair-major then cell-minor — the
/// exact push order of the historical nested loops over
/// [`settings_enabling`] — so the Mann–Whitney input, and with it every
/// p-value and effect size, is byte-identical to the unmemoized
/// computation.
pub fn opts_for_partition_with(
    stats: &DatasetStats<'_>,
    cells: &[usize],
    scratch: &mut AnalysisScratch,
) -> PartitionAnalysis {
    let table = comparison_pairs();
    let mut decisions = Vec::with_capacity(Optimization::ALL.len());
    for (pos, opt) in Optimization::ALL.into_iter().enumerate() {
        scratch.a.clear();
        for pair in table.ranges[pos].clone() {
            for &cell in cells {
                if let Some(ratio) = stats.evidence(cell, pair) {
                    scratch.a.push(ratio);
                }
            }
        }
        let samples = scratch.a.len();
        scratch.b.clear();
        scratch.b.resize(samples, 1.0f64);
        let decision = if samples < MIN_SAMPLES {
            OptDecision {
                opt,
                decision: Decision::Inconclusive,
                p_value: 1.0,
                effect_size: if samples == 0 {
                    0.5
                } else {
                    mwu_into(&scratch.a, &scratch.b, &mut scratch.mwu)
                        .map_or(0.5, |r| r.effect_size)
                },
                samples,
            }
        } else {
            let r = mwu_into(&scratch.a, &scratch.b, &mut scratch.mwu).expect("non-empty samples");
            let enable = r.p_value < 0.05 && upper_median(&scratch.a, &mut scratch.med) < 1.0;
            OptDecision {
                opt,
                decision: if enable {
                    Decision::Enable
                } else {
                    Decision::Disable
                },
                p_value: r.p_value,
                effect_size: r.effect_size,
                samples,
            }
        };
        decisions.push(decision);
    }

    // Resolve the fg1/fg8 exclusivity by effect size.
    let fg1 = decisions
        .iter()
        .find(|d| d.opt == Optimization::Fg1)
        .expect("fg1 analysed");
    let fg8 = decisions
        .iter()
        .find(|d| d.opt == Optimization::Fg8)
        .expect("fg8 analysed");
    let drop_fg = if fg1.decision == Decision::Enable && fg8.decision == Decision::Enable {
        Some(if fg1.effect_size >= fg8.effect_size {
            Optimization::Fg8
        } else {
            Optimization::Fg1
        })
    } else {
        None
    };

    let config = decisions
        .iter()
        .filter(|d| d.decision == Decision::Enable && Some(d.opt) != drop_fg)
        .fold(OptConfig::baseline(), |cfg, d| cfg.with(d.opt));

    PartitionAnalysis { config, decisions }
}

/// Result of analysing one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionAnalysis {
    /// The configuration recommended for the partition.
    pub config: OptConfig,
    /// Per-optimisation verdicts, in [`Optimization::ALL`] order.
    pub decisions: Vec<OptDecision>,
}

impl PartitionAnalysis {
    /// The verdict for one optimisation.
    pub fn decision(&self, opt: Optimization) -> &OptDecision {
        self.decisions
            .iter()
            .find(|d| d.opt == opt)
            .expect("all optimisations analysed")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, StudyConfig};

    fn tiny() -> Dataset {
        run_study(&StudyConfig::tiny())
    }

    #[test]
    fn stats_cache_matches_cell_methods() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        for (i, cell) in ds.cells.iter().enumerate().step_by(37) {
            for idx in [0usize, 13, 95] {
                let cfg = OptConfig::from_index(idx);
                assert_eq!(stats.median_of(i, cfg), cell.median(cfg));
            }
            assert_eq!(stats.best_config(i), cell.best_config());
        }
    }

    #[test]
    fn cell_index_round_trips() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let i = stats
            .cell_index("bfs-wl", "social", "R9")
            .expect("cell exists");
        assert_eq!(ds.cells[i].app, "bfs-wl");
        assert_eq!(ds.cells[i].chip, "R9");
        assert!(stats.cell_index("bfs-wl", "social", "NOPE").is_none());
    }

    #[test]
    fn select_indices_counts() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        assert_eq!(stats.select_indices(None, None, None).len(), 306);
        assert_eq!(stats.select_indices(None, None, Some("MALI")).len(), 51);
        assert_eq!(
            stats
                .select_indices(Some("tri"), Some("road"), Some("R9"))
                .len(),
            1
        );
    }

    #[test]
    fn identical_configs_never_significant() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        for i in (0..stats.num_cells()).step_by(29) {
            let cfg = OptConfig::from_index(7);
            assert!(!stats.significant(i, cfg, cfg));
        }
    }

    #[test]
    fn partition_analysis_produces_valid_config() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let all: Vec<usize> = (0..stats.num_cells()).collect();
        let analysis = opts_for_partition(&stats, &all);
        // fg1 and fg8 never both enabled.
        assert!(
            !(analysis.config.enables(Optimization::Fg1)
                && analysis.config.enables(Optimization::Fg8))
        );
        assert_eq!(analysis.decisions.len(), 7);
        for d in &analysis.decisions {
            assert!((0.0..=1.0).contains(&d.p_value), "{d:?}");
            assert!((0.0..=1.0).contains(&d.effect_size), "{d:?}");
            if d.decision == Decision::Enable {
                // Enabled decisions appear in the config — except one of
                // fg1/fg8 when both win (they are mutually exclusive).
                let fg_displaced = matches!(d.opt, Optimization::Fg1 | Optimization::Fg8)
                    && (analysis.config.enables(Optimization::Fg1)
                        || analysis.config.enables(Optimization::Fg8));
                assert!(analysis.config.enables(d.opt) || fg_displaced, "{d:?}");
                assert!(d.p_value < 0.05);
            }
        }
    }

    #[test]
    fn empty_partition_is_all_inconclusive() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let analysis = opts_for_partition(&stats, &[]);
        assert!(analysis.config.is_baseline());
        assert!(analysis
            .decisions
            .iter()
            .all(|d| d.decision == Decision::Inconclusive));
    }

    #[test]
    fn decision_lookup_by_opt() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let all: Vec<usize> = (0..stats.num_cells()).collect();
        let analysis = opts_for_partition(&stats, &all);
        assert_eq!(analysis.decision(Optimization::Sg).opt, Optimization::Sg);
    }

    #[test]
    fn evidence_memo_agrees_with_fresh_computation() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let pairs = stats.num_comparison_pairs();
        assert_eq!(pairs, 5 * 48 + 2 * 32);
        for cell in (0..stats.num_cells()).step_by(7) {
            for pair in (0..pairs).step_by(5) {
                let (os, mirror) = stats.comparison_pair(pair);
                let fresh = stats
                    .significant(cell, os, mirror)
                    .then(|| stats.median_of(cell, os) / stats.median_of(cell, mirror));
                assert_eq!(stats.evidence(cell, pair), fresh, "cell {cell} pair {pair}");
            }
        }
    }

    #[test]
    fn comparison_pairs_mirror_their_optimisation() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        for pair in 0..stats.num_comparison_pairs() {
            let (os, mirror) = stats.comparison_pair(pair);
            // The two configurations differ in exactly one optimisation,
            // enabled on the setting side and cleared on the mirror.
            let differing: Vec<Optimization> = Optimization::ALL
                .into_iter()
                .filter(|&o| os.enables(o) != mirror.enables(o))
                .collect();
            assert_eq!(differing.len(), 1, "{os:?} vs {mirror:?}");
            assert!(os.enables(differing[0]) && !mirror.enables(differing[0]));
        }
    }

    #[test]
    fn scratch_reuse_is_equivalent_to_fresh_scratch() {
        let ds = tiny();
        let stats = DatasetStats::new(&ds);
        let mut scratch = AnalysisScratch::default();
        for chip in &ds.chips {
            let cells = stats.select_indices(None, None, Some(chip));
            let reused = opts_for_partition_with(&stats, &cells, &mut scratch);
            assert_eq!(reused, opts_for_partition(&stats, &cells), "{chip}");
        }
        // An empty partition after large ones must still be clean.
        let empty = opts_for_partition_with(&stats, &[], &mut scratch);
        assert_eq!(empty, opts_for_partition(&stats, &[]));
    }
}

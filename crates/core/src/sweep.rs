//! Mechanism inversion over a parametric chip sweep: which chip axes
//! flip each optimisation from win to loss?
//!
//! Table VI of the paper explains the six study GPUs' flips by
//! inspection; six points cannot separate correlated mechanisms. A
//! [`gpp_apps::sweep`] run prices thousands of synthetic chips instead,
//! and this module inverts that grid: for each optimisation it fits
//!
//! 1. a ridge least-squares model of the mean log runtime ratio against
//!    the z-scored chip axes (continuous effect size), and
//! 2. a logistic win/loss boundary (sign of the ratio) via iteratively
//!    reweighted least squares,
//!
//! both on the same feature matrix ([`chip_features`]: cost axes in log
//! space, geometry axes, and the two JIT/lockstep indicators). The
//! logistic coefficients rank the axes by how strongly they drive the
//! sign flip; the report lists the top axes per optimisation. Every fit
//! is a fixed-iteration, fixed-order floating-point computation — the
//! report is a pure function of its inputs.

use gpp_sim::chip::ChipProfile;
use serde::{Deserialize, Serialize};

use crate::report::Table;

/// Names of the chip feature axes, in [`chip_features`] order.
pub const FEATURE_NAMES: [&str; 16] = [
    "ln alu_cost",
    "ln global_mem_cost",
    "divergence_penalty",
    "barrier_divergence_relief",
    "ln local_mem_cost",
    "ln atomic_rmw_cost",
    "ln atomic_uncontended_cost",
    "ln sg_collective_cost",
    "ln wg_barrier_cost",
    "sg_barrier_cost",
    "ln global_barrier_cost_per_wg",
    "ln launch+copy_cost",
    "ln subgroup_size",
    "ln max_threads_per_cu",
    "ln occupancy (cus*threads)",
    "jit_subgroup_combining",
];

/// The feature vector of one chip: cost axes in natural-log space (they
/// were generated log-uniformly), linear axes as-is, booleans as 0/1.
pub fn chip_features(chip: &ChipProfile) -> Vec<f64> {
    vec![
        chip.alu_cost.ln(),
        chip.global_mem_cost.ln(),
        chip.divergence_penalty,
        chip.barrier_divergence_relief,
        chip.local_mem_cost.ln(),
        chip.atomic_rmw_cost.ln(),
        chip.atomic_uncontended_cost.ln(),
        chip.sg_collective_cost.ln(),
        chip.wg_barrier_cost.ln(),
        chip.sg_barrier_cost,
        chip.global_barrier_cost_per_wg.ln(),
        (chip.kernel_launch_cost + chip.host_copy_cost).ln(),
        f64::from(chip.subgroup_size.max(1)).ln(),
        f64::from(chip.max_threads_per_cu).ln(),
        (f64::from(chip.num_cus) * f64::from(chip.throughput_threads)).ln(),
        f64::from(u8::from(chip.jit_subgroup_combining)),
    ]
}

/// The fitted win/loss boundary of one optimisation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptBoundary {
    /// Optimisation name.
    pub opt: String,
    /// Fraction of swept chips where the optimisation wins.
    pub win_rate: f64,
    /// Mean log runtime ratio over all swept chips (negative = wins on
    /// the average chip).
    pub mean_log_ratio: f64,
    /// Ridge least-squares coefficients on the z-scored axes
    /// ([`FEATURE_NAMES`] order).
    pub ls_coefs: Vec<f64>,
    /// Least-squares intercept.
    pub ls_intercept: f64,
    /// Coefficient of determination of the least-squares fit.
    pub r2: f64,
    /// Logistic (win = 1) coefficients on the z-scored axes.
    pub logit_coefs: Vec<f64>,
    /// Logistic intercept.
    pub logit_intercept: f64,
    /// Training accuracy of the logistic boundary.
    pub accuracy: f64,
    /// The axes that most strongly drive the sign flip, strongest
    /// first (by absolute logistic coefficient).
    pub top_axes: Vec<String>,
}

/// The full inversion report over a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Feature axis names, in coefficient order.
    pub features: Vec<String>,
    /// Number of chips the fits were trained on.
    pub chips: usize,
    /// One fitted boundary per optimisation, in sweep order.
    pub boundaries: Vec<OptBoundary>,
}

/// Solves `a x = b` (dense, square) by Gaussian elimination with
/// partial pivoting. `a` is row-major and consumed.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty system");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(
            diag.abs() > 1e-12,
            "singular system despite ridge term (column {col})"
        );
        for row in col + 1..n {
            // Disjoint borrows of the pivot row (above the split) and the
            // row being eliminated (first below it); `row > col` always.
            let (upper, lower) = a.split_at_mut(row);
            let (pivot_row, cur) = (&upper[col], &mut lower[0]);
            let f = cur[col] / diag;
            if f == 0.0 {
                continue;
            }
            for (x, &p) in cur[col..].iter_mut().zip(&pivot_row[col..]) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = acc / a[col][col];
    }
    x
}

/// Ridge least squares of `y` against `x` (rows = chips, first column is
/// the intercept). Returns the coefficient vector.
fn ridge_ls(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Vec<f64> {
    let d = x[0].len();
    let mut xtx = vec![vec![0.0; d]; d];
    let mut xty = vec![0.0; d];
    for (row, &yi) in x.iter().zip(y) {
        for i in 0..d {
            for j in 0..d {
                xtx[i][j] += row[i] * row[j];
            }
            xty[i] += row[i] * yi;
        }
    }
    for (i, row) in xtx.iter_mut().enumerate() {
        row[i] += lambda;
    }
    solve(xtx, xty)
}

/// Logistic regression of binary `y` against `x` by IRLS with a ridge
/// term — a fixed 25 iterations, so the result is deterministic even
/// when the classes are separable.
fn logistic_irls(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Vec<f64> {
    let d = x[0].len();
    let mut beta = vec![0.0; d];
    for _ in 0..25 {
        let mut xtwx = vec![vec![0.0; d]; d];
        let mut xtwz = vec![0.0; d];
        for (row, &yi) in x.iter().zip(y) {
            let eta: f64 = row
                .iter()
                .zip(&beta)
                .map(|(a, b)| a * b)
                .sum::<f64>()
                .clamp(-30.0, 30.0);
            let p = 1.0 / (1.0 + (-eta).exp());
            let w = (p * (1.0 - p)).max(1e-6);
            let z = eta + (yi - p) / w;
            for i in 0..d {
                for j in 0..d {
                    xtwx[i][j] += w * row[i] * row[j];
                }
                xtwz[i] += w * row[i] * z;
            }
        }
        for (i, row) in xtwx.iter_mut().enumerate() {
            row[i] += lambda;
        }
        beta = solve(xtwx, xtwz);
    }
    beta
}

/// Inverts a sweep: fits per-optimisation win/loss boundaries against
/// the chip axes. `log_ratios[chip][opt]` is
/// [`gpp_apps::sweep::ChipSweep::log_ratios`]; `chips` must be the
/// profiles the sweep priced, in the same order.
///
/// # Panics
///
/// Panics if the dimensions disagree or fewer than two chips are given
/// (a boundary needs at least two points).
pub fn invert_sweep(chips: &[ChipProfile], opts: &[String], log_ratios: &[Vec<f64>]) -> SweepReport {
    assert!(chips.len() >= 2, "need at least two chips to fit a boundary");
    assert_eq!(chips.len(), log_ratios.len(), "one ratio row per chip");
    for row in log_ratios {
        assert_eq!(row.len(), opts.len(), "one ratio per optimisation");
    }

    // z-score the raw features; constant columns (e.g. every chip has
    // JIT combining) get unit scale so their coefficient is simply 0.
    let raw: Vec<Vec<f64>> = chips.iter().map(chip_features).collect();
    let d = FEATURE_NAMES.len();
    let n = chips.len() as f64;
    let mut mean = vec![0.0; d];
    for row in &raw {
        for (m, v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut sd = vec![0.0; d];
    for row in &raw {
        for ((s, v), m) in sd.iter_mut().zip(row).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    for s in &mut sd {
        *s = (*s / n).sqrt();
        if *s == 0.0 {
            *s = 1.0;
        }
    }
    // Design matrix with a leading intercept column.
    let x: Vec<Vec<f64>> = raw
        .iter()
        .map(|row| {
            std::iter::once(1.0)
                .chain(
                    row.iter()
                        .zip(&mean)
                        .zip(&sd)
                        .map(|((v, m), s)| (v - m) / s),
                )
                .collect()
        })
        .collect();

    let boundaries = opts
        .iter()
        .enumerate()
        .map(|(k, opt)| {
            let y_ls: Vec<f64> = log_ratios.iter().map(|row| row[k]).collect();
            let y_bin: Vec<f64> = y_ls.iter().map(|&v| f64::from(u8::from(v < 0.0))).collect();
            let wins = y_bin.iter().sum::<f64>();
            let mean_y = y_ls.iter().sum::<f64>() / n;

            let ls = ridge_ls(&x, &y_ls, 1e-6);
            let sst: f64 = y_ls.iter().map(|v| (v - mean_y) * (v - mean_y)).sum();
            let ssr: f64 = x
                .iter()
                .zip(&y_ls)
                .map(|(row, &yi)| {
                    let pred: f64 = row.iter().zip(&ls).map(|(a, b)| a * b).sum();
                    (yi - pred) * (yi - pred)
                })
                .sum();
            let r2 = if sst > 0.0 { 1.0 - ssr / sst } else { 0.0 };

            let logit = logistic_irls(&x, &y_bin, 1e-3);
            let correct = x
                .iter()
                .zip(&y_bin)
                .filter(|(row, &yi)| {
                    let eta: f64 = row.iter().zip(&logit).map(|(a, b)| a * b).sum();
                    (eta > 0.0) == (yi > 0.5)
                })
                .count();

            let mut order: Vec<usize> = (0..d).collect();
            order.sort_by(|&a, &b| {
                logit[b + 1]
                    .abs()
                    .total_cmp(&logit[a + 1].abs())
                    .then(a.cmp(&b))
            });
            let top_axes = order
                .iter()
                .take(3)
                .map(|&i| FEATURE_NAMES[i].to_owned())
                .collect();

            OptBoundary {
                opt: opt.clone(),
                win_rate: wins / n,
                mean_log_ratio: mean_y,
                ls_coefs: ls[1..].to_vec(),
                ls_intercept: ls[0],
                r2,
                logit_coefs: logit[1..].to_vec(),
                logit_intercept: logit[0],
                accuracy: correct as f64 / n,
                top_axes,
            }
        })
        .collect();

    SweepReport {
        features: FEATURE_NAMES.iter().map(|&s| s.to_owned()).collect(),
        chips: chips.len(),
        boundaries,
    }
}

/// Renders an inversion report as a plain-text table: one row per
/// optimisation with its win rate, mean effect, fit quality, and the
/// axes that drive its sign flip.
pub fn sweep_table(report: &SweepReport) -> Table {
    let mut table = Table::new(["opt", "win%", "mean ln ratio", "r2", "acc", "top axes"]);
    for b in &report.boundaries {
        table.row([
            b.opt.clone(),
            format!("{:.1}", b.win_rate * 100.0),
            format!("{:+.4}", b.mean_log_ratio),
            format!("{:.3}", b.r2),
            format!("{:.3}", b.accuracy),
            b.top_axes.join(", "),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_sim::chip::{latin_hypercube_chips, study_chips};

    /// A synthetic sweep whose sign structure is known exactly: opt 0
    /// wins iff ln(launch+copy) is above its mean, opt 1 always loses.
    fn synthetic(chips: &[ChipProfile]) -> (Vec<String>, Vec<Vec<f64>>) {
        let launch: Vec<f64> = chips
            .iter()
            .map(|c| (c.kernel_launch_cost + c.host_copy_cost).ln())
            .collect();
        let mid = launch.iter().sum::<f64>() / launch.len() as f64;
        let ratios = launch
            .iter()
            .map(|&l| vec![mid - l, 0.25])
            .collect();
        (vec!["oitergb".into(), "wg".into()], ratios)
    }

    #[test]
    fn inversion_recovers_a_planted_axis() {
        let chips = latin_hypercube_chips(64, 11);
        let (opts, ratios) = synthetic(&chips);
        let report = invert_sweep(&chips, &opts, &ratios);
        assert_eq!(report.chips, 64);
        assert_eq!(report.boundaries.len(), 2);

        let b = &report.boundaries[0];
        assert!(b.win_rate > 0.2 && b.win_rate < 0.8);
        // The planted axis dominates both fits.
        assert_eq!(b.top_axes[0], "ln launch+copy_cost");
        assert!(b.r2 > 0.95, "r2 = {}", b.r2);
        assert!(b.accuracy > 0.9, "accuracy = {}", b.accuracy);

        // An optimisation that always loses: win rate 0, trivially
        // perfect boundary, flat least-squares fit.
        let never = &report.boundaries[1];
        assert_eq!(never.win_rate, 0.0);
        assert_eq!(never.accuracy, 1.0);
        assert!(never.mean_log_ratio > 0.0);
    }

    #[test]
    fn inversion_is_deterministic() {
        let chips = latin_hypercube_chips(32, 3);
        let (opts, ratios) = synthetic(&chips);
        let a = invert_sweep(&chips, &opts, &ratios);
        let b = invert_sweep(&chips, &opts, &ratios);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn constant_feature_columns_are_harmless() {
        // The six study chips share several axis values; z-scoring must
        // not divide by zero and coefficients must stay finite.
        let chips = study_chips();
        let (opts, ratios) = synthetic(&chips);
        let report = invert_sweep(&chips, &opts, &ratios);
        for b in &report.boundaries {
            assert!(b.ls_coefs.iter().all(|v| v.is_finite()));
            assert!(b.logit_coefs.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn table_renders_one_row_per_opt() {
        let chips = latin_hypercube_chips(16, 5);
        let (opts, ratios) = synthetic(&chips);
        let report = invert_sweep(&chips, &opts, &ratios);
        let table = sweep_table(&report);
        assert_eq!(table.len(), 2);
        assert!(table.render().contains("oitergb"));
    }

    #[test]
    #[should_panic(expected = "at least two chips")]
    fn single_chip_sweep_rejected() {
        let chips = study_chips();
        invert_sweep(&chips[..1], &["wg".into()], &[vec![0.1]]);
    }
}

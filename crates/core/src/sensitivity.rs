//! Sample-size sensitivity: the paper's future-work question (Section
//! IX-b) — could a *subset* of the test domain yield the same
//! recommendations as the exhaustive dataset?
//!
//! The experiment: repeatedly subsample the (application, input) tests —
//! keeping all chips for each kept test — rerun the per-chip analysis of
//! Algorithm 1 on the reduced dataset, and measure how often its
//! enable/disable verdicts agree with those from the full dataset.

use gpp_apps::study::Dataset;
use gpp_graph::rng::Rng64;
use gpp_obs::Tracer;
use gpp_par::par_map_traced;
use gpp_sim::opts::Optimization;
use serde::{Deserialize, Serialize};

use crate::analysis::{AnalysisScratch, DatasetStats, Decision};
use crate::strategy::{chip_function_on, chip_function_par};

/// Agreement of one subsampled analysis with the full analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityPoint {
    /// Fraction of (application, input) tests kept.
    pub fraction: f64,
    /// Tests kept (out of applications × inputs).
    pub tests_kept: usize,
    /// Fraction of (chip, optimisation) verdicts matching the full
    /// dataset's, averaged over trials.
    pub decision_agreement: f64,
    /// Fraction of per-chip recommended configurations identical to the
    /// full dataset's, averaged over trials.
    pub config_agreement: f64,
    /// Fraction of verdicts that were inconclusive in the subsample,
    /// averaged over trials.
    pub inconclusive: f64,
}

/// The full sensitivity sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityReport {
    /// One point per requested fraction, in input order.
    pub points: Vec<SensitivityPoint>,
    /// Trials averaged per point.
    pub trials: usize,
}

/// Runs the sensitivity sweep.
///
/// For each `fraction`, `trials` random subsets of the (application,
/// input) tests are drawn (seeded deterministically from `seed`), the
/// per-chip analysis is rerun on each, and verdict/config agreement with
/// the full-dataset analysis is averaged.
///
/// Serial convenience wrapper over [`subsample_sensitivity_par`] with
/// one worker and no tracing.
///
/// # Panics
///
/// Panics if `trials` is zero, a fraction is outside `(0, 1]`, or the
/// dataset is empty.
pub fn subsample_sensitivity(
    dataset: &Dataset,
    fractions: &[f64],
    trials: usize,
    seed: u64,
) -> SensitivityReport {
    subsample_sensitivity_par(dataset, fractions, trials, seed, 1, &Tracer::disabled())
}

/// [`subsample_sensitivity`] with an explicit worker-thread count and
/// tracer.
///
/// Determinism: every trial's subsample is drawn up front on the
/// caller's thread, consuming the seeded generator in the exact order
/// the historical serial loop did; the trials then fan out and their
/// agreement scores are folded back in trial order, preserving the f64
/// summation order. Each trial re-analyses its subsample through the
/// full dataset's memoized evidence tables (a cell-subset view via
/// [`chip_function_on`]) rather than rebuilding a [`DatasetStats`]: the
/// kept cells carry identical timings either way, so the verdicts — and
/// the whole report — are byte-identical at any thread count.
///
/// The trials fan out on `gpp-par`'s scoped engine (the closure borrows
/// the memoized `full_stats`, so the persistent pool's `'static` jobs
/// cannot carry it); issued from inside another parallel worker the
/// fan-out runs inline — cooperative nesting, same report.
///
/// # Panics
///
/// Panics if `trials` is zero, a fraction is outside `(0, 1]`, or the
/// dataset is empty.
pub fn subsample_sensitivity_par(
    dataset: &Dataset,
    fractions: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
    tracer: &Tracer,
) -> SensitivityReport {
    assert!(trials > 0, "need at least one trial");
    assert!(!dataset.cells.is_empty(), "dataset must not be empty");
    let full_stats = DatasetStats::new(dataset);
    let full = chip_function_par(&full_stats, threads, tracer);

    // The unit of subsampling is one (application, input) test.
    let mut tests: Vec<(String, String)> = Vec::new();
    for app in &dataset.apps {
        for input in &dataset.inputs {
            tests.push((app.clone(), input.clone()));
        }
    }

    // Pre-draw every trial's kept cell set serially.
    let mut rng = Rng64::new(seed ^ 0x5e5e_11fe);
    let mut keeps = Vec::with_capacity(fractions.len());
    let mut trial_cells: Vec<Vec<usize>> = Vec::with_capacity(fractions.len() * trials);
    for &fraction in fractions {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction {fraction} out of range"
        );
        let keep = ((tests.len() as f64 * fraction).round() as usize).clamp(1, tests.len());
        keeps.push(keep);
        for _ in 0..trials {
            let mut order: Vec<usize> = (0..tests.len()).collect();
            rng.shuffle(&mut order);
            let kept: Vec<&(String, String)> = order[..keep].iter().map(|&i| &tests[i]).collect();
            trial_cells.push(
                dataset
                    .cells
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| kept.iter().any(|(a, i)| c.app == *a && c.input == *i))
                    .map(|(i, _)| i)
                    .collect(),
            );
        }
    }

    let _phase = tracer.span_detail("phase", Some("sensitivity-trials".to_owned()));
    let per_trial: Vec<(f64, f64, f64)> = par_map_traced(
        &trial_cells,
        threads,
        tracer,
        "sensitivity-trials",
        |_, cells| {
            let mut scratch = AnalysisScratch::default();
            let sub_fn = chip_function_on(&full_stats, cells, &mut scratch);

            let (mut agree, mut total, mut inconclusive) = (0usize, 0usize, 0usize);
            let mut configs_match = 0usize;
            for ((chip_a, full_a), (chip_b, sub_a)) in full.iter().zip(&sub_fn) {
                assert_eq!(chip_a, chip_b, "chip order is stable");
                for opt in Optimization::ALL {
                    total += 1;
                    let (fd, sd) = (full_a.decision(opt).decision, sub_a.decision(opt).decision);
                    if sd == Decision::Inconclusive {
                        inconclusive += 1;
                    }
                    if fd == sd {
                        agree += 1;
                    }
                }
                if full_a.config == sub_a.config {
                    configs_match += 1;
                }
            }
            (
                agree as f64 / total as f64,
                configs_match as f64 / full.len() as f64,
                inconclusive as f64 / total as f64,
            )
        },
    );

    let mut points = Vec::with_capacity(fractions.len());
    for (fi, &fraction) in fractions.iter().enumerate() {
        let (mut agree_sum, mut config_sum, mut inconclusive_sum) = (0.0f64, 0.0f64, 0.0f64);
        for (agree, config, inconclusive) in per_trial.iter().skip(fi * trials).take(trials) {
            agree_sum += agree;
            config_sum += config;
            inconclusive_sum += inconclusive;
        }
        points.push(SensitivityPoint {
            fraction,
            tests_kept: keeps[fi],
            decision_agreement: agree_sum / trials as f64,
            config_agreement: config_sum / trials as f64,
            inconclusive: inconclusive_sum / trials as f64,
        });
    }
    SensitivityReport { points, trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, StudyConfig};

    fn tiny() -> Dataset {
        run_study(&StudyConfig::tiny())
    }

    #[test]
    fn full_fraction_agrees_perfectly() {
        let ds = tiny();
        let report = subsample_sensitivity(&ds, &[1.0], 2, 7);
        let p = &report.points[0];
        assert_eq!(p.tests_kept, 51);
        assert!((p.decision_agreement - 1.0).abs() < 1e-12);
        assert!((p.config_agreement - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agreement_declines_or_holds_with_smaller_samples() {
        let ds = tiny();
        let report = subsample_sensitivity(&ds, &[1.0, 0.5, 0.1], 3, 11);
        assert_eq!(report.points.len(), 3);
        let full = report.points[0].decision_agreement;
        for p in &report.points[1..] {
            assert!(p.decision_agreement <= full + 1e-12, "{p:?}");
            assert!((0.0..=1.0).contains(&p.decision_agreement));
            assert!((0.0..=1.0).contains(&p.config_agreement));
        }
    }

    #[test]
    fn smaller_samples_are_more_often_inconclusive() {
        let ds = tiny();
        let report = subsample_sensitivity(&ds, &[1.0, 0.05], 3, 3);
        assert!(report.points[1].inconclusive >= report.points[0].inconclusive);
    }

    #[test]
    fn sweep_is_deterministic_in_seed() {
        let ds = tiny();
        let a = subsample_sensitivity(&ds, &[0.3], 2, 5);
        let b = subsample_sensitivity(&ds, &[0.3], 2, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_sweep_matches_serial_byte_for_byte() {
        let ds = tiny();
        let serial = subsample_sensitivity(&ds, &[0.5, 0.2], 3, 9);
        let par = subsample_sensitivity_par(&ds, &[0.5, 0.2], 3, 9, 4, &Tracer::disabled());
        assert_eq!(serial, par);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn rejects_zero_fraction() {
        subsample_sensitivity(&tiny(), &[0.0], 1, 1);
    }

    #[test]
    #[should_panic(expected = "trial")]
    fn rejects_zero_trials() {
        subsample_sensitivity(&tiny(), &[0.5], 0, 1);
    }
}

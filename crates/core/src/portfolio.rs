//! k-version portfolio search: "A Few Fit Most" over the priced grid.
//!
//! The paper picks one semi-specialised configuration per partition;
//! Hochgraf & Pai show that a *small portfolio* of k kernel versions
//! covers most devices nearly as well as full specialisation. This
//! module searches for that portfolio: choose k of the 96
//! configurations minimising the geomean (or worst-case) slowdown
//! versus the per-cell oracle, for k = 1..8, and emit the
//! portability-cost curve (slowdown vs k).
//!
//! The search is only tractable because the inner evaluation is made
//! brutally fast. [`SlowdownMatrix`] flattens [`DatasetStats`] into a
//! dense config-major table of per-cell slowdown-vs-oracle ratios and
//! their natural logs, built once in a single pass over the memoized
//! median tables. Scoring one portfolio is then a branch-free
//! columnwise min-reduce over contiguous rows followed by one
//! geomean/worst-case fold — no hash lookups, no divisions, and no
//! per-cell `ln` calls in the hot loop (the logs are precomputed, and
//! both objectives fold in log space). The naive per-cell
//! `DatasetStats`-lookup scorer is kept as the differential oracle:
//! [`score_portfolio_naive`] computes the same chained `f64::min` over
//! the same `ln` values in the same order, so the two scorers agree
//! *bit for bit* (asserted in tests and in the `study_grid` bench,
//! which also enforces the ≥ 10x speedup as `portfolio_matrix_speedup`).
//!
//! Search itself is exact for small k — lexicographic enumeration with
//! branch-and-bound pruning, where the bound folds the current prefix
//! against elementwise suffix minima (the best possible completion) and
//! kills a prefix, and everything lexicographically after it, as soon
//! as even that ideal completion cannot beat the incumbent — and a
//! seeded beam search above the exact threshold. Both fan out over the
//! `gpp-par` pooled executor: the exact search by first configuration
//! with a fixed greedy incumbent per subtree (never a shared racing
//! best, so pruning decisions do not depend on thread timing), the beam
//! by pure candidate scoring with a serial sort on a total key. Results
//! *and* the `portfolio.*` counters are therefore byte-identical at any
//! thread count.

use std::sync::Arc;

use gpp_obs::metrics;
use gpp_sim::opts::{OptConfig, NUM_CONFIGS};
use serde::{Deserialize, Serialize};

use crate::analysis::DatasetStats;

/// How a portfolio is scored across cells (always on slowdown-vs-oracle
/// ratios, always ≥ 1, 1 = oracle performance everywhere).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// Geometric mean of the per-cell best-version slowdowns.
    Geomean,
    /// The single worst per-cell best-version slowdown.
    Worst,
}

impl Objective {
    /// Parses a CLI spelling (`geomean` | `worst`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "geomean" => Ok(Objective::Geomean),
            "worst" => Ok(Objective::Worst),
            other => Err(format!("unknown objective `{other}` (geomean | worst)")),
        }
    }

    /// The CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Objective::Geomean => "geomean",
            Objective::Worst => "worst",
        }
    }

    /// Folds per-cell minimum log-slowdowns into the objective value.
    ///
    /// Empty input (a degenerate zero-cell dataset) returns 1.0 — the
    /// fold's neutral element — instead of letting a 0/0 or an empty
    /// max propagate NaN into reports; the same guard as
    /// [`crate::stats::geomean`].
    #[must_use]
    pub fn fold_logs(self, min_logs: &[f64]) -> f64 {
        if min_logs.is_empty() {
            return 1.0;
        }
        match self {
            Objective::Geomean => {
                let sum: f64 = min_logs.iter().sum();
                (sum / min_logs.len() as f64).exp()
            }
            Objective::Worst => {
                let mut worst = f64::NEG_INFINITY;
                for &v in min_logs {
                    worst = worst.max(v);
                }
                worst.exp()
            }
        }
    }
}

/// Dense config-major table of per-cell slowdown-vs-oracle ratios.
///
/// `ratio(config, cell)` is exactly
/// `stats.median_of(cell, config) / stats.median_of(cell, best)` — the
/// same two memoized loads and one divide as the per-cell lookup, so
/// entries are bit-identical to [`DatasetStats::slowdown_vs_oracle`]
/// (`f64::to_bits`-asserted in tests). Rows are contiguous per
/// configuration, which is the layout the search wants: evaluating a
/// portfolio min-reduces k rows columnwise and folds once. The log
/// plane stores `ratio.ln()` so neither scorer pays a transcendental
/// per cell per candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SlowdownMatrix {
    num_cells: usize,
    /// `ratios[config * num_cells + cell]`, ≥ 1.
    ratios: Vec<f64>,
    /// `ratios[i].ln()`, ≥ 0 (`ln(1.0)` is +0.0, so chained `f64::min`
    /// over logs never hits a ±0 ordering ambiguity).
    logs: Vec<f64>,
}

impl SlowdownMatrix {
    /// Flattens a [`DatasetStats`] into the dense matrix in a single
    /// pass over the memoized median tables. Build time is recorded as
    /// the `portfolio.matrix_build_ns` histogram.
    #[must_use]
    pub fn from_stats(stats: &DatasetStats<'_>) -> Self {
        let started = metrics::start();
        let n = stats.num_cells();
        let mut ratios = vec![0.0f64; NUM_CONFIGS * n];
        for cell in 0..n {
            for cfg in 0..NUM_CONFIGS {
                ratios[cfg * n + cell] = stats.slowdown_vs_oracle(cell, OptConfig::from_index(cfg));
            }
        }
        let logs = ratios.iter().map(|r| r.ln()).collect();
        metrics::observe_since("portfolio.matrix_build_ns", started);
        SlowdownMatrix {
            num_cells: n,
            ratios,
            logs,
        }
    }

    /// Builds the matrix from raw per-cell, per-configuration times —
    /// the `gpp sweep` cloud handoff, where a cell is a (pair, chip)
    /// of the parametric sweep rather than a study cell. Each row must
    /// hold all 96 configuration times; the cell's oracle is its
    /// fastest configuration (first minimum on ties, matching
    /// `best_config`'s scan direction on distinct-time data).
    ///
    /// # Panics
    ///
    /// Panics if any row is not exactly 96 entries or any time is not
    /// strictly positive.
    #[must_use]
    pub fn from_cell_times(times: &[Vec<f64>]) -> Self {
        let started = metrics::start();
        let n = times.len();
        let mut ratios = vec![0.0f64; NUM_CONFIGS * n];
        for (cell, row) in times.iter().enumerate() {
            assert_eq!(row.len(), NUM_CONFIGS, "cell is missing configurations");
            let mut oracle = f64::INFINITY;
            for &t in row {
                assert!(t > 0.0, "times must be positive, got {t}");
                oracle = oracle.min(t);
            }
            for (cfg, &t) in row.iter().enumerate() {
                ratios[cfg * n + cell] = t / oracle;
            }
        }
        let logs = ratios.iter().map(|r| r.ln()).collect();
        metrics::observe_since("portfolio.matrix_build_ns", started);
        SlowdownMatrix {
            num_cells: n,
            ratios,
            logs,
        }
    }

    /// Number of cells (columns).
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.num_cells
    }

    /// Slowdown of `config` vs the cell's oracle (≥ 1).
    #[must_use]
    pub fn ratio(&self, config: usize, cell: usize) -> f64 {
        self.ratios[config * self.num_cells + cell]
    }

    /// `ratio(config, cell).ln()`.
    #[must_use]
    pub fn log_ratio(&self, config: usize, cell: usize) -> f64 {
        self.logs[config * self.num_cells + cell]
    }

    /// The contiguous log-slowdown row of one configuration.
    #[must_use]
    pub fn log_row(&self, config: usize) -> &[f64] {
        &self.logs[config * self.num_cells..(config + 1) * self.num_cells]
    }
}

/// Reusable portfolio evaluator over a [`SlowdownMatrix`]: one scratch
/// row, grown on first use, after which every [`score`](Self::score)
/// is allocation-free (asserted by a counting-allocator check in the
/// `study_grid` bench).
#[derive(Debug)]
pub struct PortfolioScorer<'m> {
    matrix: &'m SlowdownMatrix,
    scratch: Vec<f64>,
}

impl<'m> PortfolioScorer<'m> {
    /// A scorer over `matrix`.
    #[must_use]
    pub fn new(matrix: &'m SlowdownMatrix) -> Self {
        PortfolioScorer {
            matrix,
            scratch: Vec::with_capacity(matrix.num_cells()),
        }
    }

    /// Scores a portfolio of configuration indices: columnwise min over
    /// the rows, then the objective fold. An empty portfolio cannot run
    /// anything and scores +∞ (defined, never NaN); zero cells score
    /// 1.0 per [`Objective::fold_logs`].
    pub fn score(&mut self, configs: &[usize], objective: Objective) -> f64 {
        if self.matrix.num_cells == 0 {
            return 1.0;
        }
        let Some((&first, rest)) = configs.split_first() else {
            return f64::INFINITY;
        };
        self.scratch.clear();
        self.scratch.extend_from_slice(self.matrix.log_row(first));
        for &cfg in rest {
            let row = self.matrix.log_row(cfg);
            for (m, &v) in self.scratch.iter_mut().zip(row) {
                *m = m.min(v);
            }
        }
        objective.fold_logs(&self.scratch)
    }
}

/// The naive differential oracle: scores a portfolio straight off the
/// per-cell [`DatasetStats`] lookups — per (cell, config) two memoized
/// loads, a divide, and an `ln` — chaining `f64::min` in the same
/// config order and folding in the same cell order as
/// [`PortfolioScorer::score`], so the result is bit-identical while
/// being an order of magnitude slower (that gap is the
/// `portfolio_matrix_speedup` bench field).
#[must_use]
pub fn score_portfolio_naive(
    stats: &DatasetStats<'_>,
    configs: &[usize],
    objective: Objective,
) -> f64 {
    let n = stats.num_cells();
    if n == 0 {
        return 1.0;
    }
    if configs.is_empty() {
        return f64::INFINITY;
    }
    match objective {
        Objective::Geomean => {
            let mut sum = 0.0f64;
            for cell in 0..n {
                sum += min_log_slowdown(stats, cell, configs);
            }
            (sum / n as f64).exp()
        }
        Objective::Worst => {
            let mut worst = f64::NEG_INFINITY;
            for cell in 0..n {
                worst = worst.max(min_log_slowdown(stats, cell, configs));
            }
            worst.exp()
        }
    }
}

/// `min` over the portfolio of `ln(slowdown_vs_oracle)` for one cell,
/// chained in config order exactly as the matrix scorer chains it
/// (`min(+∞, x)` is `x` for every non-NaN `x`, so seeding with +∞
/// matches seeding with the first row).
fn min_log_slowdown(stats: &DatasetStats<'_>, cell: usize, configs: &[usize]) -> f64 {
    let mut m = f64::INFINITY;
    for &cfg in configs {
        m = m.min(stats.slowdown_vs_oracle(cell, OptConfig::from_index(cfg)).ln());
    }
    m
}

/// Parameters of a portfolio search.
#[derive(Debug, Clone, Copy)]
pub struct SearchParams {
    /// Scoring objective.
    pub objective: Objective,
    /// Largest portfolio size on the curve.
    pub k_max: usize,
    /// Portfolio sizes up to this run the exact branch-and-bound
    /// search; larger sizes use the seeded beam.
    pub exact_k_max: usize,
    /// Beam width above the exact threshold.
    pub beam_width: usize,
    /// Worker threads (0 = auto, as everywhere in the pipeline).
    pub threads: usize,
}

impl Default for SearchParams {
    fn default() -> Self {
        SearchParams {
            objective: Objective::Geomean,
            k_max: 8,
            exact_k_max: 3,
            beam_width: 64,
            threads: 0,
        }
    }
}

/// The outcome of one fixed-k search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// Objective value (slowdown vs oracle, ≥ 1).
    pub slowdown: f64,
    /// Chosen configuration indices, ascending.
    pub configs: Vec<usize>,
    /// Whether the value is the exact optimum.
    pub exact: bool,
    /// Full portfolios scored by the branch-and-bound leaves.
    pub candidates_evaluated: u64,
    /// Enumeration branch points killed by the completion bound.
    pub prefixes_pruned: u64,
}

/// One point of the portability-cost curve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Portfolio size.
    pub k: usize,
    /// Objective value (slowdown vs oracle, ≥ 1).
    pub slowdown: f64,
    /// Whether this point is an exact optimum (vs beam search).
    pub exact: bool,
    /// Chosen configuration indices, ascending.
    pub config_indices: Vec<usize>,
    /// Human-readable configuration names, same order.
    pub configs: Vec<String>,
}

/// The portability-cost curve: objective vs k, plus the search-effort
/// counters (also exported as `portfolio.*` metrics).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortfolioCurve {
    /// Objective name (`geomean` | `worst`).
    pub objective: String,
    /// Number of cells scored.
    pub num_cells: usize,
    /// One point per k, k ascending from 1.
    pub points: Vec<CurvePoint>,
    /// Total full portfolios scored by exact search.
    pub candidates_evaluated: u64,
    /// Total branch points pruned by the completion bound.
    pub prefixes_pruned: u64,
    /// Beam expansion rounds run.
    pub beam_rounds: u64,
}

/// Elementwise suffix minima of the allowed log rows: `suffix[j]` is
/// the columnwise min over allowed positions `j..`, i.e. the best any
/// completion drawing from position j onward could possibly reach.
fn suffix_minima(matrix: &SlowdownMatrix, allowed: &[usize]) -> Vec<f64> {
    let n = matrix.num_cells();
    let m = allowed.len();
    let mut suffix = vec![f64::INFINITY; (m + 1) * n];
    for j in (0..m).rev() {
        let row = matrix.log_row(allowed[j]);
        let (cur, next) = suffix[j * n..(j + 2) * n].split_at_mut(n);
        for ((c, &nx), &r) in cur.iter_mut().zip(next.iter()).zip(row) {
            *c = nx.min(r);
        }
    }
    suffix
}

/// Folds `objective` over `min(a[i], b[i])` without materialising the
/// min row — the branch-and-bound completion bound.
fn fold_min2(objective: Objective, a: &[f64], b: &[f64], n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    match objective {
        Objective::Geomean => {
            let mut sum = 0.0f64;
            for (&x, &y) in a.iter().zip(b) {
                sum += x.min(y);
            }
            (sum / n as f64).exp()
        }
        Objective::Worst => {
            let mut worst = f64::NEG_INFINITY;
            for (&x, &y) in a.iter().zip(b) {
                worst = worst.max(x.min(y));
            }
            worst.exp()
        }
    }
}

/// Greedy forward selection: the deterministic incumbent that seeds
/// every branch-and-bound subtree. Ties break to the lowest position.
fn greedy_portfolio(
    matrix: &SlowdownMatrix,
    allowed: &[usize],
    k: usize,
    objective: Objective,
) -> (f64, Vec<usize>) {
    let n = matrix.num_cells();
    let mut mins = vec![f64::INFINITY; n];
    let mut chosen: Vec<usize> = Vec::with_capacity(k);
    for _ in 0..k {
        let mut best: Option<(f64, usize)> = None;
        for (pos, &cfg) in allowed.iter().enumerate() {
            if chosen.contains(&pos) {
                continue;
            }
            let obj = fold_min2(objective, &mins, matrix.log_row(cfg), n);
            if best.is_none_or(|(b, _)| obj < b) {
                best = Some((obj, pos));
            }
        }
        let (_, pos) = best.expect("k <= allowed.len()");
        for (m, &v) in mins.iter_mut().zip(matrix.log_row(allowed[pos])) {
            *m = m.min(v);
        }
        chosen.push(pos);
    }
    chosen.sort_unstable();
    (objective.fold_logs(&mins), chosen)
}

/// Per-subtree depth-first state of the exact search.
struct Dfs<'a> {
    matrix: &'a SlowdownMatrix,
    allowed: &'a [usize],
    suffix: &'a [f64],
    objective: Objective,
    k: usize,
    /// Incumbent objective: the greedy seed, improved only by this
    /// subtree's own strictly better finds — never a racing shared
    /// best, so pruning is identical at any thread count.
    best_obj: f64,
    best: Option<Vec<usize>>,
    evaluated: u64,
    pruned: u64,
    /// `k` stacked min rows of `num_cells` each; depth d's prefix
    /// minima live in row d-1.
    mins_stack: Vec<f64>,
    chosen: Vec<usize>,
}

impl Dfs<'_> {
    fn prefix_mins(&self, depth: usize) -> &[f64] {
        let n = self.matrix.num_cells();
        if depth == 0 {
            // Depth 0 has no prefix; the +∞ tail of `suffix` is a
            // ready-made all-infinite row of the right length.
            &self.suffix[self.allowed.len() * n..]
        } else {
            &self.mins_stack[(depth - 1) * n..depth * n]
        }
    }

    /// Explores portfolios extending the current prefix with positions
    /// from `start` onward. The completion bound is monotone in the
    /// position (later suffixes cover fewer rows), so the first bound
    /// at or above the incumbent kills every remaining branch point.
    fn run(&mut self, depth: usize, start: usize) {
        let n = self.matrix.num_cells();
        let remaining = self.k - depth;
        if remaining == 0 {
            let obj = self.objective.fold_logs(self.prefix_mins(depth));
            self.evaluated += 1;
            if obj < self.best_obj {
                self.best_obj = obj;
                self.best = Some(self.chosen.clone());
            }
            return;
        }
        let last_start = self.allowed.len() - remaining;
        for pos in start..=last_start {
            let bound = fold_min2(
                self.objective,
                self.prefix_mins(depth),
                &self.suffix[pos * n..(pos + 1) * n],
                n,
            );
            if bound >= self.best_obj {
                self.pruned += (last_start - pos + 1) as u64;
                return;
            }
            let row = self.matrix.log_row(self.allowed[pos]);
            {
                let (prefix, rest) = self.mins_stack.split_at_mut(depth * n);
                let child = &mut rest[..n];
                if depth == 0 {
                    child.copy_from_slice(row);
                } else {
                    let parent = &prefix[(depth - 1) * n..];
                    for ((c, &p), &r) in child.iter_mut().zip(parent).zip(row) {
                        *c = p.min(r);
                    }
                }
            }
            self.chosen.push(pos);
            self.run(depth + 1, pos + 1);
            self.chosen.pop();
        }
    }
}

/// Exact k-portfolio search over `allowed` configuration indices:
/// lexicographic enumeration with branch-and-bound pruning, fanned
/// over the pooled executor by first position. Returns the optimum
/// objective and a deterministic argmin (the greedy seed when nothing
/// beats it, otherwise the first strictly improving portfolio in
/// subtree-then-DFS order). Results and counters are byte-identical at
/// any thread count.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `allowed.len()`, or if `allowed`
/// is not strictly ascending.
#[must_use]
pub fn exact_search(
    matrix: &Arc<SlowdownMatrix>,
    allowed: &[usize],
    k: usize,
    objective: Objective,
    threads: usize,
) -> SearchOutcome {
    assert!(k >= 1 && k <= allowed.len(), "k must be in 1..=allowed.len()");
    assert!(
        allowed.windows(2).all(|w| w[0] < w[1]),
        "allowed configuration indices must be strictly ascending"
    );
    let threads = gpp_par::effective_threads(threads);
    let (seed_obj, seed_positions) = greedy_portfolio(matrix, allowed, k, objective);
    let suffix = Arc::new(suffix_minima(matrix, allowed));
    let allowed_arc: Arc<Vec<usize>> = Arc::new(allowed.to_vec());
    let first_positions: Arc<Vec<usize>> = Arc::new((0..=allowed.len() - k).collect());

    let matrix_task = Arc::clone(matrix);
    let suffix_task = Arc::clone(&suffix);
    let allowed_task = Arc::clone(&allowed_arc);
    let results = gpp_par::par_map_pooled(&first_positions, threads, move |_, &p0| {
        let n = matrix_task.num_cells();
        let mut dfs = Dfs {
            matrix: &matrix_task,
            allowed: &allowed_task,
            suffix: &suffix_task,
            objective,
            k,
            best_obj: seed_obj,
            best: None,
            evaluated: 0,
            pruned: 0,
            mins_stack: vec![0.0f64; k * n],
            chosen: Vec::with_capacity(k),
        };
        // Root bound for this subtree: can any portfolio drawing from
        // p0 onward beat the seed at all?
        let bound = fold_min2(
            objective,
            dfs.prefix_mins(0),
            &dfs.suffix[p0 * n..(p0 + 1) * n],
            n,
        );
        if bound >= dfs.best_obj {
            dfs.pruned += 1;
        } else {
            dfs.chosen.push(p0);
            let row = dfs.matrix.log_row(dfs.allowed[p0]);
            dfs.mins_stack[..n].copy_from_slice(row);
            dfs.run(1, p0 + 1);
        }
        (dfs.best_obj, dfs.best, dfs.evaluated, dfs.pruned)
    });

    // Serial reduction in first-position order: strict improvement
    // only, so ties keep the earliest subtree (and the greedy seed
    // when nothing beats it) — deterministic regardless of which
    // worker finished first.
    let mut best_obj = seed_obj;
    let mut best_positions = seed_positions;
    let (mut evaluated, mut pruned) = (0u64, 0u64);
    for (obj, positions, e, p) in results {
        evaluated += e;
        pruned += p;
        if let Some(positions) = positions {
            if obj < best_obj {
                best_obj = obj;
                best_positions = positions;
            }
        }
    }
    SearchOutcome {
        slowdown: best_obj,
        configs: best_positions.iter().map(|&p| allowed[p]).collect(),
        exact: true,
        candidates_evaluated: evaluated,
        prefixes_pruned: pruned,
    }
}

/// One beam state: an ascending set of allowed-positions with its
/// cached columnwise min row and objective value.
#[derive(Debug, Clone)]
struct BeamState {
    positions: Vec<usize>,
    mins: Vec<f64>,
    obj: f64,
}

/// The canonical (sorted ascending) position set of a parent extended
/// by `p` — the dedup and tie-break key of the beam sort.
fn child_key(parent: &[usize], p: usize) -> Vec<usize> {
    let at = parent.partition_point(|&q| q < p);
    let mut key = Vec::with_capacity(parent.len() + 1);
    key.extend_from_slice(&parent[..at]);
    key.push(p);
    key.extend_from_slice(&parent[at..]);
    key
}

/// Expands `beam` by one position per state — every position not
/// already in the state, so a beam can never dead-end — scores every
/// child on the pooled executor, and keeps the `width` best distinct
/// sets under the total (objective, canonical position set) order.
/// Identical sets reached through different parents score identically
/// bit for bit (all log values are ≥ +0.0, so chained `f64::min` is
/// order-independent at the bit level) and are deduplicated on the
/// canonical key, so the result does not depend on scoring order.
fn beam_step(
    matrix: &Arc<SlowdownMatrix>,
    allowed: &Arc<Vec<usize>>,
    beam: &[BeamState],
    objective: Objective,
    width: usize,
    threads: usize,
) -> Vec<BeamState> {
    let n = matrix.num_cells();
    let m = allowed.len();
    let parents: Arc<Vec<Vec<f64>>> = Arc::new(beam.iter().map(|s| s.mins.clone()).collect());
    let children: Arc<Vec<(usize, usize)>> = Arc::new(
        beam.iter()
            .enumerate()
            .flat_map(|(i, s)| {
                (0..m)
                    .filter(move |p| !s.positions.contains(p))
                    .map(move |p| (i, p))
            })
            .collect(),
    );
    let matrix_task = Arc::clone(matrix);
    let allowed_task = Arc::clone(allowed);
    let parents_task = Arc::clone(&parents);
    let scored: Vec<f64> = gpp_par::par_map_pooled(&children, threads, move |_, &(i, p)| {
        fold_min2(
            objective,
            &parents_task[i],
            matrix_task.log_row(allowed_task[p]),
            n,
        )
    });

    // Serial selection on the total key: objective, then the child's
    // canonical position set — independent of scoring order.
    let keys: Vec<Vec<usize>> = children
        .iter()
        .map(|&(i, p)| child_key(&beam[i].positions, p))
        .collect();
    let mut order: Vec<usize> = (0..children.len()).collect();
    order.sort_unstable_by(|&x, &y| {
        scored[x]
            .partial_cmp(&scored[y])
            .expect("finite objective")
            .then_with(|| keys[x].cmp(&keys[y]))
    });
    let mut next: Vec<BeamState> = Vec::with_capacity(width);
    for c in order {
        if next.len() == width {
            break;
        }
        if next.iter().any(|s| s.positions == keys[c]) {
            continue;
        }
        let (i, p) = children[c];
        let mut mins = beam[i].mins.clone();
        for (mv, &v) in mins.iter_mut().zip(matrix.log_row(allowed[p])) {
            *mv = mv.min(v);
        }
        next.push(BeamState {
            positions: keys[c].clone(),
            mins,
            obj: scored[c],
        });
    }
    next
}

/// Searches the full portability-cost curve for k = 1..=`k_max`: exact
/// branch-and-bound up to `exact_k_max`, then beam search over a
/// frontier grown from the singleton level with every exact optimum
/// injected. Emits the `portfolio.candidates_evaluated`,
/// `portfolio.prefixes_pruned`, and `portfolio.beam_rounds` counters.
/// The curve — values, configurations, and counters — is byte-identical
/// at any thread count.
///
/// # Panics
///
/// Panics if `k_max` is zero or exceeds the configuration count, or if
/// `beam_width` is zero while the curve extends past `exact_k_max`.
#[must_use]
pub fn search_curve(matrix: &Arc<SlowdownMatrix>, params: &SearchParams) -> PortfolioCurve {
    let allowed: Vec<usize> = (0..NUM_CONFIGS).collect();
    search_curve_over(matrix, &allowed, params)
}

/// [`search_curve`] restricted to a subset of configuration indices
/// (strictly ascending) — the entry point the subsampled-grid property
/// tests use.
///
/// # Panics
///
/// Panics as [`search_curve`] does.
#[must_use]
pub fn search_curve_over(
    matrix: &Arc<SlowdownMatrix>,
    allowed: &[usize],
    params: &SearchParams,
) -> PortfolioCurve {
    assert!(
        params.k_max >= 1 && params.k_max <= allowed.len(),
        "k_max must be in 1..=allowed.len()"
    );
    let threads = gpp_par::effective_threads(params.threads);
    let exact_k_max = params.exact_k_max.max(1);
    let allowed_arc: Arc<Vec<usize>> = Arc::new(allowed.to_vec());
    let use_beam = params.k_max > exact_k_max;
    if use_beam {
        assert!(params.beam_width >= 1, "beam width must be >= 1");
    }
    let n = matrix.num_cells();
    let mut points = Vec::with_capacity(params.k_max);
    let (mut evaluated, mut pruned, mut rounds) = (0u64, 0u64, 0u64);
    // The beam frontier is grown from level 1 (all singletons) even
    // through the exact levels, so that by the time the curve leaves
    // the exact regime it holds a diverse width-best population rather
    // than a single seed that could fail to improve. Each exact
    // optimum is additionally injected into the frontier, which keeps
    // the beam at least as good as the exact prefix it extends.
    let mut beam: Vec<BeamState> = Vec::new();
    for k in 1..=params.k_max {
        if use_beam {
            if k == 1 {
                beam = (0..allowed.len())
                    .map(|p| {
                        let mins = matrix.log_row(allowed[p]).to_vec();
                        let obj = params.objective.fold_logs(&mins);
                        BeamState {
                            positions: vec![p],
                            mins,
                            obj,
                        }
                    })
                    .collect();
                beam.sort_unstable_by(|a, b| {
                    a.obj
                        .partial_cmp(&b.obj)
                        .expect("finite objective")
                        .then_with(|| a.positions.cmp(&b.positions))
                });
                beam.truncate(params.beam_width);
            } else {
                beam = beam_step(
                    matrix,
                    &allowed_arc,
                    &beam,
                    params.objective,
                    params.beam_width,
                    threads,
                );
                rounds += 1;
            }
        }
        if k <= exact_k_max {
            let outcome = exact_search(matrix, allowed, k, params.objective, threads);
            evaluated += outcome.candidates_evaluated;
            pruned += outcome.prefixes_pruned;
            if use_beam {
                let positions: Vec<usize> = outcome
                    .configs
                    .iter()
                    .map(|c| allowed.binary_search(c).expect("own configs"))
                    .collect();
                if !beam.iter().any(|s| s.positions == positions) {
                    let mut mins = vec![f64::INFINITY; n];
                    for &p in &positions {
                        for (m, &v) in mins.iter_mut().zip(matrix.log_row(allowed[p])) {
                            *m = m.min(v);
                        }
                    }
                    beam.push(BeamState {
                        positions,
                        mins,
                        obj: outcome.slowdown,
                    });
                    beam.sort_unstable_by(|a, b| {
                        a.obj
                            .partial_cmp(&b.obj)
                            .expect("finite objective")
                            .then_with(|| a.positions.cmp(&b.positions))
                    });
                    beam.truncate(params.beam_width);
                }
            }
            points.push(curve_point(k, outcome.slowdown, true, &outcome.configs));
        } else {
            let best = beam.first().expect("beam never empties while k <= allowed");
            let configs: Vec<usize> = best.positions.iter().map(|&p| allowed[p]).collect();
            points.push(curve_point(k, best.obj, false, &configs));
        }
    }
    metrics::counter("portfolio.candidates_evaluated", evaluated);
    metrics::counter("portfolio.prefixes_pruned", pruned);
    metrics::counter("portfolio.beam_rounds", rounds);
    PortfolioCurve {
        objective: params.objective.name().to_owned(),
        num_cells: matrix.num_cells(),
        points,
        candidates_evaluated: evaluated,
        prefixes_pruned: pruned,
        beam_rounds: rounds,
    }
}

fn curve_point(k: usize, slowdown: f64, exact: bool, configs: &[usize]) -> CurvePoint {
    CurvePoint {
        k,
        slowdown,
        exact,
        config_indices: configs.to_vec(),
        configs: configs
            .iter()
            .map(|&c| OptConfig::from_index(c).to_string())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, Dataset, StudyConfig};
    use std::sync::OnceLock;

    fn tiny() -> &'static Dataset {
        static DS: OnceLock<Dataset> = OnceLock::new();
        DS.get_or_init(|| run_study(&StudyConfig::tiny()))
    }

    fn tiny_matrix() -> (DatasetStats<'static>, Arc<SlowdownMatrix>) {
        let stats = DatasetStats::new(tiny());
        let matrix = Arc::new(SlowdownMatrix::from_stats(&stats));
        (stats, matrix)
    }

    #[test]
    fn matrix_entries_bit_identical_to_stats_lookups() {
        let (stats, matrix) = tiny_matrix();
        assert_eq!(matrix.num_cells(), stats.num_cells());
        for cell in (0..stats.num_cells()).step_by(17) {
            for cfg in (0..NUM_CONFIGS).step_by(7) {
                let direct = stats.slowdown_vs_oracle(cell, OptConfig::from_index(cfg));
                assert_eq!(
                    matrix.ratio(cfg, cell).to_bits(),
                    direct.to_bits(),
                    "cell {cell} cfg {cfg}"
                );
                assert_eq!(
                    matrix.log_ratio(cfg, cell).to_bits(),
                    direct.ln().to_bits(),
                    "log cell {cell} cfg {cfg}"
                );
            }
        }
    }

    #[test]
    fn matrix_scorer_bit_identical_to_naive_oracle() {
        let (stats, matrix) = tiny_matrix();
        let mut scorer = PortfolioScorer::new(&matrix);
        let portfolios: [&[usize]; 5] = [&[0], &[0, 95], &[3, 17, 41], &[5, 6, 7, 8], &[12]];
        for objective in [Objective::Geomean, Objective::Worst] {
            for configs in portfolios {
                let fast = scorer.score(configs, objective);
                let naive = score_portfolio_naive(&stats, configs, objective);
                assert_eq!(fast.to_bits(), naive.to_bits(), "{objective:?} {configs:?}");
                assert!(fast >= 1.0 - 1e-12, "{fast}");
            }
        }
    }

    #[test]
    fn empty_portfolio_and_empty_matrix_are_defined() {
        let (stats, matrix) = tiny_matrix();
        let mut scorer = PortfolioScorer::new(&matrix);
        for objective in [Objective::Geomean, Objective::Worst] {
            assert_eq!(scorer.score(&[], objective), f64::INFINITY);
            assert_eq!(score_portfolio_naive(&stats, &[], objective), f64::INFINITY);
            assert_eq!(objective.fold_logs(&[]), 1.0);
        }
        let empty = SlowdownMatrix::from_cell_times(&[]);
        let mut empty_scorer = PortfolioScorer::new(&empty);
        assert_eq!(empty_scorer.score(&[1, 2], Objective::Geomean), 1.0);
    }

    #[test]
    fn oracle_containing_portfolio_scores_one_on_covered_cells() {
        // A portfolio of every config is the oracle everywhere: min
        // ratio per cell is exactly 1, both objectives give 1.
        let (_, matrix) = tiny_matrix();
        let all: Vec<usize> = (0..NUM_CONFIGS).collect();
        let mut scorer = PortfolioScorer::new(&matrix);
        for objective in [Objective::Geomean, Objective::Worst] {
            let v = scorer.score(&all, objective);
            assert!((v - 1.0).abs() < 1e-12, "{objective:?}: {v}");
        }
    }

    #[test]
    fn exact_search_beats_or_equals_every_singleton_and_shrinks_with_k() {
        let (_, matrix) = tiny_matrix();
        let allowed: Vec<usize> = (0..NUM_CONFIGS).collect();
        let mut prev = f64::INFINITY;
        for k in 1..=3 {
            let r = exact_search(&matrix, &allowed, k, Objective::Geomean, 1);
            assert_eq!(r.configs.len(), k);
            assert!(r.configs.windows(2).all(|w| w[0] < w[1]));
            assert!(r.slowdown <= prev + 1e-15, "k={k}: {} > {prev}", r.slowdown);
            prev = r.slowdown;
        }
    }

    #[test]
    fn exact_search_matches_brute_force_k2_subset() {
        let (_, matrix) = tiny_matrix();
        let allowed: Vec<usize> = (0..NUM_CONFIGS).step_by(9).collect();
        for objective in [Objective::Geomean, Objective::Worst] {
            let exact = exact_search(&matrix, &allowed, 2, objective, 1);
            let mut scorer = PortfolioScorer::new(&matrix);
            let mut best = f64::INFINITY;
            for i in 0..allowed.len() {
                for j in i + 1..allowed.len() {
                    best = best.min(scorer.score(&[allowed[i], allowed[j]], objective));
                }
            }
            assert_eq!(exact.slowdown.to_bits(), best.to_bits(), "{objective:?}");
            assert_eq!(
                scorer.score(&exact.configs, objective).to_bits(),
                exact.slowdown.to_bits()
            );
        }
    }

    #[test]
    fn exact_search_is_identical_at_any_thread_count() {
        let (_, matrix) = tiny_matrix();
        let allowed: Vec<usize> = (0..NUM_CONFIGS).collect();
        let serial = exact_search(&matrix, &allowed, 3, Objective::Geomean, 1);
        for threads in [2, 4, 8] {
            let par = exact_search(&matrix, &allowed, 3, Objective::Geomean, threads);
            assert_eq!(serial, par, "threads={threads}");
        }
        assert!(serial.candidates_evaluated > 0);
    }

    #[test]
    fn curve_is_monotone_exact_flagged_and_thread_invariant() {
        let (_, matrix) = tiny_matrix();
        let params = SearchParams {
            k_max: 5,
            exact_k_max: 2,
            beam_width: 8,
            threads: 1,
            ..SearchParams::default()
        };
        let curve = search_curve(&matrix, &params);
        assert_eq!(curve.points.len(), 5);
        for (i, p) in curve.points.iter().enumerate() {
            assert_eq!(p.k, i + 1);
            assert_eq!(p.exact, p.k <= 2);
            assert_eq!(p.config_indices.len(), p.k);
            assert_eq!(p.configs.len(), p.k);
            if i > 0 {
                assert!(
                    p.slowdown <= curve.points[i - 1].slowdown + 1e-12,
                    "k={} got worse",
                    p.k
                );
            }
        }
        // One beam expansion per level past the singleton frontier.
        assert_eq!(curve.beam_rounds, 4);
        for threads in [2, 4, 8] {
            let par = search_curve(
                &matrix,
                &SearchParams {
                    threads,
                    ..params
                },
            );
            assert_eq!(curve, par, "threads={threads}");
            for (a, b) in curve.points.iter().zip(&par.points) {
                assert_eq!(a.slowdown.to_bits(), b.slowdown.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn beam_matches_exact_when_wide_enough() {
        // With a beam as wide as the candidate space, beam search at
        // k = exact+1 must find the same objective as exact search.
        let (_, matrix) = tiny_matrix();
        let allowed: Vec<usize> = (0..NUM_CONFIGS).step_by(12).collect();
        let params = SearchParams {
            k_max: 3,
            exact_k_max: 2,
            beam_width: 4096,
            threads: 1,
            ..SearchParams::default()
        };
        let curve = search_curve_over(&matrix, &allowed, &params);
        let exact = exact_search(&matrix, &allowed, 3, Objective::Geomean, 1);
        let beam_point = &curve.points[2];
        assert!(!beam_point.exact);
        // The frontier is grown from every singleton, so with a width
        // that exceeds the candidate space the beam has retained every
        // 2-set at k=2 and scored every 3-set at k=3 — it must land on
        // the exact optimum's objective, bit for bit.
        assert_eq!(beam_point.slowdown.to_bits(), exact.slowdown.to_bits());
        assert!(beam_point.slowdown <= curve.points[1].slowdown + 1e-15);
    }

    #[test]
    fn from_cell_times_normalises_to_own_oracle() {
        let mut rows = Vec::new();
        for cell in 0..4 {
            let row: Vec<f64> = (0..NUM_CONFIGS)
                .map(|c| 10.0 + ((c * 7 + cell * 13) % 17) as f64)
                .collect();
            rows.push(row);
        }
        let matrix = SlowdownMatrix::from_cell_times(&rows);
        assert_eq!(matrix.num_cells(), 4);
        for (cell, row) in rows.iter().enumerate() {
            let min = row.iter().copied().fold(f64::INFINITY, f64::min);
            let mut saw_one = false;
            for (cfg, &time) in row.iter().enumerate() {
                let r = matrix.ratio(cfg, cell);
                assert!(r >= 1.0, "{r}");
                assert_eq!(r.to_bits(), (time / min).to_bits());
                saw_one |= r == 1.0;
            }
            assert!(saw_one, "every cell has an oracle ratio of 1");
        }
    }

    #[test]
    fn objective_parse_round_trips() {
        assert_eq!(Objective::parse("geomean"), Ok(Objective::Geomean));
        assert_eq!(Objective::parse("worst"), Ok(Objective::Worst));
        assert!(Objective::parse("median").is_err());
        assert_eq!(Objective::Worst.name(), "worst");
    }
}

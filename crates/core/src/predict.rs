//! A predictive model on top of the descriptive analysis — the paper's
//! second future-work direction (Section IX-b): instead of exhaustively
//! measuring all 96 configurations for a new test, measure a handful of
//! *probe* configurations and predict a good configuration from the tests
//! already in the dataset.
//!
//! The predictor is deliberately simple and magnitude-agnostic in spirit:
//! a test's *signature* is the vector of log-ratios of its probe times to
//! its baseline time; prediction finds the nearest known test on the same
//! chip (excluding every cell of the target's own (application, input)
//! pair, so evaluation is leakage-free) and recommends that neighbour's
//! oracle configuration.

use gpp_obs::Tracer;
use gpp_par::par_map_traced;
use gpp_sim::opts::{all_configs, OptConfig, Optimization};
use serde::{Deserialize, Serialize};

use crate::analysis::DatasetStats;
use crate::stats::geomean;

/// A deterministic probe set of `k` configurations (baseline first).
///
/// The first probes are the seven single-optimisation configurations —
/// the axes of the space — followed by progressively larger combinations.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds the configuration space.
pub fn probe_set(k: usize) -> Vec<OptConfig> {
    assert!(k >= 1, "need at least the baseline probe");
    let mut probes = vec![OptConfig::baseline()];
    for opt in Optimization::ALL {
        probes.push(OptConfig::baseline().with(opt));
    }
    probes.push(OptConfig::from_opts([Optimization::Sg, Optimization::Fg8]));
    probes.push(OptConfig::from_opts([
        Optimization::CoopCv,
        Optimization::Oitergb,
    ]));
    probes.push(OptConfig::from_opts([
        Optimization::Sg,
        Optimization::Fg8,
        Optimization::Oitergb,
        Optimization::Sz256,
    ]));
    probes.push(OptConfig::from_opts([
        Optimization::Wg,
        Optimization::Sz256,
    ]));
    // Top up from the full space if even more probes are requested.
    for cfg in all_configs() {
        if probes.len() >= k.max(1) {
            break;
        }
        if !probes.contains(&cfg) {
            probes.push(cfg);
        }
    }
    probes.truncate(k);
    assert!(!probes.is_empty());
    probes
}

/// The probe signature of one cell: log-ratios of each probe's median
/// time to the cell's baseline median. The baseline probe contributes a
/// leading zero, keeping vector lengths aligned with the probe set.
pub fn signature(stats: &DatasetStats<'_>, cell: usize, probes: &[OptConfig]) -> Vec<f64> {
    let base = stats.median_of(cell, OptConfig::baseline());
    probes
        .iter()
        .map(|&cfg| (stats.median_of(cell, cfg) / base).ln())
        .collect()
}

fn distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Predicts a configuration for `target` from its probe measurements:
/// the oracle configuration of the nearest same-chip neighbour whose
/// (application, input) differs from the target's.
///
/// Falls back to the baseline when no eligible neighbour exists.
pub fn predict_config(stats: &DatasetStats<'_>, target: usize, probes: &[OptConfig]) -> OptConfig {
    let ds = stats.dataset();
    let target_cell = &ds.cells[target];
    let target_sig = signature(stats, target, probes);
    let mut best: Option<(f64, usize)> = None;
    for (i, cell) in ds.cells.iter().enumerate() {
        if cell.chip != target_cell.chip {
            continue;
        }
        if cell.app == target_cell.app && cell.input == target_cell.input {
            continue; // leakage guard: the target's own test is unknown
        }
        let d = distance(&target_sig, &signature(stats, i, probes));
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, i));
        }
    }
    match best {
        Some((_, neighbour)) => stats.best_config(neighbour),
        None => OptConfig::baseline(),
    }
}

/// Leave-one-out evaluation of the predictor over the whole dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PredictionEvaluation {
    /// Probes measured per prediction (out of 96 configurations).
    pub probes: usize,
    /// Geomean of `t(predicted) / t(oracle)` over all cells (≥ 1).
    pub geomean_vs_oracle: f64,
    /// Fraction of cells where the prediction is within 5% of the oracle.
    pub near_oracle: f64,
    /// Fraction of cells where the prediction beats the baseline.
    pub beats_baseline: f64,
}

/// Runs leave-one-out prediction for every cell with a `k`-probe set.
///
/// Serial convenience wrapper over [`leave_one_out_par`] with one worker
/// and no tracing.
///
/// # Panics
///
/// Panics if the dataset is empty or `k` is zero.
pub fn leave_one_out(stats: &DatasetStats<'_>, k: usize) -> PredictionEvaluation {
    leave_one_out_par(stats, k, 1, &Tracer::disabled())
}

/// [`leave_one_out`] with an explicit worker-thread count and tracer:
/// the held-out cells are predicted concurrently, and the per-cell
/// outcomes are folded in cell order, so the evaluation — including the
/// order-sensitive geomean accumulation — is byte-identical to the
/// serial one at any thread count.
///
/// Like the other analysis fan-outs, this one runs on `gpp-par`'s
/// scoped engine (the closure borrows `stats`, which a persistent-pool
/// job cannot); a call from inside another parallel worker runs inline
/// via cooperative nesting, with identical results.
///
/// # Panics
///
/// Panics if the dataset is empty or `k` is zero.
pub fn leave_one_out_par(
    stats: &DatasetStats<'_>,
    k: usize,
    threads: usize,
    tracer: &Tracer,
) -> PredictionEvaluation {
    let probes = probe_set(k);
    let n = stats.num_cells();
    assert!(n > 0, "dataset must not be empty");
    let _phase = tracer.span_detail("phase", Some("leave-one-out".to_owned()));
    let cells: Vec<usize> = (0..n).collect();
    let per_cell: Vec<(f64, bool, bool)> =
        par_map_traced(&cells, threads, tracer, "leave-one-out", {
            let probes = &probes;
            move |_, &cell| {
                let predicted = predict_config(stats, cell, probes);
                let t_pred = stats.median_of(cell, predicted);
                let t_oracle = stats.median_of(cell, stats.best_config(cell));
                let t_base = stats.median_of(cell, OptConfig::baseline());
                (t_pred / t_oracle, t_pred / t_oracle < 1.05, t_pred < t_base)
            }
        });
    let mut ratios = Vec::with_capacity(n);
    let (mut near, mut beats) = (0usize, 0usize);
    for &(vs_oracle, is_near, beats_base) in &per_cell {
        ratios.push(vs_oracle);
        if is_near {
            near += 1;
        }
        if beats_base {
            beats += 1;
        }
    }
    PredictionEvaluation {
        probes: probes.len(),
        geomean_vs_oracle: geomean(&ratios),
        near_oracle: near as f64 / n as f64,
        beats_baseline: beats as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, StudyConfig};

    #[test]
    fn probe_sets_are_deterministic_prefixes() {
        let p4 = probe_set(4);
        let p8 = probe_set(8);
        assert_eq!(p4.len(), 4);
        assert_eq!(&p8[..4], &p4[..]);
        assert!(p4[0].is_baseline());
        // No duplicates.
        let mut q = p8.clone();
        q.sort();
        q.dedup();
        assert_eq!(q.len(), 8);
    }

    #[test]
    #[should_panic(expected = "baseline probe")]
    fn probe_set_rejects_zero() {
        probe_set(0);
    }

    #[test]
    fn signature_starts_at_zero_and_is_finite() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = crate::analysis::DatasetStats::new(&ds);
        let probes = probe_set(6);
        let sig = signature(&stats, 0, &probes);
        assert_eq!(sig.len(), 6);
        assert!(sig[0].abs() < 1e-12, "baseline ratio must be 1");
        assert!(sig.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn prediction_beats_no_optimisation_on_average() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = crate::analysis::DatasetStats::new(&ds);
        let eval = leave_one_out(&stats, 8);
        assert!(eval.geomean_vs_oracle >= 1.0);
        assert!(
            eval.beats_baseline > 0.5,
            "predictor should usually help: {eval:?}"
        );
        assert!((0.0..=1.0).contains(&eval.near_oracle));
    }

    #[test]
    fn more_probes_do_not_hurt_much() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = crate::analysis::DatasetStats::new(&ds);
        let few = leave_one_out(&stats, 2);
        let many = leave_one_out(&stats, 12);
        // Not strictly monotone, but a 12-probe signature should not be
        // dramatically worse than a 2-probe one.
        assert!(
            many.geomean_vs_oracle <= few.geomean_vs_oracle * 1.25,
            "{few:?} vs {many:?}"
        );
    }

    #[test]
    fn parallel_leave_one_out_matches_serial_byte_for_byte() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = crate::analysis::DatasetStats::new(&ds);
        let serial = leave_one_out(&stats, 4);
        let par = leave_one_out_par(&stats, 4, 4, &Tracer::disabled());
        assert_eq!(serial, par);
    }

    #[test]
    fn predict_config_never_returns_invalid_configs() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = crate::analysis::DatasetStats::new(&ds);
        let probes = probe_set(4);
        for cell in (0..stats.num_cells()).step_by(17) {
            let cfg = predict_config(&stats, cell, &probes);
            assert!(cfg.index() < 96);
        }
    }
}

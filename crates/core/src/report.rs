//! Plain-text table rendering for the experiment regenerators.

use std::fmt::Write as _;

/// A fixed-width text table with a header row.
///
/// # Example
///
/// ```
/// use gpp_core::report::Table;
///
/// let mut t = Table::new(["chip", "speedup"]);
/// t.row(["R9", "22.1"]);
/// t.row(["MALI", "1.0"]);
/// let text = t.render();
/// assert!(text.contains("chip"));
/// assert!(text.lines().count() >= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's length does not match the header.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header");
        self.rows.push(row);
        self
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, width)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let rule_len = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let row_line = |cells: &[String]| {
            let mut line = String::from("|");
            for cell in cells {
                let _ = write!(line, " {} |", cell.replace('|', "\\|"));
            }
            line.push('\n');
            line
        };
        out.push_str(&row_line(&self.headers));
        out.push('|');
        for _ in &self.headers {
            out.push_str(" --- |");
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row_line(row));
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a ratio with two decimals and a trailing `x` (`"1.23x"`).
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Formats a fraction as a percentage (`"62%"`).
pub fn percent(v: f64) -> String {
    format!("{:.0}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.row(["longish-name", "1"]).row(["x", "22"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[2].starts_with("longish-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn len_and_is_empty() {
        let mut t = Table::new(["a"]);
        assert!(t.is_empty());
        t.row(["x"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(ratio(1.234), "1.23x");
        assert_eq!(percent(0.625), "62%");
    }

    #[test]
    fn markdown_has_separator_and_escapes_pipes() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x|y", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |"));
        assert!(md.contains("| --- | --- |"));
        assert!(md.contains("x\\|y"));
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        assert_eq!(t.to_string(), t.render());
    }
}

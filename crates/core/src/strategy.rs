//! The optimisation strategy functions of paper Table V: from the fully
//! portable `baseline` and `global` through every combination of
//! specialisation over chip, application and input, up to the
//! fully-specialised `oracle`.

use std::collections::HashMap;

use gpp_obs::Tracer;
use gpp_par::par_map_traced;
use gpp_sim::opts::OptConfig;
use serde::{Deserialize, Serialize};

use crate::analysis::{
    opts_for_partition, opts_for_partition_with, AnalysisScratch, DatasetStats, PartitionAnalysis,
};

/// The ten strategies of the study (Table V's nine functions plus the
/// measured oracle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Strategy {
    /// All optimisations disabled everywhere.
    Baseline,
    /// One configuration for the whole dataset (fully portable).
    Global,
    /// Specialised per chip.
    Chip,
    /// Specialised per application.
    App,
    /// Specialised per input.
    Input,
    /// Specialised per (chip, application).
    ChipApp,
    /// Specialised per (chip, input).
    ChipInput,
    /// Specialised per (application, input).
    AppInput,
    /// Specialised per (chip, application, input) via the analysis.
    ChipAppInput,
    /// The measured best configuration per test (full specialisation).
    Oracle,
}

impl Strategy {
    /// All strategies, ordered from fully portable to fully specialised.
    pub const ALL: [Strategy; 10] = [
        Strategy::Baseline,
        Strategy::Global,
        Strategy::Chip,
        Strategy::App,
        Strategy::Input,
        Strategy::ChipApp,
        Strategy::ChipInput,
        Strategy::AppInput,
        Strategy::ChipAppInput,
        Strategy::Oracle,
    ];

    /// The paper's name for the strategy.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Baseline => "baseline",
            Strategy::Global => "global",
            Strategy::Chip => "chip",
            Strategy::App => "app",
            Strategy::Input => "input",
            Strategy::ChipApp => "chip_app",
            Strategy::ChipInput => "chip_input",
            Strategy::AppInput => "app_input",
            Strategy::ChipAppInput => "chip_app_input",
            Strategy::Oracle => "oracle",
        }
    }

    /// Which dimensions the strategy specialises over, as
    /// `(chip, app, input)` flags. The oracle specialises over all three
    /// (and additionally uses measured optima rather than the analysis).
    pub fn specialises(self) -> (bool, bool, bool) {
        match self {
            Strategy::Baseline | Strategy::Global => (false, false, false),
            Strategy::Chip => (true, false, false),
            Strategy::App => (false, true, false),
            Strategy::Input => (false, false, true),
            Strategy::ChipApp => (true, true, false),
            Strategy::ChipInput => (true, false, true),
            Strategy::AppInput => (false, true, true),
            Strategy::ChipAppInput | Strategy::Oracle => (true, true, true),
        }
    }

    /// Number of dimensions specialised over.
    pub fn dimensions(self) -> usize {
        let (c, a, i) = self.specialises();
        usize::from(c) + usize::from(a) + usize::from(i)
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A strategy resolved against a dataset: one configuration per cell,
/// plus the per-partition analysis details that produced them.
#[derive(Debug, Clone)]
pub struct Assignment {
    strategy: Strategy,
    configs: Vec<OptConfig>,
    partitions: Vec<(PartitionKey, PartitionAnalysis)>,
}

/// The key of one partition: the specialised dimension values
/// (`None` = dimension not specialised).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionKey {
    /// Chip name, if specialised by chip.
    pub chip: Option<String>,
    /// Application name, if specialised by application.
    pub app: Option<String>,
    /// Input name, if specialised by input.
    pub input: Option<String>,
}

impl Assignment {
    /// The strategy this assignment realises.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The configuration assigned to cell index `cell`.
    pub fn config(&self, cell: usize) -> OptConfig {
        self.configs[cell]
    }

    /// All per-cell configurations, indexed like the dataset's cells.
    pub fn configs(&self) -> &[OptConfig] {
        &self.configs
    }

    /// The per-partition analyses behind this assignment (empty for
    /// `baseline` and `oracle`, which need no analysis).
    pub fn partitions(&self) -> &[(PartitionKey, PartitionAnalysis)] {
        &self.partitions
    }
}

/// Resolves `strategy` against the dataset: partitions the cells by the
/// specialised dimensions, runs Algorithm 1 on each partition, and maps
/// every cell to its partition's configuration.
///
/// Serial convenience wrapper over [`build_assignment_par`] with one
/// worker and no tracing.
pub fn build_assignment(stats: &DatasetStats<'_>, strategy: Strategy) -> Assignment {
    build_assignment_par(stats, strategy, 1, &Tracer::disabled())
}

/// [`build_assignment`] with an explicit worker-thread count and tracer.
///
/// Partitions are analysed concurrently, but every result is scattered
/// back to its partition's slot in the deterministic sorted key order,
/// so the assignment is byte-identical to the serial one at any thread
/// count. When `tracer` is enabled, the fan-out appears as one `phase`
/// span (detail `analyze:<strategy>`) with matching per-worker `busy-ns`
/// counters.
///
/// The fan-out uses `gpp-par`'s *scoped* engine rather than the
/// persistent pool: the closure borrows `stats` (which borrows the
/// dataset), and under `forbid(unsafe_code)` only per-call scoped
/// threads may touch non-`'static` borrows. A call arriving from
/// inside a pooled or scoped worker (e.g. a future portfolio search
/// fanning out whole analyses) runs inline on that worker —
/// cooperative nesting keeps the machine from oversubscribing without
/// changing any result.
pub fn build_assignment_par(
    stats: &DatasetStats<'_>,
    strategy: Strategy,
    threads: usize,
    tracer: &Tracer,
) -> Assignment {
    let dataset = stats.dataset();
    let n = stats.num_cells();
    match strategy {
        Strategy::Baseline => Assignment {
            strategy,
            configs: vec![OptConfig::baseline(); n],
            partitions: Vec::new(),
        },
        Strategy::Oracle => Assignment {
            strategy,
            configs: (0..n).map(|i| stats.best_config(i)).collect(),
            partitions: Vec::new(),
        },
        _ => {
            let (by_chip, by_app, by_input) = strategy.specialises();
            let mut groups: HashMap<PartitionKey, Vec<usize>> = HashMap::new();
            for (i, cell) in dataset.cells.iter().enumerate() {
                let key = PartitionKey {
                    chip: by_chip.then(|| cell.chip.clone()),
                    app: by_app.then(|| cell.app.clone()),
                    input: by_input.then(|| cell.input.clone()),
                };
                groups.entry(key).or_default().push(i);
            }
            let mut keys: Vec<PartitionKey> = groups.keys().cloned().collect();
            keys.sort_by_key(|k| (k.chip.clone(), k.app.clone(), k.input.clone()));
            let label = format!("analyze:{}", strategy.name());
            let _phase = tracer.span_detail("phase", Some(label.clone()));
            let analyses = par_map_traced(&keys, threads, tracer, &label, |_, key| {
                opts_for_partition(stats, &groups[key])
            });
            let mut configs = vec![OptConfig::baseline(); n];
            let mut partitions = Vec::with_capacity(keys.len());
            for (key, analysis) in keys.into_iter().zip(analyses) {
                for &i in &groups[&key] {
                    configs[i] = analysis.config;
                }
                partitions.push((key, analysis));
            }
            Assignment {
                strategy,
                configs,
                partitions,
            }
        }
    }
}

/// The per-chip `chip` function with its Table IX detail: one partition
/// analysis per chip, in dataset chip order.
///
/// Serial convenience wrapper over [`chip_function_par`].
pub fn chip_function(stats: &DatasetStats<'_>) -> Vec<(String, PartitionAnalysis)> {
    chip_function_par(stats, 1, &Tracer::disabled())
}

/// [`chip_function`] with an explicit worker-thread count and tracer:
/// chips are analysed concurrently and collected in dataset chip order,
/// so the table is byte-identical to the serial one at any thread count.
pub fn chip_function_par(
    stats: &DatasetStats<'_>,
    threads: usize,
    tracer: &Tracer,
) -> Vec<(String, PartitionAnalysis)> {
    let chips = &stats.dataset().chips;
    let _phase = tracer.span_detail("phase", Some("chip-function".to_owned()));
    let analyses = par_map_traced(chips, threads, tracer, "chip-function", |_, chip| {
        let cells = stats.select_indices(None, None, Some(chip));
        opts_for_partition(stats, &cells)
    });
    chips.iter().cloned().zip(analyses).collect()
}

/// The per-chip `chip` function restricted to a subset of cells: the
/// cell-subset view the sensitivity sweep analyses each subsample
/// through, borrowing the full dataset's memo tables instead of
/// rebuilding a [`DatasetStats`] per trial.
///
/// `cells` must be given in dataset order. Each chip's partition is then
/// the subsequence of `cells` on that chip — exactly the cell list a
/// dataset rebuilt from those cells would hand to the analysis, so the
/// verdicts are byte-identical to the rebuild.
pub fn chip_function_on(
    stats: &DatasetStats<'_>,
    cells: &[usize],
    scratch: &mut AnalysisScratch,
) -> Vec<(String, PartitionAnalysis)> {
    let ds = stats.dataset();
    let mut chip_cells: Vec<usize> = Vec::new();
    ds.chips
        .iter()
        .map(|chip| {
            chip_cells.clear();
            chip_cells.extend(cells.iter().copied().filter(|&i| ds.cells[i].chip == *chip));
            (
                chip.clone(),
                opts_for_partition_with(stats, &chip_cells, scratch),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpp_apps::study::{run_study, StudyConfig};
    use gpp_sim::opts::Optimization;

    #[test]
    fn strategy_names_and_dimensions() {
        assert_eq!(Strategy::ALL.len(), 10);
        assert_eq!(Strategy::Global.dimensions(), 0);
        assert_eq!(Strategy::Chip.dimensions(), 1);
        assert_eq!(Strategy::AppInput.dimensions(), 2);
        assert_eq!(Strategy::Oracle.dimensions(), 3);
        assert_eq!(Strategy::ChipApp.name(), "chip_app");
    }

    #[test]
    fn assignments_cover_every_cell() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        for strategy in Strategy::ALL {
            let a = build_assignment(&stats, strategy);
            assert_eq!(a.configs().len(), ds.cells.len(), "{strategy}");
            assert_eq!(a.strategy(), strategy);
        }
    }

    #[test]
    fn baseline_assigns_baseline_everywhere() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let a = build_assignment(&stats, Strategy::Baseline);
        assert!(a.configs().iter().all(|c| c.is_baseline()));
        assert!(a.partitions().is_empty());
    }

    #[test]
    fn oracle_assigns_measured_best() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let a = build_assignment(&stats, Strategy::Oracle);
        for i in (0..ds.cells.len()).step_by(23) {
            assert_eq!(a.config(i), stats.best_config(i));
        }
    }

    #[test]
    fn global_assigns_one_config_everywhere() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let a = build_assignment(&stats, Strategy::Global);
        let first = a.config(0);
        assert!(a.configs().iter().all(|&c| c == first));
        assert_eq!(a.partitions().len(), 1);
    }

    #[test]
    fn chip_strategy_is_constant_within_a_chip() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let a = build_assignment(&stats, Strategy::Chip);
        assert_eq!(a.partitions().len(), 6);
        for chip in &ds.chips {
            let cells = stats.select_indices(None, None, Some(chip));
            let first = a.config(cells[0]);
            assert!(cells.iter().all(|&i| a.config(i) == first), "{chip}");
        }
    }

    #[test]
    fn app_input_strategy_partitions_correctly() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let a = build_assignment(&stats, Strategy::AppInput);
        assert_eq!(a.partitions().len(), 17 * 3);
        // Within one (app, input), all chips share a config.
        let cells = stats.select_indices(Some("bfs-wl"), Some("road"), None);
        let first = a.config(cells[0]);
        assert!(cells.iter().all(|&i| a.config(i) == first));
    }

    #[test]
    fn parallel_build_matches_serial_byte_for_byte() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        for strategy in [Strategy::Global, Strategy::Chip, Strategy::AppInput] {
            let serial = build_assignment(&stats, strategy);
            let par = build_assignment_par(&stats, strategy, 4, &Tracer::disabled());
            assert_eq!(serial.configs(), par.configs(), "{strategy}");
            assert_eq!(serial.partitions(), par.partitions(), "{strategy}");
        }
    }

    #[test]
    fn chip_function_on_full_subset_matches_chip_function() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let all: Vec<usize> = (0..stats.num_cells()).collect();
        let mut scratch = AnalysisScratch::default();
        assert_eq!(
            chip_function_on(&stats, &all, &mut scratch),
            chip_function(&stats)
        );
    }

    #[test]
    fn chip_function_covers_all_chips() {
        let ds = run_study(&StudyConfig::tiny());
        let stats = DatasetStats::new(&ds);
        let table = chip_function(&stats);
        assert_eq!(table.len(), 6);
        for (chip, analysis) in &table {
            assert!(ds.chips.contains(chip));
            assert_eq!(analysis.decisions.len(), Optimization::ALL.len());
        }
    }
}

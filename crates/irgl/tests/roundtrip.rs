//! Property-based round-trip: random expression trees embedded in a
//! program survive printing and re-parsing unchanged.

use gpp_irgl::ast::{
    BinOp, Domain, Driver, Expr, FieldDecl, FieldInit, GlobalDecl, Kernel, Program, Ref, Stmt,
    UnaryOp,
};
use gpp_irgl::{parse, to_source, validate_program};
use proptest::prelude::*;

fn arb_ref() -> impl Strategy<Value = Ref> {
    prop_oneof![Just(Ref::Node), Just(Ref::Nbr)]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::Div),
        Just(BinOp::Min),
        Just(BinOp::Max),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::And),
        Just(BinOp::Or),
    ]
}

fn arb_unop() -> impl Strategy<Value = UnaryOp> {
    prop_oneof![Just(UnaryOp::Not), Just(UnaryOp::Neg), Just(UnaryOp::Floor)]
}

/// Expressions legal inside an edge loop of a kernel with 2 fields,
/// 1 global, and 1 bound local.
fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Finite constants that print and re-parse exactly.
        (-1_000_000i32..1_000_000).prop_map(|v| Expr::Const(v as f64)),
        Just(Expr::Const(f64::INFINITY)),
        arb_ref().prop_map(Expr::NodeId),
        arb_ref().prop_map(Expr::Degree),
        (0usize..2, arb_ref()).prop_map(|(f, r)| Expr::Field(f, r)),
        Just(Expr::EdgeWeight),
        Just(Expr::Iter),
        Just(Expr::NumNodes),
        Just(Expr::Local(0)),
        Just(Expr::Global(0)),
    ];
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            (arb_unop(), inner.clone()).prop_map(|(op, a)| Expr::Unary(op, Box::new(a))),
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| Expr::Binary(
                op,
                Box::new(a),
                Box::new(b)
            )),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Hash(Box::new(a), Box::new(b))),
        ]
    })
}

fn wrap(expr: Expr) -> Program {
    Program {
        name: "fuzz".into(),
        fields: vec![
            FieldDecl {
                name: "alpha".into(),
                init: FieldInit::Const(0.0),
            },
            FieldDecl {
                name: "beta".into(),
                init: FieldInit::NodeId,
            },
        ],
        globals: vec![GlobalDecl {
            name: "acc".into(),
            init: 0.0,
        }],
        kernels: vec![Kernel {
            name: "k".into(),
            domain: Domain::AllNodes,
            locals: 1,
            body: vec![
                Stmt::Let(0, Expr::Const(1.0)),
                Stmt::ForEachEdge(vec![Stmt::Store {
                    field: 0,
                    target: Ref::Nbr,
                    value: expr,
                }]),
            ],
        }],
        driver: Driver::Fixed {
            kernels: vec![0],
            iters: 1,
        },
        output: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `parse . print` normalises (negated constants fold), but must be
    /// idempotent from the first application on, and must preserve the
    /// program's semantics exactly.
    #[test]
    fn print_parse_round_trip(expr in arb_expr()) {
        let program = wrap(expr);
        prop_assert_eq!(validate_program(&program), Ok(()));
        let text = to_source(&program);
        let once = parse(&text)
            .map_err(|e| TestCaseError::fail(format!("{e}\n{text}")))?;
        prop_assert_eq!(validate_program(&once), Ok(()));
        let twice = parse(&to_source(&once))
            .map_err(|e| TestCaseError::fail(format!("second parse: {e}")))?;
        prop_assert_eq!(&twice, &once, "parse . print must be idempotent");

        // Semantic equivalence: both programs compute identical fields.
        let graph = gpp_graph::generators::rmat(5, 4, 9).expect("valid generator");
        let mut rec_a = gpp_sim::trace::Recorder::new();
        let a = gpp_irgl::execute(&program, &graph, &mut rec_a)
            .map_err(|e| TestCaseError::fail(format!("original: {e}")))?;
        let mut rec_b = gpp_sim::trace::Recorder::new();
        let b = gpp_irgl::execute(&once, &graph, &mut rec_b)
            .map_err(|e| TestCaseError::fail(format!("round-tripped: {e}")))?;
        for (fa, fb) in a.fields.iter().zip(&b.fields) {
            for (x, y) in fa.iter().zip(fb) {
                // NaN-tolerant exact comparison (expressions may divide
                // by zero or overflow to infinity).
                prop_assert!(x.to_bits() == y.to_bits(), "{x} vs {y}");
            }
        }
    }
}

//! Bytecode compilation of validated DSL programs: a flat,
//! register-based op stream executed by [`KernelVm`].
//!
//! The tree-walking interpreter in [`crate::interp`] re-dispatches a
//! `Box<Expr>` tree on every node × edge × iteration — the dominant
//! cold-run cost of study trace collection. This module makes the same
//! move the paper's pipeline makes (IrGL kernels are compiled to OpenCL
//! once, then launched many times): pay compilation once per program,
//! then execute a tight loop over a flat instruction stream.
//!
//! # Lowering
//!
//! [`CompiledProgram::compile`] validates the program, then lowers each
//! kernel:
//!
//! - **Registers, not names.** Locals occupy registers `0..locals`;
//!   expression temporaries are stack-allocated above them (operand
//!   registers are released as soon as the consuming op is emitted, so
//!   register pressure equals expression depth). Field and global ids
//!   are resolved to dense `u16` indices at compile time.
//! - **`If` becomes relative jumps.** The condition is evaluated into a
//!   register, then [`Op::JumpIfZero`] skips the then-block (plus an
//!   unconditional [`Op::Jump`] over the else-block when present). All
//!   jumps are forward `skip` counts — the stream has no back-edges.
//! - **`ForEachEdge` becomes a segment.** The loop body is compiled into
//!   a separate edge-level op stream referenced by [`Op::EdgeLoop`].
//!   The VM's inner loop iterates CSR edges with plain `(nbr, weight)`
//!   values — no `Option<Edge>` branch per expression and no recursion.
//!
//! Kernel profiles are derived from the *original* kernel AST (same
//! [`crate::profile::derive_profile`] call as the tree-walker), and the
//! VM mirrors the interpreter's driver loops launch for launch, so the
//! recorded [`WorkItem`] streams — and therefore traces, cache keys and
//! the downstream dataset — are bit-identical to the AST path.

use std::sync::{Arc, OnceLock};

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, KernelProfile, WorkItem};

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldInit, Kernel, Program, Ref, Stmt, UnaryOp,
};
use crate::native::NativeProgram;
use crate::interp::{
    apply_binary, apply_unary, hash2, init_field, seed_worklist, Execution,
};
use crate::profile::derive_profile;
use crate::validate::{validate, IrglError};

/// One register-machine instruction.
///
/// `dst`/`src`/`a`/`b` index the VM's `f64` register file; `field` and
/// `global` index the program's field and global tables. `nbr` selects
/// the edge's neighbour instead of the owning node (only ever true
/// inside edge segments — guaranteed by validation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// `regs[dst] = val`.
    Const {
        /// Destination register.
        dst: u16,
        /// Immediate value.
        val: f64,
    },
    /// `regs[dst] = id(node | nbr)`.
    NodeId {
        /// Destination register.
        dst: u16,
        /// Read the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `regs[dst] = degree(node | nbr)`.
    Degree {
        /// Destination register.
        dst: u16,
        /// Read the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `regs[dst] = fields[field][node | nbr]`.
    Field {
        /// Destination register.
        dst: u16,
        /// Field table index.
        field: u16,
        /// Read the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `regs[dst] = weight` of the current edge (edge segments only).
    EdgeWeight {
        /// Destination register.
        dst: u16,
    },
    /// `regs[dst] = driver iteration`.
    Iter {
        /// Destination register.
        dst: u16,
    },
    /// `regs[dst] = number of nodes in the graph`.
    NumNodes {
        /// Destination register.
        dst: u16,
    },
    /// `regs[dst] = globals[global]`.
    Global {
        /// Destination register.
        dst: u16,
        /// Global table index.
        global: u16,
    },
    /// `regs[dst] = regs[src]`.
    Copy {
        /// Destination register.
        dst: u16,
        /// Source register.
        src: u16,
    },
    /// `regs[dst] = op(regs[src])`.
    Unary {
        /// Operator.
        op: UnaryOp,
        /// Destination register.
        dst: u16,
        /// Operand register.
        src: u16,
    },
    /// `regs[dst] = op(regs[a], regs[b])`.
    Binary {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `regs[dst] = hash2(regs[a] as u64, regs[b] as u64)`.
    Hash {
        /// Destination register.
        dst: u16,
        /// Left operand register.
        a: u16,
        /// Right operand register.
        b: u16,
    },
    /// `fields[field][node | nbr] = regs[src]`.
    Store {
        /// Field table index.
        field: u16,
        /// Value register.
        src: u16,
        /// Write the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `fields[field][node | nbr] = min(current, regs[src])`.
    AtomicMin {
        /// Field table index.
        field: u16,
        /// Value register.
        src: u16,
        /// Write the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `fields[field][node | nbr] += regs[src]`.
    AtomicAdd {
        /// Field table index.
        field: u16,
        /// Value register.
        src: u16,
        /// Write the neighbour instead of the owning node.
        nbr: bool,
    },
    /// `globals[global] += regs[src]`.
    GlobalAdd {
        /// Global table index.
        global: u16,
        /// Value register.
        src: u16,
    },
    /// Push node (or neighbour) onto the next worklist, deduplicated
    /// per round via the `in_next` bitmap.
    Push {
        /// Push the neighbour instead of the owning node.
        nbr: bool,
    },
    /// Raise the driver's fixed-point flag.
    MarkChanged,
    /// Skip the next `skip` ops when `regs[src] == 0.0`.
    JumpIfZero {
        /// Condition register.
        src: u16,
        /// Forward skip count.
        skip: u32,
    },
    /// Skip the next `skip` ops unconditionally.
    Jump {
        /// Forward skip count.
        skip: u32,
    },
    /// Run edge segment `seg` once per outgoing CSR edge of the owning
    /// node (node-level streams only — validation rejects nesting).
    EdgeLoop {
        /// Index into the kernel's edge-segment table.
        seg: u16,
    },
}

/// A kernel lowered to flat op streams plus its derived cost profile.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    name: String,
    domain: Domain,
    locals: u16,
    regs: usize,
    node_code: Vec<Op>,
    edge_code: Vec<Vec<Op>>,
    profile: KernelProfile,
}

impl CompiledKernel {
    /// Kernel name (as reported to the executor via its profile).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cost profile, identical to the tree-walker's
    /// [`derive_profile`] output for the same kernel.
    pub fn profile(&self) -> &KernelProfile {
        &self.profile
    }

    /// Register-file size this kernel needs (locals + peak temporaries).
    pub fn registers(&self) -> usize {
        self.regs
    }

    /// The node-level op stream.
    pub fn node_ops(&self) -> &[Op] {
        &self.node_code
    }

    /// The edge-level segments referenced by [`Op::EdgeLoop`].
    pub fn edge_segments(&self) -> &[Vec<Op>] {
        &self.edge_code
    }

    /// Total ops across the node stream and all edge segments.
    pub fn num_ops(&self) -> usize {
        self.node_code.len() + self.edge_code.iter().map(Vec::len).sum::<usize>()
    }
}

/// A validated program lowered to bytecode: compile once with
/// [`CompiledProgram::compile`], then run many times via
/// [`KernelVm::run`] (or the one-shot [`run_compiled`]).
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    field_inits: Vec<FieldInit>,
    global_inits: Vec<f64>,
    kernels: Vec<CompiledKernel>,
    // The unlowered kernels, kept so the native tier can fuse closures
    // from the expression trees instead of re-deriving them from ops.
    asts: Vec<Kernel>,
    driver: Driver,
    output: usize,
    // The native closure artifact, built lazily on first native-tier
    // run and shared (`Arc`) across clones and threads.
    native: OnceLock<Arc<NativeProgram>>,
}

impl CompiledProgram {
    /// Validates `program` and lowers every kernel to bytecode.
    ///
    /// # Errors
    ///
    /// Returns the same validation errors [`crate::validate::validate`]
    /// would; compilation itself cannot fail on a validated program.
    pub fn compile(program: &Program) -> Result<Self, IrglError> {
        validate(program)?;
        let kernels: Vec<CompiledKernel> = program.kernels.iter().map(compile_kernel).collect();
        gpp_obs::metrics::counter("irgl.programs_compiled", 1);
        gpp_obs::metrics::counter(
            "irgl.bytecode_ops",
            kernels.iter().map(|k| k.num_ops() as u64).sum(),
        );
        Ok(CompiledProgram {
            name: program.name.clone(),
            field_inits: program.fields.iter().map(|d| d.init).collect(),
            global_inits: program.globals.iter().map(|g| g.init).collect(),
            kernels,
            asts: program.kernels.clone(),
            driver: program.driver.clone(),
            output: program.output,
            native: OnceLock::new(),
        })
    }

    /// Program name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The compiled kernels, in declaration order.
    pub fn kernels(&self) -> &[CompiledKernel] {
        &self.kernels
    }

    /// Index of the output field (for [`Execution::output`]).
    pub fn output_field(&self) -> usize {
        self.output
    }

    /// The native closure artifact, lowered on first use and cached for
    /// the life of this `CompiledProgram` (clones made *before* the
    /// first native run compile independently; clones made after share
    /// the same `Arc`).
    pub fn native(&self) -> &NativeProgram {
        self.native
            .get_or_init(|| Arc::new(crate::native::compile_native(self)))
    }

    /// The unlowered kernel ASTs, aligned with [`Self::kernels`].
    pub(crate) fn kernel_asts(&self) -> &[Kernel] {
        &self.asts
    }

    /// Per-field initialisers, aligned with the program's field table.
    pub(crate) fn field_inits(&self) -> &[FieldInit] {
        &self.field_inits
    }

    /// Initial values of the global scalars.
    pub(crate) fn global_inits(&self) -> &[f64] {
        &self.global_inits
    }

    /// The host-side driver.
    pub(crate) fn driver(&self) -> &Driver {
        &self.driver
    }

    /// A structural content hash of the compiled artifact: kernel
    /// names, domains, local counts, the full node/edge op streams
    /// (constants at round-trip precision via their `Debug` rendering),
    /// field and global initialisers, driver, and output index. Folded
    /// into DSL trace-cache keys so editing a program can never serve a
    /// stale cached trace; deliberately independent of the lazy native
    /// artifact's compile state.
    pub fn content_hash(&self) -> u64 {
        use std::fmt::Write as _;
        let mut repr = String::new();
        for k in &self.kernels {
            let _ = write!(
                repr,
                "{}|{:?}|{}|{:?}|{:?};",
                k.name, k.domain, k.locals, k.node_code, k.edge_code
            );
        }
        let _ = write!(
            repr,
            "{:?}|{:?}|{:?}|{}",
            self.field_inits, self.global_inits, self.driver, self.output
        );
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for byte in repr.bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

/// Runs a compiled program with a fresh [`KernelVm`]. Callers executing
/// the same program repeatedly should keep a `KernelVm` and call
/// [`KernelVm::run`] to reuse its scratch buffers.
///
/// # Errors
///
/// Returns [`IrglError::IterationBoundExceeded`] if a fixed-point driver
/// fails to converge within its bound.
pub fn run_compiled(
    compiled: &CompiledProgram,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    KernelVm::new().run(compiled, graph, exec)
}

// ---------------------------------------------------------------------
// Compiler
// ---------------------------------------------------------------------

/// Per-kernel lowering state: a bump pointer for expression temporaries
/// (reset at every statement — temps never outlive the statement that
/// created them) and the edge-segment table under construction.
struct KernelCompiler {
    base: u16,
    tmp: u16,
    max_regs: u16,
    edge_code: Vec<Vec<Op>>,
}

fn compile_kernel(kernel: &Kernel) -> CompiledKernel {
    let locals = u16::try_from(kernel.locals).expect("local count fits u16");
    let mut c = KernelCompiler {
        base: locals,
        tmp: locals,
        max_regs: locals,
        edge_code: Vec::new(),
    };
    let node_code = c.compile_block(&kernel.body);
    CompiledKernel {
        name: kernel.name.clone(),
        domain: kernel.domain,
        locals,
        regs: c.max_regs as usize,
        node_code,
        edge_code: c.edge_code,
        // Derived from the unlowered AST — exactly what the tree-walker
        // reports, so recorded traces intern identical profiles.
        profile: derive_profile(kernel, &kernel.name),
    }
}

fn idx(i: usize) -> u16 {
    u16::try_from(i).expect("table index fits u16")
}

fn is_nbr(r: Ref) -> bool {
    r == Ref::Nbr
}

impl KernelCompiler {
    fn compile_block(&mut self, stmts: &[Stmt]) -> Vec<Op> {
        let mut code = Vec::new();
        for stmt in stmts {
            self.compile_stmt(stmt, &mut code);
        }
        code
    }

    fn compile_stmt(&mut self, stmt: &Stmt, code: &mut Vec<Op>) {
        self.tmp = self.base;
        match stmt {
            Stmt::Let(local, expr) => {
                self.eval_into(expr, idx(*local), code);
            }
            Stmt::If { cond, then, els } => {
                let c = self.eval(cond, code);
                // The jump tests `c` before any nested statement runs,
                // so the branch bodies are free to reuse its register.
                let jz_at = code.len();
                code.push(Op::JumpIfZero { src: c, skip: 0 });
                for s in then {
                    self.compile_stmt(s, code);
                }
                if els.is_empty() {
                    let skip = (code.len() - jz_at - 1) as u32;
                    code[jz_at] = Op::JumpIfZero { src: c, skip };
                } else {
                    let j_at = code.len();
                    code.push(Op::Jump { skip: 0 });
                    let skip = (code.len() - jz_at - 1) as u32;
                    code[jz_at] = Op::JumpIfZero { src: c, skip };
                    for s in els {
                        self.compile_stmt(s, code);
                    }
                    let skip = (code.len() - j_at - 1) as u32;
                    code[j_at] = Op::Jump { skip };
                }
            }
            Stmt::Store {
                field,
                target,
                value,
            } => {
                let src = self.eval(value, code);
                code.push(Op::Store {
                    field: idx(*field),
                    src,
                    nbr: is_nbr(*target),
                });
            }
            Stmt::AtomicMin {
                field,
                target,
                value,
            } => {
                let src = self.eval(value, code);
                code.push(Op::AtomicMin {
                    field: idx(*field),
                    src,
                    nbr: is_nbr(*target),
                });
            }
            Stmt::AtomicAdd {
                field,
                target,
                value,
            } => {
                let src = self.eval(value, code);
                code.push(Op::AtomicAdd {
                    field: idx(*field),
                    src,
                    nbr: is_nbr(*target),
                });
            }
            Stmt::ForEachEdge(body) => {
                let seg_code = self.compile_block(body);
                let seg = idx(self.edge_code.len());
                self.edge_code.push(seg_code);
                code.push(Op::EdgeLoop { seg });
            }
            Stmt::Push(target) => {
                code.push(Op::Push {
                    nbr: is_nbr(*target),
                });
            }
            Stmt::MarkChanged => code.push(Op::MarkChanged),
            Stmt::GlobalAdd(global, value) => {
                let src = self.eval(value, code);
                code.push(Op::GlobalAdd {
                    global: idx(*global),
                    src,
                });
            }
        }
    }

    /// Evaluates `expr` into some register and returns it. Locals are
    /// returned in place (expressions cannot write locals), everything
    /// else lands in a fresh temporary.
    fn eval(&mut self, expr: &Expr, code: &mut Vec<Op>) -> u16 {
        if let Expr::Local(local) = expr {
            return idx(*local);
        }
        let dst = self.alloc();
        self.eval_into(expr, dst, code);
        dst
    }

    fn alloc(&mut self) -> u16 {
        let r = self.tmp;
        self.tmp += 1;
        self.max_regs = self.max_regs.max(self.tmp);
        r
    }

    fn eval_into(&mut self, expr: &Expr, dst: u16, code: &mut Vec<Op>) {
        match expr {
            Expr::Const(c) => code.push(Op::Const { dst, val: *c }),
            Expr::NodeId(r) => code.push(Op::NodeId {
                dst,
                nbr: is_nbr(*r),
            }),
            Expr::Degree(r) => code.push(Op::Degree {
                dst,
                nbr: is_nbr(*r),
            }),
            Expr::Field(field, r) => code.push(Op::Field {
                dst,
                field: idx(*field),
                nbr: is_nbr(*r),
            }),
            Expr::EdgeWeight => code.push(Op::EdgeWeight { dst }),
            Expr::Iter => code.push(Op::Iter { dst }),
            Expr::NumNodes => code.push(Op::NumNodes { dst }),
            Expr::Local(local) => code.push(Op::Copy {
                dst,
                src: idx(*local),
            }),
            Expr::Global(global) => code.push(Op::Global {
                dst,
                global: idx(*global),
            }),
            Expr::Unary(op, a) => {
                let save = self.tmp;
                let src = self.eval(a, code);
                self.tmp = save;
                code.push(Op::Unary { op: *op, dst, src });
            }
            Expr::Binary(op, a, b) => {
                let save = self.tmp;
                let ra = self.eval(a, code);
                let rb = self.eval(b, code);
                self.tmp = save;
                code.push(Op::Binary {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                });
            }
            Expr::Hash(a, b) => {
                let save = self.tmp;
                let ra = self.eval(a, code);
                let rb = self.eval(b, code);
                self.tmp = save;
                code.push(Op::Hash { dst, a: ra, b: rb });
            }
        }
    }
}

// ---------------------------------------------------------------------
// Virtual machine
// ---------------------------------------------------------------------

/// The register-machine executor. Owns every scratch buffer — register
/// file, per-launch [`WorkItem`] vector, worklists and the `in_next`
/// dedup bitmap — so repeated [`KernelVm::run`] calls allocate nothing
/// beyond the result's field vectors.
#[derive(Debug, Default)]
pub struct KernelVm {
    regs: Vec<f64>,
    items: Vec<WorkItem>,
    worklist: Vec<NodeId>,
    next_worklist: Vec<NodeId>,
    in_next: Vec<bool>,
}

/// Mutable program state shared by every op handler during one run.
struct Ctx<'a> {
    graph: &'a Graph,
    fields: &'a mut Vec<Vec<f64>>,
    globals: &'a mut Vec<f64>,
    regs: &'a mut Vec<f64>,
    next_worklist: &'a mut Vec<NodeId>,
    in_next: &'a mut Vec<bool>,
    iter: u32,
    changed: bool,
}

impl KernelVm {
    /// A VM with empty scratch buffers (grown on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `compiled` on `graph`, reporting every kernel launch to
    /// `exec`. Mirrors [`crate::interp::execute_ast`] launch for launch:
    /// results and recorded [`WorkItem`] streams are bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`IrglError::IterationBoundExceeded`] if a fixed-point
    /// driver fails to converge within its bound.
    pub fn run(
        &mut self,
        compiled: &CompiledProgram,
        graph: &Graph,
        exec: &mut dyn Executor,
    ) -> Result<Execution, IrglError> {
        gpp_obs::metrics::counter("irgl.bytecode_runs", 1);
        let n = graph.num_nodes();
        let mut fields: Vec<Vec<f64>> = compiled
            .field_inits
            .iter()
            .map(|&init| init_field(init, n))
            .collect();
        let mut globals: Vec<f64> = compiled.global_inits.clone();

        // A previous run that errored out mid-loop may have left stale
        // worklist entries or raised dedup flags; start clean.
        self.items.clear();
        self.worklist.clear();
        self.next_worklist.clear();
        self.in_next.clear();

        let KernelVm {
            regs,
            items,
            worklist,
            next_worklist,
            in_next,
        } = self;
        let mut ctx = Ctx {
            graph,
            fields: &mut fields,
            globals: &mut globals,
            regs,
            next_worklist,
            in_next,
            iter: 0,
            changed: false,
        };

        let mut iterations = 0u32;
        let mut kernels = 0u32;
        match &compiled.driver {
            Driver::UntilFixpoint {
                kernels: seq,
                max_iters,
            } => loop {
                if iterations >= *max_iters {
                    return Err(IrglError::IterationBoundExceeded {
                        program: compiled.name.clone(),
                        bound: *max_iters,
                    });
                }
                ctx.begin_iteration(&compiled.global_inits, iterations);
                for &k in seq {
                    let kernel = &compiled.kernels[k];
                    debug_assert_eq!(kernel.domain, Domain::AllNodes);
                    items.clear();
                    for u in graph.nodes() {
                        run_node(&mut ctx, kernel, u, items);
                    }
                    exec.kernel(&kernel.profile, items);
                    kernels += 1;
                }
                iterations += 1;
                if !ctx.changed {
                    break;
                }
            },
            Driver::Fixed {
                kernels: seq,
                iters,
            } => {
                for iter in 0..*iters {
                    ctx.begin_iteration(&compiled.global_inits, iter);
                    for &k in seq {
                        let kernel = &compiled.kernels[k];
                        debug_assert_eq!(kernel.domain, Domain::AllNodes);
                        items.clear();
                        for u in graph.nodes() {
                            run_node(&mut ctx, kernel, u, items);
                        }
                        exec.kernel(&kernel.profile, items);
                        kernels += 1;
                    }
                    iterations += 1;
                }
            }
            Driver::WorklistLoop {
                init,
                kernel,
                max_iters,
            } => {
                let kernel = &compiled.kernels[*kernel];
                debug_assert_eq!(kernel.domain, Domain::Worklist);
                worklist.extend_from_slice(&seed_worklist(*init, graph));
                ctx.in_next.resize(n, false);
                while !worklist.is_empty() {
                    if iterations >= *max_iters {
                        return Err(IrglError::IterationBoundExceeded {
                            program: compiled.name.clone(),
                            bound: *max_iters,
                        });
                    }
                    ctx.begin_iteration(&compiled.global_inits, iterations);
                    items.clear();
                    for &u in worklist.iter() {
                        run_node(&mut ctx, kernel, u, items);
                    }
                    exec.kernel(&kernel.profile, items);
                    kernels += 1;
                    // Clear-by-drain: swap in the pushed nodes and lower
                    // exactly their dedup flags — no O(n) reset per level.
                    std::mem::swap(worklist, ctx.next_worklist);
                    ctx.next_worklist.clear();
                    for &v in worklist.iter() {
                        ctx.in_next[v as usize] = false;
                    }
                    iterations += 1;
                }
            }
        }
        Ok(Execution {
            fields,
            globals,
            iterations,
            kernels,
        })
    }
}

impl Ctx<'_> {
    /// Same per-iteration reset as the tree-walker: stamp the iteration
    /// counter, lower the fixed-point flag, restore global initials.
    fn begin_iteration(&mut self, global_inits: &[f64], iter: u32) {
        self.iter = iter;
        self.changed = false;
        self.globals.copy_from_slice(global_inits);
    }
}

/// Runs one kernel over one node: zeroes the local registers, walks the
/// node-level stream (expanding edge loops inline), and records the
/// resulting [`WorkItem`].
fn run_node(ctx: &mut Ctx<'_>, kernel: &CompiledKernel, u: NodeId, items: &mut Vec<WorkItem>) {
    if ctx.regs.len() < kernel.regs {
        ctx.regs.resize(kernel.regs, 0.0);
    }
    for r in &mut ctx.regs[..kernel.locals as usize] {
        *r = 0.0;
    }
    let mut trips = 0u32;
    let mut pushes = 0u32;
    let code = &kernel.node_code;
    let mut pc = 0usize;
    while pc < code.len() {
        match code[pc] {
            Op::EdgeLoop { seg } => {
                let seg_code = &kernel.edge_code[seg as usize];
                for (nbr, weight) in ctx.graph.out_edges(u) {
                    trips += 1;
                    run_edge_segment(ctx, seg_code, u, nbr, weight, &mut pushes);
                }
                pc += 1;
            }
            op => pc += 1 + step(ctx, op, u, 0, 0, &mut pushes),
        }
    }
    items.push(WorkItem::new(trips, pushes));
}

/// Runs one edge segment for a single `(u, nbr, weight)` edge — a flat
/// loop over scalar ops, no recursion, no `Option` in sight.
fn run_edge_segment(
    ctx: &mut Ctx<'_>,
    code: &[Op],
    u: NodeId,
    nbr: NodeId,
    weight: u32,
    pushes: &mut u32,
) {
    let mut pc = 0usize;
    while pc < code.len() {
        pc += 1 + step(ctx, code[pc], u, nbr, weight, pushes);
    }
}

#[inline]
fn pick(u: NodeId, nbr: NodeId, use_nbr: bool) -> NodeId {
    if use_nbr {
        nbr
    } else {
        u
    }
}

/// Executes one scalar op and returns how many following ops to skip
/// (non-zero only for jumps).
#[inline]
fn step(ctx: &mut Ctx<'_>, op: Op, u: NodeId, nbr: NodeId, weight: u32, pushes: &mut u32) -> usize {
    match op {
        Op::Const { dst, val } => ctx.regs[dst as usize] = val,
        Op::NodeId { dst, nbr: use_nbr } => {
            ctx.regs[dst as usize] = pick(u, nbr, use_nbr) as f64;
        }
        Op::Degree { dst, nbr: use_nbr } => {
            ctx.regs[dst as usize] = ctx.graph.degree(pick(u, nbr, use_nbr)) as f64;
        }
        Op::Field {
            dst,
            field,
            nbr: use_nbr,
        } => {
            ctx.regs[dst as usize] = ctx.fields[field as usize][pick(u, nbr, use_nbr) as usize];
        }
        Op::EdgeWeight { dst } => ctx.regs[dst as usize] = weight as f64,
        Op::Iter { dst } => ctx.regs[dst as usize] = ctx.iter as f64,
        Op::NumNodes { dst } => ctx.regs[dst as usize] = ctx.graph.num_nodes() as f64,
        Op::Global { dst, global } => ctx.regs[dst as usize] = ctx.globals[global as usize],
        Op::Copy { dst, src } => ctx.regs[dst as usize] = ctx.regs[src as usize],
        Op::Unary { op, dst, src } => {
            ctx.regs[dst as usize] = apply_unary(op, ctx.regs[src as usize]);
        }
        Op::Binary { op, dst, a, b } => {
            ctx.regs[dst as usize] = apply_binary(op, ctx.regs[a as usize], ctx.regs[b as usize]);
        }
        Op::Hash { dst, a, b } => {
            ctx.regs[dst as usize] =
                hash2(ctx.regs[a as usize] as u64, ctx.regs[b as usize] as u64) as f64;
        }
        Op::Store {
            field,
            src,
            nbr: use_nbr,
        } => {
            let v = ctx.regs[src as usize];
            ctx.fields[field as usize][pick(u, nbr, use_nbr) as usize] = v;
        }
        Op::AtomicMin {
            field,
            src,
            nbr: use_nbr,
        } => {
            let v = ctx.regs[src as usize];
            let slot = &mut ctx.fields[field as usize][pick(u, nbr, use_nbr) as usize];
            if v < *slot {
                *slot = v;
            }
        }
        Op::AtomicAdd {
            field,
            src,
            nbr: use_nbr,
        } => {
            let v = ctx.regs[src as usize];
            ctx.fields[field as usize][pick(u, nbr, use_nbr) as usize] += v;
        }
        Op::GlobalAdd { global, src } => {
            ctx.globals[global as usize] += ctx.regs[src as usize];
        }
        Op::Push { nbr: use_nbr } => {
            let v = pick(u, nbr, use_nbr);
            if !ctx.in_next[v as usize] {
                ctx.in_next[v as usize] = true;
                ctx.next_worklist.push(v);
                *pushes += 1;
            }
        }
        Op::MarkChanged => ctx.changed = true,
        Op::JumpIfZero { src, skip } => {
            if ctx.regs[src as usize] == 0.0 {
                return skip as usize;
            }
        }
        Op::Jump { skip } => return skip as usize,
        Op::EdgeLoop { .. } => {
            unreachable!("edge loops are expanded by the node-level walker")
        }
    }
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute_ast, Execution};
    use crate::programs;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn ast_run(p: &Program, g: &Graph) -> (Result<Execution, IrglError>, gpp_sim::trace::Trace) {
        let mut rec = Recorder::new();
        let r = execute_ast(p, g, &mut rec);
        (r, rec.into_trace())
    }

    fn vm_run(p: &Program, g: &Graph) -> (Result<Execution, IrglError>, gpp_sim::trace::Trace) {
        let mut rec = Recorder::new();
        let compiled = CompiledProgram::compile(p).unwrap();
        let r = KernelVm::new().run(&compiled, g, &mut rec);
        (r, rec.into_trace())
    }

    #[test]
    fn all_builtin_programs_match_the_ast_oracle() {
        let graphs = vec![
            generators::road_grid(8, 8, 3).unwrap(),
            generators::rmat(7, 6, 42).unwrap(),
            generators::star(33).unwrap(),
            generators::path(1).unwrap(),
            Graph::from_csr(vec![0], vec![], vec![], true).unwrap(),
        ];
        for p in programs::all() {
            for g in &graphs {
                let (ast, ast_trace) = ast_run(&p, g);
                let (vm, vm_trace) = vm_run(&p, g);
                assert_eq!(ast, vm, "{} execution diverged", p.name);
                assert_eq!(ast_trace, vm_trace, "{} trace diverged", p.name);
            }
        }
    }

    #[test]
    fn if_lowering_produces_forward_jumps_only() {
        for p in programs::all() {
            let compiled = CompiledProgram::compile(&p).unwrap();
            for k in compiled.kernels() {
                let streams =
                    std::iter::once(k.node_ops()).chain(k.edge_segments().iter().map(Vec::as_slice));
                for code in streams {
                    for (at, op) in code.iter().enumerate() {
                        let skip = match op {
                            Op::Jump { skip } | Op::JumpIfZero { skip, .. } => *skip as usize,
                            _ => continue,
                        };
                        assert!(at + 1 + skip <= code.len(), "jump past end in {}", k.name());
                    }
                }
                assert!(k.num_ops() > 0, "{} compiled to nothing", k.name());
            }
        }
    }

    #[test]
    fn profiles_match_tree_walker_derivation() {
        for p in programs::all() {
            let compiled = CompiledProgram::compile(&p).unwrap();
            for (k, ck) in p.kernels.iter().zip(compiled.kernels()) {
                assert_eq!(ck.profile(), &derive_profile(k, &k.name));
            }
        }
    }

    #[test]
    fn edge_segments_are_split_out_of_node_streams() {
        let p = programs::bfs_worklist();
        let compiled = CompiledProgram::compile(&p).unwrap();
        let k = &compiled.kernels()[0];
        assert_eq!(k.edge_segments().len(), 1);
        assert!(k.node_ops().iter().any(|op| matches!(op, Op::EdgeLoop { .. })));
        assert!(!k
            .edge_segments()[0]
            .iter()
            .any(|op| matches!(op, Op::EdgeLoop { .. })));
    }

    #[test]
    fn vm_scratch_reuse_is_clean_across_runs() {
        let g1 = generators::rmat(6, 5, 7).unwrap();
        let g2 = generators::road_grid(5, 5, 1).unwrap();
        let mut vm = KernelVm::new();
        for p in programs::all() {
            let compiled = CompiledProgram::compile(&p).unwrap();
            // Interleave graphs of different sizes through one VM; each
            // run must match a fresh VM bit for bit.
            for g in [&g1, &g2, &g1] {
                let mut rec_reused = Recorder::new();
                let reused = vm.run(&compiled, g, &mut rec_reused);
                let (fresh, fresh_trace) = vm_run(&p, g);
                assert_eq!(reused.unwrap(), fresh.unwrap(), "{}", p.name);
                assert_eq!(rec_reused.into_trace(), fresh_trace, "{}", p.name);
            }
        }
    }

    #[test]
    fn compile_rejects_invalid_programs_like_validate() {
        let mut p = programs::bfs_topology();
        p.output = 99;
        let err = CompiledProgram::compile(&p).unwrap_err();
        assert_eq!(err, validate(&p).unwrap_err());
    }

    #[test]
    fn content_hash_is_stable_and_structural() {
        for p in programs::all() {
            let a = CompiledProgram::compile(&p).unwrap();
            let b = CompiledProgram::compile(&p).unwrap();
            assert_eq!(a.content_hash(), b.content_hash(), "{}", p.name);
            // Building the native artifact must not perturb the hash.
            let before = a.content_hash();
            let _ = a.native();
            assert_eq!(before, a.content_hash(), "{}", p.name);
        }
    }

    #[test]
    fn content_hash_changes_when_the_program_changes() {
        let base = CompiledProgram::compile(&programs::bfs_worklist())
            .unwrap()
            .content_hash();
        // A constant tweak deep inside a kernel body.
        let mut edited = programs::bfs_worklist();
        visit_first_const(&mut edited.kernels[0].body);
        let edited_hash = CompiledProgram::compile(&edited).unwrap().content_hash();
        assert_ne!(base, edited_hash, "op-stream edit must change the hash");
        // A driver-only change (no kernel ops touched).
        let mut rebound = programs::bfs_worklist();
        if let Driver::WorklistLoop { max_iters, .. } = &mut rebound.driver {
            *max_iters += 1;
        }
        let rebound_hash = CompiledProgram::compile(&rebound).unwrap().content_hash();
        assert_ne!(base, rebound_hash, "driver edit must change the hash");
        // Distinct programs never collide in practice.
        let other = CompiledProgram::compile(&programs::bfs_topology())
            .unwrap()
            .content_hash();
        assert_ne!(base, other);
    }

    fn visit_first_const(stmts: &mut [Stmt]) -> bool {
        fn in_expr(e: &mut Expr) -> bool {
            match e {
                Expr::Const(c) => {
                    *c += 1.0;
                    true
                }
                Expr::Unary(_, a) => in_expr(a),
                Expr::Binary(_, a, b) => in_expr(a) || in_expr(b),
                Expr::Hash(a, b) => in_expr(a) || in_expr(b),
                _ => false,
            }
        }
        for s in stmts {
            let hit = match s {
                Stmt::Let(_, e) | Stmt::GlobalAdd(_, e) => in_expr(e),
                Stmt::Store { value, .. }
                | Stmt::AtomicMin { value, .. }
                | Stmt::AtomicAdd { value, .. } => in_expr(value),
                Stmt::If { cond, then, els } => {
                    in_expr(cond) || visit_first_const(then) || visit_first_const(els)
                }
                Stmt::ForEachEdge(body) => visit_first_const(body),
                Stmt::Push(_) | Stmt::MarkChanged => false,
            };
            if hit {
                return true;
            }
        }
        false
    }
}

//! The DSL's textual front end: a tokenizer and recursive-descent parser
//! for the surface syntax emitted by [`crate::printer::to_source`].
//!
//! ```text
//! program bfs_wl {
//!   field level = source_else(inf);
//!
//!   kernel expand worklist {
//!     let next = (level[node] + 1);
//!     for edge {
//!       if ((next < level[nbr])) {
//!         atomic_min(level[nbr], next);
//!         push(nbr);
//!       }
//!     }
//!   }
//!
//!   driver worklist_loop(expand) from source max 1000000;
//!   output level;
//! }
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldDecl, FieldInit, GlobalDecl, Kernel, Program, Ref, Stmt,
    UnaryOp, WorklistInit,
};

/// A syntax error with its source position (1-based line and column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(f64),
    Punct(&'static str),
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    line: usize,
    col: usize,
}

fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut toks = Vec::new();
    let mut chars = src.chars().peekable();
    let (mut line, mut col) = (1usize, 1usize);
    let advance = |c: char, line: &mut usize, col: &mut usize| {
        if c == '\n' {
            *line += 1;
            *col = 1;
        } else {
            *col += 1;
        }
    };
    while let Some(&c) = chars.peek() {
        let (tline, tcol) = (line, col);
        if c.is_whitespace() {
            chars.next();
            advance(c, &mut line, &mut col);
            continue;
        }
        if c == '/' {
            // Comment or division.
            let mut clone = chars.clone();
            clone.next();
            if clone.peek() == Some(&'/') {
                for c in chars.by_ref() {
                    advance(c, &mut line, &mut col);
                    if c == '\n' {
                        break;
                    }
                }
                continue;
            }
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let mut ident = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    ident.push(c);
                    chars.next();
                    advance(c, &mut line, &mut col);
                } else {
                    break;
                }
            }
            toks.push(Token {
                tok: Tok::Ident(ident),
                line: tline,
                col: tcol,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if c.is_ascii_digit() || c == '.' || c == 'e' || c == 'E' {
                    text.push(c);
                    chars.next();
                    advance(c, &mut line, &mut col);
                } else {
                    break;
                }
            }
            let value: f64 = text.parse().map_err(|_| ParseError {
                line: tline,
                col: tcol,
                message: format!("bad number `{text}`"),
            })?;
            toks.push(Token {
                tok: Tok::Num(value),
                line: tline,
                col: tcol,
            });
            continue;
        }
        // Punctuation (longest match first).
        let two: String = chars.clone().take(2).collect();
        let punct = match two.as_str() {
            "==" => Some("=="),
            "!=" => Some("!="),
            "<=" => Some("<="),
            "&&" => Some("&&"),
            "||" => Some("||"),
            _ => None,
        };
        if let Some(p) = punct {
            for _ in 0..2 {
                let c = chars.next().expect("peeked");
                advance(c, &mut line, &mut col);
            }
            toks.push(Token {
                tok: Tok::Punct(p),
                line: tline,
                col: tcol,
            });
            continue;
        }
        let single = match c {
            '{' => "{",
            '}' => "}",
            '(' => "(",
            ')' => ")",
            '[' => "[",
            ']' => "]",
            ',' => ",",
            ';' => ";",
            '=' => "=",
            '<' => "<",
            '+' => "+",
            '-' => "-",
            '*' => "*",
            '/' => "/",
            '!' => "!",
            other => {
                return Err(ParseError {
                    line: tline,
                    col: tcol,
                    message: format!("unexpected character `{other}`"),
                })
            }
        };
        chars.next();
        advance(c, &mut line, &mut col);
        toks.push(Token {
            tok: Tok::Punct(single),
            line: tline,
            col: tcol,
        });
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
    fields: HashMap<String, usize>,
    globals: HashMap<String, usize>,
    kernels: HashMap<String, usize>,
    locals: HashMap<String, usize>,
}

/// Parses DSL source text into a validated-shape [`Program`] (run
/// [`crate::validate::validate`] afterwards for the semantic checks).
///
/// # Errors
///
/// Returns a [`ParseError`] with a source position on any syntax error
/// or reference to an undeclared name.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let toks = tokenize(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        fields: HashMap::new(),
        globals: HashMap::new(),
        kernels: HashMap::new(),
        locals: HashMap::new(),
    };
    p.program()
}

impl Parser {
    fn here(&self) -> (usize, usize) {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| (t.line, t.col))
            .unwrap_or((1, 1))
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn eat_punct_inner(&mut self, p: &str) -> bool {
        if let Some(Tok::Punct(q)) = self.peek() {
            if *q == p {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), ParseError> {
        if self.eat_punct_inner(p) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`")))
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(w)) = self.peek() {
            if w == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_ident_word(&mut self, word: &str) -> Result<(), ParseError> {
        if self.eat_ident(word) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Tok::Ident(w)) => {
                self.pos += 1;
                Ok(w)
            }
            _ => Err(self.err("expected an identifier")),
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let neg = self.eat_punct_inner("-");
        if self.eat_ident("inf") {
            return Ok(if neg {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            });
        }
        match self.peek().cloned() {
            Some(Tok::Num(v)) => {
                self.pos += 1;
                Ok(if neg { -v } else { v })
            }
            _ => Err(self.err("expected a number")),
        }
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        let v = self.number()?;
        if v.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&v) {
            Ok(v as u32)
        } else {
            Err(self.err(format!("expected a non-negative integer, got {v}")))
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect_ident_word("program")?;
        let name = self.ident()?;
        self.expect_punct("{")?;
        let mut fields = Vec::new();
        let mut globals = Vec::new();
        loop {
            if self.eat_ident("field") {
                let fname = self.ident()?;
                self.expect_punct("=")?;
                let init = self.field_init()?;
                self.expect_punct(";")?;
                self.fields.insert(fname.clone(), fields.len());
                fields.push(FieldDecl { name: fname, init });
            } else if self.eat_ident("global") {
                let gname = self.ident()?;
                self.expect_punct("=")?;
                let init = self.number()?;
                self.expect_punct(";")?;
                self.globals.insert(gname.clone(), globals.len());
                globals.push(GlobalDecl { name: gname, init });
            } else {
                break;
            }
        }
        let mut kernels = Vec::new();
        while self.eat_ident("kernel") {
            let kname = self.ident()?;
            let domain = if self.eat_ident("all_nodes") {
                Domain::AllNodes
            } else if self.eat_ident("worklist") {
                Domain::Worklist
            } else {
                return Err(self.err("expected `all_nodes` or `worklist`"));
            };
            self.locals.clear();
            let body = self.block()?;
            self.kernels.insert(kname.clone(), kernels.len());
            kernels.push(Kernel {
                name: kname,
                domain,
                locals: self.locals.len(),
                body,
            });
        }
        self.expect_ident_word("driver")?;
        let driver = self.driver()?;
        self.expect_ident_word("output")?;
        let out_name = self.ident()?;
        let output = *self
            .fields
            .get(&out_name)
            .ok_or_else(|| self.err(format!("unknown output field `{out_name}`")))?;
        self.expect_punct(";")?;
        self.expect_punct("}")?;
        if self.pos != self.toks.len() {
            return Err(self.err("trailing input after program"));
        }
        Ok(Program {
            name,
            fields,
            globals,
            kernels,
            driver,
            output,
        })
    }

    fn field_init(&mut self) -> Result<FieldInit, ParseError> {
        if self.eat_ident("const") {
            self.expect_punct("(")?;
            let v = self.number()?;
            self.expect_punct(")")?;
            Ok(FieldInit::Const(v))
        } else if self.eat_ident("node_id") {
            Ok(FieldInit::NodeId)
        } else if self.eat_ident("inf") {
            Ok(FieldInit::Infinity)
        } else if self.eat_ident("one_over_n") {
            Ok(FieldInit::OneOverN)
        } else if self.eat_ident("source_else") {
            self.expect_punct("(")?;
            let v = self.number()?;
            self.expect_punct(")")?;
            Ok(FieldInit::SourceElse(v))
        } else {
            Err(self.err("expected a field initialiser"))
        }
    }

    fn driver(&mut self) -> Result<Driver, ParseError> {
        if self.eat_ident("until_fixpoint") {
            let kernels = self.kernel_list()?;
            self.expect_ident_word("max")?;
            let max_iters = self.integer()?;
            self.expect_punct(";")?;
            Ok(Driver::UntilFixpoint { kernels, max_iters })
        } else if self.eat_ident("worklist_loop") {
            let kernels = self.kernel_list()?;
            if kernels.len() != 1 {
                return Err(self.err("worklist_loop takes exactly one kernel"));
            }
            self.expect_ident_word("from")?;
            let init = if self.eat_ident("source") {
                WorklistInit::Source
            } else if self.eat_ident("all_nodes") {
                WorklistInit::AllNodes
            } else {
                return Err(self.err("expected `source` or `all_nodes`"));
            };
            self.expect_ident_word("max")?;
            let max_iters = self.integer()?;
            self.expect_punct(";")?;
            Ok(Driver::WorklistLoop {
                init,
                kernel: kernels[0],
                max_iters,
            })
        } else if self.eat_ident("fixed") {
            let kernels = self.kernel_list()?;
            self.expect_ident_word("iters")?;
            let iters = self.integer()?;
            self.expect_punct(";")?;
            Ok(Driver::Fixed { kernels, iters })
        } else {
            Err(self.err("expected `until_fixpoint`, `worklist_loop`, or `fixed`"))
        }
    }

    fn kernel_list(&mut self) -> Result<Vec<usize>, ParseError> {
        self.expect_punct("(")?;
        let mut ids = Vec::new();
        loop {
            let name = self.ident()?;
            let id = *self
                .kernels
                .get(&name)
                .ok_or_else(|| self.err(format!("unknown kernel `{name}`")))?;
            ids.push(id);
            if !self.eat_punct_inner(",") {
                break;
            }
        }
        self.expect_punct(")")?;
        Ok(ids)
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct_inner("}") {
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.eat_ident("let") {
            let name = self.ident()?;
            self.expect_punct("=")?;
            let value = self.expr()?;
            self.expect_punct(";")?;
            let next = self.locals.len();
            let id = *self.locals.entry(name).or_insert(next);
            return Ok(Stmt::Let(id, value));
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block()?;
            let els = if self.eat_ident("else") {
                self.block()?
            } else {
                Vec::new()
            };
            return Ok(Stmt::If { cond, then, els });
        }
        if self.eat_ident("for") {
            self.expect_ident_word("edge")?;
            let body = self.block()?;
            return Ok(Stmt::ForEachEdge(body));
        }
        if self.eat_ident("push") {
            self.expect_punct("(")?;
            let target = self.reference()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::Push(target));
        }
        if self.eat_ident("mark_changed") {
            self.expect_punct(";")?;
            return Ok(Stmt::MarkChanged);
        }
        if self.eat_ident("atomic_min") {
            let (field, target, value) = self.atomic_args()?;
            return Ok(Stmt::AtomicMin {
                field,
                target,
                value,
            });
        }
        if self.eat_ident("atomic_add") {
            let (field, target, value) = self.atomic_args()?;
            return Ok(Stmt::AtomicAdd {
                field,
                target,
                value,
            });
        }
        if self.eat_ident("global_add") {
            self.expect_punct("(")?;
            let name = self.ident()?;
            let global = *self
                .globals
                .get(&name)
                .ok_or_else(|| self.err(format!("unknown global `{name}`")))?;
            self.expect_punct(",")?;
            let value = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::GlobalAdd(global, value));
        }
        // Fallback: a store `field[ref] = expr;`.
        let name = self.ident()?;
        let field = *self
            .fields
            .get(&name)
            .ok_or_else(|| self.err(format!("unknown field `{name}`")))?;
        self.expect_punct("[")?;
        let target = self.reference()?;
        self.expect_punct("]")?;
        self.expect_punct("=")?;
        let value = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Store {
            field,
            target,
            value,
        })
    }

    fn atomic_args(&mut self) -> Result<(usize, Ref, Expr), ParseError> {
        self.expect_punct("(")?;
        let name = self.ident()?;
        let field = *self
            .fields
            .get(&name)
            .ok_or_else(|| self.err(format!("unknown field `{name}`")))?;
        self.expect_punct("[")?;
        let target = self.reference()?;
        self.expect_punct("]")?;
        self.expect_punct(",")?;
        let value = self.expr()?;
        self.expect_punct(")")?;
        self.expect_punct(";")?;
        Ok((field, target, value))
    }

    fn reference(&mut self) -> Result<Ref, ParseError> {
        if self.eat_ident("node") {
            Ok(Ref::Node)
        } else if self.eat_ident("nbr") {
            Ok(Ref::Nbr)
        } else {
            Err(self.err("expected `node` or `nbr`"))
        }
    }

    // Precedence climbing: || < && < comparison < additive < multiplicative.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct_inner("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct_inner("&&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.add_expr()?;
        for (punct, op) in [
            ("<=", BinOp::Le),
            ("==", BinOp::Eq),
            ("!=", BinOp::Ne),
            ("<", BinOp::Lt),
        ] {
            if self.eat_punct_inner(punct) {
                let rhs = self.add_expr()?;
                return Ok(Expr::bin(op, lhs, rhs));
            }
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_punct_inner("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::bin(BinOp::Add, lhs, rhs);
            } else if self.eat_punct_inner("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::bin(BinOp::Sub, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_punct_inner("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(BinOp::Mul, lhs, rhs);
            } else if self.eat_punct_inner("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::bin(BinOp::Div, lhs, rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct_inner("!") {
            return Ok(Expr::Unary(UnaryOp::Not, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct_inner("-") {
            let inner = self.unary_expr()?;
            // Canonical form: fold negation of a literal into the literal
            // so `-1` parses as the constant -1.
            if let Expr::Const(c) = inner {
                return Ok(Expr::Const(-c));
            }
            return Ok(Expr::Unary(UnaryOp::Neg, Box::new(inner)));
        }
        self.primary()
    }

    fn two_args(&mut self) -> Result<(Expr, Expr), ParseError> {
        self.expect_punct("(")?;
        let a = self.expr()?;
        self.expect_punct(",")?;
        let b = self.expr()?;
        self.expect_punct(")")?;
        Ok((a, b))
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct_inner("(") {
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(e);
        }
        if let Some(Tok::Num(v)) = self.peek().cloned() {
            self.pos += 1;
            return Ok(Expr::Const(v));
        }
        if self.eat_ident("inf") {
            return Ok(Expr::Const(f64::INFINITY));
        }
        if self.eat_ident("iter") {
            return Ok(Expr::Iter);
        }
        if self.eat_ident("num_nodes") {
            return Ok(Expr::NumNodes);
        }
        if self.eat_ident("weight") {
            return Ok(Expr::EdgeWeight);
        }
        if self.eat_ident("id") {
            self.expect_punct("(")?;
            let r = self.reference()?;
            self.expect_punct(")")?;
            return Ok(Expr::NodeId(r));
        }
        if self.eat_ident("degree") {
            self.expect_punct("(")?;
            let r = self.reference()?;
            self.expect_punct(")")?;
            return Ok(Expr::Degree(r));
        }
        if self.eat_ident("floor") {
            self.expect_punct("(")?;
            let e = self.expr()?;
            self.expect_punct(")")?;
            return Ok(Expr::Unary(UnaryOp::Floor, Box::new(e)));
        }
        if self.eat_ident("min") {
            let (a, b) = self.two_args()?;
            return Ok(Expr::bin(BinOp::Min, a, b));
        }
        if self.eat_ident("max") {
            let (a, b) = self.two_args()?;
            return Ok(Expr::bin(BinOp::Max, a, b));
        }
        if self.eat_ident("hash") {
            let (a, b) = self.two_args()?;
            return Ok(Expr::Hash(Box::new(a), Box::new(b)));
        }
        if self.eat_ident("global") {
            self.expect_punct("(")?;
            let name = self.ident()?;
            let id = *self
                .globals
                .get(&name)
                .ok_or_else(|| self.err(format!("unknown global `{name}`")))?;
            self.expect_punct(")")?;
            return Ok(Expr::Global(id));
        }
        // Identifier: a field access `name[ref]` or a local.
        let name = self.ident()?;
        if self.eat_punct_inner("[") {
            let field = *self
                .fields
                .get(&name)
                .ok_or_else(|| self.err(format!("unknown field `{name}`")))?;
            let r = self.reference()?;
            self.expect_punct("]")?;
            return Ok(Expr::Field(field, r));
        }
        if let Some(&id) = self.locals.get(&name) {
            return Ok(Expr::Local(id));
        }
        Err(self.err(format!("unknown name `{name}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::to_source;
    use crate::programs;
    use crate::validate::validate;

    #[test]
    fn round_trips_every_builtin_program() {
        for p in programs::all() {
            let text = to_source(&p);
            let parsed = parse(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", p.name));
            assert_eq!(parsed, p, "{}", p.name);
        }
    }

    #[test]
    fn parses_handwritten_source() {
        let src = r#"
            // shortest hops from node 0
            program hops {
              field level = source_else(inf);

              kernel expand worklist {
                let next = level[node] + 1;
                for edge {
                  if (next < level[nbr]) {
                    atomic_min(level[nbr], next);
                    push(nbr);
                  }
                }
              }

              driver worklist_loop(expand) from source max 100000;
              output level;
            }
        "#;
        let program = parse(src).expect("parses");
        assert_eq!(validate(&program), Ok(()));
        assert_eq!(program.name, "hops");
        assert_eq!(program.kernels.len(), 1);
        assert_eq!(program.kernels[0].locals, 1);
        // Executes correctly end to end.
        let g = gpp_graph::generators::path(6).unwrap();
        let mut rec = gpp_sim::trace::Recorder::new();
        let result = crate::interp::execute(&program, &g, &mut rec).expect("runs");
        assert_eq!(result.output(&program), &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn operator_precedence_is_conventional() {
        let src = "program p { field x = const(0);\n kernel k all_nodes { x[node] = 1 + 2 * 3; }\n driver fixed(k) iters 1; output x; }";
        let program = parse(src).expect("parses");
        let Stmt::Store { value, .. } = &program.kernels[0].body[0] else {
            panic!("expected a store");
        };
        // 1 + (2 * 3) = 7 when evaluated.
        let g = gpp_graph::generators::path(1).unwrap();
        let mut rec = gpp_sim::trace::Recorder::new();
        let result = crate::interp::execute(&program, &g, &mut rec).expect("runs");
        assert_eq!(result.output(&program)[0], 7.0);
        assert!(matches!(value, Expr::Binary(BinOp::Add, _, _)));
    }

    #[test]
    fn reports_positions_in_errors() {
        let err = parse("program p {\n  field x = wat;\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("initialiser"), "{err}");
    }

    #[test]
    fn rejects_unknown_names() {
        let src = "program p { field x = const(0);\n kernel k all_nodes { y[node] = 1; }\n driver fixed(k) iters 1; output x; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown field `y`"), "{err}");
        let src = "program p { field x = const(0);\n kernel k all_nodes { }\n driver fixed(zz) iters 1; output x; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown kernel `zz`"), "{err}");
    }

    #[test]
    fn rejects_trailing_garbage() {
        let src = "program p { field x = const(0); kernel k all_nodes { } driver fixed(k) iters 1; output x; } extra";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let src = "// header\nprogram p { // fields\n field x = const(3); kernel k all_nodes { } driver fixed(k) iters 1; output x; }";
        assert!(parse(src).is_ok());
    }

    #[test]
    fn negative_and_infinite_numbers_in_inits() {
        let src = "program p { field x = const(-2.5); field y = source_else(inf); kernel k all_nodes { } driver fixed(k) iters 1; output x; }";
        let program = parse(src).expect("parses");
        assert_eq!(program.fields[0].init, FieldInit::Const(-2.5));
        assert_eq!(program.fields[1].init, FieldInit::SourceElse(f64::INFINITY));
    }
}

//! The native-compiled kernel tier: closure-fused execution one rung
//! below the bytecode VM.
//!
//! The register VM in [`crate::bytecode`] already removed the
//! tree-walker's per-node re-dispatch, but it still pays a `match` per
//! op, program-counter bookkeeping per op, and a register-file
//! round-trip per operand. This module makes the last move the paper's
//! IrGL pipeline makes — per-config kernels are *compiled*, not
//! interpreted — by lowering each validated kernel into a tree of fused
//! Rust closures built once per program and called many times:
//!
//! - **Statements fuse into single calls.** A statement becomes one
//!   closure; short sequences chain directly (no dispatch loop for the
//!   common 1–3 statement bodies) and longer ones iterate a boxed slice.
//! - **Leaf operands are inlined.** Expression leaves (constants,
//!   pre-resolved field/local/global slots, node ids, degrees, edge
//!   weights, iteration counters) are captured as a small [`Leaf`] value
//!   and evaluated inline by the consuming closure, so `dist[nbr] > d + w`
//!   is *one* call, not five dispatches.
//! - **Constants fold at compile time.** Any constant subexpression is
//!   evaluated during lowering — through the *same*
//!   [`apply_unary`]/[`apply_binary`]/[`hash2`] the interpreters use, so
//!   folding cannot change a single bit — and an `If` with a constant
//!   condition compiles to just the taken branch.
//! - **Edge loops specialise.** `ForEachEdge` becomes a closure that
//!   iterates CSR edges directly, calling the fused edge body with the
//!   neighbour and weight staged in the context — no segment table, no
//!   per-edge program counter.
//!
//! The artifact lives beside the bytecode inside
//! [`CompiledProgram`] (built lazily on first use, shared via
//! `OnceLock`), and [`NativeVm`] mirrors [`crate::bytecode::KernelVm`]
//! launch for launch — same driver loops, same scratch reuse
//! (locals/worklist/`in_next` cleared by draining), same
//! [`WorkItem`] accounting — so all three tiers produce bit-identical
//! [`Execution`] results and recorded traces (enforced by the
//! release-mode three-tier differential suite in
//! `tests/bytecode_identity.rs`).

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::ast::{BinOp, Domain, Driver, Expr, Kernel, Ref, Stmt};
use crate::bytecode::CompiledProgram;
use crate::interp::{apply_binary, apply_unary, hash2, init_field, seed_worklist, Execution};
use crate::validate::IrglError;

/// Mutable program state threaded through every fused closure during one
/// run: the graph, field/global/local storage, the worklist scratch, and
/// the per-node cursor (`u`, `nbr`, `weight`, trip/push counters).
struct NCtx<'a> {
    graph: &'a Graph,
    fields: &'a mut Vec<Vec<f64>>,
    globals: &'a mut Vec<f64>,
    locals: &'a mut Vec<f64>,
    next_worklist: &'a mut Vec<NodeId>,
    in_next: &'a mut Vec<bool>,
    iter: u32,
    changed: bool,
    u: NodeId,
    nbr: NodeId,
    weight: u32,
    trips: u32,
    pushes: u32,
}

/// A fused expression: called once, returns the value.
type ExprFn = Box<dyn Fn(&NCtx) -> f64 + Send + Sync>;
/// A fused statement (or statement sequence).
type StmtFn = Box<dyn Fn(&mut NCtx) + Send + Sync>;

/// An expression leaf small enough to inline into the consuming closure
/// instead of paying a boxed call: all slots pre-resolved at compile
/// time.
#[derive(Debug, Clone, Copy)]
enum Leaf {
    Const(f64),
    Field(usize, bool),
    Local(usize),
    Global(usize),
    NodeId(bool),
    Degree(bool),
    EdgeWeight,
    Iter,
    NumNodes,
}

#[inline]
fn pick(c: &NCtx, use_nbr: bool) -> NodeId {
    if use_nbr {
        c.nbr
    } else {
        c.u
    }
}

#[inline]
fn eval_leaf(c: &NCtx, leaf: Leaf) -> f64 {
    match leaf {
        Leaf::Const(k) => k,
        Leaf::Field(f, nbr) => c.fields[f][pick(c, nbr) as usize],
        Leaf::Local(l) => c.locals[l],
        Leaf::Global(g) => c.globals[g],
        Leaf::NodeId(nbr) => pick(c, nbr) as f64,
        Leaf::Degree(nbr) => c.graph.degree(pick(c, nbr)) as f64,
        Leaf::EdgeWeight => c.weight as f64,
        Leaf::Iter => c.iter as f64,
        Leaf::NumNodes => c.graph.num_nodes() as f64,
    }
}

/// One kernel lowered to a single fused body closure.
struct NativeKernel {
    locals: usize,
    body: StmtFn,
}

/// A program's native artifact: every kernel as a fused closure tree,
/// aligned index for index with [`CompiledProgram::kernels`].
pub struct NativeProgram {
    kernels: Vec<NativeKernel>,
}

impl std::fmt::Debug for NativeProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Closures are opaque; report only the shape.
        f.debug_struct("NativeProgram")
            .field("kernels", &self.kernels.len())
            .finish()
    }
}

impl NativeProgram {
    /// Number of compiled kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }
}

/// Lowers every kernel of an already-validated [`CompiledProgram`] into
/// fused closures. Called lazily (once) by [`CompiledProgram::native`];
/// public so benchmarks can measure the lowering itself — runtime
/// callers should go through the cached artifact instead.
pub fn compile_native(compiled: &CompiledProgram) -> NativeProgram {
    let kernels: Vec<NativeKernel> = compiled.kernel_asts().iter().map(compile_kernel).collect();
    gpp_obs::metrics::counter("irgl.native_kernels_compiled", kernels.len() as u64);
    NativeProgram { kernels }
}

fn compile_kernel(kernel: &Kernel) -> NativeKernel {
    NativeKernel {
        locals: kernel.locals,
        body: compile_block(&kernel.body),
    }
}

fn is_nbr(r: Ref) -> bool {
    r == Ref::Nbr
}

/// Fuses a statement sequence into one call: direct chaining for the
/// short bodies that dominate real kernels, a boxed-slice loop beyond.
fn compile_block(stmts: &[Stmt]) -> StmtFn {
    let mut fns: Vec<StmtFn> = stmts.iter().map(compile_stmt).collect();
    match fns.len() {
        0 => Box::new(|_| {}),
        1 => fns.pop().expect("len checked"),
        2 => {
            let b = fns.pop().expect("len checked");
            let a = fns.pop().expect("len checked");
            Box::new(move |c| {
                a(c);
                b(c);
            })
        }
        3 => {
            let z = fns.pop().expect("len checked");
            let b = fns.pop().expect("len checked");
            let a = fns.pop().expect("len checked");
            Box::new(move |c| {
                a(c);
                b(c);
                z(c);
            })
        }
        _ => {
            let seq = fns.into_boxed_slice();
            Box::new(move |c| {
                for f in &seq {
                    f(c);
                }
            })
        }
    }
}

fn compile_stmt(stmt: &Stmt) -> StmtFn {
    match stmt {
        Stmt::Let(local, expr) => {
            let l = *local;
            let e = compile_expr(expr);
            Box::new(move |c| c.locals[l] = e(c))
        }
        Stmt::If { cond, then, els } => {
            // A constant condition selects its branch at compile time —
            // the same `!= 0.0` test the interpreters apply at runtime.
            if let Some(k) = const_eval(cond) {
                return if k != 0.0 {
                    compile_block(then)
                } else {
                    compile_block(els)
                };
            }
            let cond = compile_expr(cond);
            let then = compile_block(then);
            if els.is_empty() {
                Box::new(move |c| {
                    if cond(c) != 0.0 {
                        then(c);
                    }
                })
            } else {
                let els = compile_block(els);
                Box::new(move |c| {
                    if cond(c) != 0.0 {
                        then(c);
                    } else {
                        els(c);
                    }
                })
            }
        }
        Stmt::Store {
            field,
            target,
            value,
        } => {
            let f = *field;
            let v = compile_expr(value);
            if is_nbr(*target) {
                Box::new(move |c| {
                    let x = v(c);
                    c.fields[f][c.nbr as usize] = x;
                })
            } else {
                Box::new(move |c| {
                    let x = v(c);
                    c.fields[f][c.u as usize] = x;
                })
            }
        }
        Stmt::AtomicMin {
            field,
            target,
            value,
        } => {
            let f = *field;
            let v = compile_expr(value);
            if is_nbr(*target) {
                Box::new(move |c| {
                    let x = v(c);
                    let slot = &mut c.fields[f][c.nbr as usize];
                    if x < *slot {
                        *slot = x;
                    }
                })
            } else {
                Box::new(move |c| {
                    let x = v(c);
                    let slot = &mut c.fields[f][c.u as usize];
                    if x < *slot {
                        *slot = x;
                    }
                })
            }
        }
        Stmt::AtomicAdd {
            field,
            target,
            value,
        } => {
            let f = *field;
            let v = compile_expr(value);
            if is_nbr(*target) {
                Box::new(move |c| {
                    let x = v(c);
                    c.fields[f][c.nbr as usize] += x;
                })
            } else {
                Box::new(move |c| {
                    let x = v(c);
                    c.fields[f][c.u as usize] += x;
                })
            }
        }
        Stmt::ForEachEdge(body) => {
            let body = compile_block(body);
            Box::new(move |c| {
                let g = c.graph;
                for (nbr, weight) in g.out_edges(c.u) {
                    c.trips += 1;
                    c.nbr = nbr;
                    c.weight = weight;
                    body(c);
                }
            })
        }
        Stmt::Push(target) => {
            let nbr = is_nbr(*target);
            Box::new(move |c| {
                let v = pick(c, nbr);
                if !c.in_next[v as usize] {
                    c.in_next[v as usize] = true;
                    c.next_worklist.push(v);
                    c.pushes += 1;
                }
            })
        }
        Stmt::MarkChanged => Box::new(|c| c.changed = true),
        Stmt::GlobalAdd(global, value) => {
            let g = *global;
            let v = compile_expr(value);
            Box::new(move |c| {
                let x = v(c);
                c.globals[g] += x;
            })
        }
    }
}

/// Evaluates a constant subexpression at compile time, through the same
/// shared operator implementations the interpreters call at runtime —
/// folding is therefore bit-preserving by construction.
fn const_eval(expr: &Expr) -> Option<f64> {
    match expr {
        Expr::Const(c) => Some(*c),
        Expr::Unary(op, a) => Some(apply_unary(*op, const_eval(a)?)),
        Expr::Binary(op, a, b) => Some(apply_binary(*op, const_eval(a)?, const_eval(b)?)),
        Expr::Hash(a, b) => Some(hash2(const_eval(a)? as u64, const_eval(b)? as u64) as f64),
        _ => None,
    }
}

/// An expression as a leaf (inlined into the consumer) if it is one.
/// Constant subtrees of any depth fold to a `Leaf::Const`.
fn as_leaf(expr: &Expr) -> Option<Leaf> {
    if let Some(k) = const_eval(expr) {
        return Some(Leaf::Const(k));
    }
    Some(match expr {
        Expr::Field(f, r) => Leaf::Field(*f, is_nbr(*r)),
        Expr::Local(l) => Leaf::Local(*l),
        Expr::Global(g) => Leaf::Global(*g),
        Expr::NodeId(r) => Leaf::NodeId(is_nbr(*r)),
        Expr::Degree(r) => Leaf::Degree(is_nbr(*r)),
        Expr::EdgeWeight => Leaf::EdgeWeight,
        Expr::Iter => Leaf::Iter,
        Expr::NumNodes => Leaf::NumNodes,
        _ => return None,
    })
}

fn compile_expr(expr: &Expr) -> ExprFn {
    if let Some(leaf) = as_leaf(expr) {
        if let Leaf::Const(k) = leaf {
            return Box::new(move |_| k);
        }
        return Box::new(move |c| eval_leaf(c, leaf));
    }
    match expr {
        Expr::Unary(op, a) => {
            let op = *op;
            if let Some(la) = as_leaf(a) {
                Box::new(move |c| apply_unary(op, eval_leaf(c, la)))
            } else {
                let a = compile_expr(a);
                Box::new(move |c| apply_unary(op, a(c)))
            }
        }
        Expr::Binary(op, a, b) => compile_binary(*op, a, b),
        Expr::Hash(a, b) => match (as_leaf(a), as_leaf(b)) {
            (Some(la), Some(lb)) => {
                Box::new(move |c| hash2(eval_leaf(c, la) as u64, eval_leaf(c, lb) as u64) as f64)
            }
            (Some(la), None) => {
                let b = compile_expr(b);
                Box::new(move |c| hash2(eval_leaf(c, la) as u64, b(c) as u64) as f64)
            }
            (None, Some(lb)) => {
                let a = compile_expr(a);
                Box::new(move |c| hash2(a(c) as u64, eval_leaf(c, lb) as u64) as f64)
            }
            (None, None) => {
                let a = compile_expr(a);
                let b = compile_expr(b);
                Box::new(move |c| hash2(a(c) as u64, b(c) as u64) as f64)
            }
        },
        // Leaves and constants were handled above.
        _ => unreachable!("non-leaf, non-compound expression"),
    }
}

/// Fuses a binary operator with leaf operands inlined on either side.
/// Every arm routes through [`apply_binary`] with a compile-time-known
/// operator, so the optimiser specialises each closure to a single
/// operation while the semantics stay shared with the other tiers.
fn compile_binary(op: BinOp, a: &Expr, b: &Expr) -> ExprFn {
    match (as_leaf(a), as_leaf(b)) {
        (Some(la), Some(lb)) => {
            Box::new(move |c| apply_binary(op, eval_leaf(c, la), eval_leaf(c, lb)))
        }
        (Some(la), None) => {
            let b = compile_expr(b);
            Box::new(move |c| apply_binary(op, eval_leaf(c, la), b(c)))
        }
        (None, Some(lb)) => {
            let a = compile_expr(a);
            Box::new(move |c| apply_binary(op, a(c), eval_leaf(c, lb)))
        }
        (None, None) => {
            let a = compile_expr(a);
            let b = compile_expr(b);
            Box::new(move |c| apply_binary(op, a(c), b(c)))
        }
    }
}

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// The native-tier executor. Owns every scratch buffer — the locals
/// slab, the per-launch [`WorkItem`] vector, the worklists and the
/// `in_next` dedup bitmap — so repeated [`NativeVm::run`] calls allocate
/// nothing beyond the result's field vectors, exactly like
/// [`crate::bytecode::KernelVm`].
#[derive(Debug, Default)]
pub struct NativeVm {
    locals: Vec<f64>,
    items: Vec<WorkItem>,
    worklist: Vec<NodeId>,
    next_worklist: Vec<NodeId>,
    in_next: Vec<bool>,
}

impl NativeVm {
    /// A VM with empty scratch buffers (grown on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Executes `compiled` through its native closure artifact
    /// (building it on first use), reporting every kernel launch to
    /// `exec`. Mirrors the bytecode VM and the tree-walker launch for
    /// launch: results and recorded [`WorkItem`] streams are
    /// bit-identical across all three tiers.
    ///
    /// # Errors
    ///
    /// Returns [`IrglError::IterationBoundExceeded`] if a fixed-point
    /// driver fails to converge within its bound.
    pub fn run(
        &mut self,
        compiled: &CompiledProgram,
        graph: &Graph,
        exec: &mut dyn Executor,
    ) -> Result<Execution, IrglError> {
        gpp_obs::metrics::counter("irgl.native_runs", 1);
        let native = compiled.native();
        let n = graph.num_nodes();
        let mut fields: Vec<Vec<f64>> = compiled
            .field_inits()
            .iter()
            .map(|&init| init_field(init, n))
            .collect();
        let mut globals: Vec<f64> = compiled.global_inits().to_vec();

        // A previous run that errored out mid-loop may have left stale
        // worklist entries or raised dedup flags; start clean.
        self.items.clear();
        self.worklist.clear();
        self.next_worklist.clear();
        self.in_next.clear();

        let NativeVm {
            locals,
            items,
            worklist,
            next_worklist,
            in_next,
        } = self;
        let mut ctx = NCtx {
            graph,
            fields: &mut fields,
            globals: &mut globals,
            locals,
            next_worklist,
            in_next,
            iter: 0,
            changed: false,
            u: 0,
            nbr: 0,
            weight: 0,
            trips: 0,
            pushes: 0,
        };

        let global_inits = compiled.global_inits();
        let mut iterations = 0u32;
        let mut kernels = 0u32;
        match compiled.driver() {
            Driver::UntilFixpoint {
                kernels: seq,
                max_iters,
            } => loop {
                if iterations >= *max_iters {
                    return Err(IrglError::IterationBoundExceeded {
                        program: compiled.name().to_owned(),
                        bound: *max_iters,
                    });
                }
                ctx.begin_iteration(global_inits, iterations);
                for &k in seq {
                    let kernel = &native.kernels[k];
                    debug_assert_eq!(compiled.kernel_asts()[k].domain, Domain::AllNodes);
                    items.clear();
                    for u in graph.nodes() {
                        run_node(&mut ctx, kernel, u, items);
                    }
                    exec.kernel(compiled.kernels()[k].profile(), items);
                    kernels += 1;
                }
                iterations += 1;
                if !ctx.changed {
                    break;
                }
            },
            Driver::Fixed {
                kernels: seq,
                iters,
            } => {
                for iter in 0..*iters {
                    ctx.begin_iteration(global_inits, iter);
                    for &k in seq {
                        let kernel = &native.kernels[k];
                        debug_assert_eq!(compiled.kernel_asts()[k].domain, Domain::AllNodes);
                        items.clear();
                        for u in graph.nodes() {
                            run_node(&mut ctx, kernel, u, items);
                        }
                        exec.kernel(compiled.kernels()[k].profile(), items);
                        kernels += 1;
                    }
                    iterations += 1;
                }
            }
            Driver::WorklistLoop {
                init,
                kernel,
                max_iters,
            } => {
                let k = *kernel;
                let native_kernel = &native.kernels[k];
                debug_assert_eq!(compiled.kernel_asts()[k].domain, Domain::Worklist);
                worklist.extend_from_slice(&seed_worklist(*init, graph));
                ctx.in_next.resize(n, false);
                while !worklist.is_empty() {
                    if iterations >= *max_iters {
                        return Err(IrglError::IterationBoundExceeded {
                            program: compiled.name().to_owned(),
                            bound: *max_iters,
                        });
                    }
                    ctx.begin_iteration(global_inits, iterations);
                    items.clear();
                    for &u in worklist.iter() {
                        run_node(&mut ctx, native_kernel, u, items);
                    }
                    exec.kernel(compiled.kernels()[k].profile(), items);
                    kernels += 1;
                    // Clear-by-drain: swap in the pushed nodes and lower
                    // exactly their dedup flags — no O(n) reset per level.
                    std::mem::swap(worklist, ctx.next_worklist);
                    ctx.next_worklist.clear();
                    for &v in worklist.iter() {
                        ctx.in_next[v as usize] = false;
                    }
                    iterations += 1;
                }
            }
        }
        Ok(Execution {
            fields,
            globals,
            iterations,
            kernels,
        })
    }
}

impl NCtx<'_> {
    /// Same per-iteration reset as the other tiers: stamp the iteration
    /// counter, lower the fixed-point flag, restore global initials.
    fn begin_iteration(&mut self, global_inits: &[f64], iter: u32) {
        self.iter = iter;
        self.changed = false;
        self.globals.copy_from_slice(global_inits);
    }
}

/// Runs one fused kernel body over one node: zeroes the locals, stages
/// the node cursor, calls the body once, records the [`WorkItem`].
#[inline]
fn run_node(ctx: &mut NCtx<'_>, kernel: &NativeKernel, u: NodeId, items: &mut Vec<WorkItem>) {
    if ctx.locals.len() < kernel.locals {
        ctx.locals.resize(kernel.locals, 0.0);
    }
    for l in &mut ctx.locals[..kernel.locals] {
        *l = 0.0;
    }
    ctx.u = u;
    ctx.trips = 0;
    ctx.pushes = 0;
    (kernel.body)(ctx);
    items.push(WorkItem::new(ctx.trips, ctx.pushes));
}

/// Runs a compiled program through the native tier with a fresh
/// [`NativeVm`]. Callers executing the same program repeatedly should
/// keep a `NativeVm` and call [`NativeVm::run`] to reuse its scratch.
///
/// # Errors
///
/// Returns [`IrglError::IterationBoundExceeded`] if a fixed-point driver
/// fails to converge within its bound.
pub fn run_native(
    compiled: &CompiledProgram,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    NativeVm::new().run(compiled, graph, exec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_ast;
    use crate::programs;
    use crate::validate::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn ast_run(
        p: &crate::ast::Program,
        g: &Graph,
    ) -> (Result<Execution, IrglError>, gpp_sim::trace::Trace) {
        let mut rec = Recorder::new();
        let r = execute_ast(p, g, &mut rec);
        (r, rec.into_trace())
    }

    fn native_run(
        p: &crate::ast::Program,
        g: &Graph,
    ) -> (Result<Execution, IrglError>, gpp_sim::trace::Trace) {
        let mut rec = Recorder::new();
        let compiled = CompiledProgram::compile(p).unwrap();
        let r = NativeVm::new().run(&compiled, g, &mut rec);
        (r, rec.into_trace())
    }

    #[test]
    fn all_builtin_programs_match_the_ast_oracle() {
        let graphs = vec![
            generators::road_grid(8, 8, 3).unwrap(),
            generators::rmat(7, 6, 42).unwrap(),
            generators::star(33).unwrap(),
            generators::path(1).unwrap(),
            Graph::from_csr(vec![0], vec![], vec![], true).unwrap(),
        ];
        for p in programs::all() {
            for g in &graphs {
                let (ast, ast_trace) = ast_run(&p, g);
                let (nat, nat_trace) = native_run(&p, g);
                assert_eq!(ast, nat, "{} execution diverged", p.name);
                assert_eq!(ast_trace, nat_trace, "{} trace diverged", p.name);
            }
        }
    }

    #[test]
    fn native_artifact_is_built_once_and_shared() {
        let p = programs::bfs_worklist();
        let compiled = CompiledProgram::compile(&p).unwrap();
        let first: *const NativeProgram = compiled.native();
        let second: *const NativeProgram = compiled.native();
        assert_eq!(first, second, "OnceLock must reuse the artifact");
        assert_eq!(compiled.native().num_kernels(), compiled.kernels().len());
    }

    #[test]
    fn constant_folding_is_bit_preserving() {
        // 1/0, 0/0 and eager And/Or must fold to exactly what the
        // runtime computes.
        let inf = Expr::bin(BinOp::Div, Expr::Const(1.0), Expr::Const(0.0));
        assert_eq!(const_eval(&inf), Some(f64::INFINITY));
        let nan = Expr::bin(BinOp::Div, Expr::Const(0.0), Expr::Const(0.0));
        assert!(const_eval(&nan).unwrap().is_nan());
        let or = Expr::bin(BinOp::Or, Expr::Const(0.0), Expr::Const(2.0));
        assert_eq!(const_eval(&or), Some(1.0));
        let hash = Expr::Hash(Box::new(Expr::Const(3.0)), Box::new(Expr::Const(7.0)));
        assert_eq!(const_eval(&hash), Some(hash2(3, 7) as f64));
        // Non-constant subtrees do not fold.
        assert_eq!(const_eval(&Expr::Iter), None);
        assert!(as_leaf(&Expr::Iter).is_some());
    }

    #[test]
    fn native_scratch_reuse_is_clean_across_runs() {
        let g1 = generators::rmat(6, 5, 7).unwrap();
        let g2 = generators::road_grid(5, 5, 1).unwrap();
        let mut vm = NativeVm::new();
        for p in programs::all() {
            let compiled = CompiledProgram::compile(&p).unwrap();
            for g in [&g1, &g2, &g1] {
                let mut rec_reused = Recorder::new();
                let reused = vm.run(&compiled, g, &mut rec_reused);
                let (fresh, fresh_trace) = native_run(&p, g);
                assert_eq!(reused.unwrap(), fresh.unwrap(), "{}", p.name);
                assert_eq!(rec_reused.into_trace(), fresh_trace, "{}", p.name);
            }
        }
    }

    #[test]
    fn compile_rejects_invalid_programs_like_validate() {
        let mut p = programs::bfs_topology();
        p.output = 99;
        let err = CompiledProgram::compile(&p).unwrap_err();
        assert_eq!(err, validate(&p).unwrap_err());
    }
}

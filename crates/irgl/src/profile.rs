//! Deriving machine cost profiles from kernel IR — the static analysis a
//! DSL compiler performs to know what its generated code does per node
//! and per edge.

use gpp_sim::exec::KernelProfile;

use crate::ast::{Expr, Kernel, Ref, Stmt};

/// Operation counts accumulated by the walker.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Counts {
    alu: f64,
    reads: f64,
    writes: f64,
    atomics: f64,
}

impl Counts {
    fn max(self, other: Counts) -> Counts {
        Counts {
            alu: self.alu.max(other.alu),
            reads: self.reads.max(other.reads),
            writes: self.writes.max(other.writes),
            atomics: self.atomics.max(other.atomics),
        }
    }

    fn add(&mut self, other: Counts) {
        self.alu += other.alu;
        self.reads += other.reads;
        self.writes += other.writes;
        self.atomics += other.atomics;
    }
}

/// Fraction of a memory access charged for own-node data touched inside
/// the edge loop: the compiler keeps it in a register after the first
/// load.
const CACHED_ACCESS: f64 = 0.25;

/// Fraction charged for streaming the edge-weight array (sequential,
/// prefetchable).
const EDGE_WEIGHT_ACCESS: f64 = 0.5;

/// Derives the abstract machine's [`KernelProfile`] from a kernel's IR.
///
/// Per-node costs come from statements outside the edge loop plus fixed
/// bookkeeping (thread id, activity check); per-edge costs from
/// statements inside it. Conditionals charge the condition plus the
/// *more expensive* branch (SIMT execution pays for the longest path in
/// the subgroup).
pub fn derive_profile(kernel: &Kernel, name: &str) -> KernelProfile {
    let mut node = Counts {
        alu: 2.0,
        reads: 1.5,
        writes: 0.0,
        atomics: 0.0,
    };
    let mut edge = Counts::default();
    let mut irregular = false;
    walk_stmts(&kernel.body, false, &mut node, &mut edge, &mut irregular);
    KernelProfile {
        name: name.to_owned(),
        alu_per_edge: edge.alu,
        reads_per_edge: edge.reads,
        writes_per_edge: edge.writes,
        atomics_per_edge: edge.atomics,
        alu_per_node: node.alu,
        reads_per_node: node.reads,
        writes_per_node: node.writes + node.atomics,
        irregular,
    }
}

fn walk_stmts(
    stmts: &[Stmt],
    in_edge: bool,
    node: &mut Counts,
    edge: &mut Counts,
    irregular: &mut bool,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Let(_, expr) => {
                charge(expr_counts(expr, in_edge), in_edge, node, edge);
            }
            Stmt::If { cond, then, els } => {
                charge(expr_counts(cond, in_edge), in_edge, node, edge);
                // Charge the heavier branch (SIMT worst lane).
                let (mut tn, mut te) = (Counts::default(), Counts::default());
                let (mut en, mut ee) = (Counts::default(), Counts::default());
                let mut dummy = false;
                walk_stmts(then, in_edge, &mut tn, &mut te, irregular);
                walk_stmts(els, in_edge, &mut en, &mut ee, &mut dummy);
                node.add(tn.max(en));
                edge.add(te.max(ee));
            }
            Stmt::Store { target, value, .. } => {
                let mut c = expr_counts(value, in_edge);
                c.writes += access_weight(*target, in_edge);
                charge(c, in_edge, node, edge);
            }
            Stmt::AtomicMin { target, value, .. } | Stmt::AtomicAdd { target, value, .. } => {
                let mut c = expr_counts(value, in_edge);
                c.atomics += access_weight(*target, in_edge);
                charge(c, in_edge, node, edge);
            }
            Stmt::ForEachEdge(body) => {
                *irregular = true;
                // Loop bookkeeping per edge.
                edge.alu += 1.0;
                walk_stmts(body, true, node, edge, irregular);
            }
            Stmt::Push(_) => {
                // The RMW itself is accounted through WorkItem::pushes;
                // charge the index computation.
                charge(
                    Counts {
                        alu: 1.0,
                        ..Counts::default()
                    },
                    in_edge,
                    node,
                    edge,
                );
            }
            Stmt::MarkChanged => {
                // A flag write, heavily coalesced across threads.
                charge(
                    Counts {
                        writes: CACHED_ACCESS,
                        ..Counts::default()
                    },
                    in_edge,
                    node,
                    edge,
                );
            }
            Stmt::GlobalAdd(_, value) => {
                // A hot single-location atomic.
                let mut c = expr_counts(value, in_edge);
                c.atomics += 1.0;
                charge(c, in_edge, node, edge);
            }
        }
    }
}

fn charge(c: Counts, in_edge: bool, node: &mut Counts, edge: &mut Counts) {
    if in_edge {
        edge.add(c);
    } else {
        node.add(c);
    }
}

fn access_weight(target: Ref, in_edge: bool) -> f64 {
    match (target, in_edge) {
        // Scattered neighbour access.
        (Ref::Nbr, _) => 1.0,
        // Own-node access inside the loop: register-cached.
        (Ref::Node, true) => CACHED_ACCESS,
        (Ref::Node, false) => 1.0,
    }
}

fn expr_counts(expr: &Expr, in_edge: bool) -> Counts {
    let mut c = Counts::default();
    expr_walk(expr, in_edge, &mut c);
    c
}

fn expr_walk(expr: &Expr, in_edge: bool, c: &mut Counts) {
    match expr {
        Expr::Const(_) | Expr::Iter | Expr::NumNodes | Expr::Local(_) => {}
        Expr::Global(_) => c.reads += CACHED_ACCESS,
        Expr::NodeId(_) => c.alu += 0.5,
        Expr::Degree(r) => c.reads += access_weight(*r, in_edge),
        Expr::Field(_, r) => c.reads += access_weight(*r, in_edge),
        Expr::EdgeWeight => c.reads += EDGE_WEIGHT_ACCESS,
        Expr::Unary(_, a) => {
            c.alu += 1.0;
            expr_walk(a, in_edge, c);
        }
        Expr::Binary(_, a, b) => {
            c.alu += 1.0;
            expr_walk(a, in_edge, c);
            expr_walk(b, in_edge, c);
        }
        Expr::Hash(a, b) => {
            c.alu += 6.0; // a few rounds of integer mixing
            expr_walk(a, in_edge, c);
            expr_walk(b, in_edge, c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, Domain};

    fn kernel(body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: "k".into(),
            domain: Domain::AllNodes,
            locals: 2,
            body,
        }
    }

    #[test]
    fn regular_kernel_has_no_edge_costs() {
        let k = kernel(vec![Stmt::Store {
            field: 0,
            target: Ref::Node,
            value: Expr::Const(1.0),
        }]);
        let p = derive_profile(&k, "t");
        assert!(!p.irregular);
        assert_eq!(p.reads_per_edge, 0.0);
        assert_eq!(p.writes_per_edge, 0.0);
        assert!(p.writes_per_node >= 1.0);
    }

    #[test]
    fn edge_loop_makes_kernel_irregular() {
        let k = kernel(vec![Stmt::ForEachEdge(vec![Stmt::AtomicMin {
            field: 0,
            target: Ref::Nbr,
            value: Expr::bin(BinOp::Add, Expr::Field(0, Ref::Node), Expr::EdgeWeight),
        }])]);
        let p = derive_profile(&k, "t");
        assert!(p.irregular);
        assert!(
            p.atomics_per_edge >= 1.0,
            "scattered atomic: {}",
            p.atomics_per_edge
        );
        assert!(p.reads_per_edge > 0.0);
        assert!(
            p.alu_per_edge >= 2.0,
            "loop bookkeeping + add: {}",
            p.alu_per_edge
        );
    }

    #[test]
    fn neighbour_reads_cost_more_than_cached_own_reads() {
        let nbr = kernel(vec![Stmt::ForEachEdge(vec![Stmt::Let(
            0,
            Expr::Field(0, Ref::Nbr),
        )])]);
        let own = kernel(vec![Stmt::ForEachEdge(vec![Stmt::Let(
            0,
            Expr::Field(0, Ref::Node),
        )])]);
        let p_nbr = derive_profile(&nbr, "n");
        let p_own = derive_profile(&own, "o");
        assert!(p_nbr.reads_per_edge > p_own.reads_per_edge);
    }

    #[test]
    fn if_charges_the_heavier_branch() {
        let heavy_then = kernel(vec![Stmt::If {
            cond: Expr::Const(1.0),
            then: vec![
                Stmt::Store {
                    field: 0,
                    target: Ref::Node,
                    value: Expr::Const(1.0),
                },
                Stmt::Store {
                    field: 0,
                    target: Ref::Node,
                    value: Expr::Const(2.0),
                },
            ],
            els: vec![Stmt::Store {
                field: 0,
                target: Ref::Node,
                value: Expr::Const(3.0),
            }],
        }]);
        let p = derive_profile(&heavy_then, "t");
        // Two stores (the heavier branch), not three, not one.
        assert!(
            (p.writes_per_node - 2.0).abs() < 1e-9,
            "{}",
            p.writes_per_node
        );
    }

    #[test]
    fn hash_is_alu_heavy() {
        let k = kernel(vec![Stmt::Let(
            0,
            Expr::Hash(Box::new(Expr::NodeId(Ref::Node)), Box::new(Expr::Iter)),
        )]);
        let p = derive_profile(&k, "t");
        assert!(p.alu_per_node >= 8.0, "{}", p.alu_per_node);
    }
}

//! Pseudo-OpenCL code generation: renders a program under a
//! [`CompilationPlan`] as readable OpenCL-style C, with the four
//! optimisations manifest in the emitted code — scheduled edge loops
//! (`wg`/`sg`/`fg`), subgroup-combined worklist pushes (`coop-cv`), an
//! outlined megakernel with a software global barrier (`oitergb`), and
//! the required workgroup size attribute (`sz256`).
//!
//! The output is meant for human inspection, golden tests, and
//! documentation of what each transformation does to a kernel; it is not
//! run through a real OpenCL driver in this repository.

use std::fmt::Write as _;

use crate::ast::{BinOp, Domain, Driver, Expr, Kernel, Program, Ref, Stmt, UnaryOp};
use crate::transform::{CompilationPlan, Scheme};
use crate::validate::IrglError;

/// Renders `program` under `plan` as pseudo-OpenCL.
///
/// # Errors
///
/// Returns an error only for programs that fail validation (the plan is
/// assumed to have been produced by [`crate::transform::plan`] for this
/// very program).
pub fn opencl(program: &Program, plan: &CompilationPlan) -> Result<String, IrglError> {
    crate::validate::validate(program)?;
    let mut out = String::new();
    let _ = writeln!(out, "// program: {}", program.name);
    let _ = writeln!(out, "// configuration: {}", plan.config);
    let _ = writeln!(out, "#define WG_SIZE {}", plan.workgroup_size);
    out.push('\n');

    for (kernel, kplan) in program.kernels.iter().zip(&plan.kernels) {
        emit_kernel(&mut out, program, kernel, kplan, plan);
        out.push('\n');
    }
    if plan.outlined {
        emit_outlined_driver(&mut out, program, plan);
    }
    Ok(out)
}

fn buffer_params(program: &Program) -> String {
    let mut parts: Vec<String> = program
        .fields
        .iter()
        .map(|f| format!("__global double *{}", f.name))
        .collect();
    parts.push("__global const uint *row".into());
    parts.push("__global const uint *col".into());
    parts.push("__global const uint *wt".into());
    for g in &program.globals {
        parts.push(format!("__global double *g_{}", g.name));
    }
    parts.push("__global volatile uint *changed".into());
    parts.push("uint iter".into());
    parts.push("uint n".into());
    parts.join(", ")
}

fn emit_kernel(
    out: &mut String,
    program: &Program,
    kernel: &Kernel,
    kplan: &crate::transform::KernelPlan,
    plan: &CompilationPlan,
) {
    let _ = writeln!(out, "__attribute__((reqd_work_group_size(WG_SIZE, 1, 1)))");
    let mut params = buffer_params(program);
    if kernel.domain == Domain::Worklist || kplan.has_pushes {
        params.push_str(
            ", __global const uint *wl_in, uint wl_size, __global uint *wl_out, __global volatile uint *wl_tail",
        );
    }
    let _ = writeln!(out, "__kernel void {}({params}) {{", kernel.name);
    match kernel.domain {
        Domain::AllNodes => {
            let _ = writeln!(out, "  uint node = get_global_id(0);");
            let _ = writeln!(out, "  if (node >= n) return;");
        }
        Domain::Worklist => {
            let _ = writeln!(out, "  uint idx = get_global_id(0);");
            let _ = writeln!(out, "  if (idx >= wl_size) return;");
            let _ = writeln!(out, "  uint node = wl_in[idx];");
        }
    }
    emit_stmts(out, program, kernel, &kernel.body, kplan, 1);
    let _ = writeln!(out, "}}");
    let _ = plan;
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn emit_stmts(
    out: &mut String,
    program: &Program,
    kernel: &Kernel,
    stmts: &[Stmt],
    kplan: &crate::transform::KernelPlan,
    depth: usize,
) {
    for stmt in stmts {
        match stmt {
            Stmt::Let(local, expr) => {
                indent(out, depth);
                let _ = writeln!(out, "double t{local} = {};", expr_text(program, expr));
            }
            Stmt::If { cond, then, els } => {
                indent(out, depth);
                let _ = writeln!(out, "if ({}) {{", expr_text(program, cond));
                emit_stmts(out, program, kernel, then, kplan, depth + 1);
                if !els.is_empty() {
                    indent(out, depth);
                    let _ = writeln!(out, "}} else {{");
                    emit_stmts(out, program, kernel, els, kplan, depth + 1);
                }
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
            Stmt::Store {
                field,
                target,
                value,
            } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "{}[{}] = {};",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::AtomicMin {
                field,
                target,
                value,
            } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "atomic_fetch_min(&{}[{}], {});",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::AtomicAdd {
                field,
                target,
                value,
            } => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "atomic_fetch_add(&{}[{}], {});",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::ForEachEdge(body) => {
                emit_edge_loop(out, program, kernel, body, kplan, depth);
            }
            Stmt::Push(target) => {
                emit_push(out, ref_text(*target), kplan, depth);
            }
            Stmt::MarkChanged => {
                indent(out, depth);
                let _ = writeln!(out, "*changed = 1u;");
            }
            Stmt::GlobalAdd(global, value) => {
                indent(out, depth);
                let _ = writeln!(
                    out,
                    "atomic_fetch_add(g_{}, {});",
                    program.globals[*global].name,
                    expr_text(program, value)
                );
            }
        }
    }
}

fn emit_edge_loop(
    out: &mut String,
    program: &Program,
    kernel: &Kernel,
    body: &[Stmt],
    kplan: &crate::transform::KernelPlan,
    depth: usize,
) {
    let schemes = &kplan.schemes;
    indent(out, depth);
    let _ = writeln!(out, "uint e_start = row[node], e_end = row[node + 1];");
    if schemes.contains(&Scheme::Wg) {
        indent(out, depth);
        let _ = writeln!(
            out,
            "// [np-wg] offer high-degree nodes to the whole workgroup"
        );
        indent(out, depth);
        let _ = writeln!(
            out,
            "np_wg_offer(e_end - e_start >= WG_SIZE, e_start, e_end);"
        );
        indent(out, depth);
        let _ = writeln!(out, "work_group_barrier(CLK_LOCAL_MEM_FENCE);");
    }
    if schemes.contains(&Scheme::Sg) {
        indent(out, depth);
        let _ = writeln!(out, "// [np-sg] offer medium-degree nodes to the subgroup");
        indent(out, depth);
        let _ = writeln!(
            out,
            "np_sg_offer(e_end - e_start >= get_sub_group_size(), e_start, e_end);"
        );
        indent(out, depth);
        let _ = writeln!(out, "sub_group_barrier(CLK_LOCAL_MEM_FENCE);");
    }
    let fg = schemes
        .iter()
        .find(|s| matches!(s, Scheme::Fg1 | Scheme::Fg8));
    if let Some(fg) = fg {
        let epi = if *fg == Scheme::Fg8 { 8 } else { 1 };
        indent(out, depth);
        let _ = writeln!(
            out,
            "// [np-{}] inspector/executor: linearise remaining edges,",
            fg.name()
        );
        indent(out, depth);
        let _ = writeln!(out, "// {epi} edge(s) per thread per round");
        indent(out, depth);
        let _ = writeln!(
            out,
            "uint base = work_group_scan_exclusive_add(e_end - e_start);"
        );
        indent(out, depth);
        let _ = writeln!(out, "for (uint r = 0; r < np_fg_rounds({epi}); ++r) {{");
        indent(out, depth + 1);
        let _ = writeln!(out, "uint e = np_fg_edge(base, r, {epi});");
        indent(out, depth + 1);
        let _ = writeln!(out, "if (e < e_end) {{");
        emit_edge_body(out, program, kernel, body, kplan, depth + 2);
        indent(out, depth + 1);
        let _ = writeln!(out, "}}");
        indent(out, depth + 1);
        let _ = writeln!(out, "work_group_barrier(CLK_LOCAL_MEM_FENCE);");
        indent(out, depth);
        let _ = writeln!(out, "}}");
    } else {
        indent(out, depth);
        let _ = writeln!(out, "for (uint e = e_start; e < e_end; ++e) {{");
        emit_edge_body(out, program, kernel, body, kplan, depth + 1);
        indent(out, depth);
        let _ = writeln!(out, "}}");
    }
}

fn emit_edge_body(
    out: &mut String,
    program: &Program,
    kernel: &Kernel,
    body: &[Stmt],
    kplan: &crate::transform::KernelPlan,
    depth: usize,
) {
    indent(out, depth);
    let _ = writeln!(out, "uint nbr = col[e];");
    emit_stmts(out, program, kernel, body, kplan, depth);
}

fn emit_push(out: &mut String, target: String, kplan: &crate::transform::KernelPlan, depth: usize) {
    if kplan.combined_pushes {
        indent(out, depth);
        let _ = writeln!(
            out,
            "// [coop-cv] combine the subgroup's pushes into one RMW"
        );
        indent(out, depth);
        let _ = writeln!(out, "uint want = 1u;");
        indent(out, depth);
        let _ = writeln!(out, "uint total = sub_group_reduce_add(want);");
        indent(out, depth);
        let _ = writeln!(out, "uint pos = sub_group_scan_exclusive_add(want);");
        indent(out, depth);
        let _ = writeln!(out, "uint base;");
        indent(out, depth);
        let _ = writeln!(
            out,
            "if (get_sub_group_local_id() == 0) base = atomic_fetch_add(wl_tail, total);"
        );
        indent(out, depth);
        let _ = writeln!(out, "base = sub_group_broadcast(base, 0);");
        indent(out, depth);
        let _ = writeln!(out, "wl_out[base + pos] = {target};");
    } else {
        indent(out, depth);
        let _ = writeln!(out, "wl_out[atomic_fetch_add(wl_tail, 1u)] = {target};");
    }
}

fn emit_outlined_driver(out: &mut String, program: &Program, plan: &CompilationPlan) {
    let _ = writeln!(
        out,
        "// [oitergb] iteration loop outlined to the device: kernel"
    );
    let _ = writeln!(
        out,
        "// launches become function calls separated by a software"
    );
    let _ = writeln!(out, "// global barrier over the discovered occupancy.");
    let _ = writeln!(out, "__attribute__((reqd_work_group_size(WG_SIZE, 1, 1)))");
    let _ = writeln!(
        out,
        "__kernel void {}_outlined({}) {{",
        program.name,
        buffer_params(program)
    );
    let _ = writeln!(out, "  uint resident = discover_occupancy();");
    let _ = writeln!(out, "  for (uint iter = 0; ; ++iter) {{");
    let _ = writeln!(out, "    *changed = 0u;");
    for &k in &program.driver_kernels() {
        let _ = writeln!(
            out,
            "    {}_body(/* all buffers */, iter, n);",
            program.kernels[k].name
        );
        let _ = writeln!(out, "    global_barrier(resident);");
    }
    match &program.driver {
        Driver::Fixed { iters, .. } => {
            let _ = writeln!(out, "    if (iter + 1 >= {iters}) break;");
        }
        _ => {
            let _ = writeln!(out, "    if (!*changed && worklist_empty()) break;");
        }
    }
    let _ = writeln!(out, "  }}");
    let _ = writeln!(out, "}}");
    let _ = plan;
}

fn ref_text(r: Ref) -> String {
    match r {
        Ref::Node => "node".into(),
        Ref::Nbr => "nbr".into(),
    }
}

fn expr_text(program: &Program, expr: &Expr) -> String {
    match expr {
        Expr::Const(c) => {
            if c.is_infinite() {
                "INFINITY".into()
            } else {
                format!("{c:?}")
            }
        }
        Expr::NodeId(r) => format!("(double){}", ref_text(*r)),
        Expr::Degree(r) => format!("(double)(row[{0} + 1] - row[{0}])", ref_text(*r)),
        Expr::Field(field, r) => format!("{}[{}]", program.fields[*field].name, ref_text(*r)),
        Expr::EdgeWeight => "(double)wt[e]".into(),
        Expr::Iter => "(double)iter".into(),
        Expr::NumNodes => "(double)n".into(),
        Expr::Local(l) => format!("t{l}"),
        Expr::Global(g) => format!("*g_{}", program.globals[*g].name),
        Expr::Unary(op, a) => {
            let a = expr_text(program, a);
            match op {
                UnaryOp::Not => format!("(!({a}))"),
                UnaryOp::Neg => format!("(-({a}))"),
                UnaryOp::Floor => format!("floor({a})"),
            }
        }
        Expr::Binary(op, a, b) => {
            let (a, b) = (expr_text(program, a), expr_text(program, b));
            match op {
                BinOp::Add => format!("({a} + {b})"),
                BinOp::Sub => format!("({a} - {b})"),
                BinOp::Mul => format!("({a} * {b})"),
                BinOp::Div => format!("({a} / {b})"),
                BinOp::Min => format!("fmin({a}, {b})"),
                BinOp::Max => format!("fmax({a}, {b})"),
                BinOp::Lt => format!("({a} < {b})"),
                BinOp::Le => format!("({a} <= {b})"),
                BinOp::Eq => format!("({a} == {b})"),
                BinOp::Ne => format!("({a} != {b})"),
                BinOp::And => format!("({a} && {b})"),
                BinOp::Or => format!("({a} || {b})"),
            }
        }
        Expr::Hash(a, b) => {
            format!(
                "hash2({}, {})",
                expr_text(program, a),
                expr_text(program, b)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use crate::transform::plan;
    use gpp_sim::opts::{OptConfig, Optimization};

    fn render(program: &Program, cfg: OptConfig) -> String {
        let plan = plan(program, cfg).expect("valid program");
        opencl(program, &plan).expect("codegen succeeds")
    }

    #[test]
    fn baseline_emits_plain_serial_loops() {
        let text = render(&programs::bfs_topology(), OptConfig::baseline());
        assert!(text.contains("__kernel void"));
        assert!(text.contains("for (uint e = e_start; e < e_end; ++e)"));
        assert!(!text.contains("[np-"));
        assert!(!text.contains("global_barrier"));
        assert!(text.contains("#define WG_SIZE 128"));
    }

    #[test]
    fn fg8_emits_inspector_executor() {
        let text = render(
            &programs::bfs_topology(),
            OptConfig::baseline().with(Optimization::Fg8),
        );
        assert!(text.contains("[np-fg8]"));
        assert!(text.contains("work_group_scan_exclusive_add"));
        assert!(text.contains("np_fg_rounds(8)"));
    }

    #[test]
    fn wg_and_sg_emit_offers_and_barriers() {
        let cfg = OptConfig::from_opts([Optimization::Wg, Optimization::Sg]);
        let text = render(&programs::sssp_bellman(), cfg);
        assert!(text.contains("[np-wg]"));
        assert!(text.contains("np_wg_offer"));
        assert!(text.contains("[np-sg]"));
        assert!(text.contains("sub_group_barrier"));
    }

    #[test]
    fn coop_cv_emits_subgroup_combined_push() {
        let cfg = OptConfig::baseline().with(Optimization::CoopCv);
        let text = render(&programs::bfs_worklist(), cfg);
        assert!(text.contains("[coop-cv]"));
        assert!(text.contains("sub_group_reduce_add"));
        assert!(text.contains("sub_group_broadcast"));
        // The plain push idiom must be gone.
        assert!(!text.contains("wl_out[atomic_fetch_add(wl_tail, 1u)]"));
    }

    #[test]
    fn plain_push_without_coop_cv() {
        let text = render(&programs::bfs_worklist(), OptConfig::baseline());
        assert!(text.contains("wl_out[atomic_fetch_add(wl_tail, 1u)]"));
        assert!(!text.contains("sub_group_reduce_add"));
    }

    #[test]
    fn oitergb_emits_outlined_megakernel() {
        let cfg = OptConfig::baseline().with(Optimization::Oitergb);
        let text = render(&programs::cc_label_prop(), cfg);
        assert!(text.contains("_outlined("));
        assert!(text.contains("discover_occupancy()"));
        assert!(text.contains("global_barrier(resident)"));
    }

    #[test]
    fn sz256_sets_the_workgroup_size() {
        let cfg = OptConfig::baseline().with(Optimization::Sz256);
        let text = render(&programs::pr_pull(), cfg);
        assert!(text.contains("#define WG_SIZE 256"));
        assert!(text.contains("reqd_work_group_size(WG_SIZE, 1, 1)"));
    }

    #[test]
    fn globals_render_as_buffers_and_atomics() {
        let text = render(&programs::pr_pull(), OptConfig::baseline());
        assert!(text.contains("__global double *g_dangling"));
        assert!(text.contains("atomic_fetch_add(g_dangling"));
    }

    #[test]
    fn every_program_renders_under_every_transformation() {
        for program in programs::all() {
            for idx in [0usize, 1, 17, 42, 95] {
                let cfg = OptConfig::from_index(idx);
                let text = render(&program, cfg);
                assert!(text.contains("__kernel"), "{} cfg {cfg}", program.name);
            }
        }
    }
}

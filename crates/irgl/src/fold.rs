//! Constant folding and branch simplification — the classic clean-up
//! pass a DSL compiler runs before the optimisation passes, so that
//! statically-decidable conditionals don't inflate the derived cost
//! profiles or the generated code.
//!
//! Folding is semantics-preserving by construction: every rewrite
//! evaluates exactly the arithmetic the interpreter would
//! ([`crate::interp`]), including IEEE edge cases (infinities propagate;
//! division by zero yields the same infinity/NaN the runtime would see).

use crate::ast::{BinOp, Expr, Kernel, Program, Stmt, UnaryOp};

/// Folds all constant subexpressions and statically-decidable branches in
/// every kernel of `program`, returning the simplified program.
pub fn fold_program(program: &Program) -> Program {
    let mut folded = program.clone();
    for kernel in &mut folded.kernels {
        fold_kernel(kernel);
    }
    folded
}

/// Folds one kernel in place.
pub fn fold_kernel(kernel: &mut Kernel) {
    kernel.body = fold_stmts(std::mem::take(&mut kernel.body));
}

fn fold_stmts(stmts: Vec<Stmt>) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        match stmt {
            Stmt::Let(local, expr) => out.push(Stmt::Let(local, fold_expr(expr))),
            Stmt::If { cond, then, els } => {
                let cond = fold_expr(cond);
                let then = fold_stmts(then);
                let els = fold_stmts(els);
                match cond {
                    // Statically-decidable branch: splice the taken arm.
                    Expr::Const(c) if c != 0.0 => out.extend(then),
                    Expr::Const(_) => out.extend(els),
                    cond => {
                        if then.is_empty() && els.is_empty() {
                            // Branch with no effects: drop it entirely
                            // (the condition is side-effect free).
                            continue;
                        }
                        out.push(Stmt::If { cond, then, els });
                    }
                }
            }
            Stmt::Store {
                field,
                target,
                value,
            } => {
                out.push(Stmt::Store {
                    field,
                    target,
                    value: fold_expr(value),
                });
            }
            Stmt::AtomicMin {
                field,
                target,
                value,
            } => {
                out.push(Stmt::AtomicMin {
                    field,
                    target,
                    value: fold_expr(value),
                });
            }
            Stmt::AtomicAdd {
                field,
                target,
                value,
            } => {
                out.push(Stmt::AtomicAdd {
                    field,
                    target,
                    value: fold_expr(value),
                });
            }
            Stmt::ForEachEdge(body) => {
                let body = fold_stmts(body);
                if body.is_empty() {
                    // An empty edge loop has no effect.
                    continue;
                }
                out.push(Stmt::ForEachEdge(body));
            }
            Stmt::GlobalAdd(global, value) => {
                out.push(Stmt::GlobalAdd(global, fold_expr(value)));
            }
            other @ (Stmt::Push(_) | Stmt::MarkChanged) => out.push(other),
        }
    }
    out
}

/// Folds one expression, mirroring the interpreter's arithmetic exactly.
pub fn fold_expr(expr: Expr) -> Expr {
    match expr {
        Expr::Unary(op, a) => {
            let a = fold_expr(*a);
            if let Expr::Const(c) = a {
                return Expr::Const(match op {
                    UnaryOp::Not => f64::from(c == 0.0),
                    UnaryOp::Neg => -c,
                    UnaryOp::Floor => c.floor(),
                });
            }
            Expr::Unary(op, Box::new(a))
        }
        Expr::Binary(op, a, b) => {
            let a = fold_expr(*a);
            let b = fold_expr(*b);
            if let (Expr::Const(x), Expr::Const(y)) = (&a, &b) {
                let (x, y) = (*x, *y);
                return Expr::Const(match op {
                    BinOp::Add => x + y,
                    BinOp::Sub => x - y,
                    BinOp::Mul => x * y,
                    BinOp::Div => x / y,
                    BinOp::Min => x.min(y),
                    BinOp::Max => x.max(y),
                    BinOp::Lt => f64::from(x < y),
                    BinOp::Le => f64::from(x <= y),
                    BinOp::Eq => f64::from(x == y),
                    BinOp::Ne => f64::from(x != y),
                    BinOp::And => f64::from(x != 0.0 && y != 0.0),
                    BinOp::Or => f64::from(x != 0.0 || y != 0.0),
                });
            }
            // Identity simplifications that are exact in IEEE arithmetic
            // for the finite operands graph programs use: x*1, 1*x, x+0,
            // 0+x, x-0, x/1. (x*0 is NOT folded: 0 * inf = NaN.)
            match (op, &a, &b) {
                (BinOp::Mul, _, Expr::Const(c)) if *c == 1.0 => a,
                (BinOp::Mul, Expr::Const(c), _) if *c == 1.0 => b,
                (BinOp::Add, _, Expr::Const(c)) if *c == 0.0 => a,
                (BinOp::Add, Expr::Const(c), _) if *c == 0.0 => b,
                (BinOp::Sub, _, Expr::Const(c)) if *c == 0.0 => a,
                (BinOp::Div, _, Expr::Const(c)) if *c == 1.0 => a,
                _ => Expr::Binary(op, Box::new(a), Box::new(b)),
            }
        }
        Expr::Hash(a, b) => Expr::Hash(Box::new(fold_expr(*a)), Box::new(fold_expr(*b))),
        leaf => leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Domain, Kernel, Ref};
    use crate::programs;
    use gpp_sim::trace::Recorder;

    fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    #[test]
    fn arithmetic_folds() {
        assert_eq!(fold_expr(Expr::bin(BinOp::Add, c(2.0), c(3.0))), c(5.0));
        assert_eq!(fold_expr(Expr::bin(BinOp::Min, c(2.0), c(3.0))), c(2.0));
        assert_eq!(fold_expr(Expr::bin(BinOp::Lt, c(2.0), c(3.0))), c(1.0));
        assert_eq!(
            fold_expr(Expr::Unary(UnaryOp::Neg, Box::new(c(4.0)))),
            c(-4.0)
        );
    }

    #[test]
    fn folds_nested_trees() {
        // (1 + 2) * (10 - 4) = 18
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, c(1.0), c(2.0)),
            Expr::bin(BinOp::Sub, c(10.0), c(4.0)),
        );
        assert_eq!(fold_expr(e), c(18.0));
    }

    #[test]
    fn identities_simplify_without_changing_dynamic_operands() {
        let dyn_e = Expr::Field(0, Ref::Node);
        assert_eq!(
            fold_expr(Expr::bin(BinOp::Mul, dyn_e.clone(), c(1.0))),
            dyn_e
        );
        assert_eq!(
            fold_expr(Expr::bin(BinOp::Add, c(0.0), dyn_e.clone())),
            dyn_e
        );
        // x * 0 must NOT fold: the field could hold infinity.
        let e = fold_expr(Expr::bin(BinOp::Mul, dyn_e.clone(), c(0.0)));
        assert!(matches!(e, Expr::Binary(BinOp::Mul, _, _)));
    }

    #[test]
    fn ieee_edge_cases_match_runtime() {
        let div = fold_expr(Expr::bin(BinOp::Div, c(1.0), c(0.0)));
        assert_eq!(div, c(f64::INFINITY));
        let lt = fold_expr(Expr::bin(BinOp::Lt, c(f64::INFINITY), c(f64::INFINITY)));
        assert_eq!(lt, c(0.0));
    }

    #[test]
    fn constant_branches_splice() {
        let body = fold_stmts(vec![Stmt::If {
            cond: Expr::bin(BinOp::Lt, c(1.0), c(2.0)),
            then: vec![Stmt::MarkChanged],
            els: vec![Stmt::Push(Ref::Node)],
        }]);
        assert_eq!(body, vec![Stmt::MarkChanged]);
    }

    #[test]
    fn empty_constructs_are_removed() {
        let body = fold_stmts(vec![
            Stmt::ForEachEdge(vec![Stmt::If {
                cond: c(0.0),
                then: vec![Stmt::MarkChanged],
                els: vec![],
            }]),
            Stmt::If {
                cond: Expr::Field(0, Ref::Node),
                then: vec![],
                els: vec![],
            },
        ]);
        assert!(body.is_empty(), "{body:?}");
    }

    #[test]
    fn folding_preserves_program_semantics() {
        let graph = gpp_graph::generators::rmat(6, 5, 4).expect("valid");
        for program in programs::all() {
            let folded = fold_program(&program);
            assert_eq!(crate::validate::validate(&folded), Ok(()));
            let mut ra = Recorder::new();
            let a = crate::interp::execute(&program, &graph, &mut ra).expect("original runs");
            let mut rb = Recorder::new();
            let b = crate::interp::execute(&folded, &graph, &mut rb).expect("folded runs");
            assert_eq!(a.fields, b.fields, "{}", program.name);
            assert_eq!(a.iterations, b.iterations, "{}", program.name);
        }
    }

    #[test]
    fn folding_shrinks_a_wasteful_kernel() {
        let mut kernel = Kernel {
            name: "wasteful".into(),
            domain: Domain::AllNodes,
            locals: 1,
            body: vec![
                Stmt::Let(
                    0,
                    Expr::bin(BinOp::Mul, Expr::bin(BinOp::Add, c(1.0), c(1.0)), c(3.0)),
                ),
                Stmt::If {
                    cond: c(0.0),
                    then: vec![Stmt::Store {
                        field: 0,
                        target: Ref::Node,
                        value: c(9.0),
                    }],
                    els: vec![],
                },
            ],
        };
        fold_kernel(&mut kernel);
        assert_eq!(kernel.body, vec![Stmt::Let(0, c(6.0))]);
    }
}

//! Graph applications written in the DSL, mirroring a subset of the
//! handwritten suite: two BFS strategies, two SSSP strategies, label
//! propagation, PageRank, and Luby's maximal independent set.

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldDecl, FieldInit, GlobalDecl, Kernel, Program, Ref, Stmt,
    WorklistInit,
};

use Expr::{Const, Degree, EdgeWeight, Global, Iter, Local, NodeId, NumNodes};

fn field(f: usize, r: Ref) -> Expr {
    Expr::Field(f, r)
}

fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
    Expr::bin(op, a, b)
}

/// Topology-driven BFS: one kernel over all nodes per level, expanding
/// nodes whose level equals the iteration counter.
pub fn bfs_topology() -> Program {
    let level = 0;
    Program {
        name: "bfs_tp".into(),
        fields: vec![FieldDecl {
            name: "level".into(),
            init: FieldInit::SourceElse(f64::INFINITY),
        }],
        globals: vec![],
        kernels: vec![Kernel {
            name: "bfs_tp_step".into(),
            domain: Domain::AllNodes,
            locals: 0,
            body: vec![Stmt::If {
                cond: bin(BinOp::Eq, field(level, Ref::Node), Iter),
                then: vec![Stmt::ForEachEdge(vec![Stmt::If {
                    cond: bin(
                        BinOp::Lt,
                        bin(BinOp::Add, Iter, Const(1.0)),
                        field(level, Ref::Nbr),
                    ),
                    then: vec![
                        Stmt::AtomicMin {
                            field: level,
                            target: Ref::Nbr,
                            value: bin(BinOp::Add, Iter, Const(1.0)),
                        },
                        Stmt::MarkChanged,
                    ],
                    els: vec![],
                }])],
                els: vec![],
            }],
        }],
        driver: Driver::UntilFixpoint {
            kernels: vec![0],
            max_iters: 1_000_000,
        },
        output: level,
    }
}

/// Worklist BFS: frontier nodes relax their neighbours and push newly
/// improved ones.
pub fn bfs_worklist() -> Program {
    let level = 0;
    Program {
        name: "bfs_wl".into(),
        fields: vec![FieldDecl {
            name: "level".into(),
            init: FieldInit::SourceElse(f64::INFINITY),
        }],
        globals: vec![],
        kernels: vec![Kernel {
            name: "bfs_wl_expand".into(),
            domain: Domain::Worklist,
            locals: 1,
            body: vec![
                Stmt::Let(0, bin(BinOp::Add, field(level, Ref::Node), Const(1.0))),
                Stmt::ForEachEdge(vec![Stmt::If {
                    cond: bin(BinOp::Lt, Local(0), field(level, Ref::Nbr)),
                    then: vec![
                        Stmt::AtomicMin {
                            field: level,
                            target: Ref::Nbr,
                            value: Local(0),
                        },
                        Stmt::Push(Ref::Nbr),
                    ],
                    els: vec![],
                }]),
            ],
        }],
        driver: Driver::WorklistLoop {
            init: WorklistInit::Source,
            kernel: 0,
            max_iters: 1_000_000,
        },
        output: level,
    }
}

/// Topology-driven Bellman-Ford SSSP.
pub fn sssp_bellman() -> Program {
    let dist = 0;
    Program {
        name: "sssp_bf".into(),
        fields: vec![FieldDecl {
            name: "dist".into(),
            init: FieldInit::SourceElse(f64::INFINITY),
        }],
        globals: vec![],
        kernels: vec![Kernel {
            name: "sssp_bf_relax".into(),
            domain: Domain::AllNodes,
            locals: 1,
            body: vec![Stmt::If {
                cond: bin(BinOp::Lt, field(dist, Ref::Node), Const(f64::INFINITY)),
                then: vec![Stmt::ForEachEdge(vec![
                    Stmt::Let(0, bin(BinOp::Add, field(dist, Ref::Node), EdgeWeight)),
                    Stmt::If {
                        cond: bin(BinOp::Lt, Local(0), field(dist, Ref::Nbr)),
                        then: vec![
                            Stmt::AtomicMin {
                                field: dist,
                                target: Ref::Nbr,
                                value: Local(0),
                            },
                            Stmt::MarkChanged,
                        ],
                        els: vec![],
                    },
                ])],
                els: vec![],
            }],
        }],
        driver: Driver::UntilFixpoint {
            kernels: vec![0],
            max_iters: 1_000_000,
        },
        output: dist,
    }
}

/// Worklist SSSP: improved nodes are queued for re-relaxation.
pub fn sssp_worklist() -> Program {
    let dist = 0;
    Program {
        name: "sssp_wl".into(),
        fields: vec![FieldDecl {
            name: "dist".into(),
            init: FieldInit::SourceElse(f64::INFINITY),
        }],
        globals: vec![],
        kernels: vec![Kernel {
            name: "sssp_wl_relax".into(),
            domain: Domain::Worklist,
            locals: 1,
            body: vec![Stmt::ForEachEdge(vec![
                Stmt::Let(0, bin(BinOp::Add, field(dist, Ref::Node), EdgeWeight)),
                Stmt::If {
                    cond: bin(BinOp::Lt, Local(0), field(dist, Ref::Nbr)),
                    then: vec![
                        Stmt::AtomicMin {
                            field: dist,
                            target: Ref::Nbr,
                            value: Local(0),
                        },
                        Stmt::Push(Ref::Nbr),
                    ],
                    els: vec![],
                },
            ])],
        }],
        driver: Driver::WorklistLoop {
            init: WorklistInit::Source,
            kernel: 0,
            max_iters: 1_000_000,
        },
        output: dist,
    }
}

/// Connected components by minimum-label propagation.
pub fn cc_label_prop() -> Program {
    let label = 0;
    Program {
        name: "cc_lp".into(),
        fields: vec![FieldDecl {
            name: "label".into(),
            init: FieldInit::NodeId,
        }],
        globals: vec![],
        kernels: vec![Kernel {
            name: "cc_lp_propagate".into(),
            domain: Domain::AllNodes,
            locals: 0,
            body: vec![Stmt::ForEachEdge(vec![Stmt::If {
                cond: bin(BinOp::Lt, field(label, Ref::Node), field(label, Ref::Nbr)),
                then: vec![
                    Stmt::AtomicMin {
                        field: label,
                        target: Ref::Nbr,
                        value: field(label, Ref::Node),
                    },
                    Stmt::MarkChanged,
                ],
                els: vec![],
            }])],
        }],
        driver: Driver::UntilFixpoint {
            kernels: vec![0],
            max_iters: 1_000_000,
        },
        output: label,
    }
}

/// Pull-style PageRank with uniform redistribution of dangling mass via a
/// global accumulator; a fixed 64 power iterations (damping 0.85).
pub fn pr_pull() -> Program {
    let rank = 0;
    let share = 1;
    let dangling = 0;
    Program {
        name: "pr_pull".into(),
        fields: vec![
            FieldDecl {
                name: "rank".into(),
                init: FieldInit::OneOverN,
            },
            FieldDecl {
                name: "share".into(),
                init: FieldInit::Const(0.0),
            },
        ],
        globals: vec![GlobalDecl {
            name: "dangling".into(),
            init: 0.0,
        }],
        kernels: vec![
            Kernel {
                name: "pr_compute_share".into(),
                domain: Domain::AllNodes,
                locals: 0,
                body: vec![Stmt::If {
                    cond: bin(BinOp::Lt, Const(0.0), Degree(Ref::Node)),
                    then: vec![Stmt::Store {
                        field: share,
                        target: Ref::Node,
                        value: bin(
                            BinOp::Div,
                            bin(BinOp::Mul, Const(0.85), field(rank, Ref::Node)),
                            Degree(Ref::Node),
                        ),
                    }],
                    els: vec![Stmt::GlobalAdd(dangling, field(rank, Ref::Node))],
                }],
            },
            Kernel {
                name: "pr_gather".into(),
                domain: Domain::AllNodes,
                locals: 1,
                body: vec![
                    Stmt::Let(0, Const(0.0)),
                    Stmt::ForEachEdge(vec![Stmt::Let(
                        0,
                        bin(BinOp::Add, Local(0), field(share, Ref::Nbr)),
                    )]),
                    Stmt::Store {
                        field: rank,
                        target: Ref::Node,
                        value: bin(
                            BinOp::Add,
                            bin(
                                BinOp::Add,
                                bin(BinOp::Div, Const(0.15), NumNodes),
                                bin(
                                    BinOp::Div,
                                    bin(BinOp::Mul, Const(0.85), Global(dangling)),
                                    NumNodes,
                                ),
                            ),
                            Local(0),
                        ),
                    },
                ],
            },
        ],
        driver: Driver::Fixed {
            kernels: vec![0, 1],
            iters: 64,
        },
        output: rank,
    }
}

/// Luby's maximal independent set: fresh hash priorities per round;
/// state 0 = undecided, 1 = in the set, 2 = excluded.
pub fn mis_luby() -> Program {
    let state = 0;
    let cand = 1;
    let my_prio = 1usize; // local 1; local 0 is the "win" flag
    Program {
        name: "mis_luby".into(),
        fields: vec![
            FieldDecl {
                name: "state".into(),
                init: FieldInit::Const(0.0),
            },
            FieldDecl {
                name: "cand".into(),
                init: FieldInit::Const(0.0),
            },
        ],
        globals: vec![],
        kernels: vec![
            Kernel {
                name: "mis_select".into(),
                domain: Domain::AllNodes,
                locals: 2,
                body: vec![Stmt::If {
                    cond: bin(BinOp::Eq, field(state, Ref::Node), Const(0.0)),
                    then: vec![
                        Stmt::Let(0, Const(1.0)),
                        Stmt::Let(
                            my_prio,
                            Expr::Hash(Box::new(NodeId(Ref::Node)), Box::new(Iter)),
                        ),
                        Stmt::ForEachEdge(vec![Stmt::If {
                            cond: bin(
                                BinOp::And,
                                bin(BinOp::Eq, field(state, Ref::Nbr), Const(0.0)),
                                bin(
                                    BinOp::Or,
                                    bin(
                                        BinOp::Lt,
                                        Local(my_prio),
                                        Expr::Hash(Box::new(NodeId(Ref::Nbr)), Box::new(Iter)),
                                    ),
                                    bin(
                                        BinOp::And,
                                        bin(
                                            BinOp::Eq,
                                            Local(my_prio),
                                            Expr::Hash(Box::new(NodeId(Ref::Nbr)), Box::new(Iter)),
                                        ),
                                        bin(BinOp::Lt, NodeId(Ref::Nbr), NodeId(Ref::Node)),
                                    ),
                                ),
                            ),
                            then: vec![Stmt::Let(0, Const(0.0))],
                            els: vec![],
                        }]),
                        Stmt::Store {
                            field: cand,
                            target: Ref::Node,
                            value: Local(0),
                        },
                    ],
                    els: vec![Stmt::Store {
                        field: cand,
                        target: Ref::Node,
                        value: Const(0.0),
                    }],
                }],
            },
            Kernel {
                name: "mis_apply".into(),
                domain: Domain::AllNodes,
                locals: 0,
                body: vec![Stmt::If {
                    cond: bin(
                        BinOp::And,
                        bin(BinOp::Eq, field(cand, Ref::Node), Const(1.0)),
                        bin(BinOp::Eq, field(state, Ref::Node), Const(0.0)),
                    ),
                    then: vec![
                        Stmt::Store {
                            field: state,
                            target: Ref::Node,
                            value: Const(1.0),
                        },
                        Stmt::MarkChanged,
                        Stmt::ForEachEdge(vec![Stmt::If {
                            cond: bin(BinOp::Eq, field(state, Ref::Nbr), Const(0.0)),
                            then: vec![Stmt::Store {
                                field: state,
                                target: Ref::Nbr,
                                value: Const(2.0),
                            }],
                            els: vec![],
                        }]),
                    ],
                    els: vec![],
                }],
            },
        ],
        driver: Driver::UntilFixpoint {
            kernels: vec![0, 1],
            max_iters: 100_000,
        },
        output: state,
    }
}

/// All DSL-authored programs.
pub fn all() -> Vec<Program> {
    vec![
        bfs_topology(),
        bfs_worklist(),
        sssp_bellman(),
        sssp_worklist(),
        cc_label_prop(),
        pr_pull(),
        mis_luby(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute;
    use crate::validate::validate as validate_program;
    use gpp_graph::{generators, properties, Graph};
    use gpp_sim::trace::Recorder;

    fn run(program: &Program, graph: &Graph) -> Vec<f64> {
        let mut rec = Recorder::new();
        let exec =
            execute(program, graph, &mut rec).unwrap_or_else(|e| panic!("{}: {e}", program.name));
        exec.output(program).to_vec()
    }

    fn test_graphs() -> Vec<Graph> {
        vec![
            generators::road_grid(8, 8, 3).unwrap(),
            generators::rmat(7, 6, 5).unwrap(),
            generators::star(25).unwrap(),
            generators::path(17).unwrap(),
            gpp_graph::GraphBuilder::new(7)
                .undirected()
                .weighted_edge(0, 1, 5)
                .weighted_edge(3, 4, 2)
                .weighted_edge(4, 5, 9)
                .build()
                .unwrap(),
        ]
    }

    #[test]
    fn all_programs_are_well_formed() {
        for p in all() {
            validate_program(&p).unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
        assert_eq!(all().len(), 7);
    }

    #[test]
    fn bfs_programs_match_reference_levels() {
        for g in test_graphs() {
            let expect = properties::bfs_levels(&g, 0);
            for p in [bfs_topology(), bfs_worklist()] {
                let got = run(&p, &g);
                for (v, (g_, w)) in got.iter().zip(&expect).enumerate() {
                    let want = if *w == u32::MAX {
                        f64::INFINITY
                    } else {
                        *w as f64
                    };
                    assert_eq!(*g_, want, "{} node {v}", p.name);
                }
            }
        }
    }

    #[test]
    fn sssp_programs_match_dijkstra() {
        for g in test_graphs() {
            let expect = properties::dijkstra(&g, 0);
            for p in [sssp_bellman(), sssp_worklist()] {
                let got = run(&p, &g);
                for (v, (g_, w)) in got.iter().zip(&expect).enumerate() {
                    let want = if *w == u64::MAX {
                        f64::INFINITY
                    } else {
                        *w as f64
                    };
                    assert_eq!(*g_, want, "{} node {v}", p.name);
                }
            }
        }
    }

    #[test]
    fn cc_matches_union_find() {
        for g in test_graphs() {
            let expect = properties::connected_components(&g).labels;
            let got = run(&cc_label_prop(), &g);
            for (v, (g_, w)) in got.iter().zip(&expect).enumerate() {
                assert_eq!(*g_, *w as f64, "node {v}");
            }
        }
    }

    #[test]
    fn pagerank_matches_power_iteration() {
        for g in test_graphs() {
            let got = run(&pr_pull(), &g);
            // Independent reference: 64 pull iterations with uniform
            // dangling redistribution.
            let n = g.num_nodes();
            let mut rank = vec![1.0 / n as f64; n];
            let mut next = vec![0.0; n];
            for _ in 0..64 {
                let dangling: f64 = g
                    .nodes()
                    .filter(|&u| g.degree(u) == 0)
                    .map(|u| rank[u as usize])
                    .sum();
                let base = 0.15 / n as f64 + 0.85 * dangling / n as f64;
                for v in g.nodes() {
                    let mut acc = 0.0;
                    for &u in g.neighbors(v) {
                        acc += 0.85 * rank[u as usize] / g.degree(u) as f64;
                    }
                    next[v as usize] = base + acc;
                }
                std::mem::swap(&mut rank, &mut next);
            }
            for (v, (g_, w)) in got.iter().zip(&rank).enumerate() {
                assert!((g_ - w).abs() < 1e-9, "node {v}: {g_} vs {w}");
            }
            let sum: f64 = got.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn mis_is_independent_and_maximal() {
        for g in test_graphs() {
            let state = run(&mis_luby(), &g);
            for u in g.nodes() {
                let selected = state[u as usize] == 1.0;
                if selected {
                    for &v in g.neighbors(u) {
                        assert_ne!(state[v as usize], 1.0, "{u} and {v} both selected");
                    }
                } else {
                    assert!(
                        g.neighbors(u).iter().any(|&v| state[v as usize] == 1.0),
                        "{u} uncovered"
                    );
                }
            }
        }
    }

    #[test]
    fn worklist_variants_do_less_work_on_road() {
        let g = generators::road_grid(12, 12, 1).unwrap();
        let mut rec_tp = Recorder::new();
        execute(&bfs_topology(), &g, &mut rec_tp).unwrap();
        let mut rec_wl = Recorder::new();
        execute(&bfs_worklist(), &g, &mut rec_wl).unwrap();
        assert!(rec_wl.into_trace().num_items() < rec_tp.into_trace().num_items());
    }
}

//! Structural validation of DSL programs: the checks a compiler front
//! end performs before any transformation runs.

use std::fmt;

use crate::ast::{Domain, Driver, Expr, Kernel, Program, Ref, Stmt};

/// Errors raised by program validation or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrglError {
    /// A neighbour reference (`Ref::Nbr`, `EdgeWeight`) appeared outside
    /// an edge loop.
    NbrOutsideEdgeLoop {
        /// Kernel name.
        kernel: String,
    },
    /// Edge loops may not nest.
    NestedEdgeLoop {
        /// Kernel name.
        kernel: String,
    },
    /// A field id was out of range.
    UnknownField {
        /// Kernel name.
        kernel: String,
        /// The offending field id.
        field: usize,
    },
    /// A local id was not declared by the kernel.
    UnknownLocal {
        /// Kernel name.
        kernel: String,
        /// The offending local id.
        local: usize,
    },
    /// The driver referenced a kernel id that does not exist.
    UnknownKernel {
        /// The offending kernel id.
        kernel: usize,
    },
    /// The driver and a kernel's domain disagree (worklist loops need
    /// worklist kernels and vice versa).
    DomainMismatch {
        /// Kernel name.
        kernel: String,
    },
    /// `Push` appeared in a program whose driver has no worklist.
    PushWithoutWorklist {
        /// Kernel name.
        kernel: String,
    },
    /// A global scalar id was out of range.
    UnknownGlobal {
        /// Kernel name.
        kernel: String,
        /// The offending global id.
        global: usize,
    },
    /// The output field id is out of range.
    BadOutputField,
    /// A driver bound (iterations) was zero.
    ZeroIterations,
    /// Execution exceeded the driver's iteration bound without reaching
    /// a fixed point.
    IterationBoundExceeded {
        /// Program name.
        program: String,
        /// The bound that was hit.
        bound: u32,
    },
}

impl fmt::Display for IrglError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrglError::NbrOutsideEdgeLoop { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}`: neighbour reference outside an edge loop"
                )
            }
            IrglError::NestedEdgeLoop { kernel } => {
                write!(f, "kernel `{kernel}`: edge loops may not nest")
            }
            IrglError::UnknownField { kernel, field } => {
                write!(f, "kernel `{kernel}`: unknown field id {field}")
            }
            IrglError::UnknownLocal { kernel, local } => {
                write!(f, "kernel `{kernel}`: unknown local id {local}")
            }
            IrglError::UnknownKernel { kernel } => write!(f, "driver: unknown kernel id {kernel}"),
            IrglError::DomainMismatch { kernel } => {
                write!(
                    f,
                    "kernel `{kernel}`: launch domain does not match the driver"
                )
            }
            IrglError::PushWithoutWorklist { kernel } => {
                write!(f, "kernel `{kernel}`: push without a worklist driver")
            }
            IrglError::UnknownGlobal { kernel, global } => {
                write!(f, "kernel `{kernel}`: unknown global id {global}")
            }
            IrglError::BadOutputField => write!(f, "output field id out of range"),
            IrglError::ZeroIterations => write!(f, "driver iteration bound must be positive"),
            IrglError::IterationBoundExceeded { program, bound } => {
                write!(
                    f,
                    "program `{program}` did not converge within {bound} iterations"
                )
            }
        }
    }
}

impl std::error::Error for IrglError {}

/// Validates a program's structure.
///
/// # Errors
///
/// Returns the first [`IrglError`] found; `Ok(())` means the program is
/// safe to transform, compile, and execute.
pub fn validate(program: &Program) -> Result<(), IrglError> {
    if program.output >= program.fields.len() {
        return Err(IrglError::BadOutputField);
    }
    let has_worklist = matches!(program.driver, Driver::WorklistLoop { .. });
    for kernel in &program.kernels {
        validate_kernel(program, kernel, has_worklist)?;
    }
    match &program.driver {
        Driver::UntilFixpoint { kernels, max_iters }
        | Driver::Fixed {
            kernels,
            iters: max_iters,
        } => {
            if *max_iters == 0 {
                return Err(IrglError::ZeroIterations);
            }
            for &k in kernels {
                let kernel = program
                    .kernels
                    .get(k)
                    .ok_or(IrglError::UnknownKernel { kernel: k })?;
                if kernel.domain != Domain::AllNodes {
                    return Err(IrglError::DomainMismatch {
                        kernel: kernel.name.clone(),
                    });
                }
            }
        }
        Driver::WorklistLoop {
            kernel, max_iters, ..
        } => {
            if *max_iters == 0 {
                return Err(IrglError::ZeroIterations);
            }
            let k = program
                .kernels
                .get(*kernel)
                .ok_or(IrglError::UnknownKernel { kernel: *kernel })?;
            if k.domain != Domain::Worklist {
                return Err(IrglError::DomainMismatch {
                    kernel: k.name.clone(),
                });
            }
        }
    }
    Ok(())
}

fn validate_kernel(
    program: &Program,
    kernel: &Kernel,
    has_worklist: bool,
) -> Result<(), IrglError> {
    validate_stmts(program, kernel, &kernel.body, false, has_worklist)
}

fn validate_stmts(
    program: &Program,
    kernel: &Kernel,
    stmts: &[Stmt],
    in_edge_loop: bool,
    has_worklist: bool,
) -> Result<(), IrglError> {
    for stmt in stmts {
        match stmt {
            Stmt::Let(local, expr) => {
                if *local >= kernel.locals {
                    return Err(IrglError::UnknownLocal {
                        kernel: kernel.name.clone(),
                        local: *local,
                    });
                }
                validate_expr(program, kernel, expr, in_edge_loop)?;
            }
            Stmt::If { cond, then, els } => {
                validate_expr(program, kernel, cond, in_edge_loop)?;
                validate_stmts(program, kernel, then, in_edge_loop, has_worklist)?;
                validate_stmts(program, kernel, els, in_edge_loop, has_worklist)?;
            }
            Stmt::Store {
                field,
                target,
                value,
            }
            | Stmt::AtomicMin {
                field,
                target,
                value,
            }
            | Stmt::AtomicAdd {
                field,
                target,
                value,
            } => {
                if *field >= program.fields.len() {
                    return Err(IrglError::UnknownField {
                        kernel: kernel.name.clone(),
                        field: *field,
                    });
                }
                if *target == Ref::Nbr && !in_edge_loop {
                    return Err(IrglError::NbrOutsideEdgeLoop {
                        kernel: kernel.name.clone(),
                    });
                }
                validate_expr(program, kernel, value, in_edge_loop)?;
            }
            Stmt::ForEachEdge(body) => {
                if in_edge_loop {
                    return Err(IrglError::NestedEdgeLoop {
                        kernel: kernel.name.clone(),
                    });
                }
                validate_stmts(program, kernel, body, true, has_worklist)?;
            }
            Stmt::Push(target) => {
                if !has_worklist {
                    return Err(IrglError::PushWithoutWorklist {
                        kernel: kernel.name.clone(),
                    });
                }
                if *target == Ref::Nbr && !in_edge_loop {
                    return Err(IrglError::NbrOutsideEdgeLoop {
                        kernel: kernel.name.clone(),
                    });
                }
            }
            Stmt::MarkChanged => {}
            Stmt::GlobalAdd(global, value) => {
                if *global >= program.globals.len() {
                    return Err(IrglError::UnknownGlobal {
                        kernel: kernel.name.clone(),
                        global: *global,
                    });
                }
                validate_expr(program, kernel, value, in_edge_loop)?;
            }
        }
    }
    Ok(())
}

fn validate_expr(
    program: &Program,
    kernel: &Kernel,
    expr: &Expr,
    in_edge_loop: bool,
) -> Result<(), IrglError> {
    match expr {
        Expr::Const(_) | Expr::Iter | Expr::NumNodes => Ok(()),
        Expr::NodeId(r) | Expr::Degree(r) => {
            if *r == Ref::Nbr && !in_edge_loop {
                Err(IrglError::NbrOutsideEdgeLoop {
                    kernel: kernel.name.clone(),
                })
            } else {
                Ok(())
            }
        }
        Expr::Field(field, r) => {
            if *field >= program.fields.len() {
                return Err(IrglError::UnknownField {
                    kernel: kernel.name.clone(),
                    field: *field,
                });
            }
            if *r == Ref::Nbr && !in_edge_loop {
                return Err(IrglError::NbrOutsideEdgeLoop {
                    kernel: kernel.name.clone(),
                });
            }
            Ok(())
        }
        Expr::EdgeWeight => {
            if in_edge_loop {
                Ok(())
            } else {
                Err(IrglError::NbrOutsideEdgeLoop {
                    kernel: kernel.name.clone(),
                })
            }
        }
        Expr::Global(global) => {
            if *global >= program.globals.len() {
                Err(IrglError::UnknownGlobal {
                    kernel: kernel.name.clone(),
                    global: *global,
                })
            } else {
                Ok(())
            }
        }
        Expr::Local(local) => {
            if *local >= kernel.locals {
                Err(IrglError::UnknownLocal {
                    kernel: kernel.name.clone(),
                    local: *local,
                })
            } else {
                Ok(())
            }
        }
        Expr::Unary(_, a) => validate_expr(program, kernel, a, in_edge_loop),
        Expr::Binary(_, a, b) | Expr::Hash(a, b) => {
            validate_expr(program, kernel, a, in_edge_loop)?;
            validate_expr(program, kernel, b, in_edge_loop)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BinOp, FieldDecl, FieldInit};

    fn kernel(body: Vec<Stmt>) -> Kernel {
        Kernel {
            name: "k".into(),
            domain: Domain::AllNodes,
            locals: 1,
            body,
        }
    }

    fn program(kernels: Vec<Kernel>, driver: Driver) -> Program {
        Program {
            name: "t".into(),
            fields: vec![FieldDecl {
                name: "x".into(),
                init: FieldInit::Const(0.0),
            }],
            globals: vec![],
            kernels,
            driver,
            output: 0,
        }
    }

    #[test]
    fn accepts_well_formed_program() {
        let p = program(
            vec![kernel(vec![Stmt::ForEachEdge(vec![Stmt::AtomicMin {
                field: 0,
                target: Ref::Nbr,
                value: Expr::bin(BinOp::Add, Expr::Field(0, Ref::Node), Expr::EdgeWeight),
            }])])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert_eq!(validate(&p), Ok(()));
    }

    #[test]
    fn rejects_nbr_outside_edge_loop() {
        let p = program(
            vec![kernel(vec![Stmt::Store {
                field: 0,
                target: Ref::Nbr,
                value: Expr::Const(1.0),
            }])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::NbrOutsideEdgeLoop { .. })
        ));
    }

    #[test]
    fn rejects_edge_weight_outside_edge_loop() {
        let p = program(
            vec![kernel(vec![Stmt::Let(0, Expr::EdgeWeight)])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::NbrOutsideEdgeLoop { .. })
        ));
    }

    #[test]
    fn rejects_nested_edge_loops() {
        let p = program(
            vec![kernel(vec![Stmt::ForEachEdge(vec![Stmt::ForEachEdge(
                vec![],
            )])])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::NestedEdgeLoop { .. })
        ));
    }

    #[test]
    fn rejects_unknown_field_and_local() {
        let p = program(
            vec![kernel(vec![Stmt::Store {
                field: 9,
                target: Ref::Node,
                value: Expr::Const(0.0),
            }])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::UnknownField { field: 9, .. })
        ));
        let p = program(
            vec![kernel(vec![Stmt::Let(5, Expr::Const(0.0))])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::UnknownLocal { local: 5, .. })
        ));
    }

    #[test]
    fn rejects_push_without_worklist() {
        let p = program(
            vec![kernel(vec![Stmt::Push(Ref::Node)])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::PushWithoutWorklist { .. })
        ));
    }

    #[test]
    fn rejects_domain_mismatch() {
        let p = program(
            vec![kernel(vec![])],
            Driver::WorklistLoop {
                init: WorklistInitWrapper::SOURCE,
                kernel: 0,
                max_iters: 5,
            },
        );
        assert!(matches!(
            validate(&p),
            Err(IrglError::DomainMismatch { .. })
        ));
    }

    // Local alias to keep the test above terse.
    struct WorklistInitWrapper;
    impl WorklistInitWrapper {
        const SOURCE: crate::ast::WorklistInit = crate::ast::WorklistInit::Source;
    }

    #[test]
    fn rejects_unknown_kernel_and_zero_iterations() {
        let p = program(
            vec![kernel(vec![])],
            Driver::UntilFixpoint {
                kernels: vec![3],
                max_iters: 10,
            },
        );
        assert_eq!(validate(&p), Err(IrglError::UnknownKernel { kernel: 3 }));
        let p = program(
            vec![kernel(vec![])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 0,
            },
        );
        assert_eq!(validate(&p), Err(IrglError::ZeroIterations));
    }

    #[test]
    fn rejects_bad_output_field() {
        let mut p = program(
            vec![kernel(vec![])],
            Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 1,
            },
        );
        p.output = 7;
        assert_eq!(validate(&p), Err(IrglError::BadOutputField));
    }

    #[test]
    fn error_messages_name_the_kernel() {
        let e = IrglError::NestedEdgeLoop {
            kernel: "relax".into(),
        };
        assert!(e.to_string().contains("relax"));
    }
}

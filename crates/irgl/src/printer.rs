//! Pretty-printing programs back to DSL source text.
//!
//! [`to_source`] and [`crate::parser::parse`] round-trip: parsing the
//! printed text reproduces the program (locals are named `t0`, `t1`, …
//! in declaration order, which is also how the parser numbers them).

use std::fmt::Write as _;

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldInit, Kernel, Program, Ref, Stmt, UnaryOp, WorklistInit,
};

/// Renders a program as DSL source text.
///
/// Also available as the program's `Display` implementation.
pub fn to_source(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "program {} {{", program.name);
    for field in &program.fields {
        let _ = writeln!(out, "  field {} = {};", field.name, init_text(field.init));
    }
    for global in &program.globals {
        let _ = writeln!(out, "  global {} = {};", global.name, num(global.init));
    }
    for kernel in &program.kernels {
        out.push('\n');
        let domain = match kernel.domain {
            Domain::AllNodes => "all_nodes",
            Domain::Worklist => "worklist",
        };
        let _ = writeln!(out, "  kernel {} {domain} {{", kernel.name);
        print_stmts(&mut out, program, &kernel.body, 2);
        let _ = writeln!(out, "  }}");
    }
    out.push('\n');
    let kernel_name = |k: usize| program.kernels[k].name.clone();
    match &program.driver {
        Driver::UntilFixpoint { kernels, max_iters } => {
            let names: Vec<String> = kernels.iter().map(|&k| kernel_name(k)).collect();
            let _ = writeln!(
                out,
                "  driver until_fixpoint({}) max {max_iters};",
                names.join(", ")
            );
        }
        Driver::WorklistLoop {
            init,
            kernel,
            max_iters,
        } => {
            let from = match init {
                WorklistInit::Source => "source",
                WorklistInit::AllNodes => "all_nodes",
            };
            let _ = writeln!(
                out,
                "  driver worklist_loop({}) from {from} max {max_iters};",
                kernel_name(*kernel)
            );
        }
        Driver::Fixed { kernels, iters } => {
            let names: Vec<String> = kernels.iter().map(|&k| kernel_name(k)).collect();
            let _ = writeln!(out, "  driver fixed({}) iters {iters};", names.join(", "));
        }
    }
    let _ = writeln!(out, "  output {};", program.fields[program.output].name);
    let _ = writeln!(out, "}}");
    out
}

fn init_text(init: FieldInit) -> String {
    match init {
        FieldInit::Const(c) => format!("const({})", num(c)),
        FieldInit::NodeId => "node_id".into(),
        FieldInit::Infinity => "inf".into(),
        FieldInit::OneOverN => "one_over_n".into(),
        FieldInit::SourceElse(c) => format!("source_else({})", num(c)),
    }
}

fn num(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "inf".into()
        } else {
            "-inf".into()
        }
    } else {
        format!("{v}")
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn print_stmts(out: &mut String, program: &Program, stmts: &[Stmt], depth: usize) {
    for stmt in stmts {
        indent(out, depth);
        match stmt {
            Stmt::Let(local, expr) => {
                let _ = writeln!(out, "let t{local} = {};", expr_text(program, expr));
            }
            Stmt::If { cond, then, els } => {
                let _ = writeln!(out, "if ({}) {{", expr_text(program, cond));
                print_stmts(out, program, then, depth + 1);
                if els.is_empty() {
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                } else {
                    indent(out, depth);
                    let _ = writeln!(out, "}} else {{");
                    print_stmts(out, program, els, depth + 1);
                    indent(out, depth);
                    let _ = writeln!(out, "}}");
                }
            }
            Stmt::Store {
                field,
                target,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "{}[{}] = {};",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::AtomicMin {
                field,
                target,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "atomic_min({}[{}], {});",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::AtomicAdd {
                field,
                target,
                value,
            } => {
                let _ = writeln!(
                    out,
                    "atomic_add({}[{}], {});",
                    program.fields[*field].name,
                    ref_text(*target),
                    expr_text(program, value)
                );
            }
            Stmt::ForEachEdge(body) => {
                let _ = writeln!(out, "for edge {{");
                print_stmts(out, program, body, depth + 1);
                indent(out, depth);
                let _ = writeln!(out, "}}");
            }
            Stmt::Push(target) => {
                let _ = writeln!(out, "push({});", ref_text(*target));
            }
            Stmt::MarkChanged => {
                let _ = writeln!(out, "mark_changed;");
            }
            Stmt::GlobalAdd(global, value) => {
                let _ = writeln!(
                    out,
                    "global_add({}, {});",
                    program.globals[*global].name,
                    expr_text(program, value)
                );
            }
        }
    }
}

fn ref_text(r: Ref) -> &'static str {
    match r {
        Ref::Node => "node",
        Ref::Nbr => "nbr",
    }
}

/// Renders an expression (fully parenthesised binary operators, so no
/// precedence information is lost in the round trip).
pub fn expr_text(program: &Program, expr: &Expr) -> String {
    match expr {
        Expr::Const(c) => num(*c),
        Expr::NodeId(r) => format!("id({})", ref_text(*r)),
        Expr::Degree(r) => format!("degree({})", ref_text(*r)),
        Expr::Field(field, r) => {
            format!("{}[{}]", program.fields[*field].name, ref_text(*r))
        }
        Expr::EdgeWeight => "weight".into(),
        Expr::Iter => "iter".into(),
        Expr::NumNodes => "num_nodes".into(),
        Expr::Local(local) => format!("t{local}"),
        Expr::Global(global) => format!("global({})", program.globals[*global].name),
        Expr::Unary(op, a) => {
            let a = expr_text(program, a);
            match op {
                UnaryOp::Not => format!("!({a})"),
                UnaryOp::Neg => format!("-({a})"),
                UnaryOp::Floor => format!("floor({a})"),
            }
        }
        Expr::Binary(op, a, b) => {
            let (a, b) = (expr_text(program, a), expr_text(program, b));
            match op {
                BinOp::Min => format!("min({a}, {b})"),
                BinOp::Max => format!("max({a}, {b})"),
                op => format!("({a} {} {b})", op_text(*op)),
            }
        }
        Expr::Hash(a, b) => {
            format!("hash({}, {})", expr_text(program, a), expr_text(program, b))
        }
    }
}

fn op_text(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "/",
        BinOp::Lt => "<",
        BinOp::Le => "<=",
        BinOp::Eq => "==",
        BinOp::Ne => "!=",
        BinOp::And => "&&",
        BinOp::Or => "||",
        BinOp::Min | BinOp::Max => unreachable!("printed as calls"),
    }
}

/// Used by printer tests and the parser round-trip; suppress the unused
/// warning for the Kernel import used only in docs.
#[allow(unused)]
fn _doc(_: &Kernel) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;

    #[test]
    fn printed_source_has_expected_shape() {
        let text = to_source(&programs::bfs_worklist());
        assert!(text.starts_with("program bfs_wl {"));
        assert!(text.contains("field level = source_else(inf);"));
        assert!(text.contains("kernel bfs_wl_expand worklist {"));
        assert!(text.contains("for edge {"));
        assert!(text.contains("push(nbr);"));
        assert!(text.contains("driver worklist_loop(bfs_wl_expand) from source max 1000000;"));
        assert!(text.contains("output level;"));
    }

    #[test]
    fn globals_and_fixed_drivers_print() {
        let text = to_source(&programs::pr_pull());
        assert!(text.contains("global dangling = 0;"));
        assert!(text.contains("global_add(dangling, rank[node]);"));
        assert!(text.contains("driver fixed(pr_compute_share, pr_gather) iters 64;"));
    }

    #[test]
    fn every_program_prints_without_panicking() {
        for p in programs::all() {
            let text = to_source(&p);
            assert!(text.len() > 100, "{}", p.name);
        }
    }
}

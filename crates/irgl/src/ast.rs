//! The kernel IR of the miniature graph-algorithm DSL.
//!
//! A [`Program`] declares per-node fields, a set of data-parallel
//! [`Kernel`]s, and a [`Driver`] that sequences kernel launches to a
//! fixed point — the same shape as an IrGL program. Kernels are written
//! against one implicit *node* (the thread's work item) and, inside
//! [`Stmt::ForEachEdge`], one implicit *neighbour*.
//!
//! All values are `f64` with exact-integer semantics for the id-sized
//! integers graph algorithms use (node ids, levels, labels and small
//! weighted distances are all well below 2^53).

use serde::{Deserialize, Serialize};

/// Index of a per-node field in [`Program::fields`].
pub type FieldId = usize;

/// Index of a kernel in [`Program::kernels`].
pub type KernelId = usize;

/// Index of a let-bound local within a kernel.
pub type LocalId = usize;

/// Index of a global scalar in [`Program::globals`].
pub type GlobalId = usize;

/// Which implicit node a field access refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ref {
    /// The kernel's own node (coalesced access).
    Node,
    /// The current neighbour inside an edge loop (scattered access).
    Nbr,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Less-than (yields 0.0 / 1.0).
    Lt,
    /// Less-or-equal.
    Le,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Logical and (non-zero = true).
    And,
    /// Logical or.
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnaryOp {
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Floor.
    Floor,
}

/// Expressions (side-effect free).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant.
    Const(f64),
    /// The id of the referenced node.
    NodeId(Ref),
    /// The degree of the referenced node.
    Degree(Ref),
    /// A per-node field read.
    Field(FieldId, Ref),
    /// The weight of the current edge (edge loop only).
    EdgeWeight,
    /// The driver's current iteration number.
    Iter,
    /// The number of nodes in the graph.
    NumNodes,
    /// A let-bound local.
    Local(LocalId),
    /// A global scalar (re-initialised at the start of every driver
    /// iteration; written with [`Stmt::GlobalAdd`]).
    Global(GlobalId),
    /// Unary operation.
    Unary(UnaryOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A deterministic 32-bit hash of two values (Luby-style random
    /// priorities), uniform in `[0, 2^32)`.
    Hash(Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `a <op> b` convenience constructor.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// Binds local `0` (`1`, ...) for the remainder of the enclosing
    /// block.
    Let(LocalId, Expr),
    /// Conditional execution.
    If {
        /// Condition (non-zero = true).
        cond: Expr,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// Plain store to a field of the referenced node.
    Store {
        /// Destination field.
        field: FieldId,
        /// Destination node.
        target: Ref,
        /// Value stored.
        value: Expr,
    },
    /// `atomic_min` on a field (monotone, race-safe).
    AtomicMin {
        /// Destination field.
        field: FieldId,
        /// Destination node.
        target: Ref,
        /// Candidate value.
        value: Expr,
    },
    /// `atomic_add` on a field.
    AtomicAdd {
        /// Destination field.
        field: FieldId,
        /// Destination node.
        target: Ref,
        /// Addend.
        value: Expr,
    },
    /// The irregular inner loop over the node's edges.
    ForEachEdge(Vec<Stmt>),
    /// Pushes the referenced node onto the next worklist (deduplicated
    /// per round).
    Push(Ref),
    /// Raises the driver's fixed-point flag ("something changed").
    MarkChanged,
    /// Atomically adds to a global scalar (a single hot accumulator,
    /// e.g. PageRank's dangling-mass sum).
    GlobalAdd(GlobalId, Expr),
}

/// What a kernel launch ranges over.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Domain {
    /// One thread per graph node.
    AllNodes,
    /// One thread per current-worklist entry.
    Worklist,
}

/// One data-parallel kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Kernel name (used in codegen and diagnostics).
    pub name: String,
    /// Launch domain.
    pub domain: Domain,
    /// Number of let-bound locals.
    pub locals: usize,
    /// Kernel body.
    pub body: Vec<Stmt>,
}

/// Initial value of a per-node field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FieldInit {
    /// A constant.
    Const(f64),
    /// The node's own id.
    NodeId,
    /// "Infinity" (`f64::INFINITY`; prints as `INF`).
    Infinity,
    /// `1 / num_nodes` (PageRank-style).
    OneOverN,
    /// 0.0 for the source node 0, the given constant otherwise
    /// (BFS/SSSP-style distance initialisation).
    SourceElse(f64),
}

/// A per-node field declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldDecl {
    /// Field name.
    pub name: String,
    /// Initial value.
    pub init: FieldInit,
}

/// A global scalar declaration. Globals are reset to `init` at the start
/// of every driver iteration, before the iteration's first kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GlobalDecl {
    /// Global name.
    pub name: String,
    /// Value at the start of each iteration.
    pub init: f64,
}

/// How the driver seeds the worklist before the first iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorklistInit {
    /// The single source node 0.
    Source,
    /// Every node.
    AllNodes,
}

/// The host-side iteration structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Driver {
    /// Launch the kernel sequence repeatedly until no kernel raised the
    /// changed flag (bounded by `max_iters`).
    UntilFixpoint {
        /// Kernels launched each iteration, in order.
        kernels: Vec<KernelId>,
        /// Safety bound on iterations.
        max_iters: u32,
    },
    /// Frontier loop: launch the kernel over the worklist, swap in the
    /// pushed nodes, repeat until the worklist is empty.
    WorklistLoop {
        /// Initial worklist contents.
        init: WorklistInit,
        /// The worklist kernel.
        kernel: KernelId,
        /// Safety bound on iterations.
        max_iters: u32,
    },
    /// A fixed number of iterations of the kernel sequence.
    Fixed {
        /// Kernels launched each iteration, in order.
        kernels: Vec<KernelId>,
        /// Iteration count.
        iters: u32,
    },
}

/// A complete DSL program.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Per-node field declarations.
    pub fields: Vec<FieldDecl>,
    /// Global scalar declarations.
    pub globals: Vec<GlobalDecl>,
    /// Kernels.
    pub kernels: Vec<Kernel>,
    /// Host-side driver.
    pub driver: Driver,
    /// The field holding the program's result.
    pub output: FieldId,
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&crate::printer::to_source(self))
    }
}

impl Program {
    /// Looks up a field id by name.
    pub fn field(&self, name: &str) -> Option<FieldId> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The kernels launched by the driver, in launch order (one
    /// iteration's worth).
    pub fn driver_kernels(&self) -> Vec<KernelId> {
        match &self.driver {
            Driver::UntilFixpoint { kernels, .. } | Driver::Fixed { kernels, .. } => {
                kernels.clone()
            }
            Driver::WorklistLoop { kernel, .. } => vec![*kernel],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini_program() -> Program {
        Program {
            name: "mini".into(),
            fields: vec![FieldDecl {
                name: "level".into(),
                init: FieldInit::Infinity,
            }],
            globals: vec![],
            kernels: vec![Kernel {
                name: "step".into(),
                domain: Domain::AllNodes,
                locals: 0,
                body: vec![Stmt::ForEachEdge(vec![Stmt::AtomicMin {
                    field: 0,
                    target: Ref::Nbr,
                    value: Expr::bin(BinOp::Add, Expr::Field(0, Ref::Node), Expr::Const(1.0)),
                }])],
            }],
            driver: Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 100,
            },
            output: 0,
        }
    }

    #[test]
    fn field_lookup() {
        let p = mini_program();
        assert_eq!(p.field("level"), Some(0));
        assert_eq!(p.field("rank"), None);
    }

    #[test]
    fn driver_kernels_enumerates_launches() {
        let p = mini_program();
        assert_eq!(p.driver_kernels(), vec![0]);
    }

    #[test]
    fn ast_serde_round_trip() {
        let p = mini_program();
        let json = serde_json::to_string(&p).expect("serialise");
        let back: Program = serde_json::from_str(&json).expect("deserialise");
        assert_eq!(p, back);
    }

    #[test]
    fn display_prints_dsl_source() {
        let p = mini_program();
        let text = p.to_string();
        assert!(text.starts_with("program mini {"));
        assert!(text.contains("kernel step all_nodes {"));
    }

    #[test]
    fn expr_bin_builds_tree() {
        let e = Expr::bin(BinOp::Add, Expr::Const(1.0), Expr::Const(2.0));
        assert!(matches!(e, Expr::Binary(BinOp::Add, _, _)));
    }
}

//! A miniature IrGL-style graph-algorithm DSL: the compiler substrate of
//! the study.
//!
//! The paper's methodology is built around a graph-DSL compiler with a
//! tunable set of transformations. This crate provides that substrate in
//! miniature:
//!
//! - [`ast`] — the kernel IR: per-node fields, data-parallel kernels with
//!   an irregular edge loop, worklist pushes, global reductions, and
//!   host-side drivers;
//! - [`validate`] — the front-end checks and the crate's error type;
//! - [`profile`] — static derivation of per-node/per-edge operation
//!   counts (the machine's [`KernelProfile`](gpp_sim::exec::KernelProfile));
//! - [`fold`] — constant folding and branch simplification;
//! - [`transform`] — the optimisation passes: which of the paper's four
//!   transformations legally apply to each kernel under a configuration;
//! - [`codegen`] — pseudo-OpenCL rendering with every transformation
//!   visible in the emitted code;
//! - [`parser`] / [`printer`] — the textual front end: `.irgl` source
//!   round-trips through [`ast::Program`];
//! - [`interp`] — the runtime: executes programs over real graphs,
//!   computing results while driving a timing session or trace recorder;
//! - [`bytecode`] — the compiled runtime: lowers validated kernels to a
//!   flat register-machine op stream and runs them with reusable scratch
//!   buffers, bit-identical to the tree-walker;
//! - [`native`] — the native-compiled tier: fuses each kernel into a
//!   tree of Rust closures (statements fused into single calls, leaf
//!   operands inlined, constants folded) one rung below the bytecode
//!   VM; tier selection via `GPP_IRGL_TIER` (the AST walker and the VM
//!   remain as a two-level differential oracle);
//! - [`programs`] — seven applications written in the DSL, validated
//!   against the sequential references.
//!
//! # Example
//!
//! ```
//! use gpp_irgl::{interp, programs, transform, codegen};
//! use gpp_graph::generators;
//! use gpp_sim::chip::ChipProfile;
//! use gpp_sim::exec::Machine;
//! use gpp_sim::opts::{OptConfig, Optimization};
//!
//! let program = programs::bfs_worklist();
//! let graph = generators::rmat(8, 6, 1)?;
//!
//! // Compile: plan the transformations and render the OpenCL.
//! let cfg = OptConfig::baseline().with(Optimization::CoopCv);
//! let plan = transform::plan(&program, cfg)?;
//! let source = codegen::opencl(&program, &plan)?;
//! assert!(source.contains("sub_group_reduce_add")); // coop-cv applied
//!
//! // Execute: compute real levels while timing on a simulated GPU.
//! let machine = Machine::new(ChipProfile::r9());
//! let mut session = machine.session(cfg);
//! let result = interp::execute(&program, &graph, &mut session)?;
//! assert_eq!(result.output(&program)[0], 0.0);
//! assert!(session.elapsed_ns() > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod bytecode;
pub mod codegen;
pub mod fold;
pub mod interp;
pub mod native;
pub mod parser;
pub mod printer;
pub mod profile;
pub mod programs;
pub mod transform;
pub mod validate;

pub use ast::{Driver, Expr, Kernel, Program, Stmt};
pub use bytecode::{run_compiled, CompiledProgram, KernelVm};
pub use fold::fold_program;
pub use interp::{execute, execute_ast, execute_tier, Execution, Tier};
pub use native::{compile_native, run_native, NativeProgram, NativeVm};
pub use parser::{parse, ParseError};
pub use printer::to_source;
pub use transform::{plan, CompilationPlan};
pub use validate::{validate as validate_program, IrglError};

//! The optimisation passes: given a program and an optimisation
//! configuration, decide — per kernel — which transformations legally
//! apply and how each kernel will be scheduled. The plan drives code
//! generation ([`crate::codegen`]) and mirrors the scheduling the
//! abstract machine applies at evaluation time.

use gpp_sim::opts::{FgMode, OptConfig};
use serde::{Deserialize, Serialize};

use crate::ast::{Program, Stmt};
use crate::validate::{validate, IrglError};

/// A nested-parallelism scheme selected for a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scheme {
    /// Whole-workgroup processing of high-degree nodes.
    Wg,
    /// Subgroup processing of medium-degree nodes.
    Sg,
    /// Fine-grained inspector/executor, one edge per round.
    Fg1,
    /// Fine-grained inspector/executor, eight edges per round.
    Fg8,
}

impl Scheme {
    /// The paper's name for the scheme.
    pub fn name(self) -> &'static str {
        match self {
            Scheme::Wg => "wg",
            Scheme::Sg => "sg",
            Scheme::Fg1 => "fg",
            Scheme::Fg8 => "fg8",
        }
    }
}

/// How one kernel will be compiled under a configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelPlan {
    /// The kernel's index in the program.
    pub kernel: usize,
    /// Whether the kernel has an irregular edge loop at all.
    pub irregular: bool,
    /// Nested-parallelism schemes applied (empty for regular kernels or
    /// when no `np` optimisation is enabled).
    pub schemes: Vec<Scheme>,
    /// Whether the kernel pushes to a worklist.
    pub has_pushes: bool,
    /// Whether worklist pushes are subgroup-combined (`coop-cv` enabled
    /// *and* the kernel pushes).
    pub combined_pushes: bool,
}

/// The whole-program compilation plan for one configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompilationPlan {
    /// The configuration the plan realises.
    pub config: OptConfig,
    /// Workgroup size (128 or 256, from `sz256`).
    pub workgroup_size: u32,
    /// Whether the iteration loop is outlined behind a global barrier
    /// (`oitergb`).
    pub outlined: bool,
    /// Per-kernel plans, indexed like `program.kernels`.
    pub kernels: Vec<KernelPlan>,
}

/// Builds the compilation plan for `program` under `config`.
///
/// # Errors
///
/// Propagates validation errors; a plan is only produced for well-formed
/// programs.
pub fn plan(program: &Program, config: OptConfig) -> Result<CompilationPlan, IrglError> {
    validate(program)?;
    let mut schemes = Vec::new();
    if config.wg {
        schemes.push(Scheme::Wg);
    }
    if config.sg {
        schemes.push(Scheme::Sg);
    }
    match config.fg {
        FgMode::Off => {}
        FgMode::Fg1 => schemes.push(Scheme::Fg1),
        FgMode::Fg8 => schemes.push(Scheme::Fg8),
    }
    let kernels = program
        .kernels
        .iter()
        .enumerate()
        .map(|(i, kernel)| {
            let irregular = stmts_have(&kernel.body, &|s| matches!(s, Stmt::ForEachEdge(_)));
            let has_pushes = stmts_have(&kernel.body, &|s| matches!(s, Stmt::Push(_)));
            KernelPlan {
                kernel: i,
                irregular,
                schemes: if irregular {
                    schemes.clone()
                } else {
                    Vec::new()
                },
                has_pushes,
                combined_pushes: has_pushes && config.coop_cv,
            }
        })
        .collect();
    Ok(CompilationPlan {
        config,
        workgroup_size: config.workgroup_size(),
        outlined: config.oitergb,
        kernels,
    })
}

fn stmts_have(stmts: &[Stmt], pred: &dyn Fn(&Stmt) -> bool) -> bool {
    stmts.iter().any(|s| {
        pred(s)
            || match s {
                Stmt::If { then, els, .. } => stmts_have(then, pred) || stmts_have(els, pred),
                Stmt::ForEachEdge(body) => stmts_have(body, pred),
                _ => false,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use gpp_sim::opts::Optimization;

    #[test]
    fn baseline_plan_applies_nothing() {
        let p = programs::bfs_worklist();
        let plan = plan(&p, OptConfig::baseline()).unwrap();
        assert_eq!(plan.workgroup_size, 128);
        assert!(!plan.outlined);
        for k in &plan.kernels {
            assert!(k.schemes.is_empty());
            assert!(!k.combined_pushes);
        }
    }

    #[test]
    fn np_schemes_only_touch_irregular_kernels() {
        let p = programs::pr_pull();
        let cfg = OptConfig::from_opts([Optimization::Wg, Optimization::Sg, Optimization::Fg8]);
        let plan = plan(&p, cfg).unwrap();
        for (k, kp) in p.kernels.iter().zip(&plan.kernels) {
            if kp.irregular {
                assert_eq!(
                    kp.schemes,
                    vec![Scheme::Wg, Scheme::Sg, Scheme::Fg8],
                    "{}",
                    k.name
                );
            } else {
                assert!(kp.schemes.is_empty(), "{}", k.name);
            }
        }
        // pr-pull has both kinds of kernels.
        assert!(plan.kernels.iter().any(|k| k.irregular));
        assert!(plan.kernels.iter().any(|k| !k.irregular));
    }

    #[test]
    fn coop_cv_only_combines_pushing_kernels() {
        let wl = programs::bfs_worklist();
        let cfg = OptConfig::baseline().with(Optimization::CoopCv);
        let plan_wl = plan(&wl, cfg).unwrap();
        assert!(plan_wl.kernels.iter().any(|k| k.combined_pushes));
        let tp = programs::bfs_topology();
        let plan_tp = plan(&tp, cfg).unwrap();
        assert!(plan_tp.kernels.iter().all(|k| !k.combined_pushes));
    }

    #[test]
    fn oitergb_and_sz256_are_program_level() {
        let p = programs::sssp_bellman();
        let cfg = OptConfig::from_opts([Optimization::Oitergb, Optimization::Sz256]);
        let plan = plan(&p, cfg).unwrap();
        assert!(plan.outlined);
        assert_eq!(plan.workgroup_size, 256);
    }

    #[test]
    fn scheme_names_match_paper() {
        assert_eq!(Scheme::Wg.name(), "wg");
        assert_eq!(Scheme::Fg8.name(), "fg8");
    }
}

//! The DSL runtime: executes a validated program over a graph, computing
//! real field values while reporting every kernel launch — with per-node
//! edge-loop trip counts and worklist pushes — to an
//! [`gpp_sim::exec::Executor`] (a timing session or a trace
//! recorder).
//!
//! # Semantics
//!
//! Kernels are data-parallel but the interpreter processes nodes in id
//! order with stores visible immediately. DSL programs are expected to
//! use monotone updates (`atomic_min`/`atomic_add`) or explicit
//! iteration-counter guards for cross-thread communication, exactly as
//! race-tolerant GPU graph kernels do; under that discipline the result
//! is deterministic and order-independent.

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, KernelProfile, WorkItem};

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldInit, Kernel, Program, Ref, Stmt, UnaryOp, WorklistInit,
};
use crate::profile::derive_profile;
use crate::validate::{validate, IrglError};

/// The state left behind by a completed program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Final value of every field, indexed like `program.fields`.
    pub fields: Vec<Vec<f64>>,
    /// Final value of every global scalar.
    pub globals: Vec<f64>,
    /// Driver iterations executed.
    pub iterations: u32,
    /// Total kernel launches.
    pub kernels: u32,
}

impl Execution {
    /// The program's output field values.
    pub fn output(&self, program: &Program) -> &[f64] {
        &self.fields[program.output]
    }
}

/// Executes `program` on `graph`, reporting kernels to `exec`.
///
/// # Errors
///
/// Returns validation errors, or
/// [`IrglError::IterationBoundExceeded`] if a fixed-point driver fails to
/// converge within its bound.
pub fn execute(
    program: &Program,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    validate(program)?;
    let n = graph.num_nodes();
    let mut fields: Vec<Vec<f64>> = program
        .fields
        .iter()
        .map(|decl| init_field(decl.init, n))
        .collect();
    let profiles: Vec<KernelProfile> = program
        .kernels
        .iter()
        .map(|k| derive_profile(k, &k.name))
        .collect();
    let mut globals: Vec<f64> = program.globals.iter().map(|g| g.init).collect();
    let reset_globals = |globals: &mut Vec<f64>| {
        globals
            .iter_mut()
            .zip(&program.globals)
            .for_each(|(v, g)| *v = g.init)
    };

    let mut iterations = 0u32;
    let mut kernels = 0u32;
    match &program.driver {
        Driver::UntilFixpoint {
            kernels: seq,
            max_iters,
        } => loop {
            if iterations >= *max_iters {
                return Err(IrglError::IterationBoundExceeded {
                    program: program.name.clone(),
                    bound: *max_iters,
                });
            }
            reset_globals(&mut globals);
            let mut changed = false;
            for &k in seq {
                let kernel = &program.kernels[k];
                let mut state = KernelState::new(graph, &mut fields, &mut globals, iterations);
                run_all_nodes(kernel, &mut state);
                changed |= state.changed;
                exec.kernel(&profiles[k], &state.items);
                kernels += 1;
            }
            iterations += 1;
            if !changed {
                break;
            }
        },
        Driver::Fixed {
            kernels: seq,
            iters,
        } => {
            for iter in 0..*iters {
                reset_globals(&mut globals);
                for &k in seq {
                    let kernel = &program.kernels[k];
                    let mut state = KernelState::new(graph, &mut fields, &mut globals, iter);
                    run_all_nodes(kernel, &mut state);
                    exec.kernel(&profiles[k], &state.items);
                    kernels += 1;
                }
                iterations += 1;
            }
        }
        Driver::WorklistLoop {
            init,
            kernel,
            max_iters,
        } => {
            let mut worklist: Vec<NodeId> = match init {
                WorklistInit::Source => vec![0],
                WorklistInit::AllNodes => graph.nodes().collect(),
            };
            while !worklist.is_empty() {
                if iterations >= *max_iters {
                    return Err(IrglError::IterationBoundExceeded {
                        program: program.name.clone(),
                        bound: *max_iters,
                    });
                }
                reset_globals(&mut globals);
                let k = &program.kernels[*kernel];
                let mut state = KernelState::new(graph, &mut fields, &mut globals, iterations);
                state.in_next = vec![false; n];
                for &u in &worklist {
                    state.run_node(k, u);
                }
                exec.kernel(&profiles[*kernel], &state.items);
                kernels += 1;
                worklist = std::mem::take(&mut state.next_worklist);
                iterations += 1;
            }
        }
    }
    Ok(Execution {
        fields,
        globals,
        iterations,
        kernels,
    })
}

fn init_field(init: FieldInit, n: usize) -> Vec<f64> {
    match init {
        FieldInit::Const(c) => vec![c; n],
        FieldInit::NodeId => (0..n).map(|i| i as f64).collect(),
        FieldInit::Infinity => vec![f64::INFINITY; n],
        FieldInit::OneOverN => vec![1.0 / n as f64; n],
        FieldInit::SourceElse(c) => {
            let mut v = vec![c; n];
            if let Some(first) = v.first_mut() {
                *first = 0.0;
            }
            v
        }
    }
}

/// Per-launch interpreter state.
struct KernelState<'a> {
    graph: &'a Graph,
    fields: &'a mut Vec<Vec<f64>>,
    globals: &'a mut Vec<f64>,
    iter: u32,
    changed: bool,
    items: Vec<WorkItem>,
    next_worklist: Vec<NodeId>,
    in_next: Vec<bool>,
    locals: Vec<f64>,
}

/// The node/neighbour context of a statement.
#[derive(Clone, Copy)]
struct Edge {
    nbr: NodeId,
    weight: u32,
}

impl<'a> KernelState<'a> {
    fn new(
        graph: &'a Graph,
        fields: &'a mut Vec<Vec<f64>>,
        globals: &'a mut Vec<f64>,
        iter: u32,
    ) -> Self {
        KernelState {
            graph,
            fields,
            globals,
            iter,
            changed: false,
            items: Vec::new(),
            next_worklist: Vec::new(),
            in_next: Vec::new(),
            locals: Vec::new(),
        }
    }

    fn run_node(&mut self, kernel: &Kernel, u: NodeId) {
        self.locals.clear();
        self.locals.resize(kernel.locals, 0.0);
        let mut trips = 0u32;
        let mut pushes = 0u32;
        self.exec_stmts(&kernel.body, u, None, &mut trips, &mut pushes);
        self.items.push(WorkItem::new(trips, pushes));
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        u: NodeId,
        edge: Option<Edge>,
        trips: &mut u32,
        pushes: &mut u32,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Let(local, expr) => {
                    self.locals[*local] = self.eval(expr, u, edge);
                }
                Stmt::If { cond, then, els } => {
                    if self.eval(cond, u, edge) != 0.0 {
                        self.exec_stmts(then, u, edge, trips, pushes);
                    } else {
                        self.exec_stmts(els, u, edge, trips, pushes);
                    }
                }
                Stmt::Store {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge);
                    self.fields[*field][idx as usize] = v;
                }
                Stmt::AtomicMin {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge) as usize;
                    let slot = &mut self.fields[*field][idx];
                    if v < *slot {
                        *slot = v;
                    }
                }
                Stmt::AtomicAdd {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge) as usize;
                    self.fields[*field][idx] += v;
                }
                Stmt::ForEachEdge(body) => {
                    for (nbr, weight) in self.graph.out_edges(u) {
                        *trips += 1;
                        self.exec_stmts(body, u, Some(Edge { nbr, weight }), trips, pushes);
                    }
                }
                Stmt::Push(target) => {
                    let v = self.resolve(*target, u, edge);
                    if !self.in_next[v as usize] {
                        self.in_next[v as usize] = true;
                        self.next_worklist.push(v);
                        *pushes += 1;
                    }
                }
                Stmt::MarkChanged => {
                    self.changed = true;
                }
                Stmt::GlobalAdd(global, value) => {
                    let v = self.eval(value, u, edge);
                    self.globals[*global] += v;
                }
            }
        }
    }

    fn resolve(&self, r: Ref, u: NodeId, edge: Option<Edge>) -> NodeId {
        match r {
            Ref::Node => u,
            Ref::Nbr => edge.expect("validated: Nbr inside edge loop").nbr,
        }
    }

    fn eval(&self, expr: &Expr, u: NodeId, edge: Option<Edge>) -> f64 {
        match expr {
            Expr::Const(c) => *c,
            Expr::NodeId(r) => self.resolve(*r, u, edge) as f64,
            Expr::Degree(r) => self.graph.degree(self.resolve(*r, u, edge)) as f64,
            Expr::Field(field, r) => self.fields[*field][self.resolve(*r, u, edge) as usize],
            Expr::EdgeWeight => edge.expect("validated: EdgeWeight inside edge loop").weight as f64,
            Expr::Iter => self.iter as f64,
            Expr::NumNodes => self.graph.num_nodes() as f64,
            Expr::Local(local) => self.locals[*local],
            Expr::Global(global) => self.globals[*global],
            Expr::Unary(op, a) => {
                let a = self.eval(a, u, edge);
                match op {
                    UnaryOp::Not => f64::from(a == 0.0),
                    UnaryOp::Neg => -a,
                    UnaryOp::Floor => a.floor(),
                }
            }
            Expr::Binary(op, a, b) => {
                let (a, b) = (self.eval(a, u, edge), self.eval(b, u, edge));
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                    BinOp::Lt => f64::from(a < b),
                    BinOp::Le => f64::from(a <= b),
                    BinOp::Eq => f64::from(a == b),
                    BinOp::Ne => f64::from(a != b),
                    BinOp::And => f64::from(a != 0.0 && b != 0.0),
                    BinOp::Or => f64::from(a != 0.0 || b != 0.0),
                }
            }
            Expr::Hash(a, b) => {
                let (a, b) = (self.eval(a, u, edge), self.eval(b, u, edge));
                hash2(a as u64, b as u64) as f64
            }
        }
    }
}

fn run_all_nodes(kernel: &Kernel, state: &mut KernelState<'_>) {
    debug_assert_eq!(kernel.domain, Domain::AllNodes);
    for u in state.graph.nodes() {
        state.run_node(kernel, u);
    }
}

/// Deterministic 32-bit hash of two integers (SplitMix64 finaliser).
fn hash2(a: u64, b: u64) -> u32 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(31));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FieldDecl;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    /// level[v] = hop distance from node 0, via atomic-min relaxation.
    fn bfs_program() -> Program {
        Program {
            name: "bfs".into(),
            fields: vec![FieldDecl {
                name: "level".into(),
                init: FieldInit::SourceElse(f64::INFINITY),
            }],
            globals: vec![],
            kernels: vec![Kernel {
                name: "level_step".into(),
                domain: Domain::AllNodes,
                locals: 1,
                body: vec![Stmt::If {
                    cond: Expr::bin(BinOp::Eq, Expr::Field(0, Ref::Node), Expr::Iter),
                    then: vec![Stmt::ForEachEdge(vec![Stmt::If {
                        cond: Expr::bin(
                            BinOp::Lt,
                            Expr::bin(BinOp::Add, Expr::Iter, Expr::Const(1.0)),
                            Expr::Field(0, Ref::Nbr),
                        ),
                        then: vec![
                            Stmt::AtomicMin {
                                field: 0,
                                target: Ref::Nbr,
                                value: Expr::bin(BinOp::Add, Expr::Iter, Expr::Const(1.0)),
                            },
                            Stmt::MarkChanged,
                        ],
                        els: vec![],
                    }])],
                    els: vec![],
                }],
            }],
            driver: Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10_000,
            },
            output: 0,
        }
    }

    #[test]
    fn bfs_program_computes_reference_levels() {
        let g = generators::road_grid(9, 9, 2).unwrap();
        let mut rec = Recorder::new();
        let result = execute(&bfs_program(), &g, &mut rec).unwrap();
        let expect = gpp_graph::properties::bfs_levels(&g, 0);
        for (got, want) in result.output(&bfs_program()).iter().zip(&expect) {
            if *want == u32::MAX {
                assert!(got.is_infinite());
            } else {
                assert_eq!(*got, *want as f64);
            }
        }
        // One kernel per level plus the fixed-point check.
        assert_eq!(result.kernels as usize, rec.into_trace().num_kernels());
    }

    #[test]
    fn execution_reports_work_items() {
        let g = generators::star(20).unwrap();
        let mut rec = Recorder::new();
        execute(&bfs_program(), &g, &mut rec).unwrap();
        let trace = rec.into_trace();
        // First kernel: only the hub (node 0) is active, walking 19 edges.
        let first = trace.call(0);
        assert_eq!(first.items.len(), 20);
        assert_eq!(first.items[0].degree, 19);
        assert!(first.items[1..].iter().all(|i| i.degree == 0));
    }

    #[test]
    fn fixpoint_bound_is_enforced() {
        let mut p = bfs_program();
        if let Driver::UntilFixpoint { max_iters, .. } = &mut p.driver {
            *max_iters = 2;
        }
        let g = generators::path(30).unwrap();
        let mut rec = Recorder::new();
        let err = execute(&p, &g, &mut rec).unwrap_err();
        assert!(matches!(
            err,
            IrglError::IterationBoundExceeded { bound: 2, .. }
        ));
    }

    #[test]
    fn fixed_driver_runs_exact_iterations() {
        let mut p = bfs_program();
        p.driver = Driver::Fixed {
            kernels: vec![0],
            iters: 7,
        };
        let g = generators::cycle(8).unwrap();
        let mut rec = Recorder::new();
        let result = execute(&p, &g, &mut rec).unwrap();
        assert_eq!(result.iterations, 7);
        assert_eq!(result.kernels, 7);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = hash2(3, 7);
        assert_eq!(a, hash2(3, 7));
        assert_ne!(a, hash2(7, 3));
        let distinct: std::collections::HashSet<u32> = (0..1000u64).map(|i| hash2(i, 0)).collect();
        assert!(distinct.len() > 990);
    }
}

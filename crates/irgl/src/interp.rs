//! The DSL runtime: executes a validated program over a graph, computing
//! real field values while reporting every kernel launch — with per-node
//! edge-loop trip counts and worklist pushes — to an
//! [`gpp_sim::exec::Executor`] (a timing session or a trace
//! recorder).
//!
//! # Two executors, one semantics
//!
//! [`execute`] is the front door. By default it lowers the program to
//! flat bytecode once ([`crate::bytecode::CompiledProgram`]) and drives
//! it with the register VM ([`crate::bytecode::KernelVm`]) — the fast
//! path for cold-run trace collection. [`execute_ast`] is the original
//! recursive tree-walker, kept alive as the differential-testing oracle;
//! setting the `GPP_IRGL_AST=1` environment variable routes [`execute`]
//! through it for A/B timing. Both executors are bit-identical: same
//! [`Execution`], same kernel launches, same recorded
//! [`WorkItem`] streams.
//!
//! # Semantics
//!
//! Kernels are data-parallel but the interpreter processes nodes in id
//! order with stores visible immediately. DSL programs are expected to
//! use monotone updates (`atomic_min`/`atomic_add`) or explicit
//! iteration-counter guards for cross-thread communication, exactly as
//! race-tolerant GPU graph kernels do; under that discipline the result
//! is deterministic and order-independent.

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, KernelProfile, WorkItem};

use crate::ast::{
    BinOp, Domain, Driver, Expr, FieldInit, GlobalDecl, Kernel, Program, Ref, Stmt, UnaryOp,
    WorklistInit,
};
use crate::profile::derive_profile;
use crate::validate::{validate, IrglError};

/// The state left behind by a completed program execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Execution {
    /// Final value of every field, indexed like `program.fields`.
    pub fields: Vec<Vec<f64>>,
    /// Final value of every global scalar.
    pub globals: Vec<f64>,
    /// Driver iterations executed.
    pub iterations: u32,
    /// Total kernel launches.
    pub kernels: u32,
}

impl Execution {
    /// The program's output field values.
    pub fn output(&self, program: &Program) -> &[f64] {
        &self.fields[program.output]
    }
}

/// Whether the `GPP_IRGL_AST` environment variable requests the
/// tree-walking oracle instead of the default executor
/// (any value except `0` or empty selects the AST path).
pub fn ast_requested() -> bool {
    std::env::var_os("GPP_IRGL_AST").is_some_and(|v| !v.is_empty() && v != "0")
}

/// The three execution tiers of the DSL runtime, fastest last. All
/// three are bit-identical — same [`Execution`], same kernel launches,
/// same recorded [`WorkItem`] streams — which is what lets the slower
/// tiers serve as a two-level differential oracle for the native one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The recursive tree-walker ([`execute_ast`]): the reference
    /// semantics, re-dispatching the expression tree on every node.
    Ast,
    /// The register-machine bytecode VM
    /// ([`crate::bytecode::KernelVm`]): a flat op stream, one `match`
    /// per op.
    Bytecode,
    /// The closure-fused native tier ([`crate::native::NativeVm`]):
    /// statements fused into single calls, leaf operands inlined,
    /// constants folded at compile time. The default.
    Native,
}

impl Tier {
    /// Parses a tier name (`ast` | `bytecode` | `native`,
    /// case-insensitive).
    pub fn parse(s: &str) -> Option<Tier> {
        match s.trim().to_ascii_lowercase().as_str() {
            "ast" => Some(Tier::Ast),
            "bytecode" => Some(Tier::Bytecode),
            "native" => Some(Tier::Native),
            _ => None,
        }
    }

    /// The tier requested by the environment: `GPP_IRGL_TIER`
    /// (`ast` | `bytecode` | `native`) wins; the legacy `GPP_IRGL_AST=1`
    /// still selects [`Tier::Ast`]; otherwise — including an
    /// unrecognised `GPP_IRGL_TIER` value — the default is
    /// [`Tier::Native`].
    pub fn from_env() -> Tier {
        if let Some(v) = std::env::var_os("GPP_IRGL_TIER") {
            if let Some(tier) = v.to_str().and_then(Tier::parse) {
                return tier;
            }
        }
        if ast_requested() {
            Tier::Ast
        } else {
            Tier::Native
        }
    }

    /// The tier's canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Ast => "ast",
            Tier::Bytecode => "bytecode",
            Tier::Native => "native",
        }
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Executes `program` on `graph`, reporting kernels to `exec`.
///
/// Dispatches on [`Tier::from_env`]: by default the program is compiled
/// and run through the closure-fused native tier (see
/// [`crate::native`]); `GPP_IRGL_TIER=bytecode` selects the register VM
/// and `GPP_IRGL_TIER=ast` (or the legacy `GPP_IRGL_AST=1`) the
/// tree-walking oracle [`execute_ast`]. Results and recorded
/// [`WorkItem`] streams are bit-identical across all three. Callers
/// running the same program many times should compile once with
/// [`crate::bytecode::CompiledProgram::compile`] and reuse a
/// [`crate::native::NativeVm`] or [`crate::bytecode::KernelVm`].
///
/// # Errors
///
/// Returns validation errors, or
/// [`IrglError::IterationBoundExceeded`] if a fixed-point driver fails to
/// converge within its bound.
pub fn execute(
    program: &Program,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    execute_tier(Tier::from_env(), program, graph, exec)
}

/// [`execute`] with the tier chosen by the caller instead of the
/// environment.
///
/// # Errors
///
/// Returns validation errors, or
/// [`IrglError::IterationBoundExceeded`] if a fixed-point driver fails to
/// converge within its bound.
pub fn execute_tier(
    tier: Tier,
    program: &Program,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    match tier {
        Tier::Ast => execute_ast(program, graph, exec),
        Tier::Bytecode => {
            let compiled = crate::bytecode::CompiledProgram::compile(program)?;
            crate::bytecode::run_compiled(&compiled, graph, exec)
        }
        Tier::Native => {
            let compiled = crate::bytecode::CompiledProgram::compile(program)?;
            crate::native::run_native(&compiled, graph, exec)
        }
    }
}

/// [`execute`] via the recursive AST tree-walker — the differential
/// oracle for the bytecode executor.
///
/// # Errors
///
/// Returns validation errors, or
/// [`IrglError::IterationBoundExceeded`] if a fixed-point driver fails to
/// converge within its bound.
pub fn execute_ast(
    program: &Program,
    graph: &Graph,
    exec: &mut dyn Executor,
) -> Result<Execution, IrglError> {
    gpp_obs::metrics::counter("irgl.ast_runs", 1);
    validate(program)?;
    let n = graph.num_nodes();
    let fields: Vec<Vec<f64>> = program
        .fields
        .iter()
        .map(|decl| init_field(decl.init, n))
        .collect();
    let profiles: Vec<KernelProfile> = program
        .kernels
        .iter()
        .map(|k| derive_profile(k, &k.name))
        .collect();
    let globals: Vec<f64> = program.globals.iter().map(|g| g.init).collect();

    // One state for the whole run: the item vector, locals, worklist and
    // dedup bitmap are allocated once and reused across every launch and
    // driver iteration.
    let mut state = KernelState::new(graph, fields, globals);
    let mut iterations = 0u32;
    let mut kernels = 0u32;
    match &program.driver {
        Driver::UntilFixpoint {
            kernels: seq,
            max_iters,
        } => loop {
            if iterations >= *max_iters {
                return Err(IrglError::IterationBoundExceeded {
                    program: program.name.clone(),
                    bound: *max_iters,
                });
            }
            state.begin_iteration(&program.globals, iterations);
            for &k in seq {
                let kernel = &program.kernels[k];
                state.items.clear();
                run_all_nodes(kernel, &mut state);
                exec.kernel(&profiles[k], &state.items);
                kernels += 1;
            }
            iterations += 1;
            if !state.changed {
                break;
            }
        },
        Driver::Fixed {
            kernels: seq,
            iters,
        } => {
            for iter in 0..*iters {
                state.begin_iteration(&program.globals, iter);
                for &k in seq {
                    let kernel = &program.kernels[k];
                    state.items.clear();
                    run_all_nodes(kernel, &mut state);
                    exec.kernel(&profiles[k], &state.items);
                    kernels += 1;
                }
                iterations += 1;
            }
        }
        Driver::WorklistLoop {
            init,
            kernel,
            max_iters,
        } => {
            let mut worklist: Vec<NodeId> = seed_worklist(*init, graph);
            state.in_next.resize(n, false);
            while !worklist.is_empty() {
                if iterations >= *max_iters {
                    return Err(IrglError::IterationBoundExceeded {
                        program: program.name.clone(),
                        bound: *max_iters,
                    });
                }
                state.begin_iteration(&program.globals, iterations);
                let k = &program.kernels[*kernel];
                state.items.clear();
                for &u in &worklist {
                    state.run_node(k, u);
                }
                exec.kernel(&profiles[*kernel], &state.items);
                kernels += 1;
                // Swap in the pushed nodes and clear their dedup flags by
                // draining the new worklist — no `vec![false; n]` per
                // level; only the entries actually pushed are touched.
                std::mem::swap(&mut worklist, &mut state.next_worklist);
                state.next_worklist.clear();
                for &v in &worklist {
                    state.in_next[v as usize] = false;
                }
                iterations += 1;
            }
        }
    }
    Ok(Execution {
        fields: state.fields,
        globals: state.globals,
        iterations,
        kernels,
    })
}

/// The initial worklist of a [`Driver::WorklistLoop`]. An empty graph
/// has no source node to seed, so `Source` yields an empty worklist
/// instead of the out-of-bounds node 0.
pub(crate) fn seed_worklist(init: WorklistInit, graph: &Graph) -> Vec<NodeId> {
    match init {
        WorklistInit::Source if graph.num_nodes() == 0 => Vec::new(),
        WorklistInit::Source => vec![0],
        WorklistInit::AllNodes => graph.nodes().collect(),
    }
}

pub(crate) fn init_field(init: FieldInit, n: usize) -> Vec<f64> {
    match init {
        FieldInit::Const(c) => vec![c; n],
        FieldInit::NodeId => (0..n).map(|i| i as f64).collect(),
        FieldInit::Infinity => vec![f64::INFINITY; n],
        FieldInit::OneOverN => vec![1.0 / n as f64; n],
        FieldInit::SourceElse(c) => {
            let mut v = vec![c; n];
            if let Some(first) = v.first_mut() {
                *first = 0.0;
            }
            v
        }
    }
}

/// Applies a unary operator — shared by both executors so they cannot
/// drift.
pub(crate) fn apply_unary(op: UnaryOp, a: f64) -> f64 {
    match op {
        UnaryOp::Not => f64::from(a == 0.0),
        UnaryOp::Neg => -a,
        UnaryOp::Floor => a.floor(),
    }
}

/// Applies a binary operator — shared by both executors so they cannot
/// drift. `And`/`Or` are eager (both operands already evaluated), like
/// the generated OpenCL's branch-free select.
pub(crate) fn apply_binary(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        BinOp::Min => a.min(b),
        BinOp::Max => a.max(b),
        BinOp::Lt => f64::from(a < b),
        BinOp::Le => f64::from(a <= b),
        BinOp::Eq => f64::from(a == b),
        BinOp::Ne => f64::from(a != b),
        BinOp::And => f64::from(a != 0.0 && b != 0.0),
        BinOp::Or => f64::from(a != 0.0 || b != 0.0),
    }
}

/// Tree-walker state, persistent across all launches of one execution.
struct KernelState<'a> {
    graph: &'a Graph,
    fields: Vec<Vec<f64>>,
    globals: Vec<f64>,
    iter: u32,
    changed: bool,
    items: Vec<WorkItem>,
    next_worklist: Vec<NodeId>,
    in_next: Vec<bool>,
    locals: Vec<f64>,
}

/// The node/neighbour context of a statement.
#[derive(Clone, Copy)]
struct Edge {
    nbr: NodeId,
    weight: u32,
}

impl<'a> KernelState<'a> {
    fn new(graph: &'a Graph, fields: Vec<Vec<f64>>, globals: Vec<f64>) -> Self {
        KernelState {
            graph,
            fields,
            globals,
            iter: 0,
            changed: false,
            items: Vec::new(),
            next_worklist: Vec::new(),
            in_next: Vec::new(),
            locals: Vec::new(),
        }
    }

    /// Starts a driver iteration: stamps the iteration counter, lowers
    /// the fixed-point flag, and resets every global to its declared
    /// initial value.
    fn begin_iteration(&mut self, decls: &[GlobalDecl], iter: u32) {
        self.iter = iter;
        self.changed = false;
        self.globals
            .iter_mut()
            .zip(decls)
            .for_each(|(v, g)| *v = g.init);
    }

    fn run_node(&mut self, kernel: &Kernel, u: NodeId) {
        self.locals.clear();
        self.locals.resize(kernel.locals, 0.0);
        let mut trips = 0u32;
        let mut pushes = 0u32;
        self.exec_stmts(&kernel.body, u, None, &mut trips, &mut pushes);
        self.items.push(WorkItem::new(trips, pushes));
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        u: NodeId,
        edge: Option<Edge>,
        trips: &mut u32,
        pushes: &mut u32,
    ) {
        for stmt in stmts {
            match stmt {
                Stmt::Let(local, expr) => {
                    self.locals[*local] = self.eval(expr, u, edge);
                }
                Stmt::If { cond, then, els } => {
                    if self.eval(cond, u, edge) != 0.0 {
                        self.exec_stmts(then, u, edge, trips, pushes);
                    } else {
                        self.exec_stmts(els, u, edge, trips, pushes);
                    }
                }
                Stmt::Store {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge);
                    self.fields[*field][idx as usize] = v;
                }
                Stmt::AtomicMin {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge) as usize;
                    let slot = &mut self.fields[*field][idx];
                    if v < *slot {
                        *slot = v;
                    }
                }
                Stmt::AtomicAdd {
                    field,
                    target,
                    value,
                } => {
                    let v = self.eval(value, u, edge);
                    let idx = self.resolve(*target, u, edge) as usize;
                    self.fields[*field][idx] += v;
                }
                Stmt::ForEachEdge(body) => {
                    for (nbr, weight) in self.graph.out_edges(u) {
                        *trips += 1;
                        self.exec_stmts(body, u, Some(Edge { nbr, weight }), trips, pushes);
                    }
                }
                Stmt::Push(target) => {
                    let v = self.resolve(*target, u, edge);
                    if !self.in_next[v as usize] {
                        self.in_next[v as usize] = true;
                        self.next_worklist.push(v);
                        *pushes += 1;
                    }
                }
                Stmt::MarkChanged => {
                    self.changed = true;
                }
                Stmt::GlobalAdd(global, value) => {
                    let v = self.eval(value, u, edge);
                    self.globals[*global] += v;
                }
            }
        }
    }

    fn resolve(&self, r: Ref, u: NodeId, edge: Option<Edge>) -> NodeId {
        match r {
            Ref::Node => u,
            Ref::Nbr => edge.expect("validated: Nbr inside edge loop").nbr,
        }
    }

    fn eval(&self, expr: &Expr, u: NodeId, edge: Option<Edge>) -> f64 {
        match expr {
            Expr::Const(c) => *c,
            Expr::NodeId(r) => self.resolve(*r, u, edge) as f64,
            Expr::Degree(r) => self.graph.degree(self.resolve(*r, u, edge)) as f64,
            Expr::Field(field, r) => self.fields[*field][self.resolve(*r, u, edge) as usize],
            Expr::EdgeWeight => edge.expect("validated: EdgeWeight inside edge loop").weight as f64,
            Expr::Iter => self.iter as f64,
            Expr::NumNodes => self.graph.num_nodes() as f64,
            Expr::Local(local) => self.locals[*local],
            Expr::Global(global) => self.globals[*global],
            Expr::Unary(op, a) => apply_unary(*op, self.eval(a, u, edge)),
            Expr::Binary(op, a, b) => {
                apply_binary(*op, self.eval(a, u, edge), self.eval(b, u, edge))
            }
            Expr::Hash(a, b) => {
                let (a, b) = (self.eval(a, u, edge), self.eval(b, u, edge));
                hash2(a as u64, b as u64) as f64
            }
        }
    }
}

fn run_all_nodes(kernel: &Kernel, state: &mut KernelState<'_>) {
    debug_assert_eq!(kernel.domain, Domain::AllNodes);
    for u in state.graph.nodes() {
        state.run_node(kernel, u);
    }
}

/// Deterministic 32-bit hash of two integers (SplitMix64 finaliser).
pub(crate) fn hash2(a: u64, b: u64) -> u32 {
    let mut z = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(31));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::FieldDecl;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    /// level[v] = hop distance from node 0, via atomic-min relaxation.
    fn bfs_program() -> Program {
        Program {
            name: "bfs".into(),
            fields: vec![FieldDecl {
                name: "level".into(),
                init: FieldInit::SourceElse(f64::INFINITY),
            }],
            globals: vec![],
            kernels: vec![Kernel {
                name: "level_step".into(),
                domain: Domain::AllNodes,
                locals: 1,
                body: vec![Stmt::If {
                    cond: Expr::bin(BinOp::Eq, Expr::Field(0, Ref::Node), Expr::Iter),
                    then: vec![Stmt::ForEachEdge(vec![Stmt::If {
                        cond: Expr::bin(
                            BinOp::Lt,
                            Expr::bin(BinOp::Add, Expr::Iter, Expr::Const(1.0)),
                            Expr::Field(0, Ref::Nbr),
                        ),
                        then: vec![
                            Stmt::AtomicMin {
                                field: 0,
                                target: Ref::Nbr,
                                value: Expr::bin(BinOp::Add, Expr::Iter, Expr::Const(1.0)),
                            },
                            Stmt::MarkChanged,
                        ],
                        els: vec![],
                    }])],
                    els: vec![],
                }],
            }],
            driver: Driver::UntilFixpoint {
                kernels: vec![0],
                max_iters: 10_000,
            },
            output: 0,
        }
    }

    fn worklist_bfs() -> Program {
        crate::programs::bfs_worklist()
    }

    #[test]
    fn bfs_program_computes_reference_levels() {
        let g = generators::road_grid(9, 9, 2).unwrap();
        let mut rec = Recorder::new();
        let result = execute(&bfs_program(), &g, &mut rec).unwrap();
        let expect = gpp_graph::properties::bfs_levels(&g, 0);
        for (got, want) in result.output(&bfs_program()).iter().zip(&expect) {
            if *want == u32::MAX {
                assert!(got.is_infinite());
            } else {
                assert_eq!(*got, *want as f64);
            }
        }
        // One kernel per level plus the fixed-point check.
        assert_eq!(result.kernels as usize, rec.into_trace().num_kernels());
    }

    #[test]
    fn execution_reports_work_items() {
        let g = generators::star(20).unwrap();
        let mut rec = Recorder::new();
        execute(&bfs_program(), &g, &mut rec).unwrap();
        let trace = rec.into_trace();
        // First kernel: only the hub (node 0) is active, walking 19 edges.
        let first = trace.call(0);
        assert_eq!(first.items.len(), 20);
        assert_eq!(first.items[0].degree, 19);
        assert!(first.items[1..].iter().all(|i| i.degree == 0));
    }

    #[test]
    fn fixpoint_bound_is_enforced() {
        let mut p = bfs_program();
        if let Driver::UntilFixpoint { max_iters, .. } = &mut p.driver {
            *max_iters = 2;
        }
        let g = generators::path(30).unwrap();
        for run in [execute, execute_ast] {
            let mut rec = Recorder::new();
            let err = run(&p, &g, &mut rec).unwrap_err();
            assert!(matches!(
                err,
                IrglError::IterationBoundExceeded { bound: 2, .. }
            ));
        }
    }

    #[test]
    fn fixed_driver_runs_exact_iterations() {
        let mut p = bfs_program();
        p.driver = Driver::Fixed {
            kernels: vec![0],
            iters: 7,
        };
        let g = generators::cycle(8).unwrap();
        let mut rec = Recorder::new();
        let result = execute(&p, &g, &mut rec).unwrap();
        assert_eq!(result.iterations, 7);
        assert_eq!(result.kernels, 7);
    }

    #[test]
    fn ast_oracle_matches_bytecode_on_bfs() {
        let g = generators::road_grid(7, 9, 5).unwrap();
        for p in [bfs_program(), worklist_bfs()] {
            let mut rec_ast = Recorder::new();
            let ast = execute_ast(&p, &g, &mut rec_ast).unwrap();
            let mut rec_vm = Recorder::new();
            let compiled = crate::bytecode::CompiledProgram::compile(&p).unwrap();
            let vm = crate::bytecode::run_compiled(&compiled, &g, &mut rec_vm).unwrap();
            assert_eq!(ast, vm, "{}", p.name);
            assert_eq!(rec_ast.into_trace(), rec_vm.into_trace(), "{}", p.name);
        }
    }

    #[test]
    fn worklist_source_on_empty_graph_runs_zero_iterations() {
        // Regression: `Source` used to seed node 0 unconditionally and
        // index out of bounds on a zero-node graph.
        let g = gpp_graph::Graph::from_csr(vec![0], vec![], vec![], true).unwrap();
        for run in [execute, execute_ast] {
            let mut rec = Recorder::new();
            let result = run(&worklist_bfs(), &g, &mut rec).unwrap();
            assert_eq!(result.iterations, 0);
            assert_eq!(result.kernels, 0);
            assert!(result.output(&worklist_bfs()).is_empty());
            assert_eq!(rec.into_trace().num_kernels(), 0);
        }
    }

    #[test]
    fn worklist_source_on_single_node_graph_runs_one_round() {
        let g = generators::path(1).unwrap();
        let mut rec = Recorder::new();
        let result = execute(&worklist_bfs(), &g, &mut rec).unwrap();
        assert_eq!(result.iterations, 1);
        assert_eq!(result.output(&worklist_bfs()), &[0.0]);
    }

    #[test]
    fn hash_is_deterministic_and_spread() {
        let a = hash2(3, 7);
        assert_eq!(a, hash2(3, 7));
        assert_ne!(a, hash2(7, 3));
        let distinct: std::collections::HashSet<u32> = (0..1000u64).map(|i| hash2(i, 0)).collect();
        assert!(distinct.len() > 990);
    }
}

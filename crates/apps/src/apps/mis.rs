//! Maximal independent set: Luby-style random priorities and static
//! degree-based priorities.

use gpp_graph::rng::Rng64;
use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Undecided,
    In,
    Out,
}

/// Shared round structure: a selection kernel over undecided nodes, then
/// an update kernel over the newly selected ones (pushing exclusions).
fn mis_rounds<P>(
    graph: &Graph,
    exec: &mut dyn Executor,
    select_name: &'static str,
    update_name: &'static str,
    priority: P,
) -> Vec<bool>
where
    P: Fn(NodeId, u32) -> u64,
{
    let select_profile = kernels::priority_select(select_name);
    let update_profile = kernels::topology_scan(update_name);
    let n = graph.num_nodes();
    let mut state = vec![State::Undecided; n];
    let mut undecided: Vec<NodeId> = graph.nodes().collect();
    let mut round = 0u32;
    while !undecided.is_empty() {
        // Selection: an undecided node joins the set if its priority beats
        // every undecided neighbour's.
        let items: Vec<WorkItem> = undecided
            .iter()
            .map(|&u| WorkItem::new(graph.degree(u) as u32, 0))
            .collect();
        exec.kernel(&select_profile, &items);
        let mut selected = Vec::new();
        for &u in &undecided {
            let pu = priority(u, round);
            let wins = graph.neighbors(u).iter().all(|&v| {
                v == u
                    || state[v as usize] != State::Undecided
                    || pu > priority(v, round)
                    || (pu == priority(v, round) && u < v)
            });
            if wins {
                selected.push(u);
            }
        }
        // Update: selected nodes join, their neighbours drop out.
        let update_items: Vec<WorkItem> = selected
            .iter()
            .map(|&u| {
                let excl = graph
                    .neighbors(u)
                    .iter()
                    .filter(|&&v| v != u && state[v as usize] == State::Undecided)
                    .count() as u32;
                WorkItem::new(graph.degree(u) as u32, excl)
            })
            .collect();
        exec.kernel(&update_profile, &update_items);
        for &u in &selected {
            state[u as usize] = State::In;
            for &v in graph.neighbors(u) {
                if v != u && state[v as usize] == State::Undecided {
                    state[v as usize] = State::Out;
                }
            }
        }
        undecided.retain(|&u| state[u as usize] == State::Undecided);
        round += 1;
    }
    state.into_iter().map(|s| s == State::In).collect()
}

/// Luby's algorithm: fresh random priorities every round.
#[derive(Debug, Clone, Copy, Default)]
pub struct MisLuby;

impl Application for MisLuby {
    fn name(&self) -> &'static str {
        "mis-luby"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let in_set = mis_rounds(
            graph,
            exec,
            "mis_luby_select",
            "mis_luby_update",
            |u, round| {
                // Deterministic per-(node, round) hash, as a GPU kernel would
                // derive from the node id and iteration counter.
                Rng64::new(((round as u64) << 32) ^ u as u64).next_u64()
            },
        );
        AppOutput::Independent(in_set)
    }
}

/// Static degree-based priorities: low-degree nodes win (ties by id).
/// Deterministic across rounds, typically needing more rounds than Luby.
#[derive(Debug, Clone, Copy, Default)]
pub struct MisPrio;

impl Application for MisPrio {
    fn name(&self) -> &'static str {
        "mis-prio"
    }

    fn problem(&self) -> Problem {
        Problem::Mis
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let n = graph.num_nodes() as u64;
        let in_set = mis_rounds(
            graph,
            exec,
            "mis_prio_select",
            "mis_prio_update",
            move |u, _| {
                // Lower degree => higher priority; encode as a big score.
                let deg = graph.degree(u) as u64;
                (n - deg) * n + (n - 1 - u as u64)
            },
        );
        AppOutput::Independent(in_set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 2] = [&MisLuby, &MisPrio];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        }
    }

    #[test]
    fn valid_on_basic_shapes() {
        check_on(&generators::path(20).unwrap());
        check_on(&generators::cycle(9).unwrap());
        check_on(&generators::star(30).unwrap());
        check_on(&generators::complete(8).unwrap());
    }

    #[test]
    fn valid_on_study_inputs() {
        check_on(&generators::road_grid(9, 9, 2).unwrap());
        check_on(&generators::rmat(8, 5, 4).unwrap());
        check_on(&generators::uniform_random(300, 6.0, 6).unwrap());
    }

    #[test]
    fn valid_on_edgeless_graph() {
        let g = gpp_graph::GraphBuilder::new(4).build().unwrap();
        let mut rec = Recorder::new();
        match MisLuby.run(&g, &mut rec) {
            AppOutput::Independent(s) => assert!(s.iter().all(|&b| b)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn prio_on_star_picks_the_leaves() {
        // Leaves have degree 1, hub degree n-1: leaves all win round one.
        let g = generators::star(12).unwrap();
        let mut rec = Recorder::new();
        match MisPrio.run(&g, &mut rec) {
            AppOutput::Independent(s) => {
                assert!(!s[0]);
                assert!(s[1..].iter().all(|&b| b));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn complete_graph_selects_exactly_one() {
        for app in [&MisLuby as &dyn Application, &MisPrio] {
            let g = generators::complete(10).unwrap();
            let mut rec = Recorder::new();
            match app.run(&g, &mut rec) {
                AppOutput::Independent(s) => {
                    assert_eq!(s.iter().filter(|&&b| b).count(), 1, "{}", app.name());
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}

//! Triangle counting by sorted-adjacency intersection.

use gpp_graph::Graph;
use gpp_sim::exec::{Executor, KernelProfile, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

/// Node-iterator triangle counting: for each edge `(u, v)` with `u < v`,
/// intersect the sorted adjacency lists of `u` and `v`. The reported work
/// per node is the *actual* number of merge comparisons performed, so the
/// load profile is exactly as skewed as the input's degree distribution
/// squared.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tri;

impl Application for Tri {
    fn name(&self) -> &'static str {
        "tri"
    }

    fn problem(&self) -> Problem {
        Problem::Tri
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let prep_profile = kernels::sort_pass("tri_sort_adj");
        let count_profile = kernels::intersect("tri_intersect");

        // Adjacency normalisation pass (CSR is already sorted, but the
        // generated code streams the edge array once to build the
        // upper-triangle view).
        let prep_items: Vec<WorkItem> = graph
            .nodes()
            .map(|u| WorkItem::new(graph.degree(u) as u32, 0))
            .collect();
        exec.kernel(&prep_profile, &prep_items);

        let mut count = 0u64;
        let mut total_comparisons = 0u64;
        let mut outer_edges = Vec::with_capacity(graph.num_nodes());
        for u in graph.nodes() {
            let mut comparisons = 0u64;
            let mut upper = 0u32;
            for &v in graph.neighbors(u) {
                if v <= u {
                    continue;
                }
                upper += 1;
                // Two-pointer merge of the two sorted lists, counting
                // every comparison step.
                let (mut a, mut b) = (graph.neighbors(u), graph.neighbors(v));
                while let (Some(&x), Some(&y)) = (a.first(), b.first()) {
                    comparisons += 1;
                    match x.cmp(&y) {
                        std::cmp::Ordering::Less => a = &a[1..],
                        std::cmp::Ordering::Greater => b = &b[1..],
                        std::cmp::Ordering::Equal => {
                            if x > v {
                                count += 1;
                            }
                            a = &a[1..];
                            b = &b[1..];
                        }
                    }
                }
            }
            total_comparisons += comparisons;
            outer_edges.push(upper);
        }
        // The compiler's load balancing redistributes the *outer* edge
        // loop, so a work item's trip count is the node's upper-triangle
        // degree; the average intersection length is folded into the
        // per-edge operation counts.
        let total_outer: u64 = outer_edges.iter().map(|&e| e as u64).sum();
        let avg_comparisons = if total_outer > 0 {
            total_comparisons as f64 / total_outer as f64
        } else {
            0.0
        };
        let profile = KernelProfile {
            alu_per_edge: count_profile.alu_per_edge * avg_comparisons,
            reads_per_edge: count_profile.reads_per_edge * avg_comparisons,
            writes_per_edge: count_profile.writes_per_edge * avg_comparisons,
            atomics_per_edge: count_profile.atomics_per_edge * avg_comparisons,
            ..count_profile
        };
        let items: Vec<WorkItem> = outer_edges
            .into_iter()
            .map(|e| WorkItem::new(e, 0))
            .collect();
        exec.kernel(&profile, &items);
        AppOutput::TriangleCount(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn count_of(graph: &Graph) -> u64 {
        let mut rec = Recorder::new();
        match Tri.run(graph, &mut rec) {
            AppOutput::TriangleCount(n) => n,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exact_small_shapes() {
        assert_eq!(count_of(&generators::complete(4).unwrap()), 4);
        assert_eq!(count_of(&generators::complete(6).unwrap()), 20);
        assert_eq!(count_of(&generators::cycle(5).unwrap()), 0);
        assert_eq!(count_of(&generators::star(9).unwrap()), 0);
        assert_eq!(count_of(&generators::cycle(3).unwrap()), 1);
    }

    #[test]
    fn matches_reference_on_study_inputs() {
        for g in [
            generators::road_grid(8, 8, 4).unwrap(),
            generators::rmat(8, 6, 6).unwrap(),
            generators::uniform_random(200, 8.0, 2).unwrap(),
        ] {
            let mut rec = Recorder::new();
            let out = Tri.run(&g, &mut rec);
            validate(&g, &out).unwrap();
        }
    }

    #[test]
    fn runs_exactly_two_kernels() {
        let g = generators::rmat(6, 4, 1).unwrap();
        let mut rec = Recorder::new();
        Tri.run(&g, &mut rec);
        assert_eq!(rec.into_trace().num_kernels(), 2);
    }

    #[test]
    fn work_profile_is_skewed_on_social_graphs() {
        let g = generators::rmat(9, 8, 3).unwrap();
        let mut rec = Recorder::new();
        Tri.run(&g, &mut rec);
        let trace = rec.into_trace();
        let items = trace.call(1).items;
        let max = items.iter().map(|i| i.degree as u64).max().unwrap();
        let mean = items.iter().map(|i| i.degree as u64).sum::<u64>() / items.len() as u64;
        assert!(max > 10 * mean.max(1), "max {max} mean {mean}");
    }
}

//! Minimum spanning forest: Borůvka contraction and a sorted
//! (Kruskal-style) filter variant.

use gpp_graph::properties::UnionFind;
use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

/// Ties are broken lexicographically on `(weight, u, v)` so every variant
/// agrees on the forest weight regardless of scan order.
fn edge_key(w: u32, u: NodeId, v: NodeId) -> (u32, NodeId, NodeId) {
    if u < v {
        (w, u, v)
    } else {
        (w, v, u)
    }
}

/// Borůvka: rounds of per-component minimum-edge scans followed by
/// hooking; the number of components at least halves each round.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstBor;

impl Application for MstBor {
    fn name(&self) -> &'static str {
        "mst-bor"
    }

    fn problem(&self) -> Problem {
        Problem::Mst
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let scan_profile = kernels::min_edge_scan("mst_bor_minedge");
        let hook_profile = kernels::pointer_jump("mst_bor_hook");
        let n = graph.num_nodes();
        let mut uf = UnionFind::new(n);
        let mut total = 0u64;
        loop {
            // Minimum-edge scan: every node walks its edges, atomically
            // proposing the lightest outgoing edge of its component.
            let items: Vec<WorkItem> = graph
                .nodes()
                .map(|u| WorkItem::new(graph.degree(u) as u32, 0))
                .collect();
            exec.kernel(&scan_profile, &items);

            let mut best: Vec<Option<(u32, NodeId, NodeId)>> = vec![None; n];
            for u in graph.nodes() {
                let ru = uf.find(u as usize);
                for (v, w) in graph.out_edges(u) {
                    if uf.find(v as usize) == ru {
                        continue;
                    }
                    let key = edge_key(w, u, v);
                    if best[ru].is_none_or(|b| key < b) {
                        best[ru] = Some(key);
                    }
                }
            }

            // Hook kernel: one work item per component root; a push per
            // successful merge.
            let proposals: Vec<(usize, (u32, NodeId, NodeId))> = best
                .iter()
                .enumerate()
                .filter_map(|(root, b)| b.map(|key| (root, key)))
                .collect();
            let hook_items: Vec<WorkItem> = proposals.iter().map(|_| WorkItem::new(1, 1)).collect();
            exec.kernel(&hook_profile, &hook_items);

            let mut merged = false;
            for &(_, (w, u, v)) in &proposals {
                if uf.union(u as usize, v as usize) {
                    total += w as u64;
                    merged = true;
                }
            }
            if !merged {
                break;
            }
        }
        AppOutput::MstWeight(total)
    }
}

/// Kruskal-style filter: a modelled device sort of the edge list (a fixed
/// number of data-parallel passes) followed by ascending filter kernels
/// that admit forest edges chunk by chunk.
#[derive(Debug, Clone, Copy, Default)]
pub struct MstKs;

/// Edges admitted per filter kernel.
const CHUNK: usize = 4_096;
/// Modelled passes of the device sample sort.
const SORT_PASSES: usize = 8;

impl Application for MstKs {
    fn name(&self) -> &'static str {
        "mst-ks"
    }

    fn problem(&self) -> Problem {
        Problem::Mst
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let sort_profile = kernels::sort_pass("mst_ks_sort");
        let filter_profile = kernels::filter("mst_ks_filter");
        // Collect each undirected edge once.
        let mut edges: Vec<(u32, NodeId, NodeId)> = Vec::new();
        for u in graph.nodes() {
            for (v, w) in graph.out_edges(u) {
                if u < v || graph.is_directed() {
                    edges.push(edge_key(w, u, v));
                }
            }
        }
        // Device sort: each pass streams the whole record array.
        let sort_items: Vec<WorkItem> = edges.iter().map(|_| WorkItem::new(0, 0)).collect();
        for _ in 0..SORT_PASSES {
            exec.kernel(&sort_profile, &sort_items);
        }
        edges.sort_unstable();

        let mut uf = UnionFind::new(graph.num_nodes());
        let mut total = 0u64;
        for chunk in edges.chunks(CHUNK.max(1)) {
            let items: Vec<WorkItem> = chunk
                .iter()
                .map(|&(w, u, v)| {
                    if uf.union(u as usize, v as usize) {
                        total += w as u64;
                        WorkItem::new(0, 1)
                    } else {
                        WorkItem::new(0, 0)
                    }
                })
                .collect();
            exec.kernel(&filter_profile, &items);
        }
        AppOutput::MstWeight(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 2] = [&MstBor, &MstKs];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        }
    }

    #[test]
    fn correct_on_weighted_inputs() {
        check_on(&generators::road_grid(9, 9, 7).unwrap());
        check_on(&generators::rmat(8, 5, 3).unwrap());
        check_on(&generators::uniform_random(200, 5.0, 8).unwrap());
    }

    #[test]
    fn correct_on_unweighted_graph() {
        check_on(&generators::cycle(12).unwrap());
    }

    #[test]
    fn correct_on_forest_input() {
        let g = gpp_graph::GraphBuilder::new(6)
            .undirected()
            .weighted_edge(0, 1, 4)
            .weighted_edge(2, 3, 9)
            .build()
            .unwrap();
        check_on(&g);
    }

    #[test]
    fn correct_on_edgeless_graph() {
        let g = gpp_graph::GraphBuilder::new(3).build().unwrap();
        for app in [&MstBor as &dyn Application, &MstKs] {
            let mut rec = Recorder::new();
            match app.run(&g, &mut rec) {
                AppOutput::MstWeight(w) => assert_eq!(w, 0, "{}", app.name()),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn boruvka_rounds_are_logarithmic() {
        let g = generators::path(128).unwrap();
        let mut rec = Recorder::new();
        MstBor.run(&g, &mut rec);
        // Two kernels per round, components at least halve: <= ~2*log2(128)+2.
        assert!(rec.into_trace().num_kernels() <= 18);
    }

    #[test]
    fn kruskal_variant_always_pays_the_sort() {
        let g = generators::path(4).unwrap();
        let mut rec = Recorder::new();
        MstKs.run(&g, &mut rec);
        assert!(rec.into_trace().num_kernels() > SORT_PASSES);
    }
}

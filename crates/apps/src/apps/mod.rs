//! The 17 applications of the study, grouped by problem (paper Table VII).

pub mod bfs;
pub mod cc;
pub mod mis;
pub mod mst;
pub mod pr;
pub mod sssp;
pub mod tri;

use crate::app::Application;

/// All 17 applications, grouped by problem in Table VII order:
/// BFS ×5, CC ×2, MIS ×2, MST ×2, PR ×3, SSSP ×2, TRI ×1.
pub fn all_applications() -> Vec<Box<dyn Application>> {
    vec![
        Box::new(bfs::BfsTp),
        Box::new(bfs::BfsWl),
        Box::new(bfs::BfsAtm),
        Box::new(bfs::BfsHyb),
        Box::new(bfs::BfsDd),
        Box::new(cc::CcLp),
        Box::new(cc::CcSv),
        Box::new(mis::MisLuby),
        Box::new(mis::MisPrio),
        Box::new(mst::MstBor),
        Box::new(mst::MstKs),
        Box::new(pr::PrPull),
        Box::new(pr::PrPush),
        Box::new(pr::PrWl),
        Box::new(sssp::SsspBf),
        Box::new(sssp::SsspWl),
        Box::new(tri::Tri),
    ]
}

/// Looks up an application by name.
pub fn application(name: &str) -> Option<Box<dyn Application>> {
    all_applications().into_iter().find(|a| a.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::Problem;
    use std::collections::HashMap;

    #[test]
    fn seventeen_applications() {
        assert_eq!(all_applications().len(), 17);
    }

    #[test]
    fn names_are_unique() {
        let apps = all_applications();
        let mut names: Vec<&str> = apps.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 17);
    }

    #[test]
    fn problem_variant_counts_match_table_vii() {
        let mut counts: HashMap<Problem, usize> = HashMap::new();
        for app in all_applications() {
            *counts.entry(app.problem()).or_default() += 1;
        }
        assert_eq!(counts[&Problem::Bfs], 5);
        assert_eq!(counts[&Problem::Cc], 2);
        assert_eq!(counts[&Problem::Mis], 2);
        assert_eq!(counts[&Problem::Mst], 2);
        assert_eq!(counts[&Problem::Pr], 3);
        assert_eq!(counts[&Problem::Sssp], 2);
        assert_eq!(counts[&Problem::Tri], 1);
    }

    #[test]
    fn each_problem_has_exactly_one_fastest_variant() {
        let mut fastest: HashMap<Problem, usize> = HashMap::new();
        for app in all_applications() {
            if app.fastest_variant() {
                *fastest.entry(app.problem()).or_default() += 1;
            }
        }
        for problem in Problem::ALL {
            assert_eq!(fastest.get(&problem), Some(&1), "{problem}");
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(application("bfs-wl").is_some());
        assert!(application("pr-wl").is_some());
        assert!(application("nonesuch").is_none());
    }
}

//! Single-source shortest paths from node 0: two implementation
//! strategies. (The priority-worklist SSSP of the IrGL suite is excluded,
//! as in the paper, for its CUDA-only support library.)

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

/// Topology-driven Bellman-Ford: every iteration scans all nodes; nodes
/// whose distance changed in the previous iteration relax their edges.
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspBf;

impl Application for SsspBf {
    fn name(&self) -> &'static str {
        "sssp-bf"
    }

    fn problem(&self) -> Problem {
        Problem::Sssp
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::relax("sssp_bf_relax");
        let n = graph.num_nodes();
        let mut dist = vec![u64::MAX; n];
        dist[0] = 0;
        let mut changed = vec![false; n];
        changed[0] = true;
        let mut next_changed = vec![false; n];
        let mut items: Vec<WorkItem> = Vec::with_capacity(n);
        let mut snapshot: Vec<u64> = Vec::new();
        loop {
            items.clear();
            items.extend(graph.nodes().map(|u| {
                WorkItem::new(
                    if changed[u as usize] {
                        graph.degree(u) as u32
                    } else {
                        0
                    },
                    0,
                )
            }));
            exec.kernel(&profile, &items);
            // Level-synchronous: relax against the distances of the
            // previous iteration, as the GPU kernel would.
            snapshot.clone_from(&dist);
            next_changed.fill(false);
            let mut any = false;
            for u in graph.nodes() {
                if !changed[u as usize] {
                    continue;
                }
                let du = snapshot[u as usize];
                for (v, w) in graph.out_edges(u) {
                    let nd = du + w as u64;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        next_changed[v as usize] = true;
                        any = true;
                    }
                }
            }
            if !any {
                break;
            }
            std::mem::swap(&mut changed, &mut next_changed);
        }
        AppOutput::Distances(dist)
    }
}

/// Worklist SSSP: only nodes whose distance improved are queued for the
/// next relaxation round (deduplicated per round).
#[derive(Debug, Clone, Copy, Default)]
pub struct SsspWl;

impl Application for SsspWl {
    fn name(&self) -> &'static str {
        "sssp-wl"
    }

    fn problem(&self) -> Problem {
        Problem::Sssp
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::relax("sssp_wl_relax");
        let n = graph.num_nodes();
        let mut dist = vec![u64::MAX; n];
        dist[0] = 0;
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next: Vec<NodeId> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut in_next = vec![false; n];
        while !frontier.is_empty() {
            items.clear();
            items.reserve(frontier.len());
            next.clear();
            for &u in &frontier {
                let du = dist[u as usize];
                let mut pushes = 0u32;
                for (v, w) in graph.out_edges(u) {
                    let nd = du + w as u64;
                    if nd < dist[v as usize] {
                        dist[v as usize] = nd;
                        if !in_next[v as usize] {
                            in_next[v as usize] = true;
                            next.push(v);
                            pushes += 1;
                        }
                    }
                }
                items.push(WorkItem::new(graph.degree(u) as u32, pushes));
            }
            exec.kernel(&profile, &items);
            for &v in &next {
                in_next[v as usize] = false;
            }
            std::mem::swap(&mut frontier, &mut next);
        }
        AppOutput::Distances(dist)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 2] = [&SsspBf, &SsspWl];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
        }
    }

    #[test]
    fn correct_on_weighted_road() {
        check_on(&generators::road_grid(10, 10, 5).unwrap());
    }

    #[test]
    fn correct_on_weighted_social() {
        check_on(&generators::rmat(8, 6, 2).unwrap());
    }

    #[test]
    fn correct_on_unweighted_path() {
        check_on(&generators::path(15).unwrap());
    }

    #[test]
    fn correct_on_disconnected() {
        let g = gpp_graph::GraphBuilder::new(5)
            .undirected()
            .weighted_edge(0, 1, 3)
            .weighted_edge(3, 4, 2)
            .build()
            .unwrap();
        check_on(&g);
    }

    #[test]
    fn takes_the_light_detour() {
        // Heavy direct edge vs light two-hop path.
        let g = gpp_graph::GraphBuilder::new(3)
            .undirected()
            .weighted_edge(0, 1, 100)
            .weighted_edge(0, 2, 1)
            .weighted_edge(2, 1, 1)
            .build()
            .unwrap();
        for app in [&SsspBf as &dyn Application, &SsspWl] {
            let mut rec = Recorder::new();
            match app.run(&g, &mut rec) {
                AppOutput::Distances(d) => assert_eq!(d, vec![0, 2, 1], "{}", app.name()),
                other => panic!("unexpected output {other:?}"),
            }
        }
    }

    #[test]
    fn worklist_variant_visits_fewer_items_on_road() {
        let g = generators::road_grid(14, 14, 1).unwrap();
        let mut rec_bf = Recorder::new();
        SsspBf.run(&g, &mut rec_bf);
        let mut rec_wl = Recorder::new();
        SsspWl.run(&g, &mut rec_wl);
        assert!(rec_wl.into_trace().num_items() < rec_bf.into_trace().num_items());
    }
}

//! Breadth-first search: five implementation strategies from node 0.
//!
//! The variants differ in how they track the frontier — the axis along
//! which the IrGL suite's BFS implementations differ — and therefore in
//! how many kernels they launch, how much stale work they do, and how many
//! worklist pushes they perform:
//!
//! - [`BfsTp`] — topology-driven: every node is scanned every level;
//! - [`BfsWl`] — worklist with visited-CAS dedup (the fastest variant);
//! - [`BfsAtm`] — duplicate-tolerant worklist, no per-edge CAS;
//! - [`BfsHyb`] — hybrid: switches between topology and worklist kernels
//!   by frontier density;
//! - [`BfsDd`] — two-phase: duplicate-tolerant expansion plus an explicit
//!   filter kernel per level.

use gpp_graph::{Graph, NodeId};
use gpp_sim::exec::{Executor, WorkItem};

use crate::app::{AppOutput, Application, Problem};
use crate::kernels;

/// Level not yet assigned.
const UNSET: u32 = u32::MAX;

/// Topology-driven level-synchronous BFS: each level launches one kernel
/// over *all* nodes; only nodes on the current level expand.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsTp;

impl Application for BfsTp {
    fn name(&self) -> &'static str {
        "bfs-tp"
    }

    fn problem(&self) -> Problem {
        Problem::Bfs
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::topology_scan("bfs_tp_level");
        let n = graph.num_nodes();
        let mut levels = vec![UNSET; n];
        levels[0] = 0;
        let mut current = 0u32;
        // One item buffer for the whole run: the executor copies what it
        // needs out of the borrowed slice, so each level reuses the
        // allocation instead of collecting a fresh vector.
        let mut items: Vec<WorkItem> = Vec::with_capacity(n);
        loop {
            items.clear();
            items.extend(graph.nodes().map(|u| {
                let active = levels[u as usize] == current;
                WorkItem::new(if active { graph.degree(u) as u32 } else { 0 }, 0)
            }));
            exec.kernel(&profile, &items);
            let mut changed = false;
            for u in graph.nodes() {
                if levels[u as usize] == current {
                    for &v in graph.neighbors(u) {
                        if levels[v as usize] == UNSET {
                            levels[v as usize] = current + 1;
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
            current += 1;
        }
        AppOutput::Levels(levels)
    }
}

/// Worklist BFS with visited-check dedup: the classic push-based variant
/// and the fastest strategy of the suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsWl;

impl Application for BfsWl {
    fn name(&self) -> &'static str {
        "bfs-wl"
    }

    fn problem(&self) -> Problem {
        Problem::Bfs
    }

    fn fastest_variant(&self) -> bool {
        true
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::frontier_push("bfs_wl_expand");
        let n = graph.num_nodes();
        let mut levels = vec![UNSET; n];
        levels[0] = 0;
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next: Vec<NodeId> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut level = 0u32;
        // Double-buffered frontier and a reused item vector: no per-level
        // allocations once the buffers reach their high-water mark.
        while !frontier.is_empty() {
            items.clear();
            items.reserve(frontier.len());
            next.clear();
            for &u in &frontier {
                let mut pushes = 0u32;
                for &v in graph.neighbors(u) {
                    if levels[v as usize] == UNSET {
                        levels[v as usize] = level + 1;
                        next.push(v);
                        pushes += 1;
                    }
                }
                items.push(WorkItem::new(graph.degree(u) as u32, pushes));
            }
            exec.kernel(&profile, &items);
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        AppOutput::Levels(levels)
    }
}

/// Duplicate-tolerant worklist BFS: no per-edge CAS, so a node discovered
/// by several parents in the same level enters the worklist several times
/// and all but the first pop are stale.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsAtm;

impl Application for BfsAtm {
    fn name(&self) -> &'static str {
        "bfs-atm"
    }

    fn problem(&self) -> Problem {
        Problem::Bfs
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let profile = kernels::frontier_nodedup("bfs_atm_expand");
        let n = graph.num_nodes();
        let mut levels = vec![UNSET; n];
        levels[0] = 0;
        let mut expanded = vec![false; n];
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next: Vec<NodeId> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut snapshot: Vec<u32> = Vec::new();
        let mut level = 0u32;
        while !frontier.is_empty() {
            // Snapshot: all threads of a level see the same "visited" state.
            // Reuses the snapshot buffer via clone_from instead of cloning a
            // fresh vector each level.
            snapshot.clone_from(&levels);
            items.clear();
            items.reserve(frontier.len());
            next.clear();
            for &u in &frontier {
                if expanded[u as usize] {
                    // Stale duplicate: pays node overhead, expands nothing.
                    items.push(WorkItem::new(0, 0));
                    continue;
                }
                expanded[u as usize] = true;
                let mut pushes = 0u32;
                for &v in graph.neighbors(u) {
                    if snapshot[v as usize] == UNSET {
                        levels[v as usize] = level + 1;
                        next.push(v);
                        pushes += 1;
                    }
                }
                items.push(WorkItem::new(graph.degree(u) as u32, pushes));
            }
            exec.kernel(&profile, &items);
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        AppOutput::Levels(levels)
    }
}

/// Hybrid BFS: a worklist kernel for sparse frontiers, a topology-driven
/// kernel once the frontier is dense (more than 1/20 of the nodes).
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsHyb;

impl Application for BfsHyb {
    fn name(&self) -> &'static str {
        "bfs-hyb"
    }

    fn problem(&self) -> Problem {
        Problem::Bfs
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let wl_profile = kernels::frontier_push("bfs_hyb_wl");
        let tp_profile = kernels::topology_scan("bfs_hyb_tp");
        let n = graph.num_nodes();
        let mut levels = vec![UNSET; n];
        levels[0] = 0;
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next: Vec<NodeId> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut in_frontier = vec![false; n];
        let mut level = 0u32;
        while !frontier.is_empty() {
            let dense = frontier.len() > n / 20;
            items.clear();
            next.clear();
            if dense {
                for &u in &frontier {
                    in_frontier[u as usize] = true;
                }
                items.extend(graph.nodes().map(|u| {
                    WorkItem::new(
                        if in_frontier[u as usize] {
                            graph.degree(u) as u32
                        } else {
                            0
                        },
                        0,
                    )
                }));
                exec.kernel(&tp_profile, &items);
                for &u in &frontier {
                    in_frontier[u as usize] = false;
                    for &v in graph.neighbors(u) {
                        if levels[v as usize] == UNSET {
                            levels[v as usize] = level + 1;
                            next.push(v);
                        }
                    }
                }
            } else {
                items.reserve(frontier.len());
                for &u in &frontier {
                    let mut pushes = 0u32;
                    for &v in graph.neighbors(u) {
                        if levels[v as usize] == UNSET {
                            levels[v as usize] = level + 1;
                            next.push(v);
                            pushes += 1;
                        }
                    }
                    items.push(WorkItem::new(graph.degree(u) as u32, pushes));
                }
                exec.kernel(&wl_profile, &items);
            }
            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        AppOutput::Levels(levels)
    }
}

/// Two-phase BFS: duplicate-tolerant expansion followed by an explicit
/// filter kernel per level that compacts the raw worklist. Twice the
/// kernel launches of the other worklist variants.
#[derive(Debug, Clone, Copy, Default)]
pub struct BfsDd;

impl Application for BfsDd {
    fn name(&self) -> &'static str {
        "bfs-dd"
    }

    fn problem(&self) -> Problem {
        Problem::Bfs
    }

    fn run(&self, graph: &Graph, exec: &mut dyn Executor) -> AppOutput {
        let expand_profile = kernels::frontier_nodedup("bfs_dd_expand");
        let filter_profile = kernels::filter("bfs_dd_filter");
        let n = graph.num_nodes();
        let mut levels = vec![UNSET; n];
        levels[0] = 0;
        let mut frontier: Vec<NodeId> = vec![0];
        let mut next: Vec<NodeId> = Vec::new();
        let mut items: Vec<WorkItem> = Vec::new();
        let mut raw: Vec<NodeId> = Vec::new();
        let mut snapshot: Vec<u32> = Vec::new();
        let mut seen = vec![false; n];
        let mut level = 0u32;
        while !frontier.is_empty() {
            // Phase 1: expand, admitting duplicates into the raw list.
            snapshot.clone_from(&levels);
            items.clear();
            items.reserve(frontier.len());
            raw.clear();
            for &u in &frontier {
                let mut pushes = 0u32;
                for &v in graph.neighbors(u) {
                    if snapshot[v as usize] == UNSET {
                        levels[v as usize] = level + 1;
                        raw.push(v);
                        pushes += 1;
                    }
                }
                items.push(WorkItem::new(graph.degree(u) as u32, pushes));
            }
            exec.kernel(&expand_profile, &items);

            // Phase 2: filter the raw list down to unique nodes. The item
            // buffer is reused for the filter kernel too; `seen` is reset
            // lazily from `next` after the pass instead of reallocated.
            next.clear();
            items.clear();
            items.reserve(raw.len());
            for &v in &raw {
                items.push(if seen[v as usize] {
                    WorkItem::new(0, 0)
                } else {
                    seen[v as usize] = true;
                    next.push(v);
                    WorkItem::new(0, 1)
                });
            }
            exec.kernel(&filter_profile, &items);
            for &v in &next {
                seen[v as usize] = false;
            }

            std::mem::swap(&mut frontier, &mut next);
            level += 1;
        }
        AppOutput::Levels(levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::validate;
    use gpp_graph::generators;
    use gpp_sim::trace::Recorder;

    fn check_on(graph: &Graph) {
        let apps: [&dyn Application; 5] = [&BfsTp, &BfsWl, &BfsAtm, &BfsHyb, &BfsDd];
        for app in apps {
            let mut rec = Recorder::new();
            let out = app.run(graph, &mut rec);
            validate(graph, &out).unwrap_or_else(|e| panic!("{}: {e}", app.name()));
            assert!(rec.into_trace().num_kernels() > 0, "{}", app.name());
        }
    }

    #[test]
    fn correct_on_path() {
        check_on(&generators::path(20).unwrap());
    }

    #[test]
    fn correct_on_star() {
        check_on(&generators::star(50).unwrap());
    }

    #[test]
    fn correct_on_road() {
        check_on(&generators::road_grid(12, 12, 3).unwrap());
    }

    #[test]
    fn correct_on_social() {
        check_on(&generators::rmat(8, 6, 9).unwrap());
    }

    #[test]
    fn correct_on_disconnected() {
        let g = gpp_graph::GraphBuilder::new(6)
            .undirected()
            .edge(0, 1)
            .edge(1, 2)
            .edge(4, 5)
            .build()
            .unwrap();
        check_on(&g);
    }

    #[test]
    fn correct_on_single_node() {
        check_on(&generators::path(1).unwrap());
    }

    #[test]
    fn tp_launches_one_kernel_per_level() {
        let g = generators::path(10).unwrap();
        let mut rec = Recorder::new();
        BfsTp.run(&g, &mut rec);
        // 9 productive levels plus the fixed-point check.
        assert_eq!(rec.into_trace().num_kernels(), 10);
    }

    #[test]
    fn dd_launches_two_kernels_per_level() {
        let g = generators::path(10).unwrap();
        let mut rec_wl = Recorder::new();
        BfsWl.run(&g, &mut rec_wl);
        let wl_kernels = rec_wl.into_trace().num_kernels();
        let mut rec_dd = Recorder::new();
        BfsDd.run(&g, &mut rec_dd);
        assert_eq!(rec_dd.into_trace().num_kernels(), 2 * wl_kernels);
    }

    #[test]
    fn atm_admits_duplicates() {
        // A 4-cycle: node 2 is discovered by both 1 and 3 in the same
        // level, so the duplicate-tolerant variant records 2 extra pushes.
        let g = generators::cycle(4).unwrap();
        let mut rec_wl = Recorder::new();
        BfsWl.run(&g, &mut rec_wl);
        let wl_pushes: u64 = pushes(&rec_wl);
        let mut rec_atm = Recorder::new();
        BfsAtm.run(&g, &mut rec_atm);
        assert!(pushes(&rec_atm) > wl_pushes);
    }

    fn pushes(rec: &Recorder) -> u64 {
        rec.clone()
            .into_trace()
            .items()
            .iter()
            .map(|i| i.pushes as u64)
            .sum()
    }
}
